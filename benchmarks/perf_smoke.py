"""Performance smoke benchmark: time the compile+simulate hot path.

Runs the staged pipeline (unroll, profile, latency-assign, schedule, then
simulate) on three representative synthetic kernels and writes the
wall-clock numbers to ``BENCH_perf.json`` at the repository root.  The
file seeds the perf trajectory of the project: CI or a developer can diff
it across commits to spot hot-path regressions that the
(correctness-oriented) tier-1 suite would never notice.

Schema 3 adds the trace-compiled hot path (see ``docs/perf.md``):

* ``trace_seconds`` is the cold cost of materialising a kernel's address
  traces (:mod:`repro.profiling.trace`).  Compile and simulate times are
  *steady-state*: the in-process trace memo is warm after the first
  repeat, matching how the sweep engine replays one trace across a whole
  grid -- and ``--repeats 1`` measures everything cold.
* a two-point ``grid`` scenario compiles and simulates ``kernels-mix``
  twice against one stage-artifact store, with Attraction Buffers (a
  simulation-only knob) as the axis.  The second point must reuse every
  compilation stage *and* every execution trace: the run asserts zero
  trace misses on it, which is the cross-grid reuse this hot path exists
  for.

Schema 4 adds a ``telemetry`` scenario (see ``docs/observability.md``):
the warm kernels-mix point timed with spans enabled versus
``REPRO_OBS=off``, recording the overhead ratio of always-on telemetry
on the compile+simulate hot path (budget: <= 5%).

Schema 5 adds top-level ``spans``: per-span-name p50/p90/p99 duration
digests (the run-ledger format of :func:`repro.obs.ledger.span_digests`)
collected from the telemetry scenario's enabled rounds -- so the
committed baseline doubles as a ledger entry that ``repro-sweep
regress``-style comparisons can diff commit against commit.

Schema 6 names the active replay backend (``sim_kernel``, see
``docs/perf.md``) and adds a ``backend_comparison`` scenario: the warm
kernels-mix grid point (the steady-state sweep path), the simulate-only
replay (``sim_replay_seconds``) and the profile-only replay
(``profile_replay_seconds``) each timed under ``REPRO_SIM_KERNEL=scalar``
and ``=vector`` in interleaved rounds (min-of-repeats), with the
vector-over-scalar speedups recorded.  When numpy is unavailable the
vector half is ``null`` and the speedups are omitted.

Schema 7 adds a ``service`` scenario (see ``docs/sweep.md``, "Service
mode"): a 2x-overlapping two-client workload -- both clients submit the
same two-point kernels-mix grid concurrently to one live sweep service --
against two sequential ``repro-sweep run`` invocations of that grid
(cold stores, the two-separate-users status quo; the shared-store rerun
is recorded too).  Both sides are pinned to two workers.  The scenario
asserts zero duplicate executions (the second client rides the first's
in-flight jobs) and records the throughput speedup, the warm resubmit
latency (a fully stored grid served back), and the dedup counters.

Run with::

    PYTHONPATH=src python benchmarks/perf_smoke.py [--repeats N] [--output FILE]

Times are the *minimum* over ``--repeats`` runs (minimum is the standard
low-noise estimator for micro-benchmarks); cycle counts are asserted
deterministic across repeats.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

from repro import kernels
from repro.machine.config import MachineConfig
from repro.profiling.profiler import profile_loop
from repro.model.predict import predict_benchmark
from repro.obs import ledger as obs_ledger
from repro.obs import trace as obs_trace
from repro.profiling.trace import reset_trace_state, trace_stats
from repro.scheduler.pipeline import (
    PIPELINE_STAGES,
    CompilerOptions,
    compile_loop,
)
from repro.sim.engine import SimulationOptions, simulate_compiled_loops
from repro.sweep.artifacts import ArtifactCache, ArtifactStore
from repro.sweep.workloads import resolve_workload

#: The three representative kernels: a unit-stride stream (unrolling win),
#: a loop-carried reduction (recurrence bound) and a strided walk
#: (locality/interleaving sensitive).
KERNELS = ("kernel:streaming", "kernel:reduction", "kernel:strided")

#: The multi-point grid scenario: one benchmark, two machines that differ
#: only in a simulation-time knob, one shared artifact store.
GRID_BENCHMARK = "kernels-mix"

DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_perf.json"


def time_kernel(name: str, repeats: int) -> dict[str, object]:
    """Time compile (per stage), simulate and model-predict for one kernel."""
    benchmark = resolve_workload(name)
    config = MachineConfig.word_interleaved()
    options = CompilerOptions()
    simulation = SimulationOptions(iteration_cap=256)

    reset_trace_state()
    compile_times, simulate_times, predict_times = [], [], []
    stage_times: dict[str, list[float]] = {
        stage.name: [] for stage in PIPELINE_STAGES
    }
    trace_seconds = 0.0
    cycles: set[float] = set()
    for repeat in range(repeats):
        timings: dict[str, float] = {}
        started = time.perf_counter()
        compiled = [
            compile_loop(loop, config, options, timings=timings)
            for loop in benchmark.loops
        ]
        compile_times.append(time.perf_counter() - started)
        for stage in PIPELINE_STAGES:
            stage_times[stage.name].append(timings.get(stage.name, 0.0))

        started = time.perf_counter()
        result = simulate_compiled_loops(
            compiled, benchmark.name, config, simulation
        )
        simulate_times.append(time.perf_counter() - started)
        cycles.add(result.total_cycles)
        if repeat == 0:
            # Every trace this kernel needs was built (cold) by now; later
            # repeats replay them from the in-process memo.
            trace_seconds = trace_stats()["build_seconds"]

        started = time.perf_counter()
        predict_benchmark(benchmark, config, options, simulation)
        predict_times.append(time.perf_counter() - started)

    if len(cycles) != 1:
        raise AssertionError(
            f"{name}: nondeterministic cycle counts across repeats: {cycles}"
        )
    return {
        "compile_seconds": round(min(compile_times), 4),
        "stage_seconds": {
            stage: round(min(times), 4) for stage, times in stage_times.items()
        },
        "trace_seconds": round(trace_seconds, 4),
        "simulate_seconds": round(min(simulate_times), 4),
        "model_predict_seconds": round(min(predict_times), 4),
        "total_cycles": cycles.pop(),
    }


def run_grid_point(benchmark, config, cache) -> float:
    """Compile and simulate one grid point against the shared stage cache."""
    options = CompilerOptions()
    simulation = SimulationOptions(iteration_cap=256)
    started = time.perf_counter()
    compiled = [
        compile_loop(loop, config, options, cache=cache)
        for loop in benchmark.loops
    ]
    simulate_compiled_loops(
        compiled, benchmark.name, config, simulation, trace_cache=cache
    )
    return time.perf_counter() - started


def time_grid() -> dict[str, object]:
    """The two-point cross-grid reuse scenario.

    Point one (cold store) computes every stage and trace; point two turns
    on Attraction Buffers -- outside every compile slice and outside the
    trace slice -- so it must hit every pipeline stage and replay every
    execution trace: zero trace misses, one hit per loop.
    """
    benchmark = resolve_workload(GRID_BENCHMARK)
    with tempfile.TemporaryDirectory(prefix="perf-smoke-artifacts-") as root:
        cache = ArtifactCache(ArtifactStore(root))
        cold_seconds = run_grid_point(
            benchmark, MachineConfig.word_interleaved(), cache
        )
        cold = cache.take_stats()
        warm_seconds = run_grid_point(
            benchmark,
            MachineConfig.word_interleaved(attraction_buffers=True),
            cache,
        )
        warm = cache.take_stats()

    loops = len(benchmark.loops)
    trace_hits = warm["hits"].get("trace", 0)
    trace_misses = warm["misses"].get("trace", 0)
    if trace_misses or trace_hits != loops:
        raise AssertionError(
            f"second grid point must replay every execution trace: expected "
            f"{loops} hits / 0 misses, got {trace_hits} hits / {trace_misses} "
            f"misses"
        )
    if warm["misses"]:
        raise AssertionError(
            f"second grid point recompiled stages: {warm['misses']}"
        )
    return {
        "benchmark": GRID_BENCHMARK,
        "points": 2,
        "cold_seconds": round(cold_seconds, 4),
        "warm_seconds": round(warm_seconds, 4),
        "cold_trace_misses": cold["misses"].get("trace", 0),
        "warm_trace_hits": trace_hits,
        "warm_trace_misses": trace_misses,
    }


def time_telemetry(repeats: int) -> dict[str, object]:
    """Overhead of enabled telemetry on the warm kernels-mix point.

    The warm point is the worst proportional case: every stage and trace
    is served from the artifact store, so the span bookkeeping is as
    large a fraction of the work as it ever gets.  Both modes are timed
    steady-state (minimum over repeats) against the same warmed store.
    """
    benchmark = resolve_workload(GRID_BENCHMARK)
    config = MachineConfig.word_interleaved()
    # The real span cost is microseconds against a ~15ms point, so
    # scheduler noise dominates any back-to-back comparison; interleave
    # the two modes (drift hits both alike) and min over enough rounds.
    rounds = max(repeats, 10)
    samples: dict[str, list[float]] = {"enabled": [], "disabled": []}
    previous = obs_trace.enabled()
    obs_trace.take_events()  # digests must cover only this scenario's spans
    with tempfile.TemporaryDirectory(prefix="perf-smoke-telemetry-") as root:
        cache = ArtifactCache(ArtifactStore(root))
        run_grid_point(benchmark, config, cache)  # warm store + trace memo
        try:
            for _ in range(rounds):
                for label, flag in (("enabled", True), ("disabled", False)):
                    obs_trace.set_enabled(flag)
                    samples[label].append(
                        run_grid_point(benchmark, config, cache)
                    )
        finally:
            obs_trace.set_enabled(previous)
            # The enabled rounds' spans become the baseline's ledger-style
            # duration digests (and are drained off the buffer with it).
            span_events = obs_trace.take_events()
        cache.take_stats()
    seconds = {label: min(times) for label, times in samples.items()}
    ratio = (
        seconds["enabled"] / seconds["disabled"]
        if seconds["disabled"] > 0
        else 1.0
    )
    return {
        "benchmark": GRID_BENCHMARK,
        "enabled_seconds": round(seconds["enabled"], 4),
        "disabled_seconds": round(seconds["disabled"], 4),
        "overhead_ratio": round(ratio, 4),
        "spans": obs_ledger.span_digests(span_events),
    }


def time_backend_comparison(repeats: int) -> dict[str, object]:
    """Scalar-vs-vector replay backend timings on the sweep hot path.

    Three measurements per backend, interleaved round by round so machine
    drift hits both backends alike (the telemetry scenario's discipline):

    * ``compile_plus_simulate_seconds`` -- the warm kernels-mix grid
      point: every stage and trace served from the artifact store, so the
      time is what a sweep pays per steady-state grid point;
    * ``sim_replay_seconds`` -- simulating already-compiled loops only;
    * ``profile_replay_seconds`` -- the profiler's cache replay only
      (trace memo warm).

    The backends share every byte of input and must produce identical
    cycle counts -- asserted here; the differential suite in
    ``tests/test_kernels.py`` covers the full payloads.
    """
    benchmark = resolve_workload(GRID_BENCHMARK)
    config = MachineConfig.word_interleaved()
    options = CompilerOptions()
    simulation = SimulationOptions(iteration_cap=256)
    backends = ["scalar"]
    if kernels.numpy_available():
        backends.append("vector")
    rounds = max(repeats, 10)
    measures = ("compile_plus_simulate", "sim_replay", "profile_replay")
    samples: dict[str, dict[str, list[float]]] = {
        backend: {measure: [] for measure in measures} for backend in backends
    }
    cycles: dict[str, set[float]] = {backend: set() for backend in backends}
    previous = os.environ.get("REPRO_SIM_KERNEL")
    with tempfile.TemporaryDirectory(prefix="perf-smoke-backends-") as root:
        cache = ArtifactCache(ArtifactStore(root))
        run_grid_point(benchmark, config, cache)  # warm store + trace memo
        compiled = [
            compile_loop(loop, config, options, cache=cache)
            for loop in benchmark.loops
        ]
        try:
            for _ in range(rounds):
                for backend in backends:
                    os.environ["REPRO_SIM_KERNEL"] = backend
                    samples[backend]["compile_plus_simulate"].append(
                        run_grid_point(benchmark, config, cache)
                    )
                    started = time.perf_counter()
                    result = simulate_compiled_loops(
                        compiled, benchmark.name, config, simulation,
                        trace_cache=cache,
                    )
                    samples[backend]["sim_replay"].append(
                        time.perf_counter() - started
                    )
                    cycles[backend].add(result.total_cycles)
                    started = time.perf_counter()
                    for loop in benchmark.loops:
                        profile_loop(loop, config)
                    samples[backend]["profile_replay"].append(
                        time.perf_counter() - started
                    )
        finally:
            if previous is None:
                os.environ.pop("REPRO_SIM_KERNEL", None)
            else:
                os.environ["REPRO_SIM_KERNEL"] = previous
        cache.take_stats()
    if len(set().union(*cycles.values())) != 1:
        raise AssertionError(
            f"backends disagree on cycle counts: {cycles}"
        )
    report: dict[str, object] = {
        "benchmark": GRID_BENCHMARK,
        "rounds": rounds,
    }
    for backend in ("scalar", "vector"):
        report[backend] = (
            {
                f"{measure}_seconds": round(min(times), 4)
                for measure, times in samples[backend].items()
            }
            if backend in samples
            else None
        )
    if "vector" in samples:
        report["speedup"] = {
            measure: round(
                min(samples["scalar"][measure])
                / max(min(samples["vector"][measure]), 1e-9),
                2,
            )
            for measure in measures
        }
    return report


def time_service() -> dict[str, object]:
    """The 2x-overlapping two-client service workload versus batch runs.

    Both clients submit the same two-point grid to one live service at
    the same instant (a barrier releases them together): the first
    classifies every job *new*, the second rides the same executions
    in-flight, so the service executes each point exactly once --
    asserted.  The sequential baseline is what those two users pay
    without a service: two ``run_jobs`` invocations on separate cold
    stores, each spawning its own workers (the shared-store rerun, where
    the second invocation is pure cache hits, is recorded alongside).
    Worker counts are pinned to 2 on both sides so the scenario measures
    scheduling and dedup, not this machine's core count.
    """
    import threading

    from repro.sweep.executor import run_jobs
    from repro.sweep.protocol import ServiceClient, default_socket_path
    from repro.sweep.service import ServiceThread, SweepService
    from repro.sweep.spec import SweepSpec
    from repro.sweep.store import ResultStore

    spec = SweepSpec(
        name="perf-service",
        benchmarks=(GRID_BENCHMARK,),
        axes={"attraction_entries": (0, 16)},
        base={"iteration_cap": 256},
    )
    points = len(spec.expand())
    workers = 2

    sequential_cold = 0.0
    for _ in range(2):
        with tempfile.TemporaryDirectory(prefix="perf-smoke-seq-") as root:
            store = ResultStore(Path(root) / "store")
            started = time.perf_counter()
            run_jobs(spec.expand(), store=store, workers=workers)
            sequential_cold += time.perf_counter() - started

    with tempfile.TemporaryDirectory(prefix="perf-smoke-seq-") as root:
        store = ResultStore(Path(root) / "store")
        started = time.perf_counter()
        run_jobs(spec.expand(), store=store, workers=workers)
        run_jobs(spec.expand(), store=store, workers=workers)
        sequential_shared = time.perf_counter() - started

    with tempfile.TemporaryDirectory(prefix="perf-smoke-service-") as root:
        store_root = Path(root) / "store"
        service = SweepService(store_root, workers=workers)
        with ServiceThread(service):
            socket_path = default_socket_path(store_root)
            barrier = threading.Barrier(2)
            results: list[dict] = [{}, {}]

            def client(index: int) -> None:
                with ServiceClient(socket_path=socket_path) as c:
                    barrier.wait()
                    results[index] = c.submit(spec.to_mapping())

            threads = [
                threading.Thread(target=client, args=(index,))
                for index in range(2)
            ]
            started = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            service_seconds = time.perf_counter() - started

            with ServiceClient(socket_path=socket_path) as c:
                started = time.perf_counter()
                resubmit = c.submit(spec.to_mapping())
                warm_resubmit_seconds = time.perf_counter() - started
                stats = c.stats()

    executed = stats["jobs"]["executed"]
    if executed != points:
        raise AssertionError(
            f"two overlapping clients must execute each point once: "
            f"expected {points} executions, got {executed} "
            f"(dedup: {stats['dedup']})"
        )
    if resubmit["executed"] != 0 or resubmit["stored"] != points:
        raise AssertionError(
            f"warm resubmit must be served entirely from the store, got "
            f"{resubmit}"
        )
    speedup_cold = sequential_cold / max(service_seconds, 1e-9)
    if speedup_cold < 1.2:
        raise AssertionError(
            f"service throughput must beat two sequential cold runs: "
            f"{service_seconds:.3f}s vs {sequential_cold:.3f}s "
            f"({speedup_cold:.2f}x)"
        )
    return {
        "benchmark": GRID_BENCHMARK,
        "points": points,
        "clients": 2,
        "workers": workers,
        "service_seconds": round(service_seconds, 4),
        "sequential_cold_seconds": round(sequential_cold, 4),
        "sequential_shared_seconds": round(sequential_shared, 4),
        "speedup_vs_sequential_cold": round(speedup_cold, 2),
        "speedup_vs_sequential_shared": round(
            sequential_shared / max(service_seconds, 1e-9), 2
        ),
        "warm_resubmit_seconds": round(warm_resubmit_seconds, 4),
        "executed": executed,
        "dedup": dict(stats["dedup"]),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--repeats", type=int, default=5, help="timing repeats (default 5)"
    )
    parser.add_argument(
        "--output", default=str(DEFAULT_OUTPUT), help="output JSON path"
    )
    args = parser.parse_args(argv)

    report: dict[str, object] = {
        "schema": 7,
        "python": platform.python_version(),
        "repeats": args.repeats,
        "sim_kernel": kernels.active_backend(),
        "kernels": {},
    }
    total = 0.0
    for name in KERNELS:
        timing = time_kernel(name, args.repeats)
        report["kernels"][name] = timing
        total += timing["compile_seconds"] + timing["simulate_seconds"]
        stages = " ".join(
            f"{stage}={seconds:.3f}s"
            for stage, seconds in timing["stage_seconds"].items()
        )
        print(
            f"{name:20s} compile={timing['compile_seconds']:.3f}s "
            f"({stages}) "
            f"trace={timing['trace_seconds']:.3f}s "
            f"simulate={timing['simulate_seconds']:.3f}s "
            f"model={timing['model_predict_seconds']:.3f}s "
            f"cycles={timing['total_cycles']}"
        )
    report["compile_plus_simulate_seconds"] = round(total, 4)

    grid = time_grid()
    report["grid"] = grid
    requests = grid["warm_trace_hits"] + grid["warm_trace_misses"]
    print(
        f"grid {grid['benchmark']}: cold={grid['cold_seconds']:.3f}s "
        f"warm={grid['warm_seconds']:.3f}s, second point trace "
        f"{grid['warm_trace_hits']}/{requests} hits, "
        f"{grid['warm_trace_misses']} misses"
    )

    comparison = time_backend_comparison(args.repeats)
    report["backend_comparison"] = comparison
    if comparison.get("speedup"):
        speedups = " ".join(
            f"{measure}={ratio:.2f}x"
            for measure, ratio in comparison["speedup"].items()
        )
        print(f"backends {comparison['benchmark']}: vector-over-scalar {speedups}")
    else:
        print(
            f"backends {comparison['benchmark']}: scalar only (numpy unavailable)"
        )

    service = time_service()
    report["service"] = service
    print(
        f"service {service['benchmark']}: {service['clients']} clients x "
        f"{service['points']} points: service={service['service_seconds']:.3f}s "
        f"sequential={service['sequential_cold_seconds']:.3f}s "
        f"({service['speedup_vs_sequential_cold']:.2f}x), warm resubmit "
        f"{service['warm_resubmit_seconds'] * 1000:.0f}ms, dedup new "
        f"{service['dedup']['new']} / in-flight {service['dedup']['inflight']} "
        f"/ stored {service['dedup']['stored']}"
    )

    telemetry = time_telemetry(args.repeats)
    # The digests live at the top level: they are the baseline's
    # ledger-entry half, not a telemetry-overhead detail.
    report["spans"] = telemetry.pop("spans")
    report["telemetry"] = telemetry
    print(
        f"telemetry {telemetry['benchmark']}: "
        f"enabled={telemetry['enabled_seconds']:.3f}s "
        f"disabled={telemetry['disabled_seconds']:.3f}s "
        f"overhead={telemetry['overhead_ratio']:.3f}x"
    )
    print(f"span digests: {len(report['spans'])} span name(s) recorded")

    output = Path(args.output)
    output.write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Figure 7: workload balance achieved by the IPBC heuristic.

Workload balance of a loop is the fraction of its instructions assigned to
the most loaded cluster (0.25 is perfect on four clusters, 1.0 is completely
unbalanced); a benchmark's balance is the weighted mean over its loops.
Three configurations are shown per benchmark: no unrolling, OUF unrolling,
and OUF unrolling without memory dependent chains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.metrics import arithmetic_mean
from repro.experiments.common import (
    ExperimentOptions,
    ExperimentResult,
    ExperimentRunner,
    interleaved_setup,
)
from repro.scheduler.core import SchedulingHeuristic
from repro.scheduler.unrolling import UnrollPolicy

VARIANTS: tuple[tuple[str, dict], ...] = (
    ("no-unroll", dict(unroll_policy=UnrollPolicy.NONE)),
    ("ouf", dict(unroll_policy=UnrollPolicy.OUF)),
    ("ouf+no-chains", dict(unroll_policy=UnrollPolicy.OUF, use_chains=False)),
)


@dataclass
class Figure7Row:
    """Workload balance of one benchmark under one variant."""

    benchmark: str
    variant: str
    workload_balance: float


def _setup_for(variant_name: str, variant_options: dict):
    return interleaved_setup(
        SchedulingHeuristic.IPBC,
        name=f"fig7/{variant_name}",
        **variant_options,
    )


def sweep_setups() -> list:
    """The setups this figure simulates, for sweep prewarming."""
    return [_setup_for(name, options) for name, options in VARIANTS]


def run_figure7(
    runner: Optional[ExperimentRunner] = None,
    options: Optional[ExperimentOptions] = None,
) -> tuple[list[Figure7Row], ExperimentResult]:
    """Regenerate the data behind Figure 7."""
    runner = runner or ExperimentRunner(options)
    rows: list[Figure7Row] = []
    result = ExperimentResult(
        title="Figure 7 - workload balance (IPBC)",
        headers=["benchmark", *[name for name, _ in VARIANTS]],
    )
    per_variant: dict[str, list[float]] = {name: [] for name, _ in VARIANTS}
    for benchmark in runner.benchmarks:
        values = []
        for variant_name, variant_options in VARIANTS:
            setup = _setup_for(variant_name, variant_options)
            sim = runner.run_benchmark(benchmark, setup)
            balance = sim.workload_balance()
            rows.append(
                Figure7Row(
                    benchmark=benchmark.name,
                    variant=variant_name,
                    workload_balance=balance,
                )
            )
            per_variant[variant_name].append(balance)
            values.append(balance)
        result.add_row([benchmark.name, *values])
    result.add_row(
        ["AMEAN", *[arithmetic_mean(per_variant[name]) for name, _ in VARIANTS]]
    )
    result.notes.append(
        "unrolling improves balance; memory dependent chains unbalance "
        "chain-heavy benchmarks (epicdec, pgpdec, pgpenc, rasta)"
    )
    return rows, result


def balance_by_variant(rows: list[Figure7Row]) -> dict[str, float]:
    """Average workload balance per variant."""
    grouped: dict[str, list[float]] = {}
    for row in rows:
        grouped.setdefault(row.variant, []).append(row.workload_balance)
    return {name: arithmetic_mean(values) for name, values in grouped.items()}

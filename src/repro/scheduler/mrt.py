"""The Modulo Reservation Table (MRT).

Modulo scheduling places operations in a kernel of II rows; two operations
that need the same resource may not share a row (more precisely, a row may
not hold more operations of a kind than the cluster has units of that kind).
The MRT tracks per-row functional-unit usage for every cluster plus the
shared register-to-register buses used by inter-cluster copies.
"""

from __future__ import annotations

from repro.ir.operation import Operation
from repro.machine.config import FunctionalUnitKind, MachineConfig
from repro.machine.resources import unit_kind_for


class ModuloReservationTable:
    """Resource reservations of a partial modulo schedule."""

    def __init__(self, ii: int, config: MachineConfig) -> None:
        if ii <= 0:
            raise ValueError("the initiation interval must be positive")
        self._ii = ii
        self._config = config
        # usage[row][cluster][kind] -> count
        self._fu_usage: list[list[dict[FunctionalUnitKind, int]]] = [
            [
                {kind: 0 for kind in FunctionalUnitKind}
                for _ in range(config.num_clusters)
            ]
            for _ in range(ii)
        ]
        self._register_bus_usage = [0] * ii
        self._memory_bus_usage = [0] * ii

    @property
    def ii(self) -> int:
        """Initiation interval of this table."""
        return self._ii

    # ------------------------------------------------------------------
    # Functional units
    # ------------------------------------------------------------------
    def fu_available(self, cycle: int, cluster: int, op: Operation) -> bool:
        """Whether a unit for ``op`` is free in ``cluster`` at ``cycle``."""
        kind = unit_kind_for(op)
        row = cycle % self._ii
        used = self._fu_usage[row][cluster][kind]
        return used < self._config.functional_units.count(kind)

    def reserve_fu(self, cycle: int, cluster: int, op: Operation) -> None:
        """Reserve a functional unit; the caller must have checked availability."""
        kind = unit_kind_for(op)
        row = cycle % self._ii
        if self._fu_usage[row][cluster][kind] >= self._config.functional_units.count(kind):
            raise ValueError(
                f"no {kind.value} unit free in cluster {cluster} at row {row}"
            )
        self._fu_usage[row][cluster][kind] += 1

    def fu_slots_used(self, cluster: int) -> int:
        """Total reserved functional-unit slots in a cluster (load metric)."""
        return sum(
            sum(self._fu_usage[row][cluster].values()) for row in range(self._ii)
        )

    # ------------------------------------------------------------------
    # Register-to-register buses
    # ------------------------------------------------------------------
    def register_bus_available(self, cycle: int) -> bool:
        """Whether a register bus transfer can start at ``cycle``.

        The buses run at half the core frequency, so one transfer occupies a
        bus for ``transfer_cycles`` consecutive rows.
        """
        span = self._config.register_buses.transfer_cycles
        limit = self._config.register_buses.count
        return all(
            self._register_bus_usage[(cycle + offset) % self._ii] < limit
            for offset in range(span)
        )

    def reserve_register_bus(self, cycle: int) -> None:
        """Reserve a register bus starting at ``cycle``."""
        if not self.register_bus_available(cycle):
            raise ValueError(f"no register bus free at cycle {cycle}")
        span = self._config.register_buses.transfer_cycles
        for offset in range(span):
            self._register_bus_usage[(cycle + offset) % self._ii] += 1

    def register_bus_slack(self, cycle: int) -> int:
        """How many additional transfers could start at ``cycle``."""
        span = self._config.register_buses.transfer_cycles
        limit = self._config.register_buses.count
        return min(
            limit - self._register_bus_usage[(cycle + offset) % self._ii]
            for offset in range(span)
        )

    def find_register_bus_slot(self, earliest: int, latest: int) -> int | None:
        """First cycle in [earliest, latest] where a bus transfer fits."""
        if latest < earliest:
            return None
        for cycle in range(earliest, latest + 1):
            if self.register_bus_available(cycle):
                return cycle
        return None

    # ------------------------------------------------------------------
    # Memory buses
    # ------------------------------------------------------------------
    def memory_bus_available(self, cycle: int) -> bool:
        """Whether a memory-bus transfer can start at ``cycle``."""
        span = self._config.memory_buses.transfer_cycles
        limit = self._config.memory_buses.count
        return all(
            self._memory_bus_usage[(cycle + offset) % self._ii] < limit
            for offset in range(span)
        )

    def reserve_memory_bus(self, cycle: int) -> None:
        """Reserve a memory bus starting at ``cycle``."""
        if not self.memory_bus_available(cycle):
            raise ValueError(f"no memory bus free at cycle {cycle}")
        span = self._config.memory_buses.transfer_cycles
        for offset in range(span):
            self._memory_bus_usage[(cycle + offset) % self._ii] += 1

    # ------------------------------------------------------------------
    # Introspection (used by tests and reports)
    # ------------------------------------------------------------------
    def utilization(self) -> dict[str, float]:
        """Fraction of available slots in use, per resource family."""
        clusters = self._config.num_clusters
        fu_capacity = self._ii * clusters * self._config.functional_units.total()
        fu_used = sum(self.fu_slots_used(cluster) for cluster in range(clusters))
        bus_capacity = self._ii * self._config.register_buses.count
        bus_used = sum(self._register_bus_usage)
        return {
            "functional_units": fu_used / fu_capacity if fu_capacity else 0.0,
            "register_buses": bus_used / bus_capacity if bus_capacity else 0.0,
        }

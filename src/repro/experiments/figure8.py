"""Figure 8: cycle counts across the four evaluated architectures.

For every benchmark the paper draws, from left to right: the word-interleaved
processor with IPBC and 16-entry Attraction Buffers, the same with IBC, the
cache-coherent multiVLIW, and the unified-cache clustered processor with a
5-cycle cache -- all normalized to a unified-cache processor with an
optimistic 1-cycle cache, and each split into compute time and stall time.

Headline comparisons the harness recomputes:

* the interleaved processor is close to the multiVLIW (paper: ~7% more
  cycles),
* it beats the realistic unified cache (paper: 5% with IPBC, 10% with IBC),
* and it trails the ideal 1-cycle unified cache (paper: 18% / 11%).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.metrics import arithmetic_mean
from repro.experiments.common import (
    ExperimentOptions,
    ExperimentResult,
    ExperimentRunner,
    interleaved_setup,
    multivliw_setup,
    unified_setup,
)
from repro.scheduler.core import SchedulingHeuristic

#: Configuration names, in the order of the figure's bars.
CONFIGURATIONS = ("ipbc+ab", "ibc+ab", "multivliw", "unified-L5")
BASELINE = "unified-L1"


@dataclass
class Figure8Row:
    """Normalized cycles of one benchmark under one configuration."""

    benchmark: str
    configuration: str
    compute_cycles: float
    stall_cycles: float
    normalized_compute: float
    normalized_stall: float

    @property
    def normalized_total(self) -> float:
        """Total cycles normalized to the unified 1-cycle baseline."""
        return self.normalized_compute + self.normalized_stall


def _setups() -> dict[str, object]:
    return {
        "ipbc+ab": interleaved_setup(
            SchedulingHeuristic.IPBC, attraction_buffers=True, name="fig8/ipbc+ab"
        ),
        "ibc+ab": interleaved_setup(
            SchedulingHeuristic.IBC, attraction_buffers=True, name="fig8/ibc+ab"
        ),
        "multivliw": multivliw_setup(name="fig8/multivliw"),
        "unified-L5": unified_setup(latency=5, name="fig8/unified-L5"),
        BASELINE: unified_setup(latency=1, name="fig8/unified-L1"),
    }


def sweep_setups() -> list:
    """The setups this figure simulates, for sweep prewarming."""
    return list(_setups().values())


def run_figure8(
    runner: Optional[ExperimentRunner] = None,
    options: Optional[ExperimentOptions] = None,
) -> tuple[list[Figure8Row], ExperimentResult]:
    """Regenerate the data behind Figure 8."""
    runner = runner or ExperimentRunner(options)
    setups = _setups()
    rows: list[Figure8Row] = []
    result = ExperimentResult(
        title="Figure 8 - cycle counts normalized to unified L=1",
        headers=["benchmark", "configuration", "norm_compute", "norm_stall", "norm_total"],
    )

    totals: dict[str, list[float]] = {name: [] for name in (*CONFIGURATIONS, BASELINE)}
    for benchmark in runner.benchmarks:
        sims = {
            name: runner.run_benchmark(benchmark, setup)
            for name, setup in setups.items()
        }
        baseline_total = sims[BASELINE].total_cycles or 1.0
        for name in (*CONFIGURATIONS, BASELINE):
            sim = sims[name]
            row = Figure8Row(
                benchmark=benchmark.name,
                configuration=name,
                compute_cycles=sim.compute_cycles,
                stall_cycles=sim.stall_cycles,
                normalized_compute=sim.compute_cycles / baseline_total,
                normalized_stall=sim.stall_cycles / baseline_total,
            )
            rows.append(row)
            totals[name].append(row.normalized_total)
            if name is not BASELINE:
                result.add_row(
                    [
                        benchmark.name,
                        name,
                        row.normalized_compute,
                        row.normalized_stall,
                        row.normalized_total,
                    ]
                )

    means = {name: arithmetic_mean(values) for name, values in totals.items()}
    for name in CONFIGURATIONS:
        result.add_row(["AMEAN", name, "", "", means[name]])

    result.notes.append(
        f"interleaved vs multiVLIW: {means['ipbc+ab'] / means['multivliw'] - 1:+.1%} "
        "cycles (paper: about +7%)"
    )
    result.notes.append(
        f"speedup over unified L=5: IPBC {means['unified-L5'] / means['ipbc+ab'] - 1:+.1%}, "
        f"IBC {means['unified-L5'] / means['ibc+ab'] - 1:+.1%} (paper: +5% / +10%)"
    )
    result.notes.append(
        f"slowdown vs unified L=1: IPBC {means['ipbc+ab'] - 1:+.1%}, "
        f"IBC {means['ibc+ab'] - 1:+.1%} (paper: +18% / +11%)"
    )
    return rows, result


def amean_normalized_totals(rows: list[Figure8Row]) -> dict[str, float]:
    """AMEAN of the normalized total cycles per configuration."""
    grouped: dict[str, list[float]] = {}
    for row in rows:
        grouped.setdefault(row.configuration, []).append(row.normalized_total)
    return {name: arithmetic_mean(values) for name, values in grouped.items()}

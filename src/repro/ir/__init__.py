"""Loop-level compiler intermediate representation."""

from repro.ir.builder import LoopBuilder
from repro.ir.chains import ChainAssignment, MemoryChain, build_memory_chains
from repro.ir.ddg import (
    DataDependenceGraph,
    Dependence,
    DependenceKind,
    Recurrence,
    rec_mii,
)
from repro.ir.loop import ArraySpec, Loop, LoopNest, StorageClass, gather_arrays
from repro.ir.memdep import DisambiguationPolicy, add_memory_dependences, may_alias
from repro.ir.operation import (
    MemoryAccess,
    Operation,
    OperationClass,
    load,
    make_operation,
    store,
)
from repro.ir.unroll import unroll_ddg, unroll_loop

__all__ = [
    "ArraySpec",
    "ChainAssignment",
    "DataDependenceGraph",
    "Dependence",
    "DependenceKind",
    "DisambiguationPolicy",
    "Loop",
    "LoopBuilder",
    "LoopNest",
    "MemoryAccess",
    "MemoryChain",
    "Operation",
    "OperationClass",
    "Recurrence",
    "StorageClass",
    "add_memory_dependences",
    "build_memory_chains",
    "gather_arrays",
    "load",
    "make_operation",
    "may_alias",
    "rec_mii",
    "store",
    "unroll_ddg",
    "unroll_loop",
]

"""Benchmark E-ABL1: Attraction Buffer sizing and attractable-hint ablation."""

from benchmarks.conftest import save_report
from repro.experiments.ablations import (
    run_attractable_hint_ablation,
    run_attraction_buffer_ablation,
)


def test_attraction_buffer_sizing(benchmark, experiment_runner, results_dir):
    rows, result = benchmark.pedantic(
        run_attraction_buffer_ablation,
        kwargs={"runner": experiment_runner},
        rounds=1,
        iterations=1,
    )
    save_report(results_dir, "ablation_attraction_buffers", result.render())
    by_config = {
        (row["heuristic"], row["configuration"]): row["normalized_stall"] for row in rows
    }
    # Larger buffers never hurt the chain-heavy benchmark.
    for heuristic in ("ipbc", "ibc"):
        assert by_config[(heuristic, "ab-32")] <= by_config[(heuristic, "no-ab")] + 1e-6


def test_attractable_hints(experiment_runner, results_dir):
    rows, result = run_attractable_hint_ablation(runner=experiment_runner)
    save_report(results_dir, "ablation_attractable_hints", result.render())
    assert len(rows) == 2

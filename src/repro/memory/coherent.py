"""The multiVLIW coherent distributed cache (the related-work baseline).

Sánchez and González (MICRO-33) distribute the L1 data cache across the
clusters and keep the copies consistent with a snoopy write-invalidate
protocol; data migrates (and replicates) towards the clusters that use it.
The model below captures the behaviour the comparison in Section 5.3 relies
on:

* a hit in the local module is a local hit;
* a miss that another module can serve is a remote hit -- the block is
  copied into the local module (replication);
* otherwise the block is fetched from the next memory level into the local
  module;
* stores invalidate every other copy of the block.

The price of replication is a smaller effective capacity, which the paper
notes is why the multiVLIW is more sensitive to cache size.
"""

from __future__ import annotations

from repro.machine.config import CacheOrganization, MachineConfig
from repro.memory.cachesets import SetAssociativeStore
from repro.memory.classify import AccessResult, AccessType
from repro.memory.hierarchy import DataCacheModel


class CoherentDataCache(DataCacheModel):
    """Behavioural model of the multiVLIW snoopy-coherent cache."""

    def __init__(self, config: MachineConfig) -> None:
        if config.organization is not CacheOrganization.COHERENT:
            raise ValueError("configuration is not a multiVLIW machine")
        super().__init__(config)
        module = config.module_geometry
        self._modules = [
            SetAssociativeStore(module.num_sets, module.associativity)
            for _ in range(config.num_clusters)
        ]
        self._invalidations = 0
        self._replications = 0

    @property
    def invalidations(self) -> int:
        """Copies destroyed by stores."""
        return self._invalidations

    @property
    def replications(self) -> int:
        """Blocks copied into an additional module by remote hits."""
        return self._replications

    def module(self, cluster: int) -> SetAssociativeStore:
        """The cache module of a cluster (exposed for tests)."""
        return self._modules[cluster]

    def _access(
        self,
        cluster: int,
        address: int,
        size: int,
        is_store: bool,
        cycle: int,
        attractable: bool,
    ) -> AccessResult:
        block = self.block_index(address)
        local = self._modules[cluster]

        if local.lookup(block):
            if is_store:
                self._invalidate_others(block, cluster)
            return AccessResult(
                classification=AccessType.LOCAL_HIT,
                latency=self._config.latencies.local_hit,
                home_cluster=cluster,
                requesting_cluster=cluster,
            )

        # Snoop the other modules over the memory buses.
        owner = self._find_owner(block, cluster)
        if owner is not None:
            grant = self.memory_buses.request(cycle)
            local.insert(block)
            self._replications += 1
            if is_store:
                self._invalidate_others(block, cluster)
            return AccessResult(
                classification=AccessType.REMOTE_HIT,
                latency=self._config.latencies.remote_hit + grant.wait_cycles,
                home_cluster=owner,
                requesting_cluster=cluster,
                bus_wait=grant.wait_cycles,
            )

        # Nobody has it: fetch from the next memory level into the local module.
        local.insert(block)
        wait = self.next_level.access(cycle)
        latency = self._config.latencies.local_miss + max(
            0, wait - self._config.next_level.latency
        )
        if is_store:
            self._invalidate_others(block, cluster)
        return AccessResult(
            classification=AccessType.LOCAL_MISS,
            latency=latency,
            home_cluster=cluster,
            requesting_cluster=cluster,
        )

    def _find_owner(self, block: int, except_cluster: int) -> int | None:
        for index, module in enumerate(self._modules):
            if index == except_cluster:
                continue
            if module.contains(block):
                return index
        return None

    def _invalidate_others(self, block: int, except_cluster: int) -> None:
        for index, module in enumerate(self._modules):
            if index == except_cluster:
                continue
            if module.invalidate(block):
                self._invalidations += 1


def make_cache_model(config: MachineConfig) -> DataCacheModel:
    """Factory returning the cache model matching a configuration."""
    from repro.memory.interleaved import WordInterleavedDataCache
    from repro.memory.unified import UnifiedDataCache

    if config.organization is CacheOrganization.WORD_INTERLEAVED:
        return WordInterleavedDataCache(config)
    if config.organization is CacheOrganization.UNIFIED:
        return UnifiedDataCache(config)
    return CoherentDataCache(config)

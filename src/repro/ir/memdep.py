"""Memory disambiguation and memory-dependence construction.

The paper relies on the memory dependence analysis of the IMPACT environment
(Cheng's dissertation) and notes that the compiler always stays on the
conservative side: when two references cannot be disambiguated a dependence
is added between them.  This module reproduces that behaviour with three
selectable precision levels, from "everything aliases" to an overlap check on
statically known strides and offsets.
"""

from __future__ import annotations

import enum
from typing import Iterable

from repro.ir.ddg import DataDependenceGraph, Dependence, DependenceKind
from repro.ir.operation import MemoryAccess, Operation


class DisambiguationPolicy(enum.Enum):
    """Precision of the memory dependence analysis."""

    #: No disambiguation at all: every pair of references with at least one
    #: store is assumed to conflict, even across different arrays.
    NONE = "none"
    #: References to the same array conflict; indirect references conflict
    #: with every reference to their array.  This mirrors IMPACT's behaviour
    #: on pointer-heavy media code and is the default.
    CONSERVATIVE = "conservative"
    #: Same-array references are further disambiguated using their constant
    #: strides and offsets: two strided streams that can never touch the same
    #: element are independent.
    PRECISE = "precise"


def may_alias(
    first: MemoryAccess,
    second: MemoryAccess,
    policy: DisambiguationPolicy,
    distance: int = 0,
) -> bool:
    """Whether ``first`` (iteration i) and ``second`` (iteration i+distance)
    may reference the same location.

    ``distance`` expresses the iteration separation between the two
    references: 0 compares references of the same original iteration, 1
    compares a reference with the following iteration's, and so on.  Only the
    PRECISE policy makes use of it.
    """
    if distance < 0:
        raise ValueError("distance must be non-negative")
    if policy is DisambiguationPolicy.NONE:
        return True
    if first.array != second.array:
        return False
    if policy is DisambiguationPolicy.CONSERVATIVE:
        return True
    # PRECISE: indirect or unknown-stride references cannot be disambiguated.
    if first.indirect or second.indirect:
        return True
    if not first.stride_known or not second.stride_known:
        return True
    if first.stride_bytes == 0 or second.stride_bytes == 0:
        # A loop-invariant reference conflicts with any strided stream over
        # the same array unless their footprints are provably disjoint,
        # which we cannot establish without value information.
        return True
    overlap = max(first.granularity, second.granularity)
    if first.stride_bytes == second.stride_bytes:
        # first(i)  touches off1 + s*i, second(i+d) touches off2 + s*(i+d):
        # the gap between them is constant, so they collide exactly when it
        # is smaller than the widest element.
        gap = abs(first.offset_bytes - (second.offset_bytes + first.stride_bytes * distance))
        return gap < overlap
    return True


def add_memory_dependences(
    ddg: DataDependenceGraph,
    policy: DisambiguationPolicy = DisambiguationPolicy.CONSERVATIVE,
    loop_carried: bool = True,
    max_distance: int = 4,
) -> list[Dependence]:
    """Add memory dependences between conflicting references.

    For every pair of memory operations in program order where at least one
    is a store and the pair may alias within the same iteration, an
    intra-iteration memory dependence is added from the earlier to the later
    operation.  If ``loop_carried`` is true, distance-``d`` dependences (for
    d up to ``max_distance``) are also added whenever the later operation of
    iteration i conflicts with the earlier operation of iteration i+d,
    which is what turns store/load pairs over the same locations into
    recurrences, as in REC1 of the paper's example.

    Returns the list of added dependences.
    """
    added: list[Dependence] = []
    mem_ops = ddg.memory_operations
    existing = {
        (dep.src, dep.dst, dep.distance)
        for dep in ddg.dependences()
        if dep.kind is DependenceKind.MEMORY
    }

    def _add(src: Operation, dst: Operation, distance: int) -> None:
        key = (src, dst, distance)
        if key in existing:
            return
        existing.add(key)
        added.append(ddg.connect(src, dst, DependenceKind.MEMORY, distance))

    for i, earlier in enumerate(mem_ops):
        for later in mem_ops[i + 1 :]:
            if not (earlier.is_store or later.is_store):
                continue
            if may_alias(earlier.memory, later.memory, policy, distance=0):
                _add(earlier, later, 0)
            if not loop_carried:
                continue
            for distance in range(1, max_distance + 1):
                if may_alias(later.memory, earlier.memory, policy, distance=distance):
                    _add(later, earlier, distance)
                    break
    return added


def count_unresolved_pairs(
    ops: Iterable[Operation], policy: DisambiguationPolicy
) -> int:
    """Number of store/reference pairs the analysis could not disambiguate.

    Useful for characterising how conservative a given policy is on a
    workload (reported by the Table-1 style benchmark characterisation).
    """
    mem_ops = [op for op in ops if op.is_memory]
    unresolved = 0
    for i, earlier in enumerate(mem_ops):
        for later in mem_ops[i + 1 :]:
            if not (earlier.is_store or later.is_store):
                continue
            if may_alias(earlier.memory, later.memory, policy):
                unresolved += 1
    return unresolved

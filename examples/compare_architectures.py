"""Compare the four evaluated architectures on a memory-feedback kernel.

This is the Figure-8 experiment in miniature: one IIR-style loop (its value
recurrence flows through memory, so the latency-assignment step matters) is
compiled and simulated for

* the word-interleaved cache with IPBC and with IBC (16-entry Attraction
  Buffers),
* the cache-coherent multiVLIW, and
* the unified-cache clustered processor with 1-cycle and 5-cycle caches,

and the resulting compute/stall cycles are printed side by side.

Run with::

    python examples/compare_architectures.py
"""

from repro.analysis.report import format_table
from repro.machine import MachineConfig
from repro.scheduler import (
    SchedulingHeuristic,
    schedule_for_interleaved,
    schedule_for_multivliw,
    schedule_for_unified,
)
from repro.sim import SimulationOptions, simulate_compiled_loop
from repro.workloads import iir_kernel


def main() -> None:
    loop = iir_kernel("biquad", element_bytes=4, extra_inputs=2, trip_count=4096)
    configurations = [
        (
            "interleaved IPBC+AB",
            lambda: schedule_for_interleaved(
                loop, SchedulingHeuristic.IPBC, attraction_buffers=True
            ),
        ),
        (
            "interleaved IBC+AB",
            lambda: schedule_for_interleaved(
                loop, SchedulingHeuristic.IBC, attraction_buffers=True
            ),
        ),
        ("multiVLIW", lambda: schedule_for_multivliw(loop)),
        ("unified L=5", lambda: schedule_for_unified(loop, cache_latency=5)),
        ("unified L=1", lambda: schedule_for_unified(loop, cache_latency=1)),
    ]

    rows = []
    baseline_total = None
    for name, compile_fn in configurations:
        compiled = compile_fn()
        result = simulate_compiled_loop(
            compiled, options=SimulationOptions(iteration_cap=512)
        )
        if name == "unified L=1":
            baseline_total = result.total_cycles
        rows.append(
            [
                name,
                compiled.unroll_factor,
                compiled.ii,
                compiled.schedule.num_copies,
                result.compute_cycles,
                result.stall_cycles,
                result.total_cycles,
            ]
        )

    # Normalize to the optimistic unified cache, as Figure 8 does.
    for row in rows:
        row.append(row[-1] / baseline_total if baseline_total else 0.0)

    print(
        format_table(
            ["configuration", "UF", "II", "copies", "compute", "stall", "total", "norm"],
            rows,
            title="One-loop architecture comparison (cf. Figure 8)",
        )
    )


if __name__ == "__main__":
    main()

"""A fluent builder for loops and their dependence graphs.

The synthetic workload suite and the test suite construct many small loop
kernels; this builder keeps those definitions compact and readable while
guaranteeing the resulting :class:`~repro.ir.loop.Loop` is well formed
(register dependences wired, memory dependences added by the disambiguator,
arrays declared).

Example::

    builder = LoopBuilder("daxpy", trip_count=1024)
    builder.array("x", element_bytes=4, num_elements=1024)
    builder.array("y", element_bytes=4, num_elements=1024)
    x = builder.load("ld_x", "x", stride=4)
    y = builder.load("ld_y", "y", stride=4)
    prod = builder.compute("mul", "fmul", inputs=[x])
    total = builder.compute("acc", "fadd", inputs=[prod, y])
    builder.store("st_y", "y", stride=4, inputs=[total])
    loop = builder.build()
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.ir.ddg import DataDependenceGraph, DependenceKind
from repro.ir.loop import ArraySpec, Loop, StorageClass
from repro.ir.memdep import DisambiguationPolicy, add_memory_dependences
from repro.ir.operation import MemoryAccess, Operation, make_operation


class LoopBuilder:
    """Incrementally constructs a :class:`~repro.ir.loop.Loop`."""

    def __init__(
        self,
        name: str,
        trip_count: int,
        profile_trip_count: Optional[int] = None,
        weight: float = 1.0,
    ) -> None:
        self._name = name
        self._trip_count = trip_count
        self._profile_trip_count = profile_trip_count
        self._weight = weight
        self._ddg = DataDependenceGraph(name)
        self._arrays: dict[str, ArraySpec] = {}
        self._metadata: dict[str, object] = {}

    # ------------------------------------------------------------------
    # Data environment
    # ------------------------------------------------------------------
    def array(
        self,
        name: str,
        element_bytes: int,
        num_elements: int,
        storage: StorageClass = StorageClass.GLOBAL,
        index_range: Optional[int] = None,
    ) -> ArraySpec:
        """Declare a data object touched by the loop."""
        if name in self._arrays:
            raise ValueError(f"array {name!r} already declared")
        spec = ArraySpec(
            name=name,
            element_bytes=element_bytes,
            num_elements=num_elements,
            storage=storage,
            index_range=index_range,
        )
        self._arrays[name] = spec
        return spec

    def metadata(self, **entries: object) -> "LoopBuilder":
        """Attach free-form metadata to the loop (e.g. paper loop ids)."""
        self._metadata.update(entries)
        return self

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def compute(
        self,
        name: str,
        mnemonic: str,
        inputs: Sequence[Operation] = (),
        loop_carried_inputs: Sequence[tuple[Operation, int]] = (),
    ) -> Operation:
        """Add a non-memory operation fed by ``inputs`` (register flow)."""
        op = self._ddg.add_operation(make_operation(name, mnemonic))
        self._wire(op, inputs, loop_carried_inputs)
        return op

    def load(
        self,
        name: str,
        array: str,
        stride: int = 0,
        granularity: Optional[int] = None,
        offset: int = 0,
        indirect: bool = False,
        index_array: Optional[str] = None,
        inputs: Sequence[Operation] = (),
        loop_carried_inputs: Sequence[tuple[Operation, int]] = (),
    ) -> Operation:
        """Add a load from ``array``."""
        access = self._make_access(
            array, stride, granularity, offset, False, indirect, index_array
        )
        op = self._ddg.add_operation(make_operation(name, "ld", access))
        self._wire(op, inputs, loop_carried_inputs)
        return op

    def store(
        self,
        name: str,
        array: str,
        stride: int = 0,
        granularity: Optional[int] = None,
        offset: int = 0,
        indirect: bool = False,
        index_array: Optional[str] = None,
        inputs: Sequence[Operation] = (),
        loop_carried_inputs: Sequence[tuple[Operation, int]] = (),
    ) -> Operation:
        """Add a store to ``array`` whose value comes from ``inputs``."""
        access = self._make_access(
            array, stride, granularity, offset, True, indirect, index_array
        )
        op = self._ddg.add_operation(make_operation(name, "st", access))
        self._wire(op, inputs, loop_carried_inputs)
        return op

    def _make_access(
        self,
        array: str,
        stride: int,
        granularity: Optional[int],
        offset: int,
        is_store: bool,
        indirect: bool,
        index_array: Optional[str],
    ) -> MemoryAccess:
        if array not in self._arrays:
            raise ValueError(f"array {array!r} must be declared before use")
        spec = self._arrays[array]
        if granularity is None:
            granularity = spec.element_bytes
        return MemoryAccess(
            array=array,
            stride_bytes=stride,
            granularity=granularity,
            offset_bytes=offset,
            is_store=is_store,
            indirect=indirect,
            index_array=index_array,
            stride_known=not indirect,
        )

    def _wire(
        self,
        op: Operation,
        inputs: Sequence[Operation],
        loop_carried_inputs: Sequence[tuple[Operation, int]],
    ) -> None:
        for producer in inputs:
            self._ddg.connect(producer, op, DependenceKind.REG_FLOW, 0)
        for producer, distance in loop_carried_inputs:
            self._ddg.connect(producer, op, DependenceKind.REG_FLOW, distance)

    # ------------------------------------------------------------------
    # Explicit dependences
    # ------------------------------------------------------------------
    def flow(self, src: Operation, dst: Operation, distance: int = 0) -> None:
        """Add a register flow dependence."""
        self._ddg.connect(src, dst, DependenceKind.REG_FLOW, distance)

    def anti(self, src: Operation, dst: Operation, distance: int = 0) -> None:
        """Add a register anti dependence."""
        self._ddg.connect(src, dst, DependenceKind.REG_ANTI, distance)

    def output(self, src: Operation, dst: Operation, distance: int = 0) -> None:
        """Add a register output dependence."""
        self._ddg.connect(src, dst, DependenceKind.REG_OUTPUT, distance)

    def memory_dep(self, src: Operation, dst: Operation, distance: int = 0) -> None:
        """Add an explicit memory dependence (bypassing the disambiguator)."""
        self._ddg.connect(src, dst, DependenceKind.MEMORY, distance)

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------
    def build(
        self,
        disambiguation: Optional[DisambiguationPolicy] = DisambiguationPolicy.PRECISE,
        loop_carried_memory: bool = True,
    ) -> Loop:
        """Finish the loop.

        When ``disambiguation`` is not None, the memory disambiguator adds
        conservative memory dependences for every pair it cannot prove
        independent; pass None to keep only explicitly added dependences.
        """
        if disambiguation is not None:
            add_memory_dependences(
                self._ddg, disambiguation, loop_carried=loop_carried_memory
            )
        self._ddg.validate()
        return Loop(
            name=self._name,
            ddg=self._ddg,
            arrays=dict(self._arrays),
            trip_count=self._trip_count,
            profile_trip_count=self._profile_trip_count,
            weight=self._weight,
            metadata=dict(self._metadata),
        )

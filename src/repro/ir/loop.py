"""Loop descriptors: the unit of work of the modulo scheduler.

A :class:`Loop` bundles a data dependence graph with the information the
scheduling techniques of the paper need beyond the graph itself:

* the *data environment* -- the arrays and scalars the loop touches, with
  their element sizes, lengths and storage classes (global, stack or heap),
  which drives the data-layout / variable-alignment model;
* the loop *trip counts* for the profile data set and the execution data
  set (the paper uses different inputs for profiling and measurement); and
* a relative *weight* used when aggregating per-loop metrics into
  per-benchmark metrics (the paper weights by dynamic instruction counts).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Iterable, Optional

from repro.ir.ddg import DataDependenceGraph
from repro.ir.operation import Operation


class StorageClass(enum.Enum):
    """Where a data object lives; drives the alignment/padding policy.

    Section 4.3.4: local (stack) variables and heap allocations are padded
    to an N x I boundary when variable alignment is enabled; global
    variables are not padded because their addresses do not change across
    inputs.
    """

    GLOBAL = "global"
    STACK = "stack"
    HEAP = "heap"


@dataclass(frozen=True)
class ArraySpec:
    """A data object referenced by a loop."""

    name: str
    element_bytes: int
    num_elements: int
    storage: StorageClass = StorageClass.GLOBAL
    #: Elements of the index stream for indirect accesses are drawn from
    #: ``[0, index_range)``; ignored for directly indexed arrays.
    index_range: Optional[int] = None

    def __post_init__(self) -> None:
        if self.element_bytes not in (1, 2, 4, 8, 16):
            raise ValueError("element size must be 1, 2, 4, 8 or 16 bytes")
        if self.num_elements <= 0:
            raise ValueError("arrays must have at least one element")

    @property
    def size_bytes(self) -> int:
        """Total size of the object in bytes."""
        return self.element_bytes * self.num_elements


@dataclass
class Loop:
    """A modulo-schedulable loop."""

    name: str
    ddg: DataDependenceGraph
    arrays: dict[str, ArraySpec]
    trip_count: int
    profile_trip_count: Optional[int] = None
    weight: float = 1.0
    unroll_factor: int = 1
    original: Optional["Loop"] = None
    metadata: dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.trip_count <= 0:
            raise ValueError("trip count must be positive")
        if self.profile_trip_count is None:
            self.profile_trip_count = self.trip_count
        if self.weight <= 0:
            raise ValueError("loop weight must be positive")
        if self.unroll_factor <= 0:
            raise ValueError("unroll factor must be positive")
        self._check_arrays()

    def _check_arrays(self) -> None:
        for op in self.ddg.memory_operations:
            access = op.memory
            if access.array not in self.arrays:
                raise ValueError(
                    f"operation {op.name} references unknown array {access.array!r}"
                )
            if access.indirect and access.index_array not in self.arrays:
                raise ValueError(
                    f"operation {op.name} uses unknown index array "
                    f"{access.index_array!r}"
                )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def operations(self) -> list[Operation]:
        """Operations of the loop body, in program order."""
        return self.ddg.operations

    @property
    def memory_operations(self) -> list[Operation]:
        """Memory operations of the loop body."""
        return self.ddg.memory_operations

    @property
    def is_unrolled(self) -> bool:
        """True if this loop is the result of unrolling another loop."""
        return self.unroll_factor > 1

    def array_of(self, op: Operation) -> ArraySpec:
        """The array referenced by a memory operation."""
        return self.arrays[op.memory.array]

    def dynamic_operations(self) -> int:
        """Total dynamic operations executed by the loop."""
        return len(self.ddg) * self.trip_count

    def with_trip_count(self, trip_count: int) -> "Loop":
        """Copy of the loop with a different execution trip count."""
        return replace(self, trip_count=trip_count)

    def describe(self) -> dict[str, object]:
        """Summary used by reports."""
        return {
            "name": self.name,
            "operations": len(self.ddg),
            "memory_operations": len(self.memory_operations),
            "trip_count": self.trip_count,
            "unroll_factor": self.unroll_factor,
            "weight": self.weight,
        }

    def structural_description(self) -> dict[str, object]:
        """Complete, process-independent description of the loop.

        Covers everything the compilation pipeline reads -- the dependence
        graph (by program-order index, never ``uid``), the data environment
        and the trip counts -- so its canonical JSON encoding is a stable
        content address for the loop across processes and sessions.
        Metadata values that are not JSON primitives are reduced to their
        type name: ``repr`` of arbitrary objects may embed memory addresses,
        which would make the description process-dependent.
        """
        metadata = {
            key: (
                value
                if value is None or isinstance(value, (bool, int, float, str))
                else type(value).__name__
            )
            for key, value in sorted(self.metadata.items())
        }
        return {
            "name": self.name,
            "trip_count": self.trip_count,
            "profile_trip_count": self.profile_trip_count,
            "weight": self.weight,
            "unroll_factor": self.unroll_factor,
            "arrays": {
                name: {
                    "element_bytes": spec.element_bytes,
                    "num_elements": spec.num_elements,
                    "storage": spec.storage.value,
                    "index_range": spec.index_range,
                }
                for name, spec in sorted(self.arrays.items())
            },
            "metadata": metadata,
            "ddg": self.ddg.structural_description(),
        }


@dataclass
class LoopNest:
    """An ordered collection of loops that execute one after another.

    The Attraction Buffers are flushed between loops of a nest (Section 3),
    which the simulator honours.
    """

    name: str
    loops: list[Loop]

    def __post_init__(self) -> None:
        if not self.loops:
            raise ValueError("a loop nest needs at least one loop")

    def __iter__(self):
        return iter(self.loops)

    def __len__(self) -> int:
        return len(self.loops)

    def total_weight(self) -> float:
        """Sum of loop weights."""
        return sum(loop.weight for loop in self.loops)


def gather_arrays(loops: Iterable[Loop]) -> dict[str, ArraySpec]:
    """Union of the data environments of several loops.

    Arrays with the same name must be identical across loops; this models a
    program-wide symbol table.
    """
    merged: dict[str, ArraySpec] = {}
    for loop in loops:
        for name, spec in loop.arrays.items():
            if name in merged and merged[name] != spec:
                raise ValueError(f"conflicting definitions of array {name!r}")
            merged[name] = spec
    return merged

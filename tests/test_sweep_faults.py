"""Fault-tolerance tests of the sweep execution stack.

Every failure mode the robustness layer claims to survive is exercised
here: worker death (a genuine SIGKILL against the work-stealing
scheduler, and the SIGKILL-equivalent ``crash`` injection through the
pool ``run`` path), hung jobs killed by ``--job-timeout``, poison jobs
that exhaust their retries and are quarantined as ``source="failed"``
records, torn/corrupt store and artifact files healed on read, and the
acceptance-level chaos-equivalence run (crash + corrupt artifact + torn
record injected into a two-kernel grid, then shown byte-identical to a
fault-free run modulo volatile fields).

All injection goes through :mod:`repro.faults` (``REPRO_FAULT``), so
each scenario is deterministic; nothing here depends on timing luck
except the SIGKILL tests, which hold jobs open with the pipeline's
``REPRO_SWEEP_TEST_SLOWDOWN`` hook before aiming the signal.
"""

from __future__ import annotations

import json
import os
import pickle
import signal
import threading
import time

import pytest

from repro import faults
from repro.obs import metrics as obs_metrics
from repro.scheduler.pipeline import TEST_SLOWDOWN_ENV
from repro.sweep.artifacts import ArtifactStore
from repro.sweep.executor import (
    is_failed_record,
    is_simulated_record,
    run_jobs,
)
from repro.sweep.protocol import ServiceClient, default_socket_path
from repro.sweep.scheduler import (
    WorkerFailure,
    WorkStealingScheduler,
    retry_delay,
)
from repro.sweep.spec import SweepSpec
from repro.sweep.store import ResultStore

from tests.test_sweep_service import (
    FAST,
    normalized_record,
    small_spec,
    start_service,
)

#: Fields two executions of the same job may legitimately disagree on.
EQUIVALENCE_VOLATILE = ("elapsed_seconds", "worker_pid", "attempts")


@pytest.fixture(autouse=True)
def clean_faults(monkeypatch):
    """Injection off (and fast retry backoff) unless a test arms it."""
    monkeypatch.delenv(faults.ENV_VAR, raising=False)
    monkeypatch.delenv(faults.STATE_ENV_VAR, raising=False)
    monkeypatch.setenv("REPRO_SWEEP_RETRY_BASE", "0.01")
    faults.refresh_from_env()
    yield
    monkeypatch.delenv(faults.ENV_VAR, raising=False)
    monkeypatch.delenv(faults.STATE_ENV_VAR, raising=False)
    faults.refresh_from_env()


def arm(monkeypatch, plan, state_dir=None):
    """Activate a fault plan in this process (forked workers inherit it)."""
    monkeypatch.setenv(faults.ENV_VAR, plan)
    if state_dir is not None:
        state_dir.mkdir(exist_ok=True)
        monkeypatch.setenv(faults.STATE_ENV_VAR, str(state_dir))
    assert faults.refresh_from_env()


def disarm(monkeypatch):
    monkeypatch.delenv(faults.ENV_VAR, raising=False)
    monkeypatch.delenv(faults.STATE_ENV_VAR, raising=False)
    faults.refresh_from_env()


def chaos_equivalent(actual: dict, expected: dict) -> bool:
    """Records equal modulo the fields a retry may legitimately change."""
    strip = lambda record: {
        name: value
        for name, value in record.items()
        if name not in EQUIVALENCE_VOLATILE
    }
    return strip(actual) == strip(expected)


# ----------------------------------------------------------------------
# Self-healing result store
# ----------------------------------------------------------------------
class TestStoreSelfHealing:
    def test_torn_record_is_a_miss_and_quarantined(self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path / "store")
        arm(monkeypatch, "store.record:torn-write")
        store.save("ab" + "0" * 62, {"source": "simulator", "metrics": {}})
        disarm(monkeypatch)
        assert store.load_record("ab" + "0" * 62) is None
        assert store.quarantined_counts() == {"records": 1, "payloads": 0}
        # The healed slot accepts a clean rewrite.
        store.save("ab" + "0" * 62, {"source": "simulator", "metrics": {}})
        assert store.load_record("ab" + "0" * 62)["source"] == "simulator"

    def test_corrupt_payload_is_a_miss_and_quarantined(
        self, tmp_path, monkeypatch
    ):
        store = ResultStore(tmp_path / "store")
        arm(monkeypatch, "store.payload:corrupt")
        store.save(
            "cd" + "0" * 62,
            {"source": "simulator"},
            payload={"big": list(range(256))},
        )
        disarm(monkeypatch)
        # The record survived; only the payload was damaged.
        assert store.load_record("cd" + "0" * 62) is not None
        assert store.load_payload("cd" + "0" * 62) is None
        assert store.quarantined_counts()["payloads"] == 1

    def test_iteration_skips_torn_records(self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path / "store")
        store.save("aa" + "0" * 62, {"source": "simulator", "n": 1})
        arm(monkeypatch, "store.record:torn-write")
        store.save("bb" + "0" * 62, {"source": "simulator", "n": 2})
        disarm(monkeypatch)
        healthy = list(store.records())
        assert [record["n"] for record in healthy] == [1]
        assert store.quarantined_counts()["records"] == 1


# ----------------------------------------------------------------------
# Self-healing artifact store
# ----------------------------------------------------------------------
class TestArtifactSelfHealing:
    def test_corrupt_artifact_is_a_miss_counted_and_quarantined(
        self, tmp_path, monkeypatch
    ):
        store = ArtifactStore(tmp_path / "artifacts")
        counter = obs_metrics.registry().counter("artifacts.quarantined")
        before = counter.value
        arm(monkeypatch, "artifact.write:corrupt")
        store.put("unroll", "k" * 64, {"payload": list(range(64))})
        disarm(monkeypatch)
        assert store.get("unroll", "k" * 64) is None
        assert store.quarantined_count() == 1
        assert counter.value == before + 1
        # A clean rewrite round-trips.
        store.put("unroll", "k" * 64, {"payload": [1, 2, 3]})
        assert store.get("unroll", "k" * 64) == {"payload": [1, 2, 3]}

    def test_torn_artifact_is_a_miss(self, tmp_path, monkeypatch):
        store = ArtifactStore(tmp_path / "artifacts")
        arm(monkeypatch, "artifact.write:torn-write")
        store.put("profile", "k" * 64, {"payload": list(range(64))})
        disarm(monkeypatch)
        assert store.get("profile", "k" * 64) is None
        assert store.quarantined_count() == 1

    def test_stale_schema_is_a_plain_miss_not_quarantine(self, tmp_path):
        store = ArtifactStore(tmp_path / "artifacts")
        store.put("latency", "k" * 64, {"payload": 1})
        path = next((tmp_path / "artifacts").glob("latency/*/*.pkl"))
        path.write_bytes(
            pickle.dumps({"schema": 1, "stage": "latency", "payload": 1})
        )
        assert store.get("latency", "k" * 64) is None
        assert store.quarantined_count() == 0


# ----------------------------------------------------------------------
# Worker supervision
# ----------------------------------------------------------------------
class TestSupervision:
    def test_sigkilled_scheduler_worker_is_respawned(
        self, tmp_path, monkeypatch
    ):
        # A genuine SIGKILL against a busy worker of the work-stealing
        # scheduler: the pump reaps it, requeues its in-flight job on a
        # fresh process, and run_all still completes every job.
        monkeypatch.setenv(TEST_SLOWDOWN_ENV, "schedule:0.5")
        jobs = small_spec(
            axes={"clusters": (2, 4), "attraction_entries": (0, 16)}
        ).expand()
        scheduler = WorkStealingScheduler(2)
        handled = []
        killed = threading.Event()

        def killer():
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                with scheduler._lock:
                    busy = [
                        index
                        for index, key in enumerate(scheduler._outstanding)
                        if key is not None
                    ]
                    pid = (
                        scheduler._procs[busy[0]].pid if busy else None
                    )
                if pid is not None:
                    os.kill(pid, signal.SIGKILL)
                    killed.set()
                    return
                time.sleep(0.02)

        thread = threading.Thread(target=killer)
        thread.start()
        try:
            scheduler.run_all(
                jobs, lambda job, record, result: handled.append(job.key)
            )
        finally:
            thread.join(30)
            counters = scheduler.counters()
            scheduler.close()
        assert killed.is_set(), "no worker was ever busy to kill"
        assert counters["respawned"] >= 1
        assert sorted(handled) == sorted(job.key for job in jobs)

    def test_crashed_worker_in_run_path_is_respawned(
        self, tmp_path, monkeypatch
    ):
        # The pool `run` path under an injected crash (os._exit: the
        # SIGKILL-equivalent death -- no handlers, no flushing).  The
        # shared state dir makes the crash fire exactly once globally,
        # so the respawned worker's retry succeeds.
        arm(
            monkeypatch,
            "executor.job:crash:1",
            state_dir=tmp_path / "fault-state",
        )
        store = ResultStore(tmp_path / "store")
        jobs = small_spec(
            axes={"clusters": (2, 4), "attraction_entries": (0, 16)}
        ).expand()
        summary = run_jobs(jobs, store=store, workers=2)
        assert summary.executed == len(jobs)
        assert summary.failed == 0
        assert summary.respawned >= 1
        assert summary.retried >= 1
        for job in jobs:
            assert is_simulated_record(store.load_record(job.key))

    def test_hung_job_is_killed_by_timeout_and_retried(
        self, tmp_path, monkeypatch
    ):
        arm(
            monkeypatch,
            "executor.job:hang:1",
            state_dir=tmp_path / "fault-state",
        )
        store = ResultStore(tmp_path / "store")
        jobs = small_spec().expand()
        summary = run_jobs(jobs, store=store, workers=2, job_timeout=1.0)
        assert summary.executed == len(jobs)
        assert summary.failed == 0
        assert summary.timeouts >= 1
        assert summary.respawned >= 1

    def test_sigkilled_service_worker_keeps_request_alive(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(TEST_SLOWDOWN_ENV, "schedule:0.5")
        store_root = tmp_path / "store"
        spec = small_spec(
            axes={"clusters": (2, 4), "attraction_entries": (0, 16)}
        )
        with start_service(store_root, workers=2) as served:
            scheduler_ref = {}

            def killer():
                deadline = time.monotonic() + 30
                while time.monotonic() < deadline:
                    scheduler = served.service.scheduler
                    if scheduler is not None:
                        with scheduler._lock:
                            busy = [
                                index
                                for index, key in enumerate(
                                    scheduler._outstanding
                                )
                                if key is not None
                            ]
                            pid = (
                                scheduler._procs[busy[0]].pid
                                if busy
                                else None
                            )
                        if pid is not None:
                            os.kill(pid, signal.SIGKILL)
                            scheduler_ref["killed"] = pid
                            return
                    time.sleep(0.02)

            thread = threading.Thread(target=killer)
            thread.start()
            with ServiceClient(
                socket_path=default_socket_path(store_root)
            ) as client:
                done = client.submit(spec.to_mapping())
                stats = client.stats()
            thread.join(30)
            assert scheduler_ref.get("killed"), "never saw a busy worker"
            assert done["executed"] == len(spec.expand())
            assert done["failed"] == 0
            assert stats["supervision"]["respawned"] >= 1


# ----------------------------------------------------------------------
# Retry and quarantine
# ----------------------------------------------------------------------
class TestRetryQuarantine:
    def test_backoff_is_deterministic_and_exponential(self):
        first = retry_delay("a" * 64, 1, base=0.5)
        assert retry_delay("a" * 64, 1, base=0.5) == first
        assert retry_delay("a" * 64, 2, base=0.5) >= 2 * 0.5
        assert retry_delay("b" * 64, 1, base=0.5) != first

    def test_transient_failure_is_retried_in_process(
        self, tmp_path, monkeypatch
    ):
        # nth=1 with per-process counting: the first attempt raises, the
        # retry succeeds -- the summary shows one retry and no failures.
        arm(monkeypatch, "executor.job:raise:1")
        store = ResultStore(tmp_path / "store")
        jobs = small_spec().expand()
        summary = run_jobs(jobs, store=store, workers=1)
        assert summary.executed == len(jobs)
        assert summary.failed == 0
        assert summary.retried == 1

    def test_poison_job_is_quarantined_and_sweep_completes(
        self, tmp_path, monkeypatch
    ):
        arm(monkeypatch, "executor.job:raise")
        store = ResultStore(tmp_path / "store")
        jobs = small_spec().expand()
        summary = run_jobs(jobs, store=store, workers=1, max_retries=1)
        assert summary.failed == len(jobs)
        assert summary.executed == 0
        assert sorted(summary.failed_keys) == sorted(j.key for j in jobs)
        for job in jobs:
            record = store.load_record(job.key)
            assert is_failed_record(record)
            assert not is_simulated_record(record)
            assert record["attempts"] == 2  # 1 + max_retries
            assert "InjectedFault" in record["error"]
            assert "InjectedFault" in record["traceback"]
            assert record["job"]["benchmark"] == job.benchmark
            # Quarantine goes through the normal store path: no payload,
            # no torn files.
            assert store.load_payload(job.key) is None

    def test_rerun_retries_quarantined_keys(self, tmp_path, monkeypatch):
        arm(monkeypatch, "executor.job:raise")
        store = ResultStore(tmp_path / "store")
        jobs = small_spec().expand()
        run_jobs(jobs, store=store, workers=1, max_retries=0)
        disarm(monkeypatch)

        kept = run_jobs(jobs, store=store, workers=1, keep_failed=True)
        assert kept.executed == 0
        assert kept.failed == len(jobs)
        assert all(
            is_failed_record(store.load_record(job.key)) for job in jobs
        )

        healed = run_jobs(jobs, store=store, workers=1)
        assert healed.executed == len(jobs)
        assert healed.failed == 0
        assert all(
            is_simulated_record(store.load_record(job.key)) for job in jobs
        )

    def test_fail_fast_aborts_after_saving_the_record(
        self, tmp_path, monkeypatch
    ):
        arm(monkeypatch, "executor.job:raise")
        store = ResultStore(tmp_path / "store")
        jobs = small_spec().expand()
        with pytest.raises(WorkerFailure):
            run_jobs(
                jobs, store=store, workers=1, max_retries=0, fail_fast=True
            )
        failed = [
            key for key in store.keys()
            if is_failed_record(store.load_record(key))
        ]
        assert len(failed) >= 1

    def test_max_failures_bounds_the_quarantine_budget(
        self, tmp_path, monkeypatch
    ):
        arm(monkeypatch, "executor.job:raise")
        store = ResultStore(tmp_path / "store")
        jobs = small_spec(
            axes={"clusters": (2, 4), "attraction_entries": (0, 16)}
        ).expand()
        with pytest.raises(WorkerFailure):
            run_jobs(
                jobs, store=store, workers=1, max_retries=0, max_failures=1
            )
        failed = [
            key for key in store.keys()
            if is_failed_record(store.load_record(key))
        ]
        assert len(failed) == 2  # the budgeted one plus the one that broke it


# ----------------------------------------------------------------------
# Service under failure
# ----------------------------------------------------------------------
class TestServiceFaults:
    def test_failed_job_fails_the_request_not_the_session(
        self, tmp_path, monkeypatch
    ):
        arm(monkeypatch, "executor.job:raise")
        store_root = tmp_path / "store"
        spec = small_spec()
        events = []
        with start_service(store_root, workers=2, max_retries=1) as served:
            with ServiceClient(
                socket_path=default_socket_path(store_root)
            ) as client:
                done = client.submit(spec.to_mapping(), on_event=events.append)
                assert done["event"] == "done"
                assert done["failed"] == len(spec.expand())
                assert done["executed"] == 0
                # The session survives: a second submit on the same
                # connection-pool completes too (and retries the
                # quarantined keys, which fail again under the plan).
                second = client.submit(spec.to_mapping())
                assert second["event"] == "done"
                assert second["failed"] == len(spec.expand())
                stats = client.stats()
            assert stats["jobs"]["failed"] == 2 * len(spec.expand())
            assert stats["jobs"]["quarantined"] == 2 * len(spec.expand())
            assert served.service.counters["quarantined"] == 2 * len(
                spec.expand()
            )
        failures = [e for e in events if e.get("event") == "job_failed"]
        assert len(failures) == len(spec.expand())
        for event in failures:
            assert event["attempts"] == 2  # 1 + max_retries
            assert "InjectedFault" in event["error"]
            assert "InjectedFault" in (event.get("traceback") or "")
            assert event["key"]
        store = ResultStore(store_root)
        assert all(
            is_failed_record(store.load_record(job.key))
            for job in spec.expand()
        )


# ----------------------------------------------------------------------
# Chaos equivalence (the acceptance criterion)
# ----------------------------------------------------------------------
class TestChaosEquivalence:
    def test_faulted_run_heals_to_the_fault_free_result(
        self, tmp_path, monkeypatch
    ):
        spec = SweepSpec(
            name="chaos",
            benchmarks=("kernel:streaming", "kernel:reduction"),
            axes={"clusters": (2, 4)},
            base=dict(FAST),
        )
        jobs = spec.expand()

        reference = ResultStore(tmp_path / "reference")
        run_jobs(jobs, store=reference, workers=2)

        # One worker crash, one corrupt artifact, one torn record, all
        # in a single 2-worker run over the same grid.
        arm(
            monkeypatch,
            "executor.job:crash:1,artifact.write:corrupt:1,"
            "store.record:torn-write:1",
            state_dir=tmp_path / "fault-state",
        )
        chaotic = ResultStore(tmp_path / "chaotic")
        summary = run_jobs(jobs, store=chaotic, workers=2)
        disarm(monkeypatch)
        # The faulted sweep completed (no quarantined jobs: the crash was
        # retried on a respawned worker) and left exactly one torn record
        # on disk.
        assert summary.failed == 0
        assert summary.respawned >= 1

        # Recovery pass with injection off: the torn record reads as a
        # miss (quarantined), is recomputed, and the store converges.
        healed = run_jobs(jobs, store=chaotic, workers=2)
        assert healed.failed == 0
        assert chaotic.quarantined_counts()["records"] == 1

        for job in jobs:
            actual = json.loads(
                chaotic.record_path(job.key).read_text(encoding="utf-8")
            )
            expected = json.loads(
                reference.record_path(job.key).read_text(encoding="utf-8")
            )
            assert is_simulated_record(actual)
            assert chaos_equivalent(actual, expected), job.key

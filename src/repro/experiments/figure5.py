"""Figure 5: why do the stall-generating remote hits stall?

The paper classifies the remote hits that generate stall time into four
(non-exclusive) factors: the instruction accesses more than one cluster, its
preferred-cluster information is unclear, it was not scheduled in its
preferred cluster, or its access granularity exceeds the interleaving factor.
Both heuristics (IBC, left bar; IPBC, right bar) are shown, with selective
unrolling and no Attraction Buffers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.metrics import StallFactorBreakdown, classify_stall_factors
from repro.experiments.common import (
    ExperimentOptions,
    ExperimentResult,
    ExperimentRunner,
    interleaved_setup,
)
from repro.scheduler.core import SchedulingHeuristic

_FACTOR_KEYS = (
    "more_than_one_cluster",
    "unclear_preferred",
    "not_in_preferred",
    "granularity",
)


@dataclass
class Figure5Row:
    """Stall-factor breakdown of one benchmark under one heuristic."""

    benchmark: str
    heuristic: str
    breakdown: StallFactorBreakdown
    total_stall_cycles: float


def _setups() -> dict:
    return {
        "ibc": interleaved_setup(SchedulingHeuristic.IBC, name="fig5/ibc"),
        "ipbc": interleaved_setup(SchedulingHeuristic.IPBC, name="fig5/ipbc"),
    }


def sweep_setups() -> list:
    """The setups this figure simulates, for sweep prewarming."""
    return list(_setups().values())


def run_figure5(
    runner: Optional[ExperimentRunner] = None,
    options: Optional[ExperimentOptions] = None,
) -> tuple[list[Figure5Row], ExperimentResult]:
    """Regenerate the data behind Figure 5."""
    runner = runner or ExperimentRunner(options)
    setups = _setups()
    rows: list[Figure5Row] = []
    result = ExperimentResult(
        title="Figure 5 - classification of stall-generating accesses",
        headers=["benchmark", "heuristic", *_FACTOR_KEYS, "stall_cycles"],
    )
    for benchmark in runner.benchmarks:
        for heuristic_name, setup in setups.items():
            sim = runner.run_benchmark(benchmark, setup)
            breakdown = classify_stall_factors(sim, setup.config)
            row = Figure5Row(
                benchmark=benchmark.name,
                heuristic=heuristic_name,
                breakdown=breakdown,
                total_stall_cycles=sim.stall_cycles,
            )
            rows.append(row)
            factors = breakdown.as_dict()
            result.add_row(
                [
                    benchmark.name,
                    heuristic_name,
                    *[factors[key] for key in _FACTOR_KEYS],
                    round(sim.stall_cycles),
                ]
            )
    result.notes.append(
        "factors are not mutually exclusive; IBC typically shows a larger "
        "'not in preferred cluster' share than IPBC (paper, Section 5.2)"
    )
    return rows, result


def not_in_preferred_share(rows: list[Figure5Row], heuristic: str) -> float:
    """Average 'not in preferred cluster' share for one heuristic."""
    values = [
        row.breakdown.not_in_preferred
        for row in rows
        if row.heuristic == heuristic and row.total_stall_cycles > 0
    ]
    return sum(values) / len(values) if values else 0.0

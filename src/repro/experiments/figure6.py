"""Figure 6: stall time by access type, with and without Attraction Buffers.

For each benchmark (g721dec/g721enc are excluded in the paper because their
stall time is negligible) four bars are shown: IBC without Attraction
Buffers, IBC with 16-entry 2-way buffers, IPBC without, and IPBC with, all
normalized to the first bar and split into stall caused by remote hits,
local misses, remote misses and combined accesses.  The headline numbers:
remote hits cause roughly 76% (IBC) / 72% (IPBC) of stall time, and the
buffers remove roughly 34% / 29% of it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.metrics import (
    arithmetic_mean,
    remote_hit_stall_share,
    stall_reduction,
)
from repro.experiments.common import (
    ExperimentOptions,
    ExperimentResult,
    ExperimentRunner,
    interleaved_setup,
)
from repro.scheduler.core import SchedulingHeuristic

_STALL_KEYS = ("remote_hit", "local_miss", "remote_miss", "combined")

#: Benchmarks the paper omits from the figure (negligible stall time).
EXCLUDED_BENCHMARKS = ("g721dec", "g721enc")


@dataclass
class Figure6Row:
    """Stall decomposition of one benchmark under one configuration."""

    benchmark: str
    configuration: str
    stall_cycles: float
    normalized_stall: float
    fractions: dict[str, float]


def _setups(attraction_entries: int = 16) -> tuple:
    return (
        ("ibc", interleaved_setup(SchedulingHeuristic.IBC, name="fig6/ibc")),
        (
            "ibc+ab",
            interleaved_setup(
                SchedulingHeuristic.IBC,
                attraction_buffers=True,
                attraction_entries=attraction_entries,
                name="fig6/ibc+ab",
            ),
        ),
        ("ipbc", interleaved_setup(SchedulingHeuristic.IPBC, name="fig6/ipbc")),
        (
            "ipbc+ab",
            interleaved_setup(
                SchedulingHeuristic.IPBC,
                attraction_buffers=True,
                attraction_entries=attraction_entries,
                name="fig6/ipbc+ab",
            ),
        ),
    )


def sweep_setups() -> list:
    """The setups this figure simulates, for sweep prewarming."""
    return [setup for _, setup in _setups()]


def run_figure6(
    runner: Optional[ExperimentRunner] = None,
    options: Optional[ExperimentOptions] = None,
    attraction_entries: int = 16,
) -> tuple[list[Figure6Row], ExperimentResult]:
    """Regenerate the data behind Figure 6."""
    runner = runner or ExperimentRunner(options)
    setups = _setups(attraction_entries)

    rows: list[Figure6Row] = []
    result = ExperimentResult(
        title="Figure 6 - stall time by access type (+/- Attraction Buffers)",
        headers=["benchmark", "configuration", "normalized_stall", *_STALL_KEYS],
    )

    reductions = {"ibc": [], "ipbc": []}
    remote_hit_shares = {"ibc": [], "ipbc": []}
    benchmarks = [
        benchmark
        for benchmark in runner.benchmarks
        if benchmark.name not in EXCLUDED_BENCHMARKS
    ]
    for benchmark in benchmarks:
        sims = {name: runner.run_benchmark(benchmark, setup) for name, setup in setups}
        baseline = sims["ibc"].stall_cycles or 1.0
        for name, _ in setups:
            sim = sims[name]
            fractions = sim.stall_counters().fractions()
            row = Figure6Row(
                benchmark=benchmark.name,
                configuration=name,
                stall_cycles=sim.stall_cycles,
                normalized_stall=sim.stall_cycles / baseline,
                fractions=fractions,
            )
            rows.append(row)
            result.add_row(
                [
                    benchmark.name,
                    name,
                    row.normalized_stall,
                    *[fractions[key] for key in _STALL_KEYS],
                ]
            )
        for heuristic in ("ibc", "ipbc"):
            without = sims[heuristic]
            with_buffers = sims[f"{heuristic}+ab"]
            if without.stall_cycles > 0:
                reductions[heuristic].append(stall_reduction(without, with_buffers))
                remote_hit_shares[heuristic].append(remote_hit_stall_share(without))

    for heuristic in ("ibc", "ipbc"):
        mean_reduction = arithmetic_mean(reductions[heuristic])
        mean_share = arithmetic_mean(remote_hit_shares[heuristic])
        paper_reduction = 0.34 if heuristic == "ibc" else 0.29
        paper_share = 0.76 if heuristic == "ibc" else 0.72
        result.notes.append(
            f"{heuristic}: remote hits cause {mean_share:.0%} of stall "
            f"(paper ~{paper_share:.0%}); Attraction Buffers cut stall by "
            f"{mean_reduction:.0%} (paper ~{paper_reduction:.0%})"
        )
    return rows, result


def average_stall_reduction(rows: list[Figure6Row], heuristic: str) -> float:
    """Mean normalized-stall reduction of the +AB configuration."""
    by_benchmark: dict[str, dict[str, float]] = {}
    for row in rows:
        by_benchmark.setdefault(row.benchmark, {})[row.configuration] = row.stall_cycles
    reductions = []
    for values in by_benchmark.values():
        before = values.get(heuristic, 0.0)
        after = values.get(f"{heuristic}+ab", 0.0)
        if before > 0:
            reductions.append((before - after) / before)
    return arithmetic_mean(reductions)

"""Parallel design-space sweep engine with a persistent result store.

The subsystem splits design-space exploration into explicit phases:

* :mod:`repro.sweep.spec` -- declarative grids (:class:`SweepSpec`) expanded
  into content-addressed jobs (:class:`SweepJob`);
* :mod:`repro.sweep.executor` -- serial or process-pool execution through
  the staged compilation pipeline;
* :mod:`repro.sweep.artifacts` -- the content-addressed stage-artifact
  store (plus its in-process LRU front) that shares unroll/profile/
  latency/schedule outputs across the grid, across workers and across
  runs;
* :mod:`repro.sweep.store` -- the on-disk JSON record store that makes
  re-runs incremental and results queryable after exit;
* :mod:`repro.sweep.scheduler` -- the benchmark-affine work-stealing
  scheduler of persistent worker processes both ``run`` and the service
  execute on;
* :mod:`repro.sweep.service` / :mod:`repro.sweep.protocol` -- the
  long-lived sweep service (``repro-sweep serve``) with cross-client job
  dedup, and its JSONL socket protocol/client;
* :mod:`repro.sweep.report` -- text-table rendering of stored results;
* :mod:`repro.sweep.cli` -- the ``python -m repro.sweep`` command line.

``repro.sweep.service`` itself is not re-exported (it pulls in asyncio
machinery no batch run needs); import it directly.
"""

from repro.sweep.artifacts import ArtifactCache, ArtifactStore
from repro.sweep.executor import (
    JobOutcome,
    PruneOptions,
    SweepRunSummary,
    artifact_cache,
    configure_artifacts,
    default_workers,
    execute_job,
    is_simulated_record,
    run_jobs,
    run_sweep,
)
from repro.sweep.protocol import ServiceClient, default_socket_path
from repro.sweep.report import render_report, render_report_json, render_status
from repro.sweep.scheduler import JobCompletion, WorkStealingScheduler
from repro.sweep.spec import (
    SweepJob,
    SweepPoint,
    SweepSpec,
    default_spec,
    expand_loop_jobs,
    job_from_description,
    job_key,
    make_job,
)
from repro.sweep.store import ResultStore
from repro.sweep.workloads import loop_names, resolve_loop, resolve_workload, workload_names

__all__ = [
    "ArtifactCache",
    "ArtifactStore",
    "JobCompletion",
    "JobOutcome",
    "PruneOptions",
    "ResultStore",
    "ServiceClient",
    "WorkStealingScheduler",
    "default_socket_path",
    "artifact_cache",
    "configure_artifacts",
    "SweepJob",
    "SweepPoint",
    "SweepRunSummary",
    "SweepSpec",
    "default_spec",
    "default_workers",
    "execute_job",
    "expand_loop_jobs",
    "is_simulated_record",
    "job_from_description",
    "job_key",
    "loop_names",
    "make_job",
    "render_report",
    "render_report_json",
    "render_status",
    "resolve_loop",
    "resolve_workload",
    "run_jobs",
    "run_sweep",
    "workload_names",
]

"""Rendering of stored sweep results as text tables."""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.analysis.report import format_table
from repro.sweep.spec import SweepSpec
from repro.sweep.store import ResultStore

#: Metric columns shown by default, in order.
DEFAULT_METRICS: tuple[str, ...] = (
    "total_cycles",
    "compute_cycles",
    "stall_cycles",
    "stall_ratio",
    "local_hit_ratio",
    "workload_balance",
    "ipc",
)


def _job_summary(record: dict) -> dict[str, object]:
    job = record.get("job", {})
    machine = job.get("machine", {})
    compiler = job.get("compiler", {})
    attraction = machine.get("attraction_buffer", {})
    return {
        "benchmark": job.get("benchmark", "?"),
        "architecture": record.get("architecture", machine.get("organization", "?")),
        "clusters": machine.get("clusters", "?"),
        "interleaving": machine.get("interleaving_factor", "?"),
        "ab_entries": attraction.get("entries", 0) if attraction.get("enabled") else 0,
        "heuristic": compiler.get("heuristic", "?"),
        "unroll": compiler.get("unroll_policy", "?"),
    }


def render_report(
    records: Iterable[dict],
    metrics: Sequence[str] = DEFAULT_METRICS,
    sort_by: str = "benchmark",
    benchmark: Optional[str] = None,
    title: str = "Sweep results",
) -> str:
    """Render records as an aligned table, one row per stored job."""
    rows = []
    for record in records:
        summary = _job_summary(record)
        if benchmark is not None and summary["benchmark"] != benchmark:
            continue
        values = record.get("metrics", {})
        rows.append(
            {
                **summary,
                **{name: values.get(name, "") for name in metrics},
                "key": str(record.get("key", ""))[:12],
            }
        )
    if not rows:
        return f"{title}\n(no stored results)"
    headers = [
        "benchmark",
        "architecture",
        "clusters",
        "interleaving",
        "ab_entries",
        "heuristic",
        "unroll",
        *metrics,
        "key",
    ]
    sort_key = sort_by if sort_by in headers else "benchmark"
    rows.sort(key=lambda row: (_sortable(row[sort_key]), str(row["benchmark"])))
    return format_table(headers, [[row[name] for name in headers] for row in rows], title=title)


def _sortable(value: object) -> tuple:
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return (0, float(value), "")
    return (1, 0.0, str(value))


def render_status(store: ResultStore, spec: Optional[SweepSpec] = None) -> str:
    """Summarize store contents, optionally against a spec's grid."""
    keys = store.keys()
    lines = [f"result store: {store.root}", f"stored records: {len(keys)}"]
    per_benchmark: dict[str, int] = {}
    for record in store.records():
        name = record.get("job", {}).get("benchmark", "?")
        per_benchmark[name] = per_benchmark.get(name, 0) + 1
    for name in sorted(per_benchmark):
        lines.append(f"  {name}: {per_benchmark[name]}")
    if spec is not None:
        jobs = spec.expand()
        stored = set(keys)
        done = sum(1 for job in jobs if job.key in stored)
        lines.append(
            f"spec {spec.name!r}: {done}/{len(jobs)} points stored"
            + ("" if done < len(jobs) else " (complete)")
        )
    return "\n".join(lines)

"""Tests for memory disambiguation and memory dependent chains."""

import pytest

from repro.ir.builder import LoopBuilder
from repro.ir.chains import build_memory_chains
from repro.ir.ddg import DependenceKind
from repro.ir.memdep import (
    DisambiguationPolicy,
    add_memory_dependences,
    count_unresolved_pairs,
    may_alias,
)
from repro.ir.operation import MemoryAccess


def access(array="a", stride=4, offset=0, store=False, indirect=False, granularity=4):
    return MemoryAccess(
        array=array,
        stride_bytes=stride,
        offset_bytes=offset,
        is_store=store,
        indirect=indirect,
        index_array="idx" if indirect else None,
        stride_known=not indirect,
        granularity=granularity,
    )


class TestMayAlias:
    def test_none_policy_aliases_everything(self):
        assert may_alias(access("a"), access("b"), DisambiguationPolicy.NONE)

    def test_different_arrays_do_not_alias(self):
        assert not may_alias(
            access("a"), access("b"), DisambiguationPolicy.CONSERVATIVE
        )

    def test_conservative_same_array_aliases(self):
        assert may_alias(
            access("a", offset=0), access("a", offset=400), DisambiguationPolicy.CONSERVATIVE
        )

    def test_precise_same_offset_aliases(self):
        assert may_alias(access("a"), access("a", store=True), DisambiguationPolicy.PRECISE)

    def test_precise_disjoint_offsets_do_not_alias(self):
        assert not may_alias(
            access("a", offset=0),
            access("a", offset=4, store=True),
            DisambiguationPolicy.PRECISE,
        )

    def test_precise_distance_shifts_window(self):
        # store a[i] (offset 0) vs load a[i-1] (offset -4) one iteration later.
        store_access = access("a", offset=0, store=True)
        load_access = access("a", offset=-4)
        assert may_alias(store_access, load_access, DisambiguationPolicy.PRECISE, distance=1)
        assert not may_alias(
            store_access, load_access, DisambiguationPolicy.PRECISE, distance=2
        )

    def test_indirect_always_aliases_same_array(self):
        assert may_alias(
            access("a", indirect=True), access("a", store=True), DisambiguationPolicy.PRECISE
        )

    def test_unknown_stride_aliases(self):
        unknown = MemoryAccess(array="a", stride_bytes=0, stride_known=False)
        assert may_alias(unknown, access("a", store=True), DisambiguationPolicy.PRECISE)

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            may_alias(access("a"), access("a"), DisambiguationPolicy.PRECISE, distance=-1)


class TestAddMemoryDependences:
    def _loop_ddg(self, policy):
        builder = LoopBuilder("loop", trip_count=64)
        builder.array("a", 4, 256)
        builder.array("b", 4, 256)
        ld_a = builder.load("ld_a", "a", stride=4)
        ld_b = builder.load("ld_b", "b", stride=4)
        value = builder.compute("sum", "add", inputs=[ld_a, ld_b])
        builder.store("st_a", "a", stride=4, inputs=[value])
        return builder.build(disambiguation=policy)

    def test_precise_adds_same_address_pair(self):
        loop = self._loop_ddg(DisambiguationPolicy.PRECISE)
        memory_deps = [
            dep for dep in loop.ddg.dependences() if dep.kind is DependenceKind.MEMORY
        ]
        pairs = {(dep.src.name, dep.dst.name, dep.distance) for dep in memory_deps}
        assert ("ld_a", "st_a", 0) in pairs
        # Different arrays never get a dependence under PRECISE.
        assert not any("ld_b" in pair[:2] for pair in pairs)

    def test_loads_alone_never_depend(self):
        builder = LoopBuilder("loads", trip_count=16)
        builder.array("a", 4, 128)
        builder.load("ld1", "a", stride=4)
        builder.load("ld2", "a", stride=4)
        loop = builder.build(disambiguation=DisambiguationPolicy.CONSERVATIVE)
        assert not [
            dep for dep in loop.ddg.dependences() if dep.kind is DependenceKind.MEMORY
        ]

    def test_loop_carried_dependence_distance(self):
        builder = LoopBuilder("iir", trip_count=64)
        builder.array("y", 4, 256)
        ld = builder.load("ld_y", "y", stride=4, offset=-8)
        val = builder.compute("val", "fadd", inputs=[ld])
        builder.store("st_y", "y", stride=4, inputs=[val])
        loop = builder.build(disambiguation=DisambiguationPolicy.PRECISE)
        carried = [
            dep
            for dep in loop.ddg.dependences()
            if dep.kind is DependenceKind.MEMORY and dep.distance > 0
        ]
        assert carried and carried[0].distance == 2

    def test_idempotent(self):
        loop = self._loop_ddg(DisambiguationPolicy.PRECISE)
        before = len(loop.ddg.dependences())
        added = add_memory_dependences(loop.ddg, DisambiguationPolicy.PRECISE)
        assert added == []
        assert len(loop.ddg.dependences()) == before

    def test_count_unresolved_pairs_monotonic_in_conservatism(self):
        loop = self._loop_ddg(DisambiguationPolicy.PRECISE)
        ops = loop.memory_operations
        precise = count_unresolved_pairs(ops, DisambiguationPolicy.PRECISE)
        conservative = count_unresolved_pairs(ops, DisambiguationPolicy.CONSERVATIVE)
        everything = count_unresolved_pairs(ops, DisambiguationPolicy.NONE)
        assert precise <= conservative <= everything


class TestMemoryChains:
    def test_update_loop_forms_two_op_chain(self):
        builder = LoopBuilder("update", trip_count=32)
        builder.array("a", 4, 128)
        ld = builder.load("ld", "a", stride=4)
        val = builder.compute("val", "add", inputs=[ld])
        st = builder.store("st", "a", stride=4, inputs=[val])
        loop = builder.build(disambiguation=DisambiguationPolicy.PRECISE)
        chains = build_memory_chains(loop.ddg)
        chain = chains.chain_of(ld)
        assert chain is chains.chain_of(st)
        assert len(chain) == 2
        assert not chain.is_trivial

    def test_independent_streams_form_trivial_chains(self, streaming_loop):
        chains = build_memory_chains(streaming_loop.ddg)
        assert chains.non_trivial_chains == []
        assert chains.longest_chain_length() == 1

    def test_conservative_chain_groups_all_references(self):
        builder = LoopBuilder("chain", trip_count=32)
        builder.array("buf", 4, 512)
        loads = [
            builder.load(f"ld{i}", "buf", stride=4, offset=4 * i) for i in range(5)
        ]
        val = builder.compute("val", "add", inputs=loads)
        builder.store("st", "buf", stride=4, inputs=[val])
        loop = builder.build(disambiguation=DisambiguationPolicy.CONSERVATIVE)
        chains = build_memory_chains(loop.ddg)
        assert chains.longest_chain_length() == 6

    def test_average_preferred_cluster_majority_vote(self):
        builder = LoopBuilder("update", trip_count=32)
        builder.array("a", 4, 128)
        ld = builder.load("ld", "a", stride=4)
        st = builder.store("st", "a", stride=4, inputs=[ld])
        loop = builder.build(disambiguation=DisambiguationPolicy.PRECISE)
        chains = build_memory_chains(loop.ddg)
        chain = chains.chain_of(ld)
        assert chain.average_preferred_cluster({ld: 2, st: 2}) == 2
        # Histogram information outweighs the simple vote.
        histograms = {ld: {1: 10, 2: 1}, st: {1: 10, 2: 1}}
        assert chain.average_preferred_cluster({ld: 2, st: 2}, histograms) == 1

    def test_chain_of_non_memory_op_is_none(self, streaming_loop):
        chains = build_memory_chains(streaming_loop.ddg)
        compute = streaming_loop.ddg.find("scale")
        assert chains.chain_of(compute) is None
        assert chains.members_of(compute) == (compute,)

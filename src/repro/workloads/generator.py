"""Loop-kernel templates used to assemble the synthetic benchmark suite.

The Mediabench programs of the paper cannot be shipped or compiled here, so
each benchmark is assembled from parameterised kernels that reproduce the
memory behaviour the paper reports for it: streaming loops, reductions,
IIR-style filters whose values flow through memory, indirect (table lookup /
histogram) loops, double-precision loops, and loops with long memory
dependent chains.  All kernels are ordinary :class:`~repro.ir.loop.Loop`
objects; nothing downstream knows they are synthetic.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.ir.builder import LoopBuilder
from repro.ir.loop import Loop, StorageClass
from repro.ir.memdep import DisambiguationPolicy

#: Default compute mnemonics for integer and floating-point kernels.
_INT_OPS = ("add", "mul", "sub", "and", "shl")
_FLOAT_OPS = ("fadd", "fmul", "fsub", "fadd")


def _compute_chain(
    builder: LoopBuilder,
    prefix: str,
    inputs: Sequence,
    depth: int,
    float_ops: bool,
) -> object:
    """Build a chain of ``depth`` compute operations fed by ``inputs``."""
    mnemonics = _FLOAT_OPS if float_ops else _INT_OPS
    current = list(inputs)
    node = None
    for level in range(depth):
        mnemonic = mnemonics[level % len(mnemonics)]
        node = builder.compute(f"{prefix}_c{level}", mnemonic, inputs=current)
        current = [node]
    return node if node is not None else inputs[0]


def streaming_kernel(
    name: str,
    element_bytes: int = 4,
    num_inputs: int = 2,
    compute_depth: int = 5,
    trip_count: int = 2000,
    weight: float = 1.0,
    storage: StorageClass = StorageClass.GLOBAL,
    float_ops: bool = False,
    array_elements: int = 768,
) -> Loop:
    """A dependence-free streaming loop: ``out[i] = f(in0[i], in1[i], ...)``.

    These loops dominate media codecs' inner transforms; after OUF unrolling
    every replica of their memory operations accesses a single cluster.
    """
    builder = LoopBuilder(name, trip_count=trip_count, weight=weight)
    loads = []
    for index in range(num_inputs):
        builder.array(
            f"{name}_in{index}", element_bytes, array_elements, storage=storage
        )
        loads.append(
            builder.load(
                f"{name}_ld{index}",
                f"{name}_in{index}",
                stride=element_bytes,
            )
        )
    builder.array(f"{name}_out", element_bytes, array_elements, storage=storage)
    result = _compute_chain(builder, name, loads, compute_depth, float_ops)
    builder.store(f"{name}_st", f"{name}_out", stride=element_bytes, inputs=[result])
    return builder.build(disambiguation=DisambiguationPolicy.PRECISE)


def reduction_kernel(
    name: str,
    element_bytes: int = 4,
    num_inputs: int = 1,
    compute_depth: int = 5,
    trip_count: int = 2000,
    weight: float = 1.0,
    storage: StorageClass = StorageClass.GLOBAL,
    float_ops: bool = False,
    array_elements: int = 768,
) -> Loop:
    """A reduction: an accumulator carried in registers across iterations.

    The recurrence stays in registers, so memory latencies do not constrain
    the II; this is the "benign" recurrence shape of codecs' energy /
    correlation loops.
    """
    builder = LoopBuilder(name, trip_count=trip_count, weight=weight)
    loads = []
    for index in range(num_inputs):
        builder.array(
            f"{name}_in{index}", element_bytes, array_elements, storage=storage
        )
        loads.append(
            builder.load(
                f"{name}_ld{index}", f"{name}_in{index}", stride=element_bytes
            )
        )
    value = _compute_chain(builder, name, loads, compute_depth, float_ops)
    accumulate = builder.compute(
        f"{name}_acc", "fadd" if float_ops else "add", inputs=[value]
    )
    builder.flow(accumulate, accumulate, distance=1)
    return builder.build(disambiguation=DisambiguationPolicy.PRECISE)


def iir_kernel(
    name: str,
    element_bytes: int = 4,
    feedback_distance: int = 1,
    extra_inputs: int = 1,
    compute_depth: int = 4,
    trip_count: int = 2000,
    weight: float = 1.0,
    storage: StorageClass = StorageClass.GLOBAL,
    float_ops: bool = True,
    array_elements: int = 768,
) -> Loop:
    """An IIR-style filter: ``y[i] = f(x[i], y[i - feedback_distance])``.

    The value recurrence flows through memory (store of ``y[i]``, load of
    ``y[i-d]`` a few iterations later), which is exactly the situation the
    latency-assignment step of the paper targets: the load must be scheduled
    with a short latency to keep the II low, so remote hits on it stall the
    processor.
    """
    builder = LoopBuilder(name, trip_count=trip_count, weight=weight)
    builder.array(f"{name}_y", element_bytes, array_elements, storage=storage)
    inputs = []
    for index in range(extra_inputs):
        builder.array(
            f"{name}_x{index}", element_bytes, array_elements, storage=storage
        )
        inputs.append(
            builder.load(
                f"{name}_ldx{index}", f"{name}_x{index}", stride=element_bytes
            )
        )
    feedback = builder.load(
        f"{name}_ldy",
        f"{name}_y",
        stride=element_bytes,
        offset=-feedback_distance * element_bytes,
    )
    value = _compute_chain(
        builder, name, [*inputs, feedback], compute_depth, float_ops
    )
    builder.store(f"{name}_sty", f"{name}_y", stride=element_bytes, inputs=[value])
    return builder.build(disambiguation=DisambiguationPolicy.PRECISE)


def update_kernel(
    name: str,
    element_bytes: int = 4,
    compute_depth: int = 5,
    trip_count: int = 2000,
    weight: float = 1.0,
    storage: StorageClass = StorageClass.GLOBAL,
    float_ops: bool = False,
    array_elements: int = 768,
) -> Loop:
    """An in-place read-modify-write loop: ``a[i] = f(a[i], b[i])``.

    The load and the store reference the same address, so they always form a
    two-operation memory dependent chain.
    """
    builder = LoopBuilder(name, trip_count=trip_count, weight=weight)
    builder.array(f"{name}_a", element_bytes, array_elements, storage=storage)
    builder.array(f"{name}_b", element_bytes, array_elements, storage=storage)
    original = builder.load(f"{name}_lda", f"{name}_a", stride=element_bytes)
    other = builder.load(f"{name}_ldb", f"{name}_b", stride=element_bytes)
    value = _compute_chain(builder, name, [original, other], compute_depth, float_ops)
    builder.store(f"{name}_sta", f"{name}_a", stride=element_bytes, inputs=[value])
    return builder.build(disambiguation=DisambiguationPolicy.PRECISE)


def indirect_kernel(
    name: str,
    element_bytes: int = 4,
    index_bytes: int = 2,
    table_elements: int = 1024,
    with_update: bool = False,
    compute_depth: int = 4,
    trip_count: int = 2000,
    weight: float = 1.0,
    storage: StorageClass = StorageClass.GLOBAL,
    array_elements: int = 768,
) -> Loop:
    """A table-lookup loop: ``t[b[i]]`` reads (and optionally updates).

    Indirect accesses spread over the whole table, so their preferred-cluster
    information is "unclear"; with ``with_update`` the loop becomes a
    histogram-style read-modify-write whose load and store form a chain and a
    memory recurrence (the classic entropy-coding pattern).
    """
    builder = LoopBuilder(name, trip_count=trip_count, weight=weight)
    builder.array(f"{name}_idx", index_bytes, array_elements, storage=storage)
    builder.array(
        f"{name}_table",
        element_bytes,
        table_elements,
        storage=storage,
        index_range=table_elements,
    )
    index = builder.load(f"{name}_ldi", f"{name}_idx", stride=index_bytes)
    lookup = builder.load(
        f"{name}_ldt",
        f"{name}_table",
        indirect=True,
        index_array=f"{name}_idx",
        inputs=[index],
    )
    value = _compute_chain(builder, name, [lookup], compute_depth, False)
    if with_update:
        builder.store(
            f"{name}_stt",
            f"{name}_table",
            indirect=True,
            index_array=f"{name}_idx",
            inputs=[value, index],
        )
        policy = DisambiguationPolicy.CONSERVATIVE
    else:
        builder.array(f"{name}_out", element_bytes, array_elements, storage=storage)
        builder.store(
            f"{name}_sto", f"{name}_out", stride=element_bytes, inputs=[value]
        )
        policy = DisambiguationPolicy.PRECISE
    return builder.build(disambiguation=policy)


def wide_kernel(
    name: str,
    wide_bytes: int = 8,
    narrow_bytes: int = 4,
    compute_depth: int = 6,
    trip_count: int = 2000,
    weight: float = 1.0,
    storage: StorageClass = StorageClass.GLOBAL,
    array_elements: int = 768,
) -> Loop:
    """A loop mixing double-precision and narrow accesses (mpeg2dec style).

    Accesses wider than the interleaving factor always pay a remote access;
    the scheduler compensates by assigning them large latencies, so they add
    remote traffic but little stall time -- the behaviour the paper reports.
    """
    builder = LoopBuilder(name, trip_count=trip_count, weight=weight)
    builder.array(f"{name}_wide", wide_bytes, array_elements, storage=storage)
    builder.array(f"{name}_narrow", narrow_bytes, array_elements, storage=storage)
    builder.array(f"{name}_out", wide_bytes, array_elements, storage=storage)
    wide = builder.load(f"{name}_ldw", f"{name}_wide", stride=wide_bytes)
    narrow = builder.load(f"{name}_ldn", f"{name}_narrow", stride=narrow_bytes)
    value = _compute_chain(builder, name, [wide, narrow], compute_depth, True)
    builder.store(f"{name}_stw", f"{name}_out", stride=wide_bytes, inputs=[value])
    return builder.build(disambiguation=DisambiguationPolicy.PRECISE)


def long_chain_kernel(
    name: str,
    num_loads: int = 12,
    element_bytes: int = 4,
    compute_depth: int = 1,
    trip_count: int = 2000,
    weight: float = 1.0,
    storage: StorageClass = StorageClass.GLOBAL,
    array_elements: int = 1024,
) -> Loop:
    """A loop whose memory references cannot be disambiguated (epicdec style).

    All references go through the same (pointer-accessed) buffer and the
    analysis keeps them in one long memory dependent chain, which forces the
    scheduler to place every one of them in a single cluster.  The paper's
    epicdec has a loop with 19 such memory instructions.
    """
    builder = LoopBuilder(name, trip_count=trip_count, weight=weight)
    builder.array(f"{name}_buf", element_bytes, array_elements, storage=storage)
    builder.array(f"{name}_out", element_bytes, array_elements, storage=storage)
    running = None
    for index in range(num_loads):
        loaded = builder.load(
            f"{name}_ld{index}",
            f"{name}_buf",
            stride=element_bytes,
            offset=index * element_bytes,
        )
        inputs = [loaded] if running is None else [running, loaded]
        running = builder.compute(f"{name}_acc{index}", "add", inputs=inputs)
    value = _compute_chain(builder, name, [running], compute_depth, False)
    builder.store(
        f"{name}_st", f"{name}_buf", stride=element_bytes, inputs=[value]
    )
    return builder.build(disambiguation=DisambiguationPolicy.CONSERVATIVE)


def stencil_kernel(
    name: str,
    element_bytes: int = 4,
    taps: int = 3,
    compute_depth: int = 4,
    trip_count: int = 2000,
    weight: float = 1.0,
    storage: StorageClass = StorageClass.GLOBAL,
    float_ops: bool = True,
    array_elements: int = 768,
) -> Loop:
    """A symmetric FIR/stencil: ``out[i] = f(in[i-1], in[i], in[i+1], ...)``.

    Neighbouring taps fall in different clusters, so without unrolling most
    accesses are remote even though the loop has no recurrences.
    """
    builder = LoopBuilder(name, trip_count=trip_count, weight=weight)
    builder.array(f"{name}_in", element_bytes, array_elements, storage=storage)
    builder.array(f"{name}_out", element_bytes, array_elements, storage=storage)
    loads = []
    for tap in range(taps):
        offset = (tap - taps // 2) * element_bytes
        loads.append(
            builder.load(
                f"{name}_ld{tap}", f"{name}_in", stride=element_bytes, offset=offset
            )
        )
    value = _compute_chain(builder, name, loads, compute_depth, float_ops)
    builder.store(f"{name}_st", f"{name}_out", stride=element_bytes, inputs=[value])
    return builder.build(disambiguation=DisambiguationPolicy.PRECISE)


def strided_kernel(
    name: str,
    element_bytes: int = 2,
    stride_elements: int = 8,
    compute_depth: int = 4,
    trip_count: int = 1500,
    weight: float = 1.0,
    storage: StorageClass = StorageClass.HEAP,
    float_ops: bool = False,
    array_elements: int = 768,
) -> Loop:
    """A large-stride loop over a heap array (the gsmdec example).

    With a stride of ``stride_elements * element_bytes`` bytes the OUF is
    small, and because the array lives on the heap its home-cluster pattern
    depends entirely on where ``malloc`` placed it -- the situation variable
    alignment (padding) fixes.
    """
    builder = LoopBuilder(name, trip_count=trip_count, weight=weight)
    builder.array(f"{name}_in", element_bytes, array_elements, storage=storage)
    builder.array(f"{name}_out", element_bytes, array_elements, storage=storage)
    stride = element_bytes * stride_elements
    source = builder.load(f"{name}_ld", f"{name}_in", stride=stride)
    value = _compute_chain(builder, name, [source], compute_depth, float_ops)
    builder.store(f"{name}_st", f"{name}_out", stride=stride, inputs=[value])
    return builder.build(disambiguation=DisambiguationPolicy.PRECISE)

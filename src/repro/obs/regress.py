"""Noise-aware perf-regression verdicts over the run ledger.

The question this module answers is the one every optimisation PR has to
answer honestly: *did this run get slower than the last comparable run,
and where?*  ``repro-sweep regress`` wires it to the CLI; ``--gate``
turns a regression verdict into a non-zero exit for CI.

Comparability first: a run is only diffed against a ledger entry with
the **same spec hash** (same benchmarks, same machine grid, same
granularity -- otherwise the work differs and so must the timings), the
**same host fingerprint** (same interpreter on the same kind of machine
-- a laptop baseline must never gate a CI run), and the **same
executed-job count** (an all-cache-hit run executed nothing and its
near-zero timings would slander any real run that follows).  The most
recent such entry is the default baseline; ``--baseline RUN_ID`` pins
another.

Verdicts are noise-aware by construction.  A span name regresses only
when *both* trip:

* the relative threshold -- its p50 grew by more than
  :data:`DEFAULT_REL_THRESHOLD` (so a 2x stage slowdown always fires);
* the absolute floor -- the p50 grew by more than
  :data:`DEFAULT_ABS_FLOOR` seconds (so a sub-millisecond span that
  doubles from 80us to 160us -- pure scheduler noise -- can't flap the
  gate).

Counter deltas (cache hits, evictions, ...) are reported for diagnosis
but never gate: they describe *why* timings moved, not whether they did.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional

#: A span regresses only if its p50 grew by more than this fraction ...
DEFAULT_REL_THRESHOLD = 0.5

#: ... *and* by more than this many seconds.  Sub-millisecond spans
#: double on scheduler noise alone; they must not flap the gate.
DEFAULT_ABS_FLOOR = 0.005

#: Which digest statistic verdicts are computed from.  The median is the
#: most noise-resistant single number the ledger records; tail statistics
#: (p99, max) are reported in deltas but do not gate.
VERDICT_STAT = "p50"


def comparable(entry: Mapping, current: Mapping) -> bool:
    """Whether a ledger entry is a valid baseline for the current run.

    Same spec hash, same host fingerprint, *and the same executed-job
    count*: a run that served everything from the result cache executed
    no pipeline stages, so its (near-zero) timings would make any real
    run after it look like a catastrophic regression -- the two runs did
    different work and must not gate each other.
    """
    entry_host = (entry.get("host") or {}).get("fingerprint")
    current_host = (current.get("host") or {}).get("fingerprint")
    entry_run = entry.get("run") or {}
    current_run = current.get("run") or {}
    return (
        entry.get("spec_hash") is not None
        and entry.get("spec_hash") == current.get("spec_hash")
        and entry_host is not None
        and entry_host == current_host
        and entry_run.get("executed") == current_run.get("executed")
    )


def find_baseline(
    entries: Iterable[Mapping],
    current: Mapping,
    baseline_run_id: Optional[str] = None,
) -> Optional[Mapping]:
    """Pick the baseline entry to diff the current run against.

    With ``baseline_run_id`` the entry with that run id is returned (or
    None when absent).  Otherwise: the most recent entry, *older than the
    current one*, that is comparable (same spec hash, same host).
    """
    entries = list(entries)
    if baseline_run_id is not None:
        for entry in reversed(entries):
            if entry.get("run_id") == baseline_run_id:
                return entry
        return None
    current_id = current.get("run_id")
    seen_current = False
    for entry in reversed(entries):
        if not seen_current:
            if entry.get("run_id") == current_id:
                seen_current = True
            continue
        if comparable(entry, current):
            return entry
    return None


def _span_delta(
    name: str,
    base: Mapping,
    cur: Mapping,
    rel_threshold: float,
    abs_floor: float,
) -> dict:
    """One span name's structured delta plus its verdict."""
    base_value = float(base.get(VERDICT_STAT) or 0.0)
    cur_value = float(cur.get(VERDICT_STAT) or 0.0)
    delta = cur_value - base_value
    ratio = (cur_value / base_value) if base_value > 0 else None
    verdict = "ok"
    if base_value > 0:
        if delta > abs_floor and delta > rel_threshold * base_value:
            verdict = "regression"
        elif -delta > abs_floor and -delta > rel_threshold * base_value:
            verdict = "improvement"
    return {
        "name": name,
        "verdict": verdict,
        "stat": VERDICT_STAT,
        "baseline": base_value,
        "current": cur_value,
        "delta": round(delta, 6),
        "ratio": round(ratio, 4) if ratio is not None else None,
        "count_baseline": base.get("count"),
        "count_current": cur.get("count"),
        "total_baseline": base.get("total"),
        "total_current": cur.get("total"),
    }


def compare(
    current: Mapping,
    baseline: Mapping,
    rel_threshold: float = DEFAULT_REL_THRESHOLD,
    abs_floor: float = DEFAULT_ABS_FLOOR,
) -> dict:
    """Diff two ledger entries into structured deltas plus verdicts.

    Returns a dict with ``spans`` (every span name of either run, each
    carrying baseline/current p50, delta, ratio and a verdict), ``counters``
    (per-counter deltas, informational), and the rolled-up ``regressions``
    / ``improvements`` name lists the gate keys on.  Span names present in
    only one run are reported as ``added`` / ``removed`` -- structure
    changes are worth seeing but are not timing regressions.
    """
    base_spans: Mapping = baseline.get("spans") or {}
    cur_spans: Mapping = current.get("spans") or {}
    spans: list[dict] = []
    for name in sorted(set(base_spans) | set(cur_spans)):
        base = base_spans.get(name)
        cur = cur_spans.get(name)
        if base is None:
            spans.append(
                {
                    "name": name,
                    "verdict": "added",
                    "stat": VERDICT_STAT,
                    "baseline": None,
                    "current": float((cur or {}).get(VERDICT_STAT) or 0.0),
                    "delta": None,
                    "ratio": None,
                }
            )
        elif cur is None:
            spans.append(
                {
                    "name": name,
                    "verdict": "removed",
                    "stat": VERDICT_STAT,
                    "baseline": float(base.get(VERDICT_STAT) or 0.0),
                    "current": None,
                    "delta": None,
                    "ratio": None,
                }
            )
        else:
            spans.append(
                _span_delta(name, base, cur, rel_threshold, abs_floor)
            )

    base_counters: Mapping = baseline.get("counters") or {}
    cur_counters: Mapping = current.get("counters") or {}
    counters = [
        {
            "name": name,
            "baseline": base_counters.get(name),
            "current": cur_counters.get(name),
            "delta": (
                int(cur_counters.get(name, 0)) - int(base_counters.get(name, 0))
            ),
        }
        for name in sorted(set(base_counters) | set(cur_counters))
    ]

    return {
        "baseline_run_id": baseline.get("run_id"),
        "current_run_id": current.get("run_id"),
        "rel_threshold": rel_threshold,
        "abs_floor": abs_floor,
        "stat": VERDICT_STAT,
        "spans": spans,
        "counters": counters,
        "regressions": [
            row["name"] for row in spans if row["verdict"] == "regression"
        ],
        "improvements": [
            row["name"] for row in spans if row["verdict"] == "improvement"
        ],
    }


def has_regressions(comparison: Mapping) -> bool:
    """Whether a comparison should fail the gate."""
    return bool(comparison.get("regressions"))

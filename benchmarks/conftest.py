"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  The heavy
work (compiling and simulating the 14 synthetic benchmarks under each
configuration) is shared through a session-scoped :class:`ExperimentRunner`
whose compilation cache persists across benchmark files, so the whole harness
runs in minutes.  Rendered reports are written to ``benchmarks/results/`` so
the regenerated rows/series can be inspected after the run.

Compilation is deterministic and independent of process history (see
``DataDependenceGraph.recurrences``), so every file under ``results/`` is
reproduced byte-identically whether its benchmark runs standalone or as part
of the full suite.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.common import ExperimentOptions, ExperimentRunner

#: Simulated iterations per loop; raise for tighter statistics.
BENCH_ITERATION_CAP = int(os.environ.get("REPRO_BENCH_ITERATIONS", "128"))

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def experiment_runner() -> ExperimentRunner:
    """One shared runner (and compilation cache) for every benchmark."""
    options = ExperimentOptions(simulation_iteration_cap=BENCH_ITERATION_CAP)
    return ExperimentRunner(options)


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory the rendered reports are written to."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_report(results_dir: Path, name: str, text: str) -> None:
    """Persist a rendered experiment report."""
    (results_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    print(f"\n{text}\n")

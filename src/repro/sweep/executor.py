"""Execution engine of the sweep subsystem.

Jobs are executed either in-process (``workers <= 1``) or fanned out
across a ``multiprocessing`` pool.  Each pool worker keeps a module-global
compile cache, so a worker that executes several jobs sharing one
(benchmark, machine, compiler-options) combination compiles the loops only
once -- simulation options such as the iteration cap do not invalidate it.

Results flow back to the parent as ``(record, BenchmarkSimulationResult)``
pairs and are written to the :class:`~repro.sweep.store.ResultStore`; jobs
whose key is already stored are skipped entirely (incremental re-runs),
unless ``force=True``.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

from repro.scheduler.pipeline import compile_loop
from repro.sim.engine import simulate_compiled_loops
from repro.sim.stats import BenchmarkSimulationResult
from repro.sweep.spec import SweepJob, SweepSpec, canonical_json
from repro.sweep.store import ResultStore
from repro.sweep.workloads import resolve_workload

#: Per-process compile cache: compile key -> compiled loops.
_COMPILE_CACHE: dict[str, list] = {}


def default_workers(cap: int = 8) -> int:
    """Default pool size: the CPU count, capped, but at least 2."""
    return max(2, min(cap, os.cpu_count() or 2))


def _compile_cache_key(job: SweepJob) -> str:
    description = job.describe()
    description.pop("simulation", None)
    return canonical_json(description)


def make_record(
    job: SweepJob, result: BenchmarkSimulationResult, elapsed_seconds: float
) -> dict:
    """Assemble the queryable JSON record of one executed job."""
    metrics = result.describe()
    metrics["ipc"] = round(result.ipc(), 4)
    return {
        "key": job.key,
        "architecture": job.architecture,
        "job": job.describe(),
        "metrics": metrics,
        "elapsed_seconds": round(elapsed_seconds, 4),
        "worker_pid": os.getpid(),
    }


def execute_job(job: SweepJob) -> tuple[dict, BenchmarkSimulationResult]:
    """Compile (cached per process) and simulate one job."""
    started = time.perf_counter()
    benchmark = resolve_workload(job.benchmark)
    cache_key = _compile_cache_key(job)
    compiled = _COMPILE_CACHE.get(cache_key)
    if compiled is None:
        compiled = [
            compile_loop(loop, job.config, job.options) for loop in benchmark.loops
        ]
        _COMPILE_CACHE[cache_key] = compiled
    result = simulate_compiled_loops(
        compiled,
        benchmark.name,
        job.config,
        job.simulation,
        architecture=job.architecture,
    )
    return make_record(job, result, time.perf_counter() - started), result


def _pool_execute(job: SweepJob) -> tuple[str, dict, BenchmarkSimulationResult]:
    record, result = execute_job(job)
    return job.key, record, result


@dataclass
class JobOutcome:
    """What happened to one job of a sweep run."""

    job: SweepJob
    record: dict
    cached: bool
    result: Optional[BenchmarkSimulationResult] = None

    @property
    def key(self) -> str:
        """Content hash of the job."""
        return self.job.key


@dataclass
class SweepRunSummary:
    """Aggregate outcome of one sweep run."""

    total: int
    executed: int
    cache_hits: int
    workers: int
    elapsed_seconds: float
    outcomes: list[JobOutcome] = field(default_factory=list)

    def describe(self) -> dict[str, object]:
        """Flat summary for logs and the CLI."""
        return {
            "total_jobs": self.total,
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "workers": self.workers,
            "elapsed_seconds": round(self.elapsed_seconds, 3),
        }


def _mp_context() -> multiprocessing.context.BaseContext:
    preferred = os.environ.get("REPRO_SWEEP_START_METHOD")
    methods = multiprocessing.get_all_start_methods()
    if preferred and preferred in methods:
        return multiprocessing.get_context(preferred)
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def _dedupe(jobs: Iterable[SweepJob]) -> list[SweepJob]:
    seen: set[str] = set()
    unique: list[SweepJob] = []
    for job in jobs:
        if job.key not in seen:
            seen.add(job.key)
            unique.append(job)
    return unique


def run_jobs(
    jobs: Sequence[SweepJob],
    store: Optional[ResultStore] = None,
    workers: int = 1,
    force: bool = False,
    save_payloads: bool = True,
    progress: Optional[Callable[[int, int, JobOutcome], None]] = None,
) -> SweepRunSummary:
    """Execute jobs, skipping stored results, optionally in parallel.

    Duplicate jobs (same content hash) are executed once.  With a store,
    finished results are persisted as JSON records plus (optionally) full
    pickle payloads; without one, everything is computed in memory.
    """
    started = time.perf_counter()
    unique = _dedupe(jobs)

    outcomes: list[JobOutcome] = []
    pending: list[SweepJob] = []
    for job in unique:
        record = None if (force or store is None) else store.load_record(job.key)
        if record is not None:
            outcomes.append(JobOutcome(job=job, record=record, cached=True))
        else:
            pending.append(job)

    done = len(outcomes)
    total = len(unique)
    if progress is not None:
        for index, outcome in enumerate(outcomes, start=1):
            progress(index, total, outcome)

    def finish(job: SweepJob, record: dict, result: BenchmarkSimulationResult) -> None:
        nonlocal done
        if store is not None:
            store.save(job.key, record, payload=result if save_payloads else None)
        outcome = JobOutcome(job=job, record=record, cached=False, result=result)
        outcomes.append(outcome)
        done += 1
        if progress is not None:
            progress(done, total, outcome)

    pool_size = min(workers, len(pending))
    if pool_size > 1:
        by_key = {job.key: job for job in pending}
        context = _mp_context()
        with context.Pool(processes=pool_size) as pool:
            for key, record, result in pool.imap_unordered(
                _pool_execute, pending
            ):
                finish(by_key[key], record, result)
    else:
        for job in pending:
            record, result = execute_job(job)
            finish(job, record, result)

    return SweepRunSummary(
        total=total,
        executed=len(pending),
        cache_hits=total - len(pending),
        workers=max(1, pool_size),
        elapsed_seconds=time.perf_counter() - started,
        outcomes=outcomes,
    )


def run_sweep(
    spec: SweepSpec,
    store: Optional[ResultStore] = None,
    workers: int = 1,
    force: bool = False,
    save_payloads: bool = True,
    progress: Optional[Callable[[int, int, JobOutcome], None]] = None,
) -> SweepRunSummary:
    """Expand a spec and execute the resulting grid."""
    return run_jobs(
        spec.expand(),
        store=store,
        workers=workers,
        force=force,
        save_payloads=save_payloads,
        progress=progress,
    )

"""Content-addressed, on-disk store for compilation-stage artifacts.

The staged compilation pipeline (:mod:`repro.scheduler.pipeline`) gives
every stage output a content-addressed key derived from exactly the slice
of ``(loop, MachineConfig, CompilerOptions)`` the stage depends on.  This
module persists those outputs so they are shared across pool workers,
across benchmark- and loop-granularity jobs, and across interrupted and
resumed sweep runs: a grid sweeping 4 scheduling configurations times 3
machines that differ only in simulation-time knobs performs each loop's
unroll and profile stages once, not 12 times.

Layout under the store root (``<results-dir>/artifacts`` by default)::

    <stage>/<shard>/<key>.pkl

``<stage>`` is the pipeline stage name (``unroll``, ``profile``,
``latency``, ``schedule``) and ``<shard>`` the first two hex characters of
the stage key, mirroring the :class:`~repro.sweep.store.ResultStore`
sharding so a large store never scans one flat directory.  Each file
pickles a small envelope ``{"schema", "stage", "checksum", "payload"}``
where ``payload`` is the pickled payload bytes and ``checksum`` their
CRC-32: a flipped bit anywhere in the payload reads as a checksum
mismatch, not as a silently wrong compiled loop.  Entries whose schema
does not match :data:`ARTIFACT_SCHEMA` are stale-format misses (left for
:meth:`ArtifactStore.vacuum`); entries that are torn, fail their
checksum, or do not unpickle are *quarantined* -- moved to
``quarantine/`` under the store root, counted in the
``artifacts.quarantined`` metric -- and read as misses, so the stage is
recomputed instead of the sweep crashing.

Writes are atomic (temp file + ``os.replace``), so concurrent workers
racing on one stage key cannot tear an artifact; both compute the same
content, and the last replace wins.

:class:`ArtifactCache` is the in-process front: a bounded LRU over the
payloads (replacing the old whole-``CompiledLoop`` per-worker compile
cache) that falls through to the disk store on miss and counts per-stage
hits and misses for the sweep summary.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import time
import zlib
from collections import OrderedDict
from pathlib import Path
from typing import Optional

from repro import faults
from repro.obs import metrics as obs_metrics

#: Version of the artifact envelope.  Bump when payload formats change so
#: stale artifacts read as misses (and become vacuumable) instead of
#: rehydrating into garbage.  2 added the payload checksum.
ARTIFACT_SCHEMA = 2

#: Number of leading key characters that name an artifact's shard directory.
SHARD_CHARS = 2

#: Subdirectory of a sweep result store that holds its artifact store.
ARTIFACTS_DIRNAME = "artifacts"

#: Subdirectory of the artifact store root holding quarantined files.
QUARANTINE_DIRNAME = "quarantine"

#: Upper bound on in-memory artifact payloads per process.  Each schedule
#: artifact holds one compiled loop, so an unbounded front would grow
#: worker memory with the grid; the old compile cache held 8 whole
#: benchmarks' compiled loops, which this default roughly matches.
DEFAULT_CACHE_CAPACITY = max(
    1, int(os.environ.get("REPRO_SWEEP_ARTIFACT_CACHE", "128"))
)


def shard_of(key: str) -> str:
    """Shard directory name of a key (its first hex characters)."""
    return key[:SHARD_CHARS] or "_"


class ArtifactStore:
    """Directory-backed store of stage artifacts keyed by stage key."""

    def __init__(self, root: Path | str) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path(self, stage: str, key: str) -> Path:
        """Path of the artifact of ``key`` within ``stage``."""
        return self.root / stage / shard_of(key) / f"{key}.pkl"

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*/*.pkl"))

    def stats(self) -> dict[str, int]:
        """Artifact count per stage, sorted by stage name."""
        counts: dict[str, int] = {}
        for stage_dir in sorted(self.root.iterdir()):
            if stage_dir.is_dir() and stage_dir.name != QUARANTINE_DIRNAME:
                counts[stage_dir.name] = sum(
                    1 for _ in stage_dir.glob("*/*.pkl")
                )
        return counts

    def get(self, stage: str, key: str) -> Optional[object]:
        """Load one artifact payload, or None if absent/stale/damaged.

        A stale-schema envelope is a plain miss (an upgrade left it
        behind; :meth:`vacuum` collects it).  Torn bytes, a checksum
        mismatch, a stage mismatch or an unpicklable payload mean the
        file is *damaged*: it is quarantined -- so the next lookup is a
        clean miss -- and the stage is recomputed, never a crash.
        """
        path = self.path(stage, key)
        try:
            with path.open("rb") as handle:
                envelope = pickle.load(handle)
        except FileNotFoundError:
            return None
        except OSError:
            return None
        except Exception:
            # Anything unreadable is damage, never a crash: unpickling
            # arbitrary stale bytes can raise far more than PickleError
            # (ImportError after a payload class moved, ValueError,
            # IndexError...).
            self._quarantine(path)
            return None
        if not isinstance(envelope, dict):
            self._quarantine(path)
            return None
        if envelope.get("schema") != ARTIFACT_SCHEMA:
            return None
        payload_bytes = envelope.get("payload")
        if (
            envelope.get("stage") != stage
            or not isinstance(payload_bytes, bytes)
            or zlib.crc32(payload_bytes) != envelope.get("checksum")
        ):
            self._quarantine(path)
            return None
        try:
            payload = pickle.loads(payload_bytes)
        except Exception:
            self._quarantine(path)
            return None
        try:
            # Touch on hit: mtime becomes a last-use clock, so size-based
            # eviction (evict_to_size) drops cold shards, not hot ones.
            os.utime(path)
        except OSError:
            pass
        return payload

    def _quarantine(self, path: Path) -> None:
        """Move a damaged artifact into ``quarantine/``, preserving it.

        Same-filesystem rename: concurrent readers see either the damaged
        file or a miss, never a partial.  Vanished-first (another reader
        won the race) is fine.
        """
        target_dir = self.root / QUARANTINE_DIRNAME
        try:
            target_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, target_dir / path.name)
        except OSError:
            return
        obs_metrics.registry().counter("artifacts.quarantined").inc()

    def quarantined_count(self) -> int:
        """Files sitting in this store's quarantine directory."""
        directory = self.root / QUARANTINE_DIRNAME
        if not directory.is_dir():
            return 0
        return sum(1 for path in directory.iterdir() if path.is_file())

    def put(self, stage: str, key: str, payload: object) -> None:
        """Atomically persist one artifact payload (checksummed)."""
        payload_bytes = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        envelope = {
            "schema": ARTIFACT_SCHEMA,
            "stage": stage,
            "checksum": zlib.crc32(payload_bytes),
            "payload": payload_bytes,
        }
        data = faults.mangle(
            "artifact.write",
            pickle.dumps(envelope, protocol=pickle.HIGHEST_PROTOCOL),
        )
        metrics = obs_metrics.registry()
        metrics.counter("artifacts.puts").inc()
        metrics.counter("artifacts.put_bytes").inc(len(data))
        path = self.path(stage, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        handle = tempfile.NamedTemporaryFile(
            mode="wb", dir=path.parent, prefix=f".{path.name}.", delete=False
        )
        try:
            with handle:
                handle.write(data)
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise

    def vacuum(self, grace_seconds: float = 60.0) -> int:
        """Drop unreachable artifacts; returns how many files were removed.

        Unreachable means: leftover temp files from interrupted atomic
        writes, and artifacts no current ``get`` can return -- entries
        whose envelope schema is stale (the stage key embeds the pipeline
        schema, so nothing addresses them any more) or that fail to
        unpickle.  ``grace_seconds`` keeps vacuuming safe next to a live
        sweep: files younger than the window may be another worker's
        in-flight write and are left alone; pass ``0`` for offline stores.
        """
        cutoff = time.time() - grace_seconds

        def expired(path: Path) -> bool:
            try:
                return path.stat().st_mtime <= cutoff
            except OSError:
                return False

        removed = 0
        for stale in self.root.glob("**/.*"):
            if stale.is_file() and expired(stale):
                try:
                    stale.unlink()
                    removed += 1
                except FileNotFoundError:
                    pass
        for path in self.root.glob("*/*/*.pkl"):
            if not expired(path):
                continue
            stage = path.parent.parent.name
            if self.get(stage, path.stem) is None:
                try:
                    path.unlink()
                    removed += 1
                except FileNotFoundError:
                    # The probing get() just quarantined it: gone from the
                    # store either way, so it counts as removed.
                    removed += 1
        obs_metrics.registry().counter("artifacts.vacuum_removed").inc(removed)
        return removed

    def total_bytes(self) -> int:
        """Total size of all stored artifact files, in bytes."""
        total = 0
        for path in self.root.glob("*/*/*.pkl"):
            try:
                total += path.stat().st_size
            except OSError:
                continue
        return total

    def evict_to_size(
        self, max_bytes: int, grace_seconds: float = 60.0
    ) -> int:
        """Evict cold artifacts, LRU by mtime, until the store fits.

        ``get`` touches an artifact's mtime on every hit, so mtime order
        is last-use order: the oldest files are the coldest and go first.
        Artifacts are pure caches -- a future miss recomputes the stage --
        so eviction can never lose results, only warmth.  Files younger
        than ``grace_seconds`` are never touched (same live-sweep safety
        contract as :meth:`vacuum`: a recent mtime may be an in-flight
        write *or* an active job's working set), so next to a live run the
        store may transiently stay above ``max_bytes``.  Returns how many
        files were removed.
        """
        if max_bytes < 0:
            raise ValueError("max_bytes must be non-negative")
        cutoff = time.time() - grace_seconds
        entries = []
        total = 0
        for path in self.root.glob("*/*/*.pkl"):
            try:
                stat = path.stat()
            except OSError:
                continue
            total += stat.st_size
            if stat.st_mtime <= cutoff:
                entries.append((stat.st_mtime, stat.st_size, path))
        entries.sort()
        removed = 0
        for _, size, path in entries:
            if total <= max_bytes:
                break
            try:
                path.unlink()
            except FileNotFoundError:
                continue
            total -= size
            removed += 1
        obs_metrics.registry().counter("artifacts.size_evictions").inc(removed)
        return removed


class ArtifactCache:
    """Bounded LRU front over an (optional) :class:`ArtifactStore`.

    Implements the pipeline's ``StageCache`` protocol.  ``get`` serves from
    memory first, then from the disk store (promoting the payload into
    memory); ``put`` writes both.  Per-stage hit/miss counters feed the
    sweep run summary; :meth:`peek` looks up without touching them, for
    read-only consumers like the analytical model.
    """

    def __init__(
        self,
        store: Optional[ArtifactStore] = None,
        capacity: Optional[int] = None,
    ) -> None:
        self.store = store
        self.capacity = DEFAULT_CACHE_CAPACITY if capacity is None else capacity
        if self.capacity < 1:
            raise ValueError("artifact cache capacity must be at least 1")
        self._memory: OrderedDict[str, object] = OrderedDict()
        self.hits: dict[str, int] = {}
        self.misses: dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._memory)

    def peek(self, stage: str, key: str) -> Optional[object]:
        """Look up a payload without counting a hit or a miss."""
        payload = self._memory.get(key)
        if payload is not None:
            self._memory.move_to_end(key)
            return payload
        if self.store is not None:
            payload = self.store.get(stage, key)
            if payload is not None:
                self._remember(key, payload)
        return payload

    def get(self, stage: str, key: str) -> Optional[object]:
        """Look up a payload, counting the outcome for the run summary."""
        payload = self.peek(stage, key)
        counter = self.hits if payload is not None else self.misses
        counter[stage] = counter.get(stage, 0) + 1
        # Telemetry counters are a separate channel (obs/metrics.json);
        # the hits/misses dicts above stay the single source the sweep
        # summary's stage_hits/stage_misses are fed from.
        obs_metrics.registry().counter(
            "artifacts.hits" if payload is not None else "artifacts.misses"
        ).inc()
        return payload

    def put(self, stage: str, key: str, payload: object) -> None:
        """Store a payload in memory and (when backed) on disk."""
        self._remember(key, payload)
        if self.store is not None:
            self.store.put(stage, key, payload)

    def _remember(self, key: str, payload: object) -> None:
        self._memory[key] = payload
        self._memory.move_to_end(key)
        while len(self._memory) > self.capacity:
            self._memory.popitem(last=False)
            obs_metrics.registry().counter("artifacts.evictions").inc()

    def take_stats(self) -> dict[str, dict[str, int]]:
        """Return and reset the per-stage hit/miss counters."""
        stats = {"hits": self.hits, "misses": self.misses}
        self.hits = {}
        self.misses = {}
        return stats

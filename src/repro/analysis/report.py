"""Plain-text report rendering for experiment results.

The benchmark harness prints the same rows/series the paper's figures show;
these helpers format them as aligned text tables so the output of
``pytest benchmarks/ --benchmark-only`` doubles as the reproduction report.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned text table."""
    rendered_rows = [[_render_cell(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def format_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[index]) for index, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(format_row(list(headers)))
    lines.append(format_row(["-" * width for width in widths]))
    lines.extend(format_row(row) for row in rendered_rows)
    return "\n".join(lines)


def _render_cell(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def format_fraction_row(
    name: str, fractions: Mapping[str, float], keys: Sequence[str]
) -> list[object]:
    """Build a table row of named fractions in a fixed key order."""
    return [name, *[fractions.get(key, 0.0) for key in keys]]


def format_dict(values: Mapping[str, object], title: str | None = None) -> str:
    """Render a flat mapping as ``key: value`` lines."""
    lines = []
    if title:
        lines.append(title)
        lines.append("-" * len(title))
    width = max((len(str(key)) for key in values), default=0)
    for key, value in values.items():
        rendered = f"{value:.3f}" if isinstance(value, float) else str(value)
        lines.append(f"{str(key).ljust(width)} : {rendered}")
    return "\n".join(lines)

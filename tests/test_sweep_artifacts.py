"""Tests of the artifact store/cache and its sweep-engine integration (PR 4)."""

from __future__ import annotations

import json
import os
import pickle
import time

import pytest

from repro.experiments.common import ExperimentOptions, ExperimentRunner, interleaved_setup
from repro.model.predict import predict_job
from repro.scheduler.core import SchedulingHeuristic
from repro.sweep import cli as sweep_cli
from repro.sweep import executor
from repro.sweep.artifacts import (
    ARTIFACT_SCHEMA,
    ArtifactCache,
    ArtifactStore,
    shard_of,
)
from repro.sweep.executor import execute_job, make_record, run_jobs
from repro.sweep.report import render_report
from repro.sweep.spec import SweepSpec, canonical_json
from repro.sweep.store import ResultStore
from repro.sweep.workloads import loop_names, resolve_loop, resolve_workload

FAST = {"iteration_cap": 32}

#: Record fields that legitimately differ between two identical runs.
VOLATILE_RECORD_FIELDS = ("elapsed_seconds", "worker_pid")


def stable_record(record: dict) -> str:
    """Canonical encoding of a record minus its volatile fields."""
    body = {
        key: value
        for key, value in record.items()
        if key not in VOLATILE_RECORD_FIELDS
    }
    return canonical_json(body)


def mix_spec(**base) -> SweepSpec:
    merged = dict(FAST)
    merged.update(base)
    return SweepSpec(
        name="artifacts",
        benchmarks=("kernels-mix",),
        axes={"clusters": (2, 4)},
        base=merged,
    )


# ----------------------------------------------------------------------
# ArtifactStore
# ----------------------------------------------------------------------
class TestArtifactStore:
    def test_round_trip_and_layout(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = "ab" + "0" * 62
        store.put("profile", key, {"profiles": {1: "data"}})
        assert store.get("profile", key) == {"profiles": {1: "data"}}
        path = store.path("profile", key)
        assert path.exists()
        assert path.parent.name == shard_of(key) == "ab"
        assert path.parent.parent.name == "profile"
        assert len(store) == 1
        assert store.stats() == {"profile": 1}

    def test_get_misses_absent_and_wrong_stage(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put("unroll", "f" * 64, {"factors": [1, 4]})
        assert store.get("unroll", "0" * 64) is None
        assert store.get("schedule", "f" * 64) is None

    def test_stale_schema_reads_as_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = "c" * 64
        path = store.path("latency", key)
        path.parent.mkdir(parents=True)
        path.write_bytes(
            pickle.dumps(
                {"schema": ARTIFACT_SCHEMA + 1, "stage": "latency", "payload": 1}
            )
        )
        assert store.get("latency", key) is None

    def test_corrupt_artifact_reads_as_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = "d" * 64
        path = store.path("unroll", key)
        path.parent.mkdir(parents=True)
        path.write_bytes(b"not a pickle")
        assert store.get("unroll", key) is None

    def test_vacuum_collects_orphans_and_spares_the_young(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put("unroll", "1" * 64, {"factors": [1]})

        stale_key = "2" * 64
        stale = store.path("latency", stale_key)
        stale.parent.mkdir(parents=True)
        stale.write_bytes(
            pickle.dumps(
                {"schema": ARTIFACT_SCHEMA - 1, "stage": "latency", "payload": 1}
            )
        )
        corrupt = store.path("schedule", "3" * 64)
        corrupt.parent.mkdir(parents=True)
        corrupt.write_bytes(b"torn")
        temp = store.root / "profile" / "ab" / ".orphan.pkl.tmp"
        temp.parent.mkdir(parents=True)
        temp.write_bytes(b"partial")

        # Young files survive a graced vacuum...
        assert store.vacuum(grace_seconds=3600) == 0
        assert stale.exists() and corrupt.exists() and temp.exists()
        # ...and an offline vacuum collects exactly the unreachable ones.
        old = time.time() - 7200
        for path in (stale, corrupt, temp):
            os.utime(path, (old, old))
        assert store.vacuum(grace_seconds=0) == 3
        assert not stale.exists() and not corrupt.exists() and not temp.exists()
        assert store.get("unroll", "1" * 64) == {"factors": [1]}

    def test_get_touches_mtime_as_a_last_use_clock(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = "e" * 64
        store.put("unroll", key, {"factors": [1]})
        path = store.path("unroll", key)
        old = time.time() - 7200
        os.utime(path, (old, old))
        assert store.get("unroll", key) == {"factors": [1]}
        assert path.stat().st_mtime > old + 3600

    def test_evict_to_size_drops_coldest_first(self, tmp_path):
        store = ArtifactStore(tmp_path)
        keys = [str(index) * 64 for index in range(1, 5)]
        for key in keys:
            store.put("unroll", key, {"payload": key})
        now = time.time()
        # Ages: keys[0] coldest ... keys[3] hottest.
        for age, key in enumerate(reversed(keys)):
            stamp = now - 7200 - age * 600
            os.utime(store.path("unroll", key), (stamp, stamp))
        total = store.total_bytes()
        per_file = total // len(keys)
        removed = store.evict_to_size(total - per_file, grace_seconds=60)
        assert removed == 1
        assert store.get("unroll", keys[0]) is None
        assert all(store.get("unroll", key) is not None for key in keys[1:])
        assert store.total_bytes() <= total - per_file

    def test_evict_to_size_spares_files_inside_the_grace_window(
        self, tmp_path
    ):
        store = ArtifactStore(tmp_path)
        store.put("unroll", "a" * 64, {"factors": [1]})
        # Everything is younger than the grace window: nothing may go,
        # even though the store exceeds the budget.
        assert store.evict_to_size(0, grace_seconds=3600) == 0
        assert store.get("unroll", "a" * 64) is not None
        # Offline (no grace), the same budget clears the store.
        old = time.time() - 7200
        os.utime(store.path("unroll", "a" * 64), (old, old))
        assert store.evict_to_size(0, grace_seconds=0) == 1
        assert store.total_bytes() == 0


# ----------------------------------------------------------------------
# ArtifactCache
# ----------------------------------------------------------------------
class TestArtifactCache:
    def test_counters_and_take_stats(self, tmp_path):
        cache = ArtifactCache(ArtifactStore(tmp_path))
        assert cache.get("unroll", "a" * 64) is None
        cache.put("unroll", "a" * 64, {"factors": [1]})
        assert cache.get("unroll", "a" * 64) == {"factors": [1]}
        stats = cache.take_stats()
        assert stats == {"hits": {"unroll": 1}, "misses": {"unroll": 1}}
        assert cache.take_stats() == {"hits": {}, "misses": {}}

    def test_peek_does_not_count(self, tmp_path):
        cache = ArtifactCache(ArtifactStore(tmp_path))
        cache.put("profile", "b" * 64, {"profiles": {}})
        assert cache.peek("profile", "b" * 64) == {"profiles": {}}
        assert cache.peek("profile", "c" * 64) is None
        assert cache.take_stats() == {"hits": {}, "misses": {}}

    def test_disk_fallthrough_promotes_into_memory(self, tmp_path):
        store = ArtifactStore(tmp_path)
        writer = ArtifactCache(store)
        writer.put("latency", "e" * 64, {"assignments": {}})
        reader = ArtifactCache(store)
        assert len(reader) == 0
        assert reader.get("latency", "e" * 64) == {"assignments": {}}
        assert len(reader) == 1  # promoted into the LRU front

    def test_capacity_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            ArtifactCache(capacity=0)


# ----------------------------------------------------------------------
# Sweep integration
# ----------------------------------------------------------------------
class TestSweepStageCache:
    def test_cold_then_warm_records_identical(self, tmp_path):
        """Cold/warm artifact-store runs write byte-identical records.

        Two stores, one artifact directory: the warm run compiles nothing
        (every stage is a hit) and its records -- minus wall-clock and pid,
        which are volatile by design -- are byte-for-byte the cold run's.
        """
        spec = mix_spec()
        artifacts = tmp_path / "artifacts"
        cold_store = ResultStore(tmp_path / "cold")
        cold = run_jobs(
            spec.expand(), store=cold_store, workers=1, artifacts=artifacts
        )
        assert sum(cold.stage_misses.values()) > 0

        warm_store = ResultStore(tmp_path / "warm")
        warm = run_jobs(
            spec.expand(), store=warm_store, workers=1, artifacts=artifacts
        )
        assert warm.executed == cold.executed == len(spec.expand())
        assert not warm.stage_misses
        # Every pipeline stage is requested once per compile either way, so
        # warm requests equal cold requests.  The trace stage is different:
        # traces are requested from *inside* profile-stage computes (which
        # the warm run never runs) plus once per simulated loop, so only
        # the execution-trace lookups remain -- and they all hit.
        for stage in ("unroll", "profile", "latency", "schedule"):
            assert warm.stage_hits[stage] == cold.stage_hits.get(
                stage, 0
            ) + cold.stage_misses.get(stage, 0)
        assert warm.stage_hits["trace"] > 0
        assert warm.stage_hits["trace"] <= cold.stage_misses["trace"]
        for key in cold_store.keys():
            cold_record = cold_store.load_record(key)
            warm_record = warm_store.load_record(key)
            assert stable_record(warm_record) == stable_record(cold_record)

    def test_artifacts_default_under_result_store(self, tmp_path):
        store = ResultStore(tmp_path / "results")
        run_jobs(mix_spec().expand(), store=store, workers=1)
        artifacts = ArtifactStore(store.root / "artifacts")
        stats = artifacts.stats()
        assert set(stats) == {"unroll", "profile", "latency", "schedule", "trace"}
        assert all(count > 0 for count in stats.values())

    def test_granularities_share_artifacts(self, tmp_path):
        """Loop jobs reuse the stages a benchmark-level run compiled."""
        spec = mix_spec()
        artifacts = tmp_path / "artifacts"
        first = ResultStore(tmp_path / "benchmark")
        run_jobs(spec.expand(), store=first, workers=1, artifacts=artifacts)
        second = ResultStore(tmp_path / "loops")
        summary = run_jobs(
            spec.expand(),
            store=second,
            workers=1,
            granularity="loop",
            artifacts=artifacts,
        )
        assert summary.loop_jobs > 0
        assert not summary.stage_misses
        # Per loop job: the four pipeline stages plus the execution-data-set
        # trace the simulator replays, every one served from the first run's
        # artifacts.
        assert sum(summary.stage_hits.values()) == 5 * summary.loop_jobs

    def test_summary_describe_and_cache_line(self, tmp_path):
        store = ResultStore(tmp_path / "results")
        summary = run_jobs(mix_spec().expand(), store=store, workers=1)
        info = summary.describe()
        assert info["stage_cache_misses"] > 0
        line = summary.stage_cache_line()
        assert line.startswith("stage cache: unroll ")
        assert "schedule" in line

    def test_acceptance_heuristic_by_machine_grid(self, tmp_path):
        """ISSUE 4 acceptance: 4 scheduling configs x 3 machines, one
        unroll/profile pass per loop, report identical to the monolithic
        path.

        The four scheduling configurations (ibc/ipbc x chains on/off) and
        the three machines (Attraction Buffers off/8/16 -- simulation-only
        knobs) share the unroll and profile dependency slices, so each of
        the three kernels-mix loops is unrolled and profiled exactly once
        across the 12 grid points.
        """
        spec = SweepSpec(
            name="acceptance",
            benchmarks=("kernels-mix",),
            axes={
                "heuristic": ("ibc", "ipbc"),
                "use_chains": (True, False),
                "attraction_entries": (0, 8, 16),
            },
            base=dict(FAST),
        )
        jobs = spec.expand()
        assert len(jobs) == 12
        store = ResultStore(tmp_path / "results")
        summary = run_jobs(jobs, store=store, workers=1)
        loops = len(loop_names("kernels-mix"))
        requests = len(jobs) * loops
        for stage in ("unroll", "profile"):
            assert summary.stage_misses.get(stage, 0) == loops
            assert summary.stage_hits.get(stage, 0) == requests - loops
        # The latency stage is also AB- and heuristic-independent: one
        # computation per loop.  Only scheduling runs per configuration --
        # and even it shares across the three AB machines.
        assert summary.stage_misses.get("latency", 0) == loops
        assert summary.stage_misses.get("schedule", 0) == 4 * loops

        # Report output must match the pre-refactor monolithic path.
        from repro.scheduler.pipeline import compile_loop_reference
        from repro.sim.engine import simulate_compiled_loops

        reference_records = []
        for job in jobs:
            benchmark = resolve_workload(job.benchmark)
            compiled = [
                compile_loop_reference(loop, job.config, job.options)
                for loop in benchmark.loops
            ]
            result = simulate_compiled_loops(
                compiled,
                benchmark.name,
                job.config,
                job.simulation,
                architecture=job.architecture,
            )
            reference_records.append(make_record(job, result, 0.0))
        stored = [store.load_record(job.key) for job in jobs]
        assert render_report(stored, sort_by="total_cycles") == render_report(
            reference_records, sort_by="total_cycles"
        )

    def test_parallel_and_serial_share_disk_artifacts(self, tmp_path):
        """Pool workers persist stages a later serial run fully reuses."""
        spec = mix_spec()
        artifacts = tmp_path / "artifacts"
        pool_store = ResultStore(tmp_path / "pool")
        run_jobs(
            spec.expand(), store=pool_store, workers=2, artifacts=artifacts
        )
        serial_store = ResultStore(tmp_path / "serial")
        summary = run_jobs(
            spec.expand(), store=serial_store, workers=1, artifacts=artifacts
        )
        assert not summary.stage_misses
        assert sum(summary.stage_hits.values()) > 0
        for key in pool_store.keys():
            assert stable_record(serial_store.load_record(key)) == stable_record(
                pool_store.load_record(key)
            )

    def test_pruned_run_reuses_unroll_artifacts_for_predictions(self, tmp_path):
        """Model pruning with a warm artifact store stays consistent."""
        from repro.sweep.executor import PruneOptions

        spec = mix_spec()
        artifacts = tmp_path / "artifacts"
        exhaustive = ResultStore(tmp_path / "exhaustive")
        run_jobs(
            spec.expand(), store=exhaustive, workers=1, artifacts=artifacts
        )
        pruned_store = ResultStore(tmp_path / "pruned")
        summary = run_jobs(
            spec.expand(),
            store=pruned_store,
            workers=1,
            prune=PruneOptions(keep_fraction=0.5),
            artifacts=artifacts,
        )
        assert summary.pruned == 1
        assert summary.executed == 1
        # The simulated point's record matches the exhaustive run exactly.
        for outcome in summary.outcomes:
            if not outcome.pruned:
                assert stable_record(
                    pruned_store.load_record(outcome.key)
                ) == stable_record(exhaustive.load_record(outcome.key))

    def test_predict_job_accepts_artifacts(self, tmp_path):
        job = mix_spec().expand()[0]
        artifacts = ArtifactCache(ArtifactStore(tmp_path))
        blind = predict_job(job)
        execute_job_with_artifacts(job, artifacts)
        informed = predict_job(job, artifacts=artifacts)
        assert informed.total_cycles > 0
        assert informed.benchmark == blind.benchmark
        # Read-only predictions never touch the stage counters.
        assert artifacts.take_stats() == {"hits": {}, "misses": {}}


def execute_job_with_artifacts(job, artifacts) -> None:
    """Run one job against a specific artifact cache."""
    previous = executor._ARTIFACTS
    executor._ARTIFACTS = artifacts
    try:
        execute_job(job)
        artifacts.take_stats()
    finally:
        executor._ARTIFACTS = previous


# ----------------------------------------------------------------------
# Experiment runner integration
# ----------------------------------------------------------------------
class TestExperimentRunnerArtifacts:
    OPTIONS = ExperimentOptions(benchmarks=("gsmdec",), simulation_iteration_cap=32)

    def test_fresh_runner_compiles_from_stored_artifacts(self, tmp_path):
        first = ExperimentRunner(self.OPTIONS, store=tmp_path / "store")
        setup = interleaved_setup(SchedulingHeuristic.IPBC)
        first.compile_benchmark(first.benchmark("gsmdec"), setup)
        assert sum(first._artifacts.misses.values()) > 0

        second = ExperimentRunner(self.OPTIONS, store=tmp_path / "store")
        second.compile_benchmark(second.benchmark("gsmdec"), setup)
        assert not second._artifacts.misses
        assert sum(second._artifacts.hits.values()) > 0

    def test_heuristics_share_upstream_stages(self):
        runner = ExperimentRunner(self.OPTIONS)
        benchmark = runner.benchmark("gsmdec")
        runner.compile_benchmark(benchmark, interleaved_setup(SchedulingHeuristic.IPBC))
        runner._artifacts.take_stats()
        runner.compile_benchmark(benchmark, interleaved_setup(SchedulingHeuristic.IBC))
        stats = runner._artifacts.take_stats()
        loops = len(benchmark.loops)
        # Unroll, profile and latency hit; only scheduling recomputes.
        assert stats["hits"] == {
            "unroll": loops,
            "profile": loops,
            "latency": loops,
        }
        assert stats["misses"] == {"schedule": loops}


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------
class TestArtifactCli:
    def test_run_prints_stage_cache_line(self, tmp_path, capsys):
        spec_file = tmp_path / "spec.json"
        spec_file.write_text(json.dumps(mix_spec().to_mapping()))
        assert (
            sweep_cli.main(
                [
                    "run",
                    "--spec",
                    str(spec_file),
                    "--results-dir",
                    str(tmp_path / "results"),
                    "--workers",
                    "1",
                    "--quiet",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "stage cache: unroll " in out

    def test_status_reports_artifacts(self, tmp_path, capsys):
        store = ResultStore(tmp_path / "results")
        run_jobs(mix_spec().expand(), store=store, workers=1)
        capsys.readouterr()
        assert (
            sweep_cli.main(["status", "--results-dir", str(tmp_path / "results")])
            == 0
        )
        out = capsys.readouterr().out
        assert "stage artifacts:" in out
        assert "schedule" in out

    def test_vacuum_collects_orphaned_artifacts(self, tmp_path, capsys):
        store = ResultStore(tmp_path / "results")
        run_jobs(mix_spec().expand(), store=store, workers=1)
        artifacts = ArtifactStore(store.root / "artifacts")
        orphan = artifacts.path("unroll", "9" * 64)
        orphan.parent.mkdir(parents=True, exist_ok=True)
        orphan.write_bytes(b"torn")
        old = time.time() - 7200
        os.utime(orphan, (old, old))
        capsys.readouterr()
        assert (
            sweep_cli.main(
                [
                    "vacuum",
                    "--results-dir",
                    str(tmp_path / "results"),
                    "--grace",
                    "60",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "1 orphaned artifact(s) removed" in out
        assert not orphan.exists()

"""Work-stealing job scheduler over persistent worker processes.

The pool-based fan-out the executor shipped with (``pool.imap_unordered``)
had two structural limits the long-lived sweep service runs into head-on:

* **No placement.**  A pool hands the next job to whichever worker asks
  first, so two jobs of the same benchmark -- whose compilation stages and
  address traces sit warm in one worker's
  :class:`~repro.sweep.artifacts.ArtifactCache` -- routinely land on
  different workers and re-read everything from disk.
* **No incremental submission.**  ``imap_unordered`` consumes one job
  list and is done; a server that accepts new sweep specs while earlier
  ones are still executing needs to feed jobs continuously and observe
  completions as callbacks, not as one blocking iteration.

:class:`WorkStealingScheduler` replaces the pool with dedicated worker
processes and parent-side per-worker deques:

* every job is enqueued on its *home* worker's deque --
  ``crc32(benchmark) % workers`` -- so one benchmark's jobs share a
  worker (and therefore its in-memory stage artifacts and traces) as
  long as the load allows;
* each worker holds **at most one** outstanding job; when it completes
  one, the parent feeds it the head of its own deque, or -- when that is
  empty -- *steals the tail* of the longest deque, so affinity yields to
  utilization the moment a worker runs dry (head = oldest affine work,
  tail = the work its owner will reach last, the classic stealing rule);
* completions are delivered by a parent-side pump thread as callbacks,
  which is what the asyncio service bridges onto its event loop, and
  what :meth:`run_all` folds back into the executor's blocking
  "handle each completion in the caller's thread" contract.

Workers initialize exactly like pool workers did
(:func:`repro.sweep.executor._init_worker`: artifact cache binding, obs
reset/shard/profile hooks) and run :func:`repro.sweep.executor.execute_job`
per job, so records are byte-identical to the pool path's.
"""

from __future__ import annotations

import collections
import multiprocessing
import os
import queue
import threading
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional, Sequence, Union

from repro.obs import profilehook as obs_profilehook
from repro.obs import trace as obs

#: How long the pump thread waits on the result queue before checking for
#: dead workers and shutdown; pure liveness, not a rate limit.
_PUMP_POLL_SECONDS = 0.2


class WorkerFailure(RuntimeError):
    """A worker process died or raised while executing a job."""


def _mp_context() -> multiprocessing.context.BaseContext:
    """The start method used for sweep workers (honours the env override)."""
    preferred = os.environ.get("REPRO_SWEEP_START_METHOD")
    methods = multiprocessing.get_all_start_methods()
    if preferred and preferred in methods:
        return multiprocessing.get_context(preferred)
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


@dataclass
class JobCompletion:
    """One finished job, as delivered to submit callbacks.

    ``error`` is None on success; on failure it carries the worker-side
    exception rendering (or a worker-death notice) and every other payload
    field is None.
    """

    key: str
    record: Optional[dict]
    result: Optional[object]
    stats: Optional[dict]
    error: Optional[str]


def _worker_main(
    worker_id: int,
    inbox,
    results,
    artifacts_root: Optional[str],
    shard_dir: Optional[str],
    obs_enabled: bool,
    profile_spec: Optional[str],
) -> None:
    """Worker process body: initialize once, execute jobs until sentinel.

    Imports the executor lazily to keep the module dependency one-way
    (executor imports this module at top level).
    """
    from repro.obs import events as obs_events
    from repro.sweep import executor

    executor._init_worker(artifacts_root, shard_dir, obs_enabled, profile_spec)
    while True:
        job = inbox.get()
        if job is None:
            return
        try:
            record, result = executor.execute_job(job)
            obs_events.flush_shard()
            stats = executor.artifact_cache().take_stats()
        except BaseException as error:  # noqa: BLE001 - must reach the parent
            try:
                results.put(
                    (
                        worker_id,
                        job.key,
                        None,
                        None,
                        None,
                        f"{type(error).__name__}: {error}",
                    )
                )
            except Exception:
                return
        else:
            results.put((worker_id, job.key, record, result, stats, None))


class WorkStealingScheduler:
    """Benchmark-affine job execution over persistent worker processes.

    Thread-safe: :meth:`submit` may be called from any thread (the
    service's event loop, the executor's caller) while the pump thread
    delivers completions.  Callbacks run on the pump thread -- bridge to
    your own execution context (``loop.call_soon_threadsafe``, a local
    queue) rather than doing heavy work in them.
    """

    def __init__(
        self,
        workers: int,
        artifacts_root: Union[Path, str, None] = None,
        shard_dir: Union[Path, str, None] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("a scheduler needs at least one worker")
        self._workers = workers
        self._lock = threading.Lock()
        self._deques: list[collections.deque] = [
            collections.deque() for _ in range(workers)
        ]
        self._outstanding: list[Optional[str]] = [None] * workers
        self._callbacks: dict[str, list[Callable[[JobCompletion], None]]] = {}
        self._queued = 0
        self._executed = 0
        self._failed = 0
        self._stolen = 0
        self._closed = False
        context = _mp_context()
        self._results = context.Queue()
        # SimpleQueue inboxes: no feeder thread per queue, and the parent's
        # put() is synchronous, so a fed job is on the wire before the lock
        # is released.
        self._inboxes = [context.SimpleQueue() for _ in range(workers)]
        initargs = (
            str(artifacts_root) if artifacts_root is not None else None,
            str(shard_dir) if shard_dir is not None else None,
            obs.enabled(),
            obs_profilehook.spec(),
        )
        self._procs = [
            context.Process(
                target=_worker_main,
                args=(index, self._inboxes[index], self._results, *initargs),
                daemon=True,
                name=f"sweep-worker-{index}",
            )
            for index in range(workers)
        ]
        self._alive = [True] * workers
        for proc in self._procs:
            proc.start()
        self._pump = threading.Thread(
            target=self._pump_loop, daemon=True, name="sweep-scheduler-pump"
        )
        self._pump.start()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def workers(self) -> int:
        """Number of worker processes (dead ones included)."""
        return self._workers

    def home_worker(self, benchmark: str) -> int:
        """The worker a benchmark's jobs are affine to."""
        return zlib.crc32(benchmark.encode("utf-8")) % self._workers

    def pending(self) -> dict[str, int]:
        """Queue depth right now: jobs queued and jobs running."""
        with self._lock:
            return {
                "queued": self._queued,
                "running": sum(
                    1 for key in self._outstanding if key is not None
                ),
            }

    def counters(self) -> dict[str, int]:
        """Lifetime counters (executed/failed jobs, steals)."""
        with self._lock:
            return {
                "executed": self._executed,
                "failed": self._failed,
                "stolen": self._stolen,
            }

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self, job, on_done: Callable[[JobCompletion], None]
    ) -> str:
        """Enqueue one job; ``on_done`` fires (pump thread) on completion.

        Returns ``"queued"`` when the job was newly enqueued on its home
        worker's deque, or ``"inflight"`` when the same key is already
        queued or running -- the callback is then subscribed to the
        existing execution and the job is *not* run twice.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("scheduler is closed")
            callbacks = self._callbacks.get(job.key)
            if callbacks is not None:
                callbacks.append(on_done)
                return "inflight"
            self._callbacks[job.key] = [on_done]
            self._deques[self.home_worker(job.benchmark)].append(job)
            self._queued += 1
            self._feed_locked()
        return "queued"

    def cancel(self, key: str) -> bool:
        """Remove a not-yet-started job; True when it was dequeued.

        A running job cannot be cancelled (False); its callbacks fire
        normally when it completes.
        """
        with self._lock:
            if key not in self._callbacks or key in self._outstanding:
                return False
            for deque_ in self._deques:
                for job in deque_:
                    if job.key == key:
                        deque_.remove(job)
                        self._queued -= 1
                        del self._callbacks[key]
                        return True
        return False

    # ------------------------------------------------------------------
    # Blocking execution (the executor's contract)
    # ------------------------------------------------------------------
    def run_all(
        self,
        jobs: Sequence,
        handle: Callable,
        on_stats: Optional[Callable[[dict], None]] = None,
    ) -> None:
        """Execute jobs, calling ``handle(job, record, result)`` here.

        The blocking twin of :meth:`submit`: completions are consumed on
        the calling thread in completion order, exactly like the old
        ``pool.imap_unordered`` loop, so store writes and progress
        callbacks keep running in the parent.  Raises
        :class:`WorkerFailure` on the first failed job.
        """
        completions: queue.Queue = queue.Queue()
        by_key = {}
        for job in jobs:
            by_key[job.key] = job
            self.submit(job, completions.put)
        for _ in range(len(jobs)):
            completion = completions.get()
            if completion.error is not None:
                raise WorkerFailure(
                    f"job {completion.key[:12]} failed: {completion.error}"
                )
            if on_stats is not None:
                on_stats(completion.stats)
            handle(by_key[completion.key], completion.record, completion.result)

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def close(self, timeout: float = 10.0) -> None:
        """Drain running jobs, stop the workers, reap the pump thread.

        Queued-but-unstarted jobs are *dropped*: their callbacks receive a
        ``"scheduler closed"`` failure completion.  Jobs already on a
        worker finish first (the exit sentinel queues behind them), and
        their callbacks fire normally -- a graceful drain is therefore
        "wait for your callbacks, then close".  Idempotent.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            dropped: list[tuple[str, Callable]] = []
            for deque_ in self._deques:
                for job in deque_:
                    for callback in self._callbacks.pop(job.key, []):
                        dropped.append((job.key, callback))
                deque_.clear()
            self._queued = 0
        for key, callback in dropped:
            callback(JobCompletion(key, None, None, None, "scheduler closed"))
        for index, inbox in enumerate(self._inboxes):
            try:
                inbox.put(None)
            except (OSError, ValueError):
                pass
        for proc in self._procs:
            proc.join(timeout=timeout)
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        self._pump.join(timeout=timeout)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _feed_locked(self) -> None:
        """Hand every idle worker its next job (lock held)."""
        if self._closed:
            return
        for index in range(self._workers):
            if not self._alive[index] or self._outstanding[index] is not None:
                continue
            job = self._next_job_locked(index)
            if job is None:
                continue
            self._outstanding[index] = job.key
            self._inboxes[index].put(job)

    def _next_job_locked(self, index: int) -> Optional[object]:
        """Own deque's head first, else steal the longest deque's tail."""
        own = self._deques[index]
        if own:
            self._queued -= 1
            return own.popleft()
        victim = max(range(self._workers), key=lambda i: len(self._deques[i]))
        if self._deques[victim]:
            self._queued -= 1
            self._stolen += 1
            return self._deques[victim].pop()
        return None

    def _pump_loop(self) -> None:
        while True:
            try:
                item = self._results.get(timeout=_PUMP_POLL_SECONDS)
            except queue.Empty:
                failures = self._reap_dead_workers()
                for completion, callbacks in failures:
                    for callback in callbacks:
                        callback(completion)
                with self._lock:
                    if self._closed and not self._callbacks:
                        return
                continue
            worker_id, key, record, result, stats, error = item
            with self._lock:
                if self._outstanding[worker_id] == key:
                    self._outstanding[worker_id] = None
                if error is None:
                    self._executed += 1
                else:
                    self._failed += 1
                callbacks = self._callbacks.pop(key, [])
                self._feed_locked()
            completion = JobCompletion(key, record, result, stats, error)
            for callback in callbacks:
                callback(completion)

    def _reap_dead_workers(self):
        """Fail the outstanding job of every worker that died mid-job.

        The dead worker's deque stays: live workers steal from it.  The
        slot itself is retired (no respawn) -- a worker death is an
        abnormal event the caller surfaces, not one to paper over.
        """
        failures = []
        with self._lock:
            for index in range(self._workers):
                if not self._alive[index]:
                    continue
                if self._outstanding[index] is None:
                    continue
                proc = self._procs[index]
                if proc.is_alive():
                    continue
                self._alive[index] = False
                key = self._outstanding[index]
                self._outstanding[index] = None
                self._failed += 1
                callbacks = self._callbacks.pop(key, [])
                failures.append(
                    (
                        JobCompletion(
                            key,
                            None,
                            None,
                            None,
                            f"worker died (exit code {proc.exitcode})",
                        ),
                        callbacks,
                    )
                )
            if failures:
                self._feed_locked()
        return failures

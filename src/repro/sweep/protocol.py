"""Wire protocol of the sweep service: newline-delimited JSON messages.

One connection, two directions, one JSON object per line (UTF-8,
``\\n``-terminated).  Client messages carry an ``op``; server messages
carry an ``event``.  The protocol is deliberately small and fully
self-describing so shell scripts, CI steps and tests can speak it with a
few lines of python (or ``nc`` and ``jq``).

Client -> server::

    {"op": "submit", "spec": {...SweepSpec.to_mapping()...},
     "wait": true|false}                  -- run a grid (benchmark granularity)
    {"op": "cancel", "request": "req-3"}  -- cancel one of *this client's* requests
    {"op": "stats"}                       -- service counters and queue depth
    {"op": "ping"}                        -- liveness probe
    {"op": "shutdown"}                    -- drain and stop (tests/CI)

Server -> client (every reply names the request it belongs to)::

    {"event": "accepted", "request": ..., "total": N,
     "new": n, "stored": s, "inflight": i}          -- dedup classification
    {"event": "rejected", "error": ...,
     ["retry_after": seconds]}                      -- backpressure / draining
    {"event": "progress", "request": ..., "done": k, "total": N,
     "key": ..., "origin": "stored"|"inflight"|"executed",
     "record": {...}}                               -- one record served
    {"event": "job_failed", "request": ..., "key": ..., "error": ...}
    {"event": "done", "request": ..., "total": N, "executed": e,
     "stored": s, "inflight": i, "failed": f,
     "cancelled": bool, "elapsed_seconds": ...}     -- request finished
    {"event": "stats", ...}
    {"event": "pong"} / {"event": "ok"} / {"event": "error", "error": ...}

``submit`` with ``"wait": false`` detaches the request: the client gets
the ``accepted`` classification and may disconnect; execution continues
and later clients find the records in the store.  A *waiting* client's
requests are cancelled automatically when its connection drops --
mirroring Ctrl-C on a plain ``repro-sweep run``.

:class:`ServiceClient` is the blocking client the CLI, the tests and the
perf harness share; the server side lives in
:mod:`repro.sweep.service`.
"""

from __future__ import annotations

import json
import socket
from pathlib import Path
from typing import Callable, Iterator, Optional, Union

#: Version of the message format, echoed in ``accepted`` events.  Bump
#: when field meanings change so old clients fail loudly, not subtly.
PROTOCOL_VERSION = 1

#: Default name of the service's unix socket, directly under the store
#: root it serves -- ``submit <store>`` finds the server with no extra
#: flags, and two servers can never share a socket without sharing a
#: store.
SOCKET_FILENAME = "service.sock"


class ProtocolError(ValueError):
    """A line that is not a valid protocol message."""


def default_socket_path(store_root: Union[Path, str]) -> Path:
    """Where ``serve``/``submit`` rendezvous for a given store."""
    return Path(store_root) / SOCKET_FILENAME


def encode_message(message: dict) -> bytes:
    """One message as a complete JSONL line (trailing newline included)."""
    return json.dumps(message, sort_keys=True).encode("utf-8") + b"\n"


def decode_message(line: Union[bytes, str]) -> dict:
    """Parse one JSONL line into a message dict.

    Raises :class:`ProtocolError` on undecodable bytes, invalid JSON or a
    non-object payload -- the server answers those with an ``error`` event
    instead of dropping the connection.
    """
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as error:
            raise ProtocolError(f"undecodable message bytes: {error}") from error
    line = line.strip()
    if not line:
        raise ProtocolError("empty message line")
    try:
        message = json.loads(line)
    except ValueError as error:
        raise ProtocolError(f"invalid JSON: {error}") from error
    if not isinstance(message, dict):
        raise ProtocolError(
            f"message must be a JSON object, got {type(message).__name__}"
        )
    return message


class ServiceClient:
    """Blocking JSONL client of a running sweep service.

    Connects over the store's unix socket (default) or TCP.  One client is
    one connection; methods are synchronous and must not be interleaved
    from multiple threads.  Use as a context manager to close cleanly.
    """

    def __init__(
        self,
        socket_path: Union[Path, str, None] = None,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
        timeout: Optional[float] = 300.0,
    ) -> None:
        if (socket_path is None) == (port is None):
            raise ValueError("pass exactly one of socket_path or port")
        if socket_path is not None:
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(timeout)
            self._sock.connect(str(socket_path))
        else:
            self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rb")

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def close(self) -> None:
        """Close the connection (idempotent)."""
        try:
            self._file.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    # ------------------------------------------------------------------
    # Message primitives
    # ------------------------------------------------------------------
    def send(self, message: dict) -> None:
        """Send one message."""
        self._sock.sendall(encode_message(message))

    def receive(self) -> dict:
        """Block for the next server event.

        Raises ConnectionError at EOF (server gone mid-conversation).
        """
        line = self._file.readline()
        if not line:
            raise ConnectionError("service closed the connection")
        return decode_message(line)

    def events(self) -> Iterator[dict]:
        """Iterate server events until the connection closes."""
        while True:
            line = self._file.readline()
            if not line:
                return
            yield decode_message(line)

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def submit(
        self,
        spec_mapping: dict,
        wait: bool = True,
        on_event: Optional[Callable[[dict], None]] = None,
    ) -> dict:
        """Submit one sweep spec (its ``to_mapping()`` form).

        With ``wait`` (default) streams events -- each through
        ``on_event`` when given -- until the request's ``done`` event,
        which is returned.  Without ``wait`` returns the ``accepted``
        event immediately (execution continues server-side).  A
        ``rejected`` event is returned as-is either way; callers check
        ``"error"`` in the result.
        """
        self.send({"op": "submit", "spec": spec_mapping, "wait": wait})
        reply = self.receive()
        if on_event is not None:
            on_event(reply)
        if reply.get("event") == "rejected" or not wait:
            return reply
        request_id = reply.get("request")
        while True:
            event = self.receive()
            if on_event is not None:
                on_event(event)
            if (
                event.get("event") == "done"
                and event.get("request") == request_id
            ):
                return event

    def cancel(self, request_id: str) -> dict:
        """Cancel one of this connection's requests; returns its done event."""
        self.send({"op": "cancel", "request": request_id})
        while True:
            event = self.receive()
            if event.get("event") == "error":
                return event
            if (
                event.get("event") == "done"
                and event.get("request") == request_id
            ):
                return event

    def stats(self) -> dict:
        """The service's stats event (counters, queue depth, workers)."""
        self.send({"op": "stats"})
        while True:
            event = self.receive()
            if event.get("event") in ("stats", "error"):
                return event

    def ping(self) -> dict:
        """Liveness probe."""
        self.send({"op": "ping"})
        return self.receive()

    def shutdown(self) -> dict:
        """Ask the service to drain and stop (tests and CI teardown)."""
        self.send({"op": "shutdown"})
        return self.receive()

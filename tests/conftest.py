"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.ir.builder import LoopBuilder
from repro.ir.loop import Loop, StorageClass
from repro.machine.config import MachineConfig
from repro.scheduler.core import SchedulingHeuristic
from repro.scheduler.pipeline import CompiledLoop, CompilerOptions, compile_loop
from repro.scheduler.unrolling import UnrollPolicy


@pytest.fixture
def interleaved_config() -> MachineConfig:
    """The default word-interleaved machine of Table 2."""
    return MachineConfig.word_interleaved()


@pytest.fixture
def interleaved_ab_config() -> MachineConfig:
    """Word-interleaved machine with 16-entry Attraction Buffers."""
    return MachineConfig.word_interleaved(attraction_buffers=True)


@pytest.fixture
def unified_config() -> MachineConfig:
    """Unified-cache machine with the optimistic 1-cycle latency."""
    return MachineConfig.unified(latency=1)


@pytest.fixture
def multivliw_config() -> MachineConfig:
    """The cache-coherent multiVLIW machine."""
    return MachineConfig.multivliw()


def build_streaming_loop(
    name: str = "stream",
    trip_count: int = 512,
    element_bytes: int = 4,
    storage: StorageClass = StorageClass.GLOBAL,
) -> Loop:
    """A small dependence-free streaming loop used by many tests."""
    builder = LoopBuilder(name, trip_count=trip_count)
    builder.array("src", element_bytes, 2048, storage=storage)
    builder.array("dst", element_bytes, 2048, storage=storage)
    loaded = builder.load("ld", "src", stride=element_bytes)
    scaled = builder.compute("scale", "mul", inputs=[loaded])
    shifted = builder.compute("shift", "shl", inputs=[scaled])
    builder.store("st", "dst", stride=element_bytes, inputs=[shifted])
    return builder.build()


def build_recurrence_loop(name: str = "iir", trip_count: int = 512) -> Loop:
    """A loop whose value recurrence flows through memory (IIR filter)."""
    builder = LoopBuilder(name, trip_count=trip_count)
    builder.array("x", 4, 2048)
    builder.array("y", 4, 2048)
    x = builder.load("ld_x", "x", stride=4)
    y_prev = builder.load("ld_y", "y", stride=4, offset=-4)
    prod = builder.compute("mul", "fmul", inputs=[x, y_prev])
    total = builder.compute("acc", "fadd", inputs=[prod])
    builder.store("st_y", "y", stride=4, inputs=[total])
    return builder.build()


def build_indirect_loop(name: str = "lookup", trip_count: int = 512) -> Loop:
    """A table-lookup loop with an indirect load."""
    builder = LoopBuilder(name, trip_count=trip_count)
    builder.array("idx", 2, 2048)
    builder.array("table", 4, 512, index_range=512)
    builder.array("out", 4, 2048)
    index = builder.load("ld_idx", "idx", stride=2)
    value = builder.load(
        "ld_tab", "table", indirect=True, index_array="idx", inputs=[index]
    )
    doubled = builder.compute("dbl", "add", inputs=[value])
    builder.store("st_out", "out", stride=4, inputs=[doubled])
    return builder.build()


@pytest.fixture
def streaming_loop() -> Loop:
    """Small streaming loop."""
    return build_streaming_loop()


@pytest.fixture
def recurrence_loop() -> Loop:
    """Small memory-recurrence loop."""
    return build_recurrence_loop()


@pytest.fixture
def indirect_loop() -> Loop:
    """Small indirect-access loop."""
    return build_indirect_loop()


@pytest.fixture
def compiled_streaming_ipbc(interleaved_config) -> CompiledLoop:
    """The streaming loop compiled with IPBC on the interleaved machine."""
    options = CompilerOptions(
        heuristic=SchedulingHeuristic.IPBC, unroll_policy=UnrollPolicy.SELECTIVE
    )
    return compile_loop(build_streaming_loop(), interleaved_config, options)

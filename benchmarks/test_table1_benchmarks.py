"""Benchmark E-T1: regenerate Table 1 (benchmark characterisation)."""

from benchmarks.conftest import save_report
from repro.experiments.table1 import run_table1


def test_table1_benchmark_characterisation(benchmark, results_dir):
    rows, result = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    save_report(results_dir, "table1", result.render())
    assert len(rows) == 14
    # Every synthetic benchmark reproduces the paper's dominant data size.
    assert all(
        row["dominant_size_bytes"] == row["paper_dominant_size_bytes"] for row in rows
    )

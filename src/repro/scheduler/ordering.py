"""Node ordering for modulo scheduling (Swing Modulo Scheduling style).

Both the BASE algorithm and the interleaved-cache algorithm order the loop's
operations with the approach of Llosa et al. (Swing Modulo Scheduling,
PACT'96), chosen by the paper for its good II and register-pressure
behaviour.  The ordering has two key properties that this implementation
preserves:

1. recurrences are given priority according to how much they constrain the
   II, from most to least constraining; and
2. apart from one node per recurrence, every node is appended to the order
   when only its predecessors *or* only its successors are already ordered
   (never both sides at once), which keeps value lifetimes short.

The ordering alternates between a forward sweep (append nodes whose ordered
neighbours are predecessors, sorted by earliest start) and a backward sweep
(append nodes whose ordered neighbours are successors, sorted by latest
start), as in the original algorithm.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.ir.ddg import DataDependenceGraph, Recurrence
from repro.ir.operation import Operation


def _priority_sets(
    ddg: DataDependenceGraph,
    recurrences: Sequence[Recurrence],
    latency_of: Callable[[Operation], int],
) -> list[set[Operation]]:
    """Group operations into ordered priority sets.

    The first sets are the recurrences, from most to least constraining;
    the final set holds the remaining (non-recurrent) operations.  A node
    that belongs to several recurrences stays in the most constraining one.
    """
    ranked = sorted(
        recurrences,
        key=lambda rec: (-rec.initiation_interval(latency_of), len(rec.nodes)),
    )
    seen: set[Operation] = set()
    sets: list[set[Operation]] = []
    for recurrence in ranked:
        fresh = {op for op in recurrence.nodes if op not in seen}
        if fresh:
            sets.append(fresh)
            seen.update(fresh)
    rest = {op for op in ddg.operations if op not in seen}
    if rest:
        sets.append(rest)
    return sets


def _schedule_depths(
    ddg: DataDependenceGraph, latency_of: Callable[[Operation], int]
) -> tuple[dict[Operation, int], dict[Operation, int]]:
    """ASAP-like depth and ALAP-like height over intra-iteration edges.

    Loop-carried edges are ignored so the graph is acyclic; the depths are
    only used as ordering priorities, not as scheduling bounds.
    """
    ops = ddg.operations
    depth: dict[Operation, int] = {op: 0 for op in ops}
    # Intra-iteration edges with their weights resolved once; the
    # relaxation passes below then run over plain tuples.
    edges = [
        (dep.src, dep.dst, max(1, latency_of(dep.src)))
        for dep in ddg.dependences()
        if dep.distance == 0
    ]
    # Operations are inserted in program order, which is a topological order
    # for the intra-iteration subgraph in well-formed loops; a few relaxation
    # passes make the computation robust to arbitrary insertion orders.
    for _ in range(max(1, len(ops))):
        changed = False
        for src, dst, weight in edges:
            candidate = depth[src] + weight
            if candidate > depth[dst]:
                depth[dst] = candidate
                changed = True
        if not changed:
            break
    height: dict[Operation, int] = {op: 0 for op in ops}
    for _ in range(max(1, len(ops))):
        changed = False
        for src, dst, weight in edges:
            candidate = height[dst] + weight
            if candidate > height[src]:
                height[src] = candidate
                changed = True
        if not changed:
            break
    return depth, height


def order_nodes(
    ddg: DataDependenceGraph,
    latency_of: Callable[[Operation], int],
    recurrences: Iterable[Recurrence] | None = None,
) -> list[Operation]:
    """Produce the scheduling order of the loop's operations.

    The order combines two requirements:

    * the SMS priorities -- operations of the most II-constraining
      recurrences come first, and within a region operations close to their
      neighbours in the dependence graph stay close in the order -- which
      keep the II and the register pressure low; and
    * a topological constraint over the intra-iteration (distance-0)
      dependences, which guarantees that when the greedy, no-backtracking
      scheduler places an operation, every already-placed neighbour reached
      through a distance-0 edge is a predecessor.  Any already-placed
      successor is then connected through a loop-carried edge, whose
      scheduling window widens as the II grows, so increasing the II always
      eventually yields a feasible schedule.
    """
    recurrence_list = list(recurrences) if recurrences is not None else ddg.recurrences()
    sets = _priority_sets(ddg, recurrence_list, latency_of)
    depth, height = _schedule_depths(ddg, latency_of)
    program_order = {op: index for index, op in enumerate(ddg.operations)}
    set_rank = {}
    for rank, current_set in enumerate(sets):
        for op in current_set:
            set_rank[op] = rank

    # Kahn's algorithm over the distance-0 subgraph, breaking ties with the
    # SMS priorities.
    remaining_preds: dict[Operation, int] = {op: 0 for op in ddg.operations}
    zero_successors: dict[Operation, list[Operation]] = {
        op: [] for op in ddg.operations
    }
    for dep in ddg.dependences():
        if dep.distance == 0 and dep.src != dep.dst:
            remaining_preds[dep.dst] += 1
            zero_successors[dep.src].append(dep.dst)

    ready = {op for op, count in remaining_preds.items() if count == 0}
    pending = set(ddg.operations)
    ordered: list[Operation] = []

    def priority(op: Operation) -> tuple:
        return (
            set_rank.get(op, len(sets)),
            -(depth[op] + height[op]),
            depth[op],
            program_order[op],
        )

    while pending:
        candidates = ready & pending
        if not candidates:
            # A distance-0 cycle (unschedulable anyway) or numerical corner
            # case: fall back to the least-constrained pending node so the
            # ordering always terminates.
            candidates = {
                min(pending, key=lambda op: (remaining_preds[op], *priority(op)))
            }
        chosen = min(candidates, key=priority)
        ordered.append(chosen)
        pending.discard(chosen)
        ready.discard(chosen)
        for successor in zero_successors[chosen]:
            remaining_preds[successor] -= 1
            if remaining_preds[successor] <= 0:
                ready.add(successor)
    return ordered


def ordering_quality(
    ddg: DataDependenceGraph, order: Sequence[Operation]
) -> dict[str, float]:
    """Measure how well an order satisfies the SMS one-sided property.

    Returns the fraction of nodes whose previously-ordered neighbours are all
    predecessors or all successors (the property Llosa et al. aim for), which
    the test suite uses to validate the ordering implementation.
    """
    position = {op: index for index, op in enumerate(order)}
    one_sided = 0
    considered = 0
    for op in order:
        preds_before = [
            pred for pred in ddg.predecessors(op) if position.get(pred, 1 << 30) < position[op]
        ]
        succs_before = [
            succ for succ in ddg.successors(op) if position.get(succ, 1 << 30) < position[op]
        ]
        if not preds_before and not succs_before:
            continue
        considered += 1
        if not preds_before or not succs_before:
            one_sided += 1
    return {
        "one_sided_fraction": one_sided / considered if considered else 1.0,
        "considered": float(considered),
    }

"""Tests of the observability subsystem (repro.obs)."""

from __future__ import annotations

import json
import os

import pytest

from repro.obs import events as obs_events
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.export import (
    chrome_trace,
    export_chrome_trace,
    percentile,
    span_durations,
    timings_summary,
)


@pytest.fixture(autouse=True)
def clean_obs_state():
    """Every test starts with telemetry enabled and empty buffers."""
    previous = obs_trace.set_enabled(True)
    obs_trace.reset()
    obs_metrics.registry().clear()
    obs_events.configure_shard(None)
    yield
    obs_trace.set_enabled(previous)
    obs_trace.reset()
    obs_metrics.registry().clear()
    obs_events.configure_shard(None)


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------
class TestSpans:
    def test_nesting_records_parent_links(self):
        with obs_trace.span("outer") as outer:
            with obs_trace.span("middle") as middle:
                with obs_trace.span("inner"):
                    pass
            with obs_trace.span("sibling"):
                pass
        events = {e["name"]: e for e in obs_trace.take_events()}
        assert set(events) == {"outer", "middle", "inner", "sibling"}
        assert events["outer"]["parent"] is None
        assert events["middle"]["parent"] == outer.id
        assert events["inner"]["parent"] == middle.id
        assert events["sibling"]["parent"] == outer.id

    def test_events_carry_timing_and_process_identity(self):
        with obs_trace.span("work", label="x"):
            pass
        (event,) = obs_trace.take_events()
        assert event["kind"] == "span"
        assert event["pid"] == os.getpid()
        assert event["dur"] >= 0.0
        assert event["ts"] > 0.0
        assert event["attrs"] == {"label": "x"}

    def test_current_span_id_tracks_the_stack(self):
        assert obs_trace.current_span_id() is None
        with obs_trace.span("outer") as outer:
            assert obs_trace.current_span_id() == outer.id
            with obs_trace.span("inner") as inner:
                assert obs_trace.current_span_id() == inner.id
            assert obs_trace.current_span_id() == outer.id
        assert obs_trace.current_span_id() is None
        obs_trace.take_events()

    def test_annotate_attaches_late_attributes(self):
        with obs_trace.span("lookup") as span:
            span.annotate(cache_hit=True)
        (event,) = obs_trace.take_events()
        assert event["attrs"]["cache_hit"] is True

    def test_exception_marks_the_span_and_propagates(self):
        with pytest.raises(RuntimeError):
            with obs_trace.span("doomed"):
                raise RuntimeError("boom")
        (event,) = obs_trace.take_events()
        assert event["attrs"]["error"] == "RuntimeError"

    def test_buffer_is_bounded(self):
        cap = obs_trace.MAX_BUFFERED_EVENTS
        for _ in range(cap + 1):
            with obs_trace.span("tick"):
                pass
        overview = obs_trace.trace_overview()
        assert overview["pending"] <= cap
        assert overview["dropped"] > 0
        obs_trace.take_events()


class TestDisabledMode:
    def test_disabled_span_is_the_shared_noop_singleton(self):
        obs_trace.set_enabled(False)
        first = obs_trace.span("a", attr=1)
        second = obs_trace.span("b")
        assert first is second is obs_trace.NOOP_SPAN
        with first:
            pass
        assert obs_trace.take_events() == []

    def test_measured_span_still_measures_when_disabled(self):
        obs_trace.set_enabled(False)
        with obs_trace.measured_span("timed") as span:
            sum(range(1000))
        assert span.elapsed > 0.0
        assert span.id is None
        assert obs_trace.take_events() == []

    def test_measured_span_records_when_enabled(self):
        with obs_trace.measured_span("timed") as span:
            pass
        assert span.elapsed >= 0.0
        (event,) = obs_trace.take_events()
        assert event["id"] == span.id

    def test_env_values_disable(self, monkeypatch):
        for value in ("off", "0", "FALSE", "No", "disabled"):
            monkeypatch.setenv(obs_trace.ENV_VAR, value)
            assert obs_trace.refresh_from_env() is False
        monkeypatch.setenv(obs_trace.ENV_VAR, "on")
        assert obs_trace.refresh_from_env() is True
        monkeypatch.delenv(obs_trace.ENV_VAR)
        assert obs_trace.refresh_from_env() is True


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counters_accumulate_and_reject_negative(self):
        registry = obs_metrics.MetricsRegistry()
        registry.counter("hits").inc()
        registry.counter("hits").inc(4)
        assert registry.snapshot()["counters"]["hits"] == 5
        with pytest.raises(ValueError):
            registry.counter("hits").inc(-1)

    def test_take_snapshot_resets(self):
        registry = obs_metrics.MetricsRegistry()
        registry.counter("n").inc(3)
        first = registry.take_snapshot()
        assert first["counters"] == {"n": 3}
        assert registry.take_snapshot()["counters"] == {}

    def test_merge_is_associative_and_commutative(self):
        # Durations are exact binary floats, so even the histogram totals
        # compare bit-identical whichever way the merges are grouped.
        snapshots = []
        for values in ((1, 0.25), (2, 0.5), (4, 2.0)):
            registry = obs_metrics.MetricsRegistry()
            count, duration = values
            registry.counter("jobs").inc(count)
            registry.histogram("dur").observe(duration)
            snapshots.append(registry.take_snapshot())
        a, b, c = snapshots

        def merged(*parts):
            return obs_metrics.merge_snapshots(parts)

        left = merged(merged(a, b), c)
        right = merged(a, merged(b, c))
        swapped = merged(c, a, b)
        assert left == right == swapped
        assert left["counters"]["jobs"] == 7
        assert left["histograms"]["dur"]["count"] == 3
        assert left["histograms"]["dur"]["total"] == 2.75
        assert left["histograms"]["dur"]["min"] == 0.25
        assert left["histograms"]["dur"]["max"] == 2.0

    def test_merge_with_empty_is_identity(self):
        registry = obs_metrics.MetricsRegistry()
        registry.counter("x").inc(2)
        registry.gauge("depth").set(7)
        snapshot = registry.take_snapshot()
        remerged = obs_metrics.merge_snapshots(
            [obs_metrics.empty_snapshot(), snapshot, {}]
        )
        assert remerged == obs_metrics.merge_snapshots([snapshot])

    def test_gauge_keeps_latest_write(self):
        first = obs_metrics.MetricsRegistry()
        first.gauge("depth").set(3)
        early = first.take_snapshot()
        second = obs_metrics.MetricsRegistry()
        second.gauge("depth").set(9)
        late = second.take_snapshot()
        merged = obs_metrics.merge_snapshots([late, early])
        assert merged["gauges"]["depth"]["value"] == 9

    def test_gauge_updated_tie_breaks_on_value(self):
        # Two workers can stamp a gauge at the same wall-clock instant;
        # the (updated, value) ordering must stay deterministic whichever
        # way the snapshots arrive.
        def snap(value, updated):
            base = obs_metrics.empty_snapshot()
            base["gauges"] = {"depth": {"value": value, "updated": updated}}
            return base

        a, b = snap(3, 100.0), snap(9, 100.0)
        forward = obs_metrics.merge_snapshots([a, b])
        backward = obs_metrics.merge_snapshots([b, a])
        assert forward == backward
        assert forward["gauges"]["depth"]["value"] == 9
        # A later update always beats a larger tied value.
        newer = snap(1, 101.0)
        merged = obs_metrics.merge_snapshots([b, newer])
        assert merged["gauges"]["depth"] == {"value": 1, "updated": 101.0}

    def test_merge_empty_snapshot_is_identity_in_any_position(self):
        registry = obs_metrics.MetricsRegistry()
        registry.counter("jobs").inc(3)
        registry.gauge("depth").set(2)
        registry.histogram("dur").observe(0.5)
        snapshot = registry.take_snapshot()
        alone = obs_metrics.merge_snapshots([snapshot])
        for parts in (
            [obs_metrics.empty_snapshot(), snapshot],
            [snapshot, obs_metrics.empty_snapshot()],
            [
                obs_metrics.empty_snapshot(),
                snapshot,
                obs_metrics.empty_snapshot(),
            ],
        ):
            assert obs_metrics.merge_snapshots(parts) == alone
        # Merging nothing but empties yields an empty snapshot.
        merged = obs_metrics.merge_snapshots(
            [obs_metrics.empty_snapshot(), obs_metrics.empty_snapshot()]
        )
        assert merged == obs_metrics.empty_snapshot()

    def test_bucket_mismatch_error_names_the_histogram(self):
        a = obs_metrics.MetricsRegistry()
        a.histogram("stage_dur", buckets=(1.0, 2.0)).observe(0.5)
        b = obs_metrics.MetricsRegistry()
        b.histogram("stage_dur", buckets=(1.0, 4.0)).observe(0.5)
        with pytest.raises(ValueError, match="stage_dur"):
            obs_metrics.merge_snapshots(
                [a.take_snapshot(), b.take_snapshot()]
            )

    def test_merge_rejects_foreign_schema(self):
        bad = obs_metrics.empty_snapshot()
        bad["schema"] = 999
        with pytest.raises(ValueError):
            obs_metrics.merge_snapshots([bad])

    def test_merge_rejects_mismatched_buckets(self):
        a = obs_metrics.MetricsRegistry()
        a.histogram("d", buckets=(1.0,)).observe(0.5)
        b = obs_metrics.MetricsRegistry()
        b.histogram("d", buckets=(2.0,)).observe(0.5)
        with pytest.raises(ValueError):
            obs_metrics.merge_snapshots([a.take_snapshot(), b.take_snapshot()])


# ----------------------------------------------------------------------
# JSONL shards and run finalization
# ----------------------------------------------------------------------
class TestEventLog:
    def test_append_and_read_roundtrip(self, tmp_path):
        path = tmp_path / "log.jsonl"
        written = obs_events.append_events(
            path, [{"kind": "span", "name": "a"}, {"kind": "span", "name": "b"}]
        )
        assert written == 2
        names = [event["name"] for event in obs_events.read_events(path)]
        assert names == ["a", "b"]

    def test_read_skips_torn_and_foreign_lines(self, tmp_path):
        path = tmp_path / "log.jsonl"
        obs_events.append_events(path, [{"kind": "span", "name": "good"}])
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"schema": 999, "name": "stale"}\n')
            handle.write('{"kind": "span", "na')  # torn trailing line
        names = [event["name"] for event in obs_events.read_events(path)]
        assert names == ["good"]

    def test_flush_shard_writes_spans_and_metrics(self, tmp_path):
        shard = obs_events.configure_shard(tmp_path)
        assert shard is not None and str(os.getpid()) in shard.name
        with obs_trace.span("job"):
            pass
        obs_metrics.registry().counter("jobs").inc()
        assert obs_events.flush_shard() == 2
        kinds = sorted(e["kind"] for e in obs_events.read_events(shard))
        assert kinds == ["metrics", "span"]
        # The registry was snapshot-and-reset, so a second flush with no
        # new activity writes nothing.
        assert obs_events.flush_shard() == 0

    def test_flush_shard_is_noop_when_disabled(self, tmp_path):
        obs_events.configure_shard(tmp_path)
        obs_trace.set_enabled(False)
        obs_metrics.registry().counter("jobs").inc()
        assert obs_events.flush_shard() == 0

    def test_finalize_run_merges_shards_and_reparents(self, tmp_path):
        # Parent process: a root span plus a child recorded in-buffer.
        with obs_trace.span("sweep.run") as root:
            with obs_trace.span("prune"):
                pass
        # Simulate two pool workers' shards: top-level job spans from
        # other pids, plus their metrics snapshots.
        for fake_pid, count in ((11111, 2), (22222, 3)):
            registry = obs_metrics.MetricsRegistry()
            registry.counter("jobs").inc(count)
            shard = obs_events.obs_dir(tmp_path) / f"worker-{fake_pid}.jsonl"
            obs_events.append_events(
                shard,
                [
                    {
                        "kind": "span",
                        "id": f"{fake_pid}:1",
                        "parent": None,
                        "name": "sweep.job",
                        "ts": 2.0,
                        "dur": 0.5,
                        "pid": fake_pid,
                        "tid": 1,
                        "attrs": {},
                    },
                    {
                        "kind": "metrics",
                        "pid": fake_pid,
                        "snapshot": registry.take_snapshot(),
                    },
                ],
            )

        directory = obs_events.finalize_run(tmp_path, run_id=root.id)

        events = list(
            obs_events.read_events(directory / obs_events.TRACE_FILENAME)
        )
        by_name = {}
        for event in events:
            by_name.setdefault(event["name"], []).append(event)
        assert len(by_name["sweep.job"]) == 2
        # Orphan worker spans hang off the run root; the root itself and
        # its in-process child keep their original links.
        assert all(e["parent"] == root.id for e in by_name["sweep.job"])
        assert by_name["sweep.run"][0]["parent"] is None
        assert by_name["prune"][0]["parent"] == root.id
        # Shards are consumed, metrics merged exactly across workers.
        assert not list(directory.glob("worker-*.jsonl"))
        metrics = obs_events.load_metrics(tmp_path)
        assert metrics["counters"]["jobs"] == 5
        manifest = obs_events.load_manifest(tmp_path)
        assert manifest["schema"] == obs_events.MANIFEST_SCHEMA
        assert manifest["event_schema"] == obs_events.EVENT_SCHEMA

    def test_finalize_run_overwrites_previous_trace(self, tmp_path):
        with obs_trace.span("sweep.run") as first:
            pass
        obs_events.finalize_run(tmp_path, run_id=first.id)
        with obs_trace.span("sweep.run") as second:
            pass
        directory = obs_events.finalize_run(tmp_path, run_id=second.id)
        events = list(
            obs_events.read_events(directory / obs_events.TRACE_FILENAME)
        )
        assert [e["id"] for e in events] == [second.id]


# ----------------------------------------------------------------------
# Manifest provenance
# ----------------------------------------------------------------------
class TestGitDescribe:
    def test_missing_git_binary_yields_none(self, monkeypatch):
        def raise_missing(*args, **kwargs):
            raise FileNotFoundError("git")

        monkeypatch.setattr(obs_events.subprocess, "run", raise_missing)
        assert obs_events._git_describe() is None

    def test_not_a_repository_yields_none_without_leaking_stderr(
        self, monkeypatch, capfd
    ):
        def fail_like_git(*args, **kwargs):
            # A real `git describe` outside a repo prints to stderr; the
            # probe must capture it (the CLI's output stays clean) and
            # report an explicit None.
            assert kwargs.get("capture_output") is True
            return obs_events.subprocess.CompletedProcess(
                args=args, returncode=128, stdout="",
                stderr="fatal: not a git repository\n",
            )

        monkeypatch.setattr(obs_events.subprocess, "run", fail_like_git)
        assert obs_events._git_describe() is None
        manifest = obs_events.build_manifest()
        assert manifest["git_describe"] is None
        captured = capfd.readouterr()
        assert captured.out == "" and captured.err == ""

    def test_timeout_and_oserror_yield_none(self, monkeypatch):
        def hang(*args, **kwargs):
            raise obs_events.subprocess.TimeoutExpired(cmd="git", timeout=5)

        monkeypatch.setattr(obs_events.subprocess, "run", hang)
        assert obs_events._git_describe() is None

    def test_empty_output_is_reported_as_none(self, monkeypatch):
        monkeypatch.setattr(
            obs_events.subprocess,
            "run",
            lambda *a, **k: obs_events.subprocess.CompletedProcess(
                args=a, returncode=0, stdout="  \n", stderr=""
            ),
        )
        assert obs_events._git_describe() is None


# ----------------------------------------------------------------------
# Exports
# ----------------------------------------------------------------------
class TestExport:
    def _span(self, name, ts, dur, span_id="1:1", parent=None):
        return {
            "kind": "span",
            "id": span_id,
            "parent": parent,
            "name": name,
            "ts": ts,
            "dur": dur,
            "pid": 1,
            "tid": 1,
            "attrs": {},
        }

    def test_chrome_trace_units_and_links(self):
        document = chrome_trace(
            [
                self._span("sweep.run", ts=10.0, dur=2.0),
                self._span("stage.unroll", ts=10.5, dur=0.25, span_id="1:2", parent="1:1"),
                {"kind": "metrics", "snapshot": {}},
            ]
        )
        events = document["traceEvents"]
        assert len(events) == 2
        run, stage = events
        assert run["ph"] == "X"
        assert run["ts"] == pytest.approx(10.0 * 1e6)
        assert run["dur"] == pytest.approx(2.0 * 1e6)
        assert run["cat"] == "sweep"
        assert stage["cat"] == "stage"
        assert stage["args"]["parent"] == "1:1"

    def test_export_writes_valid_json(self, tmp_path):
        output = tmp_path / "nested" / "trace.json"
        count = export_chrome_trace(
            [self._span("sim.replay", ts=1.0, dur=0.5)], output
        )
        assert count == 1
        document = json.loads(output.read_text(encoding="utf-8"))
        assert document["traceEvents"][0]["name"] == "sim.replay"

    def test_percentile_nearest_rank(self):
        values = [float(i) for i in range(1, 12)]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 0.5) == 6.0
        assert percentile(values, 1.0) == 11.0
        with pytest.raises(ValueError):
            percentile([], 0.5)

    def test_timings_summary_lists_each_span_name(self):
        text = timings_summary(
            [
                self._span("stage.unroll", ts=1.0, dur=0.002),
                self._span("stage.unroll", ts=2.0, dur=0.004),
                self._span("sweep.job", ts=1.0, dur=1.5),
            ]
        )
        assert "stage.unroll" in text
        assert "sweep.job" in text
        assert "p90" in text
        durations = span_durations(
            [
                self._span("b", ts=1.0, dur=2.0),
                self._span("a", ts=1.0, dur=1.0),
            ]
        )
        assert list(durations) == ["a", "b"]

"""The compilation pipeline: unroll, profile, assign latencies, schedule.

This module glues the individual phases of Section 4.3.1 into the flow the
experiments use, as an explicit **staged pipeline**:

1. :class:`UnrollStage` -- compute the candidate unrolling factors of the
   loop (no unrolling, unroll-by-N, OUF, or the selective combination),
   profiling the original body on the *profile* data set to filter
   never-hitting instructions out of the OUF;
2. :class:`ProfileStage` -- profile every unrolled variant;
3. :class:`LatencyStage` -- run the selective latency assignment on every
   variant;
4. :class:`ScheduleStage` -- order and schedule every variant with the
   requested cluster heuristic and keep the one with the smallest
   estimated execution time ``(iterations + SC - 1) * II``.

:func:`compile_loop` drives the four stages and returns a
:class:`CompiledLoop` bundling everything later phases need: the scheduled
variant, its profile, the latency assignment and the schedule itself.

Each stage declares -- via ``machine_keys`` / ``option_keys`` -- exactly
which slice of ``(loop, MachineConfig, CompilerOptions)`` its output
depends on, and :meth:`PipelineStage.key` derives a content-addressed
stage key from that slice.  Two grid points that differ only in knobs
*downstream* of a stage (e.g. the scheduling heuristic, which only the
schedule stage reads, or the Attraction Buffer configuration, which only
the simulator reads) share that stage's key, so a stage cache -- see
:class:`repro.sweep.artifacts.ArtifactCache` -- computes the stage once
for the whole grid.  Stage payloads are process-independent: operations
are referenced by program-order index, never by ``uid`` (uids depend on
process history), so artifacts persisted by one worker rehydrate exactly
in another.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Mapping, Optional, Protocol

from repro.ir.loop import Loop
from repro.obs import trace as obs
from repro.ir.unroll import unroll_loop
from repro.machine.config import CacheOrganization, MachineConfig
from repro.profiling.profiler import LoopProfile, profile_loop
from repro.scheduler.core import SchedulingHeuristic, schedule_loop
from repro.scheduler.latency import LatencyAssignment, assign_latencies
from repro.scheduler.schedule import ClusteredSchedule
from repro.scheduler.unrolling import (
    UnrollingEstimate,
    UnrollPolicy,
    candidate_factors,
    estimate_execution_time,
)

#: Version tag mixed into every stage key.  Bump whenever the meaning of a
#: stage's payload (or of the dependency slices) changes, so artifacts
#: persisted by an older pipeline can never be mistaken for hits.
STAGE_SCHEMA = 1


@dataclass(frozen=True)
class CompilerOptions:
    """Knobs of the compilation pipeline exercised by the experiments."""

    heuristic: SchedulingHeuristic = SchedulingHeuristic.IPBC
    unroll_policy: UnrollPolicy = UnrollPolicy.SELECTIVE
    variable_alignment: bool = True
    use_chains: bool = True
    profile_dataset: str = "profile"
    profile_iteration_cap: int = 512

    def with_heuristic(self, heuristic: SchedulingHeuristic) -> "CompilerOptions":
        """Copy of the options with a different scheduling heuristic."""
        return replace(self, heuristic=heuristic)

    def describe(self) -> dict[str, object]:
        """Flat summary for reports."""
        return {
            "heuristic": self.heuristic.value,
            "unroll_policy": self.unroll_policy.value,
            "variable_alignment": self.variable_alignment,
            "use_chains": self.use_chains,
            "profile_dataset": self.profile_dataset,
            "profile_iteration_cap": self.profile_iteration_cap,
        }

    @staticmethod
    def from_description(data: Mapping[str, object]) -> "CompilerOptions":
        """Rebuild options from :meth:`describe` output (exact round trip).

        The inverse used by stage keys and stored sweep-job descriptions,
        mirroring :meth:`MachineConfig.from_description`, so both share one
        canonical encoding.  Records written before the profile knobs
        existed omit them and get the defaults; *unknown* keys are
        rejected, since silently ignoring one would let two genuinely
        different configurations round-trip to the same options.
        """
        known = {
            "heuristic",
            "unroll_policy",
            "variable_alignment",
            "use_chains",
            "profile_dataset",
            "profile_iteration_cap",
        }
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown compiler option keys: {unknown}; "
                f"known: {sorted(known)}"
            )
        missing = sorted(
            {"heuristic", "unroll_policy", "variable_alignment", "use_chains"}
            - set(data)
        )
        if missing:
            raise ValueError(f"compiler option keys missing: {missing}")
        return CompilerOptions(
            heuristic=SchedulingHeuristic(data["heuristic"]),
            unroll_policy=UnrollPolicy(data["unroll_policy"]),
            variable_alignment=bool(data["variable_alignment"]),
            use_chains=bool(data["use_chains"]),
            profile_dataset=str(data.get("profile_dataset", "profile")),
            profile_iteration_cap=int(data.get("profile_iteration_cap", 512)),
        )


def default_heuristic_for(config: MachineConfig) -> SchedulingHeuristic:
    """The scheduling heuristic the paper pairs with each organization."""
    if config.organization is CacheOrganization.UNIFIED:
        return SchedulingHeuristic.BASE
    if config.organization is CacheOrganization.COHERENT:
        return SchedulingHeuristic.MULTIVLIW
    return SchedulingHeuristic.IPBC


def _heuristic_matches(config: MachineConfig, heuristic: SchedulingHeuristic) -> bool:
    if config.organization is CacheOrganization.UNIFIED:
        return heuristic is SchedulingHeuristic.BASE
    if config.organization is CacheOrganization.COHERENT:
        return heuristic is SchedulingHeuristic.MULTIVLIW
    return heuristic in (SchedulingHeuristic.IBC, SchedulingHeuristic.IPBC)


@dataclass
class CompiledLoop:
    """A loop after the complete compilation pipeline."""

    original: Loop
    loop: Loop
    schedule: ClusteredSchedule
    profile: LoopProfile
    latency_assignment: LatencyAssignment
    unroll_factor: int
    estimate: UnrollingEstimate
    options: CompilerOptions
    rejected: list[UnrollingEstimate] = field(default_factory=list)

    @property
    def ii(self) -> int:
        """Initiation interval of the chosen schedule."""
        return self.schedule.ii

    def describe(self) -> dict[str, object]:
        """Summary for reports and examples."""
        summary = self.schedule.describe()
        summary.update(
            {
                "unroll_factor": self.unroll_factor,
                "estimated_cycles": self.estimate.estimated_cycles,
                "heuristic": self.options.heuristic.value,
            }
        )
        return summary


# ----------------------------------------------------------------------
# Stage framework
# ----------------------------------------------------------------------
class StageCache(Protocol):
    """What the pipeline needs from a stage cache.

    Implemented by :class:`repro.sweep.artifacts.ArtifactCache` (in-process
    LRU front over an on-disk store); any object with the same two methods
    works.  ``get`` returns the cached payload or None; ``put`` stores one.
    """

    def get(self, stage: str, key: str) -> Optional[object]: ...

    def put(self, stage: str, key: str, payload: object) -> None: ...


def _canonical_json(data: object) -> str:
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


@dataclass
class StageContext:
    """One loop's trip through the pipeline.

    Memoizes the loop's structural description (the content-address basis)
    and the unrolled variants, so every stage of one :func:`compile_loop`
    call works on the *same* variant objects -- profiles and latency
    assignments rehydrated from cached payloads are rebound to these
    variants by program-order index.
    """

    loop: Loop
    config: MachineConfig
    options: CompilerOptions

    def __post_init__(self) -> None:
        self._variants: dict[int, Loop] = {}
        self._loop_description: Optional[dict[str, object]] = None
        self._loop_digest: Optional[str] = None
        self._machine_description: Optional[dict[str, object]] = None
        self._options_description: Optional[dict[str, object]] = None

    @property
    def loop_description(self) -> dict[str, object]:
        """Structural description of the loop (computed once)."""
        if self._loop_description is None:
            self._loop_description = self.loop.structural_description()
        return self._loop_description

    @property
    def loop_digest(self) -> str:
        """SHA-256 of the loop description (computed once).

        Stage keys embed this digest instead of re-serializing the full
        description per stage; the digest is equivalent content-wise and
        keeps key computation O(description) per loop, not per stage.
        """
        if self._loop_digest is None:
            encoded = _canonical_json(self.loop_description).encode("utf-8")
            self._loop_digest = hashlib.sha256(encoded).hexdigest()
        return self._loop_digest

    @property
    def machine_description(self) -> dict[str, object]:
        """Machine description (computed once)."""
        if self._machine_description is None:
            self._machine_description = self.config.describe()
        return self._machine_description

    @property
    def options_description(self) -> dict[str, object]:
        """Compiler-options description (computed once)."""
        if self._options_description is None:
            self._options_description = self.options.describe()
        return self._options_description

    def variant(self, factor: int) -> Loop:
        """The loop unrolled by ``factor`` (memoized; factor 1 is the loop)."""
        variant = self._variants.get(factor)
        if variant is None:
            variant = unroll_loop(self.loop, factor)
            self._variants[factor] = variant
        return variant


#: Machine-description keys profiling and unrolling read: the data layout
#: and the cache-module geometry.  Latencies, buses, functional units and
#: the Attraction Buffers do not change a single profiled address or hit.
PROFILE_MACHINE_KEYS: tuple[str, ...] = (
    "organization",
    "clusters",
    "interleaving_factor",
    "cache_total_bytes",
    "cache_block_bytes",
    "cache_associativity",
)

#: Machine-description keys the latency assignment and the schedulers read
#: on top of the profile slice: every latency, resource and bus parameter.
#: The Attraction Buffer configuration is deliberately absent -- it is a
#: *simulation-time* structure (Section 3); no compilation phase reads it,
#: so an AB sweep shares every compilation stage across its grid points.
SCHEDULING_MACHINE_KEYS: tuple[str, ...] = PROFILE_MACHINE_KEYS + (
    "fu_per_cluster",
    "latencies",
    "op_latencies",
    "store_issue_latency",
    "register_buses",
    "register_bus_divisor",
    "memory_buses",
    "memory_bus_divisor",
    "next_level_latency",
    "next_level_ports",
    "unified_cache_latency",
    "unified_cache_ports",
    "registers_per_cluster",
)

#: Compiler-option keys that determine profiles and unroll candidates.
PROFILE_OPTION_KEYS: tuple[str, ...] = (
    "unroll_policy",
    "variable_alignment",
    "profile_dataset",
    "profile_iteration_cap",
)

#: Compiler-option keys the schedule stage reads (all of them).
SCHEDULE_OPTION_KEYS: tuple[str, ...] = PROFILE_OPTION_KEYS + (
    "heuristic",
    "use_chains",
)


class PipelineStage:
    """A stage of the compilation pipeline.

    Subclasses declare their dependency slice -- the machine and compiler
    keys their output depends on -- and implement ``compute``.  The slice
    plus the loop's structural description is hashed into the stage key,
    which is what makes stage outputs shareable across a sweep grid: a
    knob outside the slice cannot change the output, so it does not change
    the key either.
    """

    name: str = ""
    machine_keys: tuple[str, ...] = ()
    option_keys: tuple[str, ...] = ()

    @classmethod
    def dependency_slice(cls, ctx: StageContext) -> dict[str, object]:
        """The exact inputs this stage's output depends on."""
        machine = ctx.machine_description
        options = ctx.options_description
        return {
            "loop": ctx.loop_description,
            "machine": {key: machine[key] for key in cls.machine_keys},
            "compiler": {key: options[key] for key in cls.option_keys},
        }

    @classmethod
    def key(cls, ctx: StageContext) -> str:
        """Content-addressed identity of this stage's output.

        Hashes the loop's description digest plus the machine/compiler
        slices -- equivalent to hashing the full dependency slice, without
        re-serializing the loop description once per stage.
        """
        machine = ctx.machine_description
        options = ctx.options_description
        payload = _canonical_json(
            {
                "stage": cls.name,
                "schema": STAGE_SCHEMA,
                "loop": ctx.loop_digest,
                "machine": {key: machine[key] for key in cls.machine_keys},
                "compiler": {key: options[key] for key in cls.option_keys},
            }
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class UnrollStage(PipelineStage):
    """Candidate unrolling factors (plus the base-variant profile).

    The base profile is computed here because the selective OUF needs the
    original body's hit rates; it is part of the payload so the profile
    stage never profiles the base variant twice.
    """

    name = "unroll"
    machine_keys = PROFILE_MACHINE_KEYS
    option_keys = PROFILE_OPTION_KEYS

    @classmethod
    def compute(
        cls, ctx: StageContext, cache: Optional[StageCache] = None
    ) -> dict[str, object]:
        options = ctx.options
        base_profile = profile_loop(
            ctx.loop,
            ctx.config,
            dataset=options.profile_dataset,
            aligned=options.variable_alignment,
            iteration_cap=options.profile_iteration_cap,
            cache=cache,
        )
        factors = candidate_factors(
            ctx.loop, ctx.config, options.unroll_policy, base_profile
        )
        return {"factors": list(factors), "base_profile": base_profile.to_payload()}


class ProfileStage(PipelineStage):
    """Per-variant :class:`LoopProfile` for every candidate factor."""

    name = "profile"
    machine_keys = PROFILE_MACHINE_KEYS
    option_keys = PROFILE_OPTION_KEYS

    @classmethod
    def compute(
        cls,
        ctx: StageContext,
        unroll: Mapping[str, object],
        cache: Optional[StageCache] = None,
    ) -> dict[str, object]:
        options = ctx.options
        profiles: dict[int, object] = {1: unroll["base_profile"]}
        for factor in unroll["factors"]:
            if factor == 1:
                continue
            profile = profile_loop(
                ctx.variant(factor),
                ctx.config,
                dataset=options.profile_dataset,
                aligned=options.variable_alignment,
                iteration_cap=options.profile_iteration_cap,
                cache=cache,
            )
            profiles[factor] = profile.to_payload()
        return {"profiles": profiles}

    @classmethod
    def rehydrate(
        cls, ctx: StageContext, payload: Mapping[str, object]
    ) -> dict[int, LoopProfile]:
        """Bind the stored per-variant profiles to this process's variants."""
        return {
            factor: LoopProfile.from_payload(entry, ctx.variant(factor))
            for factor, entry in payload["profiles"].items()
        }


class LatencyStage(PipelineStage):
    """Per-variant :class:`LatencyAssignment` for every candidate factor."""

    name = "latency"
    machine_keys = SCHEDULING_MACHINE_KEYS
    option_keys = PROFILE_OPTION_KEYS

    @classmethod
    def compute(
        cls,
        ctx: StageContext,
        factors: list[int],
        profiles: Mapping[int, LoopProfile],
    ) -> dict[str, object]:
        assignments: dict[int, object] = {}
        for factor in factors:
            variant = ctx.variant(factor)
            assignment = assign_latencies(
                variant, ctx.config, profile=profiles[factor]
            )
            assignments[factor] = assignment.to_payload(variant)
        return {"assignments": assignments}

    @classmethod
    def rehydrate(
        cls, ctx: StageContext, payload: Mapping[str, object]
    ) -> dict[int, LatencyAssignment]:
        """Bind the stored assignments to this process's variants."""
        return {
            factor: LatencyAssignment.from_payload(entry, ctx.variant(factor))
            for factor, entry in payload["assignments"].items()
        }


class ScheduleStage(PipelineStage):
    """Schedule every variant and keep the best-estimated one.

    The payload is the final :class:`CompiledLoop` itself: a self-contained
    object graph (variant, profile, assignment and schedule all referencing
    the same operations), which pickles and unpickles consistently across
    processes.
    """

    name = "schedule"
    machine_keys = SCHEDULING_MACHINE_KEYS
    option_keys = SCHEDULE_OPTION_KEYS

    @classmethod
    def compute(
        cls,
        ctx: StageContext,
        factors: list[int],
        profiles: Mapping[int, LoopProfile],
        assignments: Mapping[int, LatencyAssignment],
    ) -> CompiledLoop:
        options = ctx.options
        best: Optional[tuple[int, ClusteredSchedule, UnrollingEstimate]] = None
        rejected: list[UnrollingEstimate] = []
        for factor in factors:
            variant = ctx.variant(factor)
            schedule = schedule_loop(
                variant,
                ctx.config,
                assignments[factor],
                options.heuristic,
                profile=profiles[factor],
                use_chains=options.use_chains,
            )
            estimate = estimate_execution_time(
                factor, schedule.ii, schedule.stage_count, ctx.loop.trip_count
            )
            if best is None or estimate.estimated_cycles < best[2].estimated_cycles:
                if best is not None:
                    rejected.append(best[2])
                best = (factor, schedule, estimate)
            else:
                rejected.append(estimate)
        assert best is not None  # factors is never empty
        factor, schedule, estimate = best
        return CompiledLoop(
            original=ctx.loop,
            loop=ctx.variant(factor),
            schedule=schedule,
            profile=profiles[factor],
            latency_assignment=assignments[factor],
            unroll_factor=factor,
            estimate=estimate,
            options=options,
            rejected=rejected,
        )


#: The pipeline's stages, in execution order.
PIPELINE_STAGES: tuple[type[PipelineStage], ...] = (
    UnrollStage,
    ProfileStage,
    LatencyStage,
    ScheduleStage,
)

#: Test-only knob: ``REPRO_SWEEP_TEST_SLOWDOWN="<stage>:<seconds>"`` sleeps
#: inside the named stage's span (even on cache hits, so ``--force`` reruns
#: against warm artifact stores still show it).  It exists so the perf
#: regression gate can be exercised end to end -- a real, visible slowdown
#: injected without touching product code -- and must never be set outside
#: tests and the CI gate-smoke step.
TEST_SLOWDOWN_ENV = "REPRO_SWEEP_TEST_SLOWDOWN"


def _maybe_inject_test_slowdown(stage_name: str) -> None:
    spec = os.environ.get(TEST_SLOWDOWN_ENV)
    if not spec:
        return
    target, _, seconds = spec.partition(":")
    target = target.strip()
    if target not in (stage_name, f"stage.{stage_name}"):
        return
    try:
        delay = float(seconds)
    except ValueError:
        return
    if delay > 0:
        time.sleep(delay)


def _run_stage(
    stage: type[PipelineStage],
    ctx: StageContext,
    cache: Optional[StageCache],
    timings: Optional[dict[str, float]],
    compute: Callable[[], object],
) -> object:
    """Serve one stage from the cache or compute (and cache) it.

    Each trip is wrapped in a ``stage.<name>`` telemetry span (see
    ``docs/observability.md``), annotated with whether the stage was
    served from the cache; the span's monotonic measurement also feeds
    the caller's ``timings`` dict, replacing the old hand-rolled
    ``perf_counter`` pair one for one.
    """
    with obs.measured_span(f"stage.{stage.name}", loop=ctx.loop.name) as span:
        _maybe_inject_test_slowdown(stage.name)
        if cache is not None:
            key = stage.key(ctx)
            payload = cache.get(stage.name, key)
            span.annotate(cache_hit=payload is not None)
            if payload is None:
                payload = compute()
                cache.put(stage.name, key, payload)
        else:
            payload = compute()
    if timings is not None:
        timings[stage.name] = timings.get(stage.name, 0.0) + span.elapsed
    return payload


def compile_loop(
    loop: Loop,
    config: MachineConfig,
    options: Optional[CompilerOptions] = None,
    cache: Optional[StageCache] = None,
    timings: Optional[dict[str, float]] = None,
) -> CompiledLoop:
    """Run the staged compilation pipeline on one loop.

    ``cache`` serves stages whose content-addressed key is already stored
    and receives the ones computed here; without it every stage runs (the
    behaviour of the pre-staged monolithic pipeline, kept metric-for-metric
    identical -- see :func:`compile_loop_reference`).  ``timings``, when
    given, accumulates wall-clock seconds per stage name (cache hits count
    the lookup time, which is the point of measuring).
    """
    if options is None:
        options = CompilerOptions(heuristic=default_heuristic_for(config))
    if not _heuristic_matches(config, options.heuristic):
        raise ValueError(
            f"heuristic {options.heuristic.value} does not match the "
            f"{config.organization.value} cache organization"
        )

    ctx = StageContext(loop, config, options)
    unroll = _run_stage(
        UnrollStage, ctx, cache, timings, lambda: UnrollStage.compute(ctx, cache)
    )
    factors = list(unroll["factors"])
    profile_payload = _run_stage(
        ProfileStage,
        ctx,
        cache,
        timings,
        lambda: ProfileStage.compute(ctx, unroll, cache),
    )
    profiles = ProfileStage.rehydrate(ctx, profile_payload)
    latency_payload = _run_stage(
        LatencyStage,
        ctx,
        cache,
        timings,
        lambda: LatencyStage.compute(ctx, factors, profiles),
    )
    assignments = LatencyStage.rehydrate(ctx, latency_payload)
    compiled = _run_stage(
        ScheduleStage,
        ctx,
        cache,
        timings,
        lambda: ScheduleStage.compute(ctx, factors, profiles, assignments),
    )
    return compiled


def compile_loop_reference(
    loop: Loop,
    config: MachineConfig,
    options: Optional[CompilerOptions] = None,
) -> CompiledLoop:
    """The pre-staged monolithic pipeline, kept as the equivalence oracle.

    The staged :func:`compile_loop` must stay metric-for-metric identical
    to this implementation (same factors evaluated in the same order, same
    profiles, same selection tie-breaks); the equivalence suite in
    ``tests/test_pipeline_stages.py`` compares the two over the full
    benchmark suite.  Not used by any production path.
    """
    if options is None:
        options = CompilerOptions(heuristic=default_heuristic_for(config))
    if not _heuristic_matches(config, options.heuristic):
        raise ValueError(
            f"heuristic {options.heuristic.value} does not match the "
            f"{config.organization.value} cache organization"
        )

    base_profile = profile_loop(
        loop,
        config,
        dataset=options.profile_dataset,
        aligned=options.variable_alignment,
        iteration_cap=options.profile_iteration_cap,
    )
    factors = candidate_factors(loop, config, options.unroll_policy, base_profile)

    best: Optional[CompiledLoop] = None
    rejected: list[UnrollingEstimate] = []
    for factor in factors:
        variant = unroll_loop(loop, factor)
        profile = (
            base_profile
            if factor == 1
            else profile_loop(
                variant,
                config,
                dataset=options.profile_dataset,
                aligned=options.variable_alignment,
                iteration_cap=options.profile_iteration_cap,
            )
        )
        assignment = assign_latencies(variant, config, profile=profile)
        schedule = schedule_loop(
            variant,
            config,
            assignment,
            options.heuristic,
            profile=profile,
            use_chains=options.use_chains,
        )
        estimate = estimate_execution_time(
            factor, schedule.ii, schedule.stage_count, loop.trip_count
        )
        candidate = CompiledLoop(
            original=loop,
            loop=variant,
            schedule=schedule,
            profile=profile,
            latency_assignment=assignment,
            unroll_factor=factor,
            estimate=estimate,
            options=options,
        )
        if best is None or estimate.estimated_cycles < best.estimate.estimated_cycles:
            if best is not None:
                rejected.append(best.estimate)
            best = candidate
        else:
            rejected.append(estimate)
    assert best is not None  # factors is never empty
    return replace(best, rejected=rejected)


def compile_loops(
    loops: list[Loop],
    config: MachineConfig,
    options: Optional[CompilerOptions] = None,
    cache: Optional[StageCache] = None,
) -> list[CompiledLoop]:
    """Compile a list of loops with the same options."""
    return [compile_loop(loop, config, options, cache=cache) for loop in loops]

"""The word-interleaved distributed data cache (Section 3).

The L1 data cache is split into one *cache module* per cluster.  Consecutive
words of a cache block are assigned to consecutive clusters (interleaving
factor I bytes), so each module holds a *subblock* -- the words of every
block that map to its cluster -- and there is no data replication.  Tags are
replicated in every module, which the model reflects by letting any cluster
determine locally whether a remote access will hit.

Access outcomes follow the four classes of the paper (local/remote x
hit/miss) plus *combined* accesses, which are requests to a subblock that is
already in flight and therefore merge with the pending request.  Optional
per-cluster Attraction Buffers serve remote subblocks locally once they have
been attracted.
"""

from __future__ import annotations

from repro.machine.config import CacheOrganization, MachineConfig
from repro.memory.attraction import AttractionBufferArray
from repro.memory.cachesets import SetAssociativeStore
from repro.memory.classify import AccessResult, AccessType
from repro.memory.hierarchy import DataCacheModel


class WordInterleavedDataCache(DataCacheModel):
    """Behavioural model of the word-interleaved cache organization."""

    def __init__(self, config: MachineConfig) -> None:
        if config.organization is not CacheOrganization.WORD_INTERLEAVED:
            raise ValueError("configuration is not word-interleaved")
        super().__init__(config)
        module = config.module_geometry
        subblocks_per_module = module.size_bytes // config.subblock_bytes
        num_sets = max(1, subblocks_per_module // module.associativity)
        self._modules = [
            SetAssociativeStore(num_sets, module.associativity)
            for _ in range(config.num_clusters)
        ]
        self.attraction_buffers = AttractionBufferArray(
            config.num_clusters, config.attraction_buffer
        )
        #: In-flight subblock requests: (home cluster, block index) -> ready cycle.
        self._pending: dict[tuple[int, int], int] = {}
        # Per-access hot-path constants, hoisted from the config dataclasses.
        self._interleaving = config.interleaving_factor
        self._clusters = config.num_clusters
        # Local hits are by far the most common outcome and their result is
        # a constant per cluster; AccessResult is frozen, so one shared
        # instance per cluster replaces a dataclass construction per hit.
        self._local_hits = [
            AccessResult(
                classification=AccessType.LOCAL_HIT,
                latency=config.latencies.local_hit,
                home_cluster=cluster,
                requesting_cluster=cluster,
            )
            for cluster in range(config.num_clusters)
        ]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def begin_loop(self) -> None:
        """Flush the Attraction Buffers and drop in-flight requests."""
        super().begin_loop()
        self.attraction_buffers.flush()
        self._pending.clear()

    def module(self, cluster: int) -> SetAssociativeStore:
        """The cache module of a cluster (exposed for tests)."""
        return self._modules[cluster]

    # ------------------------------------------------------------------
    # Access handling
    # ------------------------------------------------------------------
    def _access(
        self,
        cluster: int,
        address: int,
        size: int,
        is_store: bool,
        cycle: int,
        attractable: bool,
    ) -> AccessResult:
        interleaving = self._interleaving
        home = (address // interleaving) % self._clusters
        spans = size > interleaving
        block = address // self._block_bytes
        subblock_key = (home, block)

        if home == cluster and not spans:
            # Local-hit fast path inlined: the most common outcome of an
            # access pays no extra call and no result construction.
            if self._modules[cluster].lookup(block):
                return self._local_hits[cluster]
            return self._local_fill(cluster, block, cycle)

        # Accesses wider than the interleaving factor touch more than one
        # cluster and therefore always pay a remote access (Section 5.2);
        # the remote part determines the hit/miss outcome.
        if spans and home == cluster:
            remote_home = ((address + interleaving) // interleaving) % self._clusters
            subblock_key = (remote_home, (address + interleaving) // self._block_bytes)
            home = remote_home

        return self._remote_access(
            cluster, home, block, subblock_key, is_store, cycle, attractable, spans
        )

    def _local_fill(self, cluster: int, block: int, cycle: int) -> AccessResult:
        """A local miss: fill the module from the next memory level."""
        self._modules[cluster].insert(block)
        wait = self.next_level.access(cycle)
        latency = self._config.latencies.local_miss + max(
            0, wait - self._config.next_level.latency
        )
        return AccessResult(
            classification=AccessType.LOCAL_MISS,
            latency=latency,
            home_cluster=cluster,
            requesting_cluster=cluster,
        )

    def _remote_access(
        self,
        cluster: int,
        home: int,
        block: int,
        subblock_key: tuple[int, int],
        is_store: bool,
        cycle: int,
        attractable: bool,
        spans: bool,
    ) -> AccessResult:
        key = hash(subblock_key)

        # A store makes the storing cluster's own attracted copy stale, so it
        # is dropped.  Copies held by other clusters need no invalidation:
        # the memory dependent chain constraint guarantees that no other
        # cluster reads data this cluster writes within the same loop, and
        # the buffers are flushed at the loop boundary (Section 3).
        if is_store and self.attraction_buffers.enabled:
            self.attraction_buffers[cluster].invalidate(key)

        # 1. A previously attracted copy satisfies the access locally.
        if not is_store and self.attraction_buffers.lookup(cluster, key):
            return AccessResult(
                classification=AccessType.LOCAL_HIT,
                latency=self._config.latencies.local_hit,
                home_cluster=home,
                requesting_cluster=cluster,
                via_attraction_buffer=True,
                spans_clusters=spans,
            )

        # 2. A request for the same subblock is already in flight: combine.
        pending_ready = self._pending.get(subblock_key)
        if pending_ready is not None and pending_ready > cycle:
            return AccessResult(
                classification=AccessType.COMBINED,
                latency=pending_ready - cycle,
                home_cluster=home,
                requesting_cluster=cluster,
                spans_clusters=spans,
            )

        # 3. Issue a remote request over the memory buses.
        grant = self.memory_buses.request(cycle)
        module = self._modules[home]
        hit = module.lookup(block)
        if hit:
            latency = self._config.latencies.remote_hit + grant.wait_cycles
            classification = AccessType.REMOTE_HIT
        else:
            module.insert(block)
            wait = self.next_level.access(cycle + grant.wait_cycles)
            latency = (
                self._config.latencies.remote_miss
                + grant.wait_cycles
                + max(0, wait - self._config.next_level.latency)
            )
            classification = AccessType.REMOTE_MISS

        # 4. Attract the whole subblock into the requesting cluster's buffer.
        if not is_store:
            self.attraction_buffers.attract(cluster, key, attractable=attractable)

        self._pending[subblock_key] = cycle + latency
        if len(self._pending) > 4096:
            self._pending = {
                pending_key: ready
                for pending_key, ready in self._pending.items()
                if ready > cycle
            }
        return AccessResult(
            classification=classification,
            latency=latency,
            home_cluster=home,
            requesting_cluster=cluster,
            spans_clusters=spans,
            bus_wait=grant.wait_cycles,
        )

"""Work-stealing job scheduler over persistent, supervised workers.

The pool-based fan-out the executor shipped with (``pool.imap_unordered``)
had two structural limits the long-lived sweep service runs into head-on:

* **No placement.**  A pool hands the next job to whichever worker asks
  first, so two jobs of the same benchmark -- whose compilation stages and
  address traces sit warm in one worker's
  :class:`~repro.sweep.artifacts.ArtifactCache` -- routinely land on
  different workers and re-read everything from disk.
* **No incremental submission.**  ``imap_unordered`` consumes one job
  list and is done; a server that accepts new sweep specs while earlier
  ones are still executing needs to feed jobs continuously and observe
  completions as callbacks, not as one blocking iteration.

:class:`WorkStealingScheduler` replaces the pool with dedicated worker
processes and parent-side per-worker deques:

* every job is enqueued on its *home* worker's deque --
  ``crc32(benchmark) % workers`` -- so one benchmark's jobs share a
  worker (and therefore its in-memory stage artifacts and traces) as
  long as the load allows;
* each worker holds **at most one** outstanding job; when it completes
  one, the parent feeds it the head of its own deque, or -- when that is
  empty -- *steals the tail* of the longest deque, so affinity yields to
  utilization the moment a worker runs dry (head = oldest affine work,
  tail = the work its owner will reach last, the classic stealing rule);
* completions are delivered by a parent-side pump thread as callbacks,
  which is what the asyncio service bridges onto its event loop, and
  what :meth:`run_all` folds back into the executor's blocking
  "handle each completion in the caller's thread" contract.

The pump thread doubles as the **supervisor**.  Every poll interval it:

* reaps workers that died (``proc.is_alive()`` false while marked live),
  requeues their in-flight job and **respawns** a replacement in the same
  slot, up to ``max_respawns`` lifetime replacements;
* kills workers whose current job exceeded ``job_timeout`` seconds (the
  hung worker is indistinguishable from a dead one once killed, so the
  same requeue/respawn path recovers it);
* releases jobs whose retry backoff has expired back onto their home
  deque.

A job whose attempt fails -- worker death, timeout, or a worker-side
exception -- is **retried** up to ``max_retries`` times with exponential
backoff and deterministic per-key jitter before its callbacks finally see
a failed :class:`JobCompletion` (carrying the attempt count and the last
traceback).  Callers that want the old fail-fast contract pass
``on_failure=None`` to :meth:`run_all` and still get
:class:`WorkerFailure` on the first terminal failure.

Workers initialize exactly like pool workers did
(:func:`repro.sweep.executor._init_worker`: artifact cache binding, obs
reset/shard/profile hooks) and run :func:`repro.sweep.executor.execute_job`
per job, so records are byte-identical to the pool path's.
"""

from __future__ import annotations

import collections
import multiprocessing
import os
import queue
import threading
import time
import traceback as traceback_module
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional, Sequence, Union

from repro import faults
from repro.obs import profilehook as obs_profilehook
from repro.obs import trace as obs

#: How long the pump thread waits on the result queue before running the
#: supervisor pass (reap/respawn/timeout/backoff); pure liveness, not a
#: rate limit.
_PUMP_POLL_SECONDS = 0.2

#: Base of the exponential retry backoff: attempt ``n`` waits
#: ``base * 2**(n-1)`` seconds plus per-key jitter.  Overridable for
#: tests, which want retries measured in milliseconds.
_RETRY_BASE_ENV = "REPRO_SWEEP_RETRY_BASE"
_DEFAULT_RETRY_BASE_SECONDS = 0.25

#: Default lifetime respawn budget per scheduler: ``workers * 2``.
_RESPAWNS_PER_WORKER = 2


class WorkerFailure(RuntimeError):
    """A worker process died or raised while executing a job."""


def _mp_context() -> multiprocessing.context.BaseContext:
    """The start method used for sweep workers (honours the env override)."""
    preferred = os.environ.get("REPRO_SWEEP_START_METHOD")
    methods = multiprocessing.get_all_start_methods()
    if preferred and preferred in methods:
        return multiprocessing.get_context(preferred)
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def _retry_base_seconds() -> float:
    try:
        value = float(os.environ.get(_RETRY_BASE_ENV, ""))
    except ValueError:
        return _DEFAULT_RETRY_BASE_SECONDS
    return value if value > 0 else _DEFAULT_RETRY_BASE_SECONDS


def retry_delay(key: str, attempt: int, base: Optional[float] = None) -> float:
    """Backoff before retry ``attempt`` (1-based) of job ``key``.

    Exponential in the attempt number with deterministic per-key jitter
    (a crc32-derived fraction of the base), so colliding retries of a
    failed batch spread out without making chaos runs irreproducible.
    """
    if base is None:
        base = _retry_base_seconds()
    jitter = (zlib.crc32(key.encode("utf-8")) % 1000) / 1000.0
    return base * (2 ** (attempt - 1)) + base * jitter


@dataclass
class JobCompletion:
    """One finished job, as delivered to submit callbacks.

    ``error`` is None on success; on failure it carries the worker-side
    exception rendering (or a worker-death/timeout notice), ``traceback``
    the worker-side traceback when one exists, and every other payload
    field is None.  ``attempts`` counts executions including retries --
    1 for a job that succeeded first time.
    """

    key: str
    record: Optional[dict]
    result: Optional[object]
    stats: Optional[dict]
    error: Optional[str]
    attempts: int = 1
    traceback: Optional[str] = None


def _worker_main(
    worker_id: int,
    inbox,
    results,
    artifacts_root: Optional[str],
    shard_dir: Optional[str],
    obs_enabled: bool,
    profile_spec: Optional[str],
) -> None:
    """Worker process body: initialize once, execute jobs until sentinel.

    Imports the executor lazily to keep the module dependency one-way
    (executor imports this module at top level).
    """
    from repro.obs import events as obs_events
    from repro.sweep import executor

    faults.fire("scheduler.worker")
    executor._init_worker(artifacts_root, shard_dir, obs_enabled, profile_spec)
    while True:
        job = inbox.get()
        if job is None:
            return
        try:
            record, result = executor.execute_job(job)
            obs_events.flush_shard()
            stats = executor.artifact_cache().take_stats()
        except BaseException as error:  # noqa: BLE001 - must reach the parent
            try:
                results.put(
                    (
                        worker_id,
                        job.key,
                        None,
                        None,
                        None,
                        f"{type(error).__name__}: {error}",
                        traceback_module.format_exc(),
                    )
                )
            except Exception:
                return
        else:
            results.put((worker_id, job.key, record, result, stats, None, None))


class WorkStealingScheduler:
    """Benchmark-affine job execution over supervised worker processes.

    Thread-safe: :meth:`submit` may be called from any thread (the
    service's event loop, the executor's caller) while the pump thread
    delivers completions.  Callbacks run on the pump thread -- bridge to
    your own execution context (``loop.call_soon_threadsafe``, a local
    queue) rather than doing heavy work in them.
    """

    def __init__(
        self,
        workers: int,
        artifacts_root: Union[Path, str, None] = None,
        shard_dir: Union[Path, str, None] = None,
        max_retries: int = 2,
        job_timeout: Optional[float] = None,
        max_respawns: Optional[int] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("a scheduler needs at least one worker")
        if job_timeout is not None and job_timeout <= 0:
            raise ValueError("job_timeout must be positive (or None)")
        self._workers = workers
        self._max_retries = max(0, max_retries)
        self._job_timeout = job_timeout
        self._respawn_budget = (
            workers * _RESPAWNS_PER_WORKER if max_respawns is None else max_respawns
        )
        self._lock = threading.Lock()
        self._deques: list[collections.deque] = [
            collections.deque() for _ in range(workers)
        ]
        self._outstanding: list[Optional[str]] = [None] * workers
        self._outstanding_job: list[Optional[object]] = [None] * workers
        self._outstanding_since: list[float] = [0.0] * workers
        self._timed_out: list[bool] = [False] * workers
        self._callbacks: dict[str, list[Callable[[JobCompletion], None]]] = {}
        self._attempts: dict[str, int] = {}
        self._last_traceback: dict[str, str] = {}
        # Jobs waiting out their retry backoff: (release_monotonic, job).
        self._delayed: list[tuple[float, object]] = []
        self._queued = 0
        self._executed = 0
        self._failed = 0
        self._stolen = 0
        self._retried = 0
        self._respawned = 0
        self._timeouts = 0
        self._closed = False
        self._context = _mp_context()
        self._results = self._context.Queue()
        # SimpleQueue inboxes: no feeder thread per queue, and the parent's
        # put() is synchronous, so a fed job is on the wire before the lock
        # is released.
        self._inboxes = [self._context.SimpleQueue() for _ in range(workers)]
        self._initargs = (
            str(artifacts_root) if artifacts_root is not None else None,
            str(shard_dir) if shard_dir is not None else None,
            obs.enabled(),
            obs_profilehook.spec(),
        )
        self._procs = [
            self._spawn_process(index) for index in range(workers)
        ]
        self._alive = [True] * workers
        for proc in self._procs:
            proc.start()
        self._pump = threading.Thread(
            target=self._pump_loop, daemon=True, name="sweep-scheduler-pump"
        )
        self._pump.start()

    def _spawn_process(self, index: int):
        return self._context.Process(
            target=_worker_main,
            args=(index, self._inboxes[index], self._results, *self._initargs),
            daemon=True,
            name=f"sweep-worker-{index}",
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def workers(self) -> int:
        """Number of worker slots (dead ones included)."""
        return self._workers

    def home_worker(self, benchmark: str) -> int:
        """The worker a benchmark's jobs are affine to."""
        return zlib.crc32(benchmark.encode("utf-8")) % self._workers

    def pending(self) -> dict[str, int]:
        """Queue depth right now: jobs queued (incl. backoff) and running."""
        with self._lock:
            return {
                "queued": self._queued + len(self._delayed),
                "running": sum(
                    1 for key in self._outstanding if key is not None
                ),
            }

    def counters(self) -> dict[str, int]:
        """Lifetime counters: jobs executed/failed, steals, supervision."""
        with self._lock:
            return {
                "executed": self._executed,
                "failed": self._failed,
                "stolen": self._stolen,
                "retried": self._retried,
                "respawned": self._respawned,
                "timeouts": self._timeouts,
            }

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self, job, on_done: Callable[[JobCompletion], None]
    ) -> str:
        """Enqueue one job; ``on_done`` fires (pump thread) on completion.

        Returns ``"queued"`` when the job was newly enqueued on its home
        worker's deque, or ``"inflight"`` when the same key is already
        queued or running -- the callback is then subscribed to the
        existing execution and the job is *not* run twice.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("scheduler is closed")
            callbacks = self._callbacks.get(job.key)
            if callbacks is not None:
                callbacks.append(on_done)
                return "inflight"
            self._callbacks[job.key] = [on_done]
            self._deques[self.home_worker(job.benchmark)].append(job)
            self._queued += 1
            self._feed_locked()
        return "queued"

    def cancel(self, key: str) -> bool:
        """Remove a not-yet-started job; True when it was dequeued.

        A running job cannot be cancelled (False); its callbacks fire
        normally when it completes.  A job waiting out a retry backoff
        *can* be cancelled.
        """
        with self._lock:
            if key not in self._callbacks or key in self._outstanding:
                return False
            for deque_ in self._deques:
                for job in deque_:
                    if job.key == key:
                        deque_.remove(job)
                        self._queued -= 1
                        self._forget_job_locked(key)
                        return True
            for entry in self._delayed:
                if entry[1].key == key:
                    self._delayed.remove(entry)
                    self._forget_job_locked(key)
                    return True
        return False

    def _forget_job_locked(self, key: str) -> None:
        self._callbacks.pop(key, None)
        self._attempts.pop(key, None)
        self._last_traceback.pop(key, None)

    # ------------------------------------------------------------------
    # Blocking execution (the executor's contract)
    # ------------------------------------------------------------------
    def run_all(
        self,
        jobs: Sequence,
        handle: Callable,
        on_stats: Optional[Callable[[dict], None]] = None,
        on_failure: Optional[Callable[[object, "JobCompletion"], bool]] = None,
    ) -> None:
        """Execute jobs, calling ``handle(job, record, result)`` here.

        The blocking twin of :meth:`submit`: completions are consumed on
        the calling thread in completion order, exactly like the old
        ``pool.imap_unordered`` loop, so store writes and progress
        callbacks keep running in the parent.

        A failed completion (already past the scheduler's retry budget)
        is routed to ``on_failure(job, completion)``; returning True
        continues the sweep, False (or no ``on_failure``) raises
        :class:`WorkerFailure`.
        """
        completions: queue.Queue = queue.Queue()
        by_key = {}
        for job in jobs:
            by_key[job.key] = job
            self.submit(job, completions.put)
        for _ in range(len(jobs)):
            completion = completions.get()
            if completion.error is not None:
                if on_failure is not None and on_failure(
                    by_key[completion.key], completion
                ):
                    continue
                raise WorkerFailure(
                    f"job {completion.key[:12]} failed after "
                    f"{completion.attempts} attempt(s): {completion.error}"
                )
            if on_stats is not None:
                on_stats(completion.stats)
            handle(by_key[completion.key], completion.record, completion.result)

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def close(self, timeout: float = 10.0) -> None:
        """Drain running jobs, stop the workers, reap the pump thread.

        Queued-but-unstarted jobs (including those in retry backoff) are
        *dropped*: their callbacks receive a ``"scheduler closed"``
        failure completion.  Jobs already on a worker finish first (the
        exit sentinel queues behind them), and their callbacks fire
        normally -- a graceful drain is therefore "wait for your
        callbacks, then close".  Idempotent.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            dropped: list[tuple[str, int, Callable]] = []
            for deque_ in self._deques:
                for job in deque_:
                    attempts = self._attempts.get(job.key, 0) + 1
                    for callback in self._callbacks.pop(job.key, []):
                        dropped.append((job.key, attempts, callback))
                deque_.clear()
            for _, job in self._delayed:
                attempts = self._attempts.get(job.key, 0) + 1
                for callback in self._callbacks.pop(job.key, []):
                    dropped.append((job.key, attempts, callback))
            self._delayed.clear()
            self._queued = 0
        for key, attempts, callback in dropped:
            callback(
                JobCompletion(
                    key, None, None, None, "scheduler closed", attempts
                )
            )
        for inbox in self._inboxes:
            try:
                inbox.put(None)
            except (OSError, ValueError):
                pass
        for proc in self._procs:
            proc.join(timeout=timeout)
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        self._pump.join(timeout=timeout)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _feed_locked(self) -> None:
        """Hand every idle worker its next job (lock held)."""
        if self._closed:
            return
        for index in range(self._workers):
            if not self._alive[index] or self._outstanding[index] is not None:
                continue
            job = self._next_job_locked(index)
            if job is None:
                continue
            self._outstanding[index] = job.key
            self._outstanding_job[index] = job
            self._outstanding_since[index] = time.monotonic()
            self._inboxes[index].put(job)

    def _next_job_locked(self, index: int) -> Optional[object]:
        """Own deque's head first, else steal the longest deque's tail."""
        own = self._deques[index]
        if own:
            self._queued -= 1
            return own.popleft()
        victim = max(range(self._workers), key=lambda i: len(self._deques[i]))
        if self._deques[victim]:
            self._queued -= 1
            self._stolen += 1
            return self._deques[victim].pop()
        return None

    def _pump_loop(self) -> None:
        while True:
            try:
                item = self._results.get(timeout=_PUMP_POLL_SECONDS)
            except queue.Empty:
                item = None
            terminal = self._supervise()
            for completion, callbacks in terminal:
                for callback in callbacks:
                    callback(completion)
            if item is None:
                with self._lock:
                    if self._closed and not self._callbacks:
                        return
                continue
            worker_id, key, record, result, stats, error, trace = item
            with self._lock:
                job = None
                if self._outstanding[worker_id] == key:
                    job = self._outstanding_job[worker_id]
                    self._clear_slot_locked(worker_id)
                if error is not None:
                    completion, callbacks = self._attempt_failed_locked(
                        key, error, trace, job=job
                    )
                else:
                    self._executed += 1
                    attempts = self._attempts.pop(key, 0) + 1
                    self._last_traceback.pop(key, None)
                    callbacks = self._callbacks.pop(key, [])
                    completion = JobCompletion(
                        key, record, result, stats, None, attempts
                    )
                self._feed_locked()
            if completion is not None:
                for callback in callbacks:
                    callback(completion)

    def _clear_slot_locked(self, index: int) -> None:
        self._outstanding[index] = None
        self._outstanding_job[index] = None
        self._outstanding_since[index] = 0.0
        self._timed_out[index] = False

    def _attempt_failed_locked(
        self, key: str, error: str, trace: Optional[str], job=None
    ):
        """Route one failed attempt: schedule a retry or fail terminally.

        Returns ``(completion, callbacks)`` -- ``(None, [])`` when the
        failure was absorbed into a retry.  ``job`` (the object, not the
        key) is required for requeueing; a failure with no job object
        fails terminally regardless of the retry budget.
        """
        if trace is not None:
            self._last_traceback[key] = trace
        attempts = self._attempts.get(key, 0) + 1
        if job is not None and attempts <= self._max_retries and not self._closed:
            self._attempts[key] = attempts
            self._retried += 1
            release = time.monotonic() + retry_delay(key, attempts)
            self._delayed.append((release, job))
            return None, []
        self._failed += 1
        self._attempts.pop(key, None)
        trace = self._last_traceback.pop(key, None)
        callbacks = self._callbacks.pop(key, [])
        return (
            JobCompletion(key, None, None, None, error, attempts, trace),
            callbacks,
        )

    def _supervise(self):
        """One supervision pass: timeouts, dead workers, retry releases.

        Returns the terminal failure completions to deliver (pump thread,
        outside the lock).
        """
        terminal = []
        now = time.monotonic()
        with self._lock:
            if self._job_timeout is not None and not self._closed:
                for index in range(self._workers):
                    if not self._alive[index] or self._outstanding[index] is None:
                        continue
                    if self._timed_out[index]:
                        continue
                    if now - self._outstanding_since[index] > self._job_timeout:
                        self._timed_out[index] = True
                        self._timeouts += 1
                        proc = self._procs[index]
                        if proc.is_alive():
                            proc.kill()
            for index in range(self._workers):
                if not self._alive[index]:
                    continue
                proc = self._procs[index]
                if proc.is_alive():
                    continue
                key = self._outstanding[index]
                job = self._outstanding_job[index]
                if key is not None:
                    if self._timed_out[index]:
                        error = (
                            f"job timed out after {self._job_timeout:g}s "
                            "(worker killed)"
                        )
                    else:
                        error = f"worker died (exit code {proc.exitcode})"
                    self._clear_slot_locked(index)
                    completion, callbacks = self._attempt_failed_locked(
                        key, error, None, job=job
                    )
                    if completion is not None:
                        terminal.append((completion, callbacks))
                if self._closed:
                    self._alive[index] = False
                elif self._respawned < self._respawn_budget:
                    # The dead worker's inbox may still hold an undelivered
                    # job; a fresh queue guarantees the replacement starts
                    # clean (the in-flight job was requeued above).
                    self._respawned += 1
                    self._inboxes[index] = self._context.SimpleQueue()
                    self._procs[index] = self._spawn_process(index)
                    self._procs[index].start()
                else:
                    self._alive[index] = False
            if self._delayed:
                due = [job for release, job in self._delayed if release <= now]
                if due:
                    self._delayed = [
                        entry for entry in self._delayed if entry[0] > now
                    ]
                    for job in due:
                        self._deques[self.home_worker(job.benchmark)].append(job)
                        self._queued += 1
            if not any(self._alive) and not self._closed:
                # Every slot is dead and the respawn budget is spent:
                # nothing will ever run the queued work, so fail it now
                # rather than hang the caller forever.
                for deque_ in self._deques:
                    for job in deque_:
                        attempts = self._attempts.pop(job.key, 0) + 1
                        trace = self._last_traceback.pop(job.key, None)
                        callbacks = self._callbacks.pop(job.key, [])
                        self._failed += 1
                        terminal.append(
                            (
                                JobCompletion(
                                    job.key,
                                    None,
                                    None,
                                    None,
                                    "no live workers (respawn budget spent)",
                                    attempts,
                                    trace,
                                ),
                                callbacks,
                            )
                        )
                    deque_.clear()
                for _, job in self._delayed:
                    attempts = self._attempts.pop(job.key, 0) + 1
                    trace = self._last_traceback.pop(job.key, None)
                    callbacks = self._callbacks.pop(job.key, [])
                    self._failed += 1
                    terminal.append(
                        (
                            JobCompletion(
                                job.key,
                                None,
                                None,
                                None,
                                "no live workers (respawn budget spent)",
                                attempts,
                                trace,
                            ),
                            callbacks,
                        )
                    )
                self._delayed.clear()
                self._queued = 0
            self._feed_locked()
        return terminal

"""The cycle-accounting simulator.

The simulator replays a modulo schedule against a behavioural memory-system
model.  The target processors are in-order VLIW machines: when the value of
a memory operation is not ready by the cycle its consumer expects it
(because the real latency exceeded the latency the scheduler assumed), the
whole machine stalls for the difference.  Everything else is captured by the
schedule itself, so the execution time of a loop decomposes into

    compute time = (iterations + SC - 1) * II
    stall  time  = sum over dynamic memory operations of
                   max(0, real latency - assigned latency)

which is the decomposition the paper plots.  Long loops are simulated for a
bounded number of iterations and the stall/access statistics are scaled to
the full trip count (the schedule repeats every iteration, so the sampled
prefix is representative).

The inner loop is trace-compiled: addresses come from the loop's
precomputed :class:`~repro.profiling.trace.LoopTrace` arrays (shareable
across every scheduling-option point of a sweep grid through the stage
artifact cache), and the software-pipelined global event order is produced
by a per-II periodic template (:func:`event_template`) instead of building
and sorting a ``simulated x ops`` event list per run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.ir.ddg import DependenceKind
from repro.machine.config import MachineConfig
from repro import kernels
from repro.obs import trace as obs
from repro.memory.classify import AccessCounters, AccessType, StallCounters
from repro.memory.coherent import make_cache_model
from repro.memory.hierarchy import DataCacheModel
from repro.profiling.trace import loop_trace
from repro.scheduler.pipeline import CompiledLoop
from repro.sim.stats import (
    BenchmarkSimulationResult,
    LoopSimulationResult,
    OperationSimRecord,
)

#: Default cap on the number of simulated iterations per loop.
DEFAULT_ITERATION_CAP = 1024


@dataclass(frozen=True)
class SimulationOptions:
    """Knobs of the execution simulation."""

    dataset: str = "execution"
    iteration_cap: int = DEFAULT_ITERATION_CAP

    def describe(self) -> dict[str, object]:
        """Flat summary for reports."""
        return {"dataset": self.dataset, "iteration_cap": self.iteration_cap}


def event_template(
    start_cycles: Sequence[int], ii: int
) -> tuple[list[tuple[int, int, int]], int]:
    """Periodic event-order template of a software-pipelined loop.

    Operation ``j`` issuing at schedule cycle ``s_j`` executes its instance
    of iteration ``i`` at global cycle ``i * ii + s_j``.  Writing
    ``s_j = k_j * ii + p_j`` with ``p_j = s_j % ii``, the instance fires at
    cycle ``m * ii + p_j`` where ``m = i + k_j`` -- so the global
    ``(cycle, j)`` order is periodic in ``m``: within one ``m``, events run
    phases ``p`` ascending, ties broken by ``j`` ascending (two instances of
    one ``j`` can never share a cycle).  Returns the flattened template --
    ``(p_j, k_j, j)`` sorted by ``(p_j, j)`` -- plus ``max(k_j)``; a driver
    emits exactly ``sorted((i * ii + s_j, j, i))`` by sweeping ``m`` from 0
    to ``simulated - 1 + max_k`` and skipping instances whose iteration
    ``m - k_j`` falls outside ``[0, simulated)``.
    """
    entries = sorted(
        ((start % ii, start // ii, index) for index, start in enumerate(start_cycles)),
        key=lambda entry: (entry[0], entry[2]),
    )
    max_k = max((k for _, k, _ in entries), default=0)
    return entries, max_k


@dataclass(frozen=True)
class ReplayPlan:
    """Everything the replay inner loop needs, resolved ahead of time.

    ``per_op`` holds one tuple per template entry (template order):
    ``(phase, wrap, addresses, cluster, granularity, is_store,
    attractable, cover, record, record_method)`` -- the flat trace
    address array, the static operation attributes, the consumer cover
    and the operation's :class:`OperationSimRecord` (plus its pre-bound
    ``record`` method for the scalar loop).  Both backends consume this
    one structure: the scalar loop walks it event by event, the vector
    kernels (:mod:`repro.kernels.vector`) turn it into arrays.
    """

    ii: int
    simulated: int
    max_k: int
    per_op: list


class LoopSimulator:
    """Simulates one compiled loop against a memory-system model.

    :meth:`run` owns the cache model's access counters: it resets them on
    entry and detaches them into the returned result (scaled to the full
    trip count), leaving ``cache.counters`` freshly zeroed afterwards.
    Production paths build one cold model per loop (see
    :func:`simulate_compiled_loops`), so this is only observable to
    callers sharing a model across runs -- accumulate from the returned
    results instead of the model in that case.
    """

    def __init__(
        self,
        compiled: CompiledLoop,
        cache: DataCacheModel,
        options: Optional[SimulationOptions] = None,
        trace_cache=None,
    ) -> None:
        self._compiled = compiled
        self._cache = cache
        self._options = options or SimulationOptions()
        self._config = cache.config
        self._trace_cache = trace_cache

    def run(self) -> LoopSimulationResult:
        """Execute the loop and return its statistics."""
        compiled = self._compiled
        schedule = compiled.schedule
        loop = compiled.loop
        options = self._options

        self._cache.begin_loop()

        iterations = loop.trip_count
        simulated = min(iterations, options.iteration_cap)
        scale = iterations / simulated if simulated else 0.0

        trace = loop_trace(
            loop,
            self._config,
            dataset=options.dataset,
            aligned=compiled.options.variable_alignment,
            iterations=simulated,
            cache=self._trace_cache,
        )
        trace_index = {op: j for j, op in enumerate(loop.memory_operations)}

        # Phase spans (``sim.setup`` / ``sim.replay`` / ``sim.account``,
        # see docs/observability.md) wrap the three parts of a simulation;
        # the trace fetch above reports itself as a ``stage.trace`` span.
        with obs.span(
            "sim.setup", loop=compiled.original.name, iterations=simulated
        ):
            records = self._make_records(compiled)
            covers = self._consumer_covers(compiled)
            stalls = StallCounters()
            accumulated_stall = 0

            # The cache model's own wrapper records every access it serves,
            # and this run is the only issuer, so its counters *are* the
            # loop's access counters: reset them here and adopt (detach)
            # them at the end instead of double-counting every access in
            # the event loop.
            self._cache.reset_statistics()

            memory_entries = sorted(
                (schedule.entries[op] for op in loop.memory_operations),
                key=lambda entry: entry.start_cycle,
            )

            # Everything that is constant across the dynamic instances of
            # one static operation is resolved once up front -- including
            # the op's flat trace address array -- so the event loop does
            # no dict lookups, property calls or address computation per
            # access.
            ii = schedule.ii
            template, max_k = event_template(
                [entry.start_cycle for entry in memory_entries], ii
            )
            per_op = []
            for phase, wrap, index in template:
                entry = memory_entries[index]
                op = entry.operation
                memory = op.memory
                record = records[op]
                per_op.append(
                    (
                        phase,
                        wrap,
                        trace.addresses[trace_index[op]],
                        entry.cluster,
                        memory.granularity,
                        memory.is_store,
                        memory.attractable,
                        covers[op],
                        record,
                        record.record,
                    )
                )
            plan = ReplayPlan(
                ii=ii, simulated=simulated, max_k=max_k, per_op=per_op
            )

            cache_access = self._cache.access
            local_hit = AccessType.LOCAL_HIT
            record_stall = stalls.record

        # Software pipelining overlaps iterations: operation instances are
        # executed in global cycle order, not iteration by iteration, which
        # matters for port/bus contention and request combining.  The
        # periodic template reproduces that order without materialising and
        # sorting a ``simulated x ops`` event list: sweep ``m``, and within
        # each ``m`` walk the template; iteration ``m - wrap`` is out of
        # range only during pipeline fill and drain.
        #
        # The vectorised backend replays the same plan as bulk array
        # passes and returns the accumulated stall; ``None`` means the
        # scalar loop below -- the equivalence oracle -- must run
        # (scalar backend selected, or the kernel declined this loop's
        # memory-model shape; see ``repro.kernels``).
        last_m = simulated + max_k if per_op and simulated else 0
        with obs.span(
            "sim.replay",
            loop=compiled.original.name,
            iterations=simulated,
            backend=kernels.active_backend(),
        ):
            vectorised = kernels.sim_replay(plan, self._cache, stalls)
            if vectorised is not None:
                accumulated_stall = vectorised
                last_m = 0
            for m in range(last_m):
                base_cycle = m * ii
                for (
                    phase,
                    wrap,
                    addresses,
                    cluster,
                    granularity,
                    is_store,
                    attractable,
                    cover,
                    _record,
                    record_op,
                ) in per_op:
                    iteration = m - wrap
                    if iteration < 0 or iteration >= simulated:
                        continue
                    result = cache_access(
                        cluster,
                        addresses[iteration],
                        granularity,
                        is_store,
                        base_cycle + phase + accumulated_stall,
                        attractable,
                    )
                    stall = 0
                    if not is_store and result.latency > cover:
                        stall = result.latency - cover
                        accumulated_stall += stall
                        if result.classification is not local_hit:
                            record_stall(result.classification, stall)
                    record_op(result.classification, result.home_cluster, stall)

        with obs.span("sim.account", loop=compiled.original.name):
            compute_cycles = schedule.compute_cycles(iterations)
            stall_cycles = int(round(accumulated_stall * scale))
            accesses = self._cache.counters
            self._cache.reset_statistics()
            accesses.scale(scale)
            stalls.scale(scale)

        return LoopSimulationResult(
            loop_name=compiled.original.name,
            heuristic=schedule.heuristic,
            ii=schedule.ii,
            stage_count=schedule.stage_count,
            iterations=iterations,
            simulated_iterations=simulated,
            compute_cycles=compute_cycles,
            stall_cycles=stall_cycles,
            accesses=accesses,
            stalls=stalls,
            operation_records=records,
            workload_balance=schedule.workload_balance(),
            num_copies=schedule.num_copies,
            ops_per_iteration=len(loop.operations) + schedule.num_copies,
            weight=loop.weight,
        )

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _make_records(
        self, compiled: CompiledLoop
    ) -> dict:
        records: dict = {}
        for op in compiled.loop.memory_operations:
            entry = compiled.schedule.entries[op]
            records[op] = OperationSimRecord(
                operation=op,
                cluster=entry.cluster,
                assigned_latency=entry.assigned_latency,
                profile_preferred_cluster=compiled.profile.preferred_cluster(op),
                profile_distribution=compiled.profile.distribution(op),
            )
        return records

    def _consumer_covers(self, compiled: CompiledLoop) -> dict:
        """Cycles each load has before its earliest consumer issues.

        The processor only stalls when a load's value is not ready by the
        time its first register consumer issues; the schedule may leave more
        slack than the assigned latency (for example when the consumer was
        pushed later by resource conflicts), in which case the extra slack
        hides part of the memory latency.  Loads without register consumers
        never stall.
        """
        schedule = compiled.schedule
        covers: dict = {}
        for op in compiled.loop.memory_operations:
            entry = schedule.entries[op]
            slack = None
            for dep in compiled.loop.ddg.dependences_from(op):
                if dep.kind is not DependenceKind.REG_FLOW:
                    continue
                consumer = schedule.entries.get(dep.dst)
                if consumer is None:
                    continue
                distance = (
                    consumer.start_cycle
                    + dep.distance * schedule.ii
                    - entry.start_cycle
                )
                slack = distance if slack is None else min(slack, distance)
            if slack is None:
                covers[op] = float("inf")
            else:
                covers[op] = max(entry.assigned_latency, slack)
        return covers


def simulate_compiled_loop(
    compiled: CompiledLoop,
    config: Optional[MachineConfig] = None,
    cache: Optional[DataCacheModel] = None,
    options: Optional[SimulationOptions] = None,
    trace_cache=None,
) -> LoopSimulationResult:
    """Simulate one compiled loop on a fresh (or provided) cache model."""
    if cache is None:
        cache = make_cache_model(config or compiled.schedule.config)
    return LoopSimulator(compiled, cache, options, trace_cache=trace_cache).run()


def simulate_compiled_loops(
    compiled_loops: list[CompiledLoop],
    benchmark: str,
    config: Optional[MachineConfig] = None,
    options: Optional[SimulationOptions] = None,
    architecture: Optional[str] = None,
    trace_cache=None,
) -> BenchmarkSimulationResult:
    """Simulate a benchmark's loops, each on its own cache model.

    Every loop starts from cold caches: each loop rebuilds its
    :class:`~repro.memory.layout.DataLayout` from the same segment bases, so
    a shared cache would let one loop's arrays alias a *different* loop's
    arrays at the same addresses -- warm state that models no real reuse and
    makes a loop's metrics depend on which loops ran before it.  Independent
    loop simulations keep II, stall and locality genuinely loop-level
    quantities, so a benchmark result is exactly the aggregation of its
    per-loop results (the contract the per-loop sweep granularity relies
    on).
    """
    if not compiled_loops:
        raise ValueError("a benchmark needs at least one compiled loop")
    machine = config or compiled_loops[0].schedule.config
    results = [
        LoopSimulator(
            compiled, make_cache_model(machine), options, trace_cache=trace_cache
        ).run()
        for compiled in compiled_loops
    ]
    heuristics = {compiled.options.heuristic.value for compiled in compiled_loops}
    return BenchmarkSimulationResult(
        benchmark=benchmark,
        architecture=architecture or machine.organization.value,
        heuristic=heuristics.pop() if len(heuristics) == 1 else "mixed",
        loops=results,
    )

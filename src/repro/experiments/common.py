"""Shared infrastructure of the experiment harness.

Every figure/table reproduction needs the same ingredients: compile a
benchmark's loops for a given (architecture, heuristic, unrolling, alignment,
chains) configuration, simulate them on the matching memory system, and
aggregate.  This module provides those ingredients once, with caching, so the
individual ``figureN`` modules stay declarative and running several figures
in one session does not recompile the same configurations over and over.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Optional

from repro.machine.config import MachineConfig
from repro.scheduler.core import SchedulingHeuristic
from repro.scheduler.pipeline import CompiledLoop, CompilerOptions, compile_loop
from repro.scheduler.unrolling import UnrollPolicy
from repro.sim.engine import SimulationOptions, simulate_compiled_loops
from repro.sim.stats import BenchmarkSimulationResult
from repro.workloads.mediabench import BENCHMARK_NAMES, mediabench_suite
from repro.workloads.spec import Benchmark


@dataclass(frozen=True)
class ArchitectureSetup:
    """A named (machine configuration, compiler options) pair."""

    name: str
    config: MachineConfig
    options: CompilerOptions

    def with_options(self, **changes: object) -> "ArchitectureSetup":
        """Copy with some compiler options replaced."""
        return ArchitectureSetup(
            name=self.name, config=self.config, options=replace(self.options, **changes)
        )


# ----------------------------------------------------------------------
# Named configurations used across the figures
# ----------------------------------------------------------------------
def interleaved_setup(
    heuristic: SchedulingHeuristic = SchedulingHeuristic.IPBC,
    attraction_buffers: bool = False,
    attraction_entries: int = 16,
    unroll_policy: UnrollPolicy = UnrollPolicy.SELECTIVE,
    variable_alignment: bool = True,
    use_chains: bool = True,
    name: Optional[str] = None,
) -> ArchitectureSetup:
    """A word-interleaved configuration with the given scheduling knobs."""
    config = MachineConfig.word_interleaved(
        attraction_buffers=attraction_buffers, entries=attraction_entries
    )
    options = CompilerOptions(
        heuristic=heuristic,
        unroll_policy=unroll_policy,
        variable_alignment=variable_alignment,
        use_chains=use_chains,
    )
    if name is None:
        suffix = "+AB" if attraction_buffers else ""
        name = f"{heuristic.value}{suffix}"
    return ArchitectureSetup(name=name, config=config, options=options)


def unified_setup(latency: int, name: Optional[str] = None) -> ArchitectureSetup:
    """A unified-cache configuration with the BASE scheduler."""
    config = MachineConfig.unified(latency=latency)
    options = CompilerOptions(
        heuristic=SchedulingHeuristic.BASE, unroll_policy=UnrollPolicy.SELECTIVE
    )
    return ArchitectureSetup(
        name=name or f"unified-L{latency}", config=config, options=options
    )


def multivliw_setup(name: str = "multivliw") -> ArchitectureSetup:
    """The cache-coherent multiVLIW configuration."""
    config = MachineConfig.multivliw()
    options = CompilerOptions(
        heuristic=SchedulingHeuristic.MULTIVLIW, unroll_policy=UnrollPolicy.SELECTIVE
    )
    return ArchitectureSetup(name=name, config=config, options=options)


# ----------------------------------------------------------------------
# Compilation / simulation with caching
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ExperimentOptions:
    """Global knobs of an experiment run."""

    benchmarks: tuple[str, ...] = BENCHMARK_NAMES
    simulation_iteration_cap: int = 256
    execution_dataset: str = "execution"

    def simulation_options(self) -> SimulationOptions:
        """The simulation options matching these experiment options."""
        return SimulationOptions(
            dataset=self.execution_dataset,
            iteration_cap=self.simulation_iteration_cap,
        )


def _compile_cache_key(benchmark: str, setup: ArchitectureSetup) -> tuple:
    config = setup.config
    options = setup.options
    return (
        benchmark,
        config.organization.value,
        config.num_clusters,
        config.interleaving_factor,
        config.attraction_buffer.enabled,
        config.attraction_buffer.entries,
        config.unified_cache_latency,
        options.heuristic.value,
        options.unroll_policy.value,
        options.variable_alignment,
        options.use_chains,
    )


class ExperimentRunner:
    """Compiles and simulates benchmarks, caching compilation results."""

    def __init__(self, options: Optional[ExperimentOptions] = None) -> None:
        self.options = options or ExperimentOptions()
        self._suite = mediabench_suite()
        self._compile_cache: dict[tuple, list[CompiledLoop]] = {}

    @property
    def benchmarks(self) -> list[Benchmark]:
        """The benchmarks this runner operates on."""
        return [self._suite[name] for name in self.options.benchmarks]

    def benchmark(self, name: str) -> Benchmark:
        """Look up one benchmark by name."""
        return self._suite[name]

    def compile_benchmark(
        self, benchmark: Benchmark, setup: ArchitectureSetup
    ) -> list[CompiledLoop]:
        """Compile all loops of a benchmark for a setup (cached)."""
        key = _compile_cache_key(benchmark.name, setup)
        if key not in self._compile_cache:
            self._compile_cache[key] = [
                compile_loop(loop, setup.config, setup.options)
                for loop in benchmark.loops
            ]
        return self._compile_cache[key]

    def run_benchmark(
        self, benchmark: Benchmark, setup: ArchitectureSetup
    ) -> BenchmarkSimulationResult:
        """Compile (cached) and simulate one benchmark under one setup."""
        compiled = self.compile_benchmark(benchmark, setup)
        return simulate_compiled_loops(
            compiled,
            benchmark.name,
            setup.config,
            self.options.simulation_options(),
            architecture=setup.name,
        )

    def run_suite(
        self, setup: ArchitectureSetup, benchmarks: Optional[Iterable[str]] = None
    ) -> dict[str, BenchmarkSimulationResult]:
        """Run every requested benchmark under one setup."""
        names = list(benchmarks) if benchmarks is not None else list(
            self.options.benchmarks
        )
        return {
            name: self.run_benchmark(self._suite[name], setup) for name in names
        }


@dataclass
class ExperimentResult:
    """Generic result container: named rows plus a rendered report."""

    title: str
    headers: list[str]
    rows: list[list[object]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, row: list[object]) -> None:
        """Append one row."""
        self.rows.append(row)

    def render(self) -> str:
        """Render the result as a text table plus notes."""
        from repro.analysis.report import format_table

        text = format_table(self.headers, self.rows, title=self.title)
        if self.notes:
            text += "\n" + "\n".join(f"note: {note}" for note in self.notes)
        return text

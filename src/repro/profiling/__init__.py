"""Profiling: hit rates, preferred clusters, address streams."""

from repro.profiling.address import AddressStream
from repro.profiling.profiler import (
    DEFAULT_PROFILE_ITERATION_CAP,
    LoopProfile,
    OperationProfile,
    profile_loop,
)

__all__ = [
    "AddressStream",
    "DEFAULT_PROFILE_ITERATION_CAP",
    "LoopProfile",
    "OperationProfile",
    "profile_loop",
]

"""Tests of the long-lived sweep service (repro.sweep.service).

The service's whole value proposition is tested end to end, in process
where possible (a :class:`ServiceThread` serving a unix socket in a tmp
dir): cross-client dedup with zero re-execution, record parity with the
batch ``run`` path, cancel leaving the store consistent, submit-side
backpressure, and SIGTERM draining a real ``repro-sweep serve``
subprocess.

The grids are tiny (streaming kernel, iteration cap 64) and in-flight
windows are held open deterministically with the pipeline's
``REPRO_SWEEP_TEST_SLOWDOWN`` hook rather than timing luck.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.scheduler.pipeline import TEST_SLOWDOWN_ENV
from repro.sweep.executor import default_workers, is_simulated_record, run_jobs
from repro.sweep.protocol import ServiceClient, default_socket_path
from repro.sweep.scheduler import WorkStealingScheduler
from repro.sweep.service import ServiceThread, SweepService
from repro.sweep.spec import SweepSpec
from repro.sweep.store import ResultStore

FAST = {"iteration_cap": 64}

#: Record fields that legitimately differ between two executions of the
#: same job (the run that produced them, not the result).
VOLATILE_FIELDS = ("elapsed_seconds", "worker_pid")


def small_spec(name="svc", clusters=(2, 4), axes=None, **base) -> SweepSpec:
    merged = dict(FAST)
    merged.update(base)
    return SweepSpec(
        name=name,
        benchmarks=("kernel:streaming",),
        axes=dict(axes) if axes is not None else {"clusters": clusters},
        base=merged,
    )


def four_point_spec() -> SweepSpec:
    return small_spec(
        axes={"clusters": (2, 4), "attraction_entries": (0, 16)}
    )


def normalized_record(record: dict) -> dict:
    stripped = dict(record)
    for field in VOLATILE_FIELDS:
        stripped.pop(field, None)
    return stripped


def start_service(store_root: Path, **kwargs) -> ServiceThread:
    service = SweepService(store_root, **kwargs)
    return ServiceThread(service)


# ----------------------------------------------------------------------
# Scheduler
# ----------------------------------------------------------------------
class TestWorkStealingScheduler:
    def test_run_all_executes_every_job_once(self, tmp_path):
        jobs = small_spec(clusters=(2, 4)).expand()
        handled = []
        scheduler = WorkStealingScheduler(2)
        try:
            scheduler.run_all(
                jobs, lambda job, record, result: handled.append((job, record))
            )
        finally:
            scheduler.close()
        assert sorted(job.key for job, _ in handled) == sorted(
            j.key for j in jobs
        )
        assert all(is_simulated_record(record) for _, record in handled)

    def test_duplicate_submit_is_deduped(self):
        job = small_spec(clusters=(2,)).expand()[0]
        done = threading.Event()
        scheduler = WorkStealingScheduler(1)
        try:
            first = scheduler.submit(job, lambda c: done.set())
            second = scheduler.submit(job, lambda c: None)
            assert first == "queued"
            assert second == "inflight"
            assert done.wait(60)
            assert scheduler.counters()["executed"] == 1
        finally:
            scheduler.close()

    def test_benchmark_affinity_is_stable(self):
        scheduler = WorkStealingScheduler(4)
        try:
            homes = {
                scheduler.home_worker("kernel:streaming") for _ in range(8)
            }
            assert len(homes) == 1
            assert 0 <= homes.pop() < 4
        finally:
            scheduler.close()


# ----------------------------------------------------------------------
# Dedup across concurrent clients
# ----------------------------------------------------------------------
class TestCrossClientDedup:
    def test_inflight_overlap_executes_nothing_twice(
        self, tmp_path, monkeypatch
    ):
        # Hold every job in flight long enough for the second client to
        # land mid-grid; its whole grid must classify as in-flight/stored
        # with zero new executions.
        monkeypatch.setenv(TEST_SLOWDOWN_ENV, "schedule:0.3")
        store_root = tmp_path / "store"
        spec = small_spec().to_mapping()
        with start_service(store_root, workers=2) as served:
            socket_path = default_socket_path(store_root)
            first_done = {}
            accepted = threading.Event()

            def first_client():
                with ServiceClient(socket_path=socket_path) as client:
                    first_done.update(
                        client.submit(
                            spec,
                            on_event=lambda e: accepted.set()
                            if e.get("event") == "accepted"
                            else None,
                        )
                    )

            thread = threading.Thread(target=first_client)
            thread.start()
            assert accepted.wait(30)
            with ServiceClient(socket_path=socket_path) as client:
                second_done = client.submit(spec)
            thread.join(60)

            assert first_done["executed"] == 2
            assert second_done["executed"] == 0
            assert second_done["inflight"] + second_done["stored"] == 2
            with ServiceClient(socket_path=socket_path) as client:
                stats = client.stats()
            assert stats["jobs"]["executed"] == 2
            assert stats["dedup"]["new"] == 2
            assert stats["dedup"]["inflight"] + stats["dedup"]["stored"] == 2
        assert served.service.counters["executed"] == 2

    def test_served_records_match_plain_run(self, tmp_path):
        spec = small_spec()
        reference = ResultStore(tmp_path / "reference")
        run_jobs(spec.expand(), store=reference, workers=1)

        store_root = tmp_path / "served"
        with start_service(store_root, workers=2):
            with ServiceClient(
                socket_path=default_socket_path(store_root)
            ) as client:
                done = client.submit(spec.to_mapping())
        assert done["executed"] == len(spec.expand())

        served = ResultStore(store_root)
        assert served.keys() == reference.keys()
        for key in reference.keys():
            expected = json.loads(
                reference.record_path(key).read_text(encoding="utf-8")
            )
            actual = json.loads(
                served.record_path(key).read_text(encoding="utf-8")
            )
            assert normalized_record(actual) == normalized_record(expected)

    def test_stored_grid_is_served_without_execution(self, tmp_path):
        store_root = tmp_path / "store"
        spec = small_spec()
        run_jobs(spec.expand(), store=ResultStore(store_root), workers=1)
        with start_service(store_root, workers=1):
            with ServiceClient(
                socket_path=default_socket_path(store_root)
            ) as client:
                done = client.submit(spec.to_mapping())
        assert done["executed"] == 0
        assert done["stored"] == len(spec.expand())


# ----------------------------------------------------------------------
# Cancel
# ----------------------------------------------------------------------
class TestCancel:
    def test_cancel_mid_grid_leaves_store_consistent(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(TEST_SLOWDOWN_ENV, "schedule:0.3")
        store_root = tmp_path / "store"
        spec = four_point_spec().to_mapping()
        with start_service(store_root, workers=1):
            with ServiceClient(
                socket_path=default_socket_path(store_root)
            ) as client:
                client.send({"op": "submit", "spec": spec, "wait": True})
                accepted = client.receive()
                assert accepted["event"] == "accepted"
                done = client.cancel(accepted["request"])
                assert done["cancelled"] is True
                # The running job finished and saved; queued jobs were
                # dropped before execution.
                assert done["executed"] + done["failed"] < accepted["total"]

        store = ResultStore(store_root)
        for key in store.keys():
            record = store.load_record(key)
            assert is_simulated_record(record)
        # No torn files, no orphaned payloads: vacuum finds nothing even
        # with no grace window.
        assert store.vacuum(grace_seconds=0.0) == []

    def test_disconnect_cancels_waiting_request(self, tmp_path, monkeypatch):
        monkeypatch.setenv(TEST_SLOWDOWN_ENV, "schedule:0.3")
        store_root = tmp_path / "store"
        with start_service(store_root, workers=1) as served:
            client = ServiceClient(
                socket_path=default_socket_path(store_root)
            )
            client.send(
                {
                    "op": "submit",
                    "spec": four_point_spec().to_mapping(),
                    "wait": True,
                }
            )
            assert client.receive()["event"] == "accepted"
            client.close()
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if served.service.counters["cancelled_requests"] == 1:
                    break
                time.sleep(0.05)
            assert served.service.counters["cancelled_requests"] == 1


# ----------------------------------------------------------------------
# Backpressure
# ----------------------------------------------------------------------
class TestBackpressure:
    def test_over_cap_submit_is_rejected_with_retry_after(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(TEST_SLOWDOWN_ENV, "schedule:0.5")
        store_root = tmp_path / "store"
        with start_service(store_root, workers=1, queue_cap=2):
            socket_path = default_socket_path(store_root)
            filling = ServiceClient(socket_path=socket_path)
            try:
                filling.send(
                    {
                        "op": "submit",
                        "spec": small_spec(clusters=(2, 4)).to_mapping(),
                        "wait": True,
                    }
                )
                assert filling.receive()["event"] == "accepted"
                with ServiceClient(socket_path=socket_path) as client:
                    rejected = client.submit(
                        small_spec(iteration_cap=65).to_mapping()
                    )
                assert rejected["event"] == "rejected"
                assert "queue cap" in rejected["error"]
                assert rejected["retry_after"] > 0
                # The filling client still completes normally.
                while True:
                    event = filling.receive()
                    if event.get("event") == "done":
                        assert event["executed"] == 2
                        break
            finally:
                filling.close()


# ----------------------------------------------------------------------
# Service lifecycle and telemetry
# ----------------------------------------------------------------------
class TestLifecycle:
    def test_workers_resolved_at_start_and_exposed_in_stats(self, tmp_path):
        store_root = tmp_path / "store"
        service = SweepService(store_root)
        assert service.workers == default_workers()
        with ServiceThread(service):
            with ServiceClient(
                socket_path=default_socket_path(store_root)
            ) as client:
                stats = client.stats()
        assert stats["workers"] == default_workers()
        assert stats["queue_cap"] == service.queue_cap

    def test_watch_reads_totals_from_live_header(self, tmp_path):
        store_root = tmp_path / "store"
        spec = small_spec()
        from repro.sweep.report import watch_snapshot

        with start_service(store_root, workers=1):
            with ServiceClient(
                socket_path=default_socket_path(store_root)
            ) as client:
                client.submit(spec.to_mapping())
                # Second identical submit: all stored, executes nothing;
                # the header totals must not move.
                client.submit(spec.to_mapping())
            snapshot = watch_snapshot(store_root)
            assert snapshot is not None
            assert snapshot["total_units"] == 2
            assert snapshot["completed"] == 2
            assert snapshot["header"]["service"] is True
            assert snapshot["header"]["served_stored"] == 2

    def test_shutdown_finalizes_ledger_with_request_entries(self, tmp_path):
        from repro.obs import events as obs_events
        from repro.obs import ledger as obs_ledger

        store_root = tmp_path / "store"
        spec = small_spec()
        with start_service(store_root, workers=1):
            with ServiceClient(
                socket_path=default_socket_path(store_root)
            ) as client:
                client.submit(spec.to_mapping())
                client.submit(spec.to_mapping())
        obs_directory = obs_events.obs_dir(store_root)
        entries = obs_ledger.read_entries(obs_directory)
        # Two per-request entries plus the final service-session entry.
        assert len(entries) == 3
        first, second, session = entries
        assert first["run"]["executed"] == 2
        assert first["service"]["new"] == 2
        assert second["run"]["executed"] == 0
        assert second["run"]["cache_hits"] == 2
        assert first["spec_hash"] == second["spec_hash"]
        assert session["service"]["requests"] == 2
        # run.json is gone after finalize; the merged trace exists.
        assert not (obs_directory / "run.json").exists()
        assert (obs_directory / "trace.jsonl").exists()

    def test_sigterm_drains_subprocess_cleanly(self, tmp_path):
        store_root = tmp_path / "store"
        store_root.mkdir()
        socket_path = store_root / "service.sock"
        spec_file = tmp_path / "spec.json"
        spec = small_spec(clusters=(2, 4))
        spec_file.write_text(json.dumps(spec.to_mapping()), encoding="utf-8")
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = os.pathsep.join(
            [src] + env.get("PYTHONPATH", "").split(os.pathsep)
        ).strip(os.pathsep)
        env[TEST_SLOWDOWN_ENV] = "schedule:0.3"
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.sweep",
                "serve",
                str(store_root),
                "--workers",
                "1",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline and not socket_path.exists():
                time.sleep(0.1)
            assert socket_path.exists(), "service never started listening"
            # Detached submit, then SIGTERM mid-grid: the drain must
            # finish the accepted work before exiting 0.
            with ServiceClient(socket_path=socket_path) as client:
                accepted = client.submit(spec.to_mapping(), wait=False)
                assert accepted["event"] == "accepted"
            process.send_signal(signal.SIGTERM)
            output = process.communicate(timeout=120)[0]
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
        assert process.returncode == 0, output
        assert "stopped:" in output
        assert not socket_path.exists()
        store = ResultStore(store_root)
        records = [store.load_record(job.key) for job in spec.expand()]
        assert all(is_simulated_record(record) for record in records)


# ----------------------------------------------------------------------
# Concurrent-writer store safety
# ----------------------------------------------------------------------
def _hammer_store(root: str, worker: int, keys: list[str]) -> None:
    store = ResultStore(Path(root))
    for index, key in enumerate(keys):
        store.save(
            key,
            {"key": key, "metrics": {"total_cycles": index}, "source": "simulator"},
            payload={"worker": worker, "index": index},
        )


class TestConcurrentWriters:
    def test_many_processes_share_one_store(self, tmp_path):
        import multiprocessing

        root = tmp_path / "store"
        # Seed a flat (pre-shard) layout so every process races the same
        # migration while others are already saving.
        flat = ResultStore(root)
        legacy_keys = [f"{index:02x}" + "0" * 62 for index in range(8)]
        for key in legacy_keys:
            flat.save(key, {"key": key, "source": "simulator"})
        for key in legacy_keys:
            sharded = flat.record_path(key)
            flat_path = sharded.parent.parent / sharded.name
            os.replace(sharded, flat_path)

        keys = [f"{index:02x}" + "f" * 62 for index in range(16)]
        context = multiprocessing.get_context("fork")
        processes = [
            context.Process(target=_hammer_store, args=(str(root), n, keys))
            for n in range(4)
        ]
        for process in processes:
            process.start()
        for process in processes:
            process.join(60)
            assert process.exitcode == 0

        store = ResultStore(root)
        assert set(store.keys()) >= set(keys) | set(legacy_keys)
        for key in keys + legacy_keys:
            assert store.load_record(key)["key"] == key
        assert store.vacuum(grace_seconds=0.0) == []


# ----------------------------------------------------------------------
# Protocol validation
# ----------------------------------------------------------------------
class TestProtocol:
    def test_loop_granularity_is_rejected(self, tmp_path):
        store_root = tmp_path / "store"
        with start_service(store_root, workers=1):
            with ServiceClient(
                socket_path=default_socket_path(store_root)
            ) as client:
                client.send(
                    {
                        "op": "submit",
                        "spec": small_spec().to_mapping(),
                        "granularity": "loop",
                    }
                )
                reply = client.receive()
        assert reply["event"] == "rejected"
        assert "granularity" in reply["error"]

    def test_invalid_spec_and_unknown_op_answer_errors(self, tmp_path):
        store_root = tmp_path / "store"
        with start_service(store_root, workers=1):
            with ServiceClient(
                socket_path=default_socket_path(store_root)
            ) as client:
                client.send({"op": "submit", "spec": {"benchmarks": ["nope"]}})
                assert client.receive()["event"] == "rejected"
                client.send({"op": "frobnicate"})
                assert "unknown op" in client.receive()["error"]
                client.send({"op": "cancel", "request": "req-999"})
                assert "no live request" in client.receive()["error"]
                assert client.ping()["event"] == "pong"

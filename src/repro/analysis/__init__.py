"""Analysis: metrics and report formatting for the experiments."""

from repro.analysis.metrics import (
    NormalizedCycles,
    StallFactorBreakdown,
    access_fractions,
    arithmetic_mean,
    classify_stall_factors,
    local_hit_ratio,
    local_hit_ratio_improvement,
    normalize,
    normalized_cycle_breakdown,
    remote_hit_stall_share,
    speedup,
    stall_fractions,
    stall_reduction,
    workload_balance,
)
from repro.analysis.report import format_dict, format_fraction_row, format_table

__all__ = [
    "NormalizedCycles",
    "StallFactorBreakdown",
    "access_fractions",
    "arithmetic_mean",
    "classify_stall_factors",
    "format_dict",
    "format_fraction_row",
    "format_table",
    "local_hit_ratio",
    "local_hit_ratio_improvement",
    "normalize",
    "normalized_cycle_breakdown",
    "remote_hit_stall_share",
    "speedup",
    "stall_fractions",
    "stall_reduction",
    "workload_balance",
]

"""Tests for the data dependence graph (repro.ir.ddg)."""

import pytest

from repro.ir.ddg import (
    DataDependenceGraph,
    Dependence,
    DependenceKind,
    merge_graphs,
    rec_mii,
)
from repro.ir.operation import MemoryAccess, make_operation


def _unit_latency(_op):
    return 1


def build_simple_chain():
    ddg = DataDependenceGraph("chain")
    a = ddg.add_operation(make_operation("a", "add"))
    b = ddg.add_operation(make_operation("b", "mul"))
    c = ddg.add_operation(make_operation("c", "sub"))
    ddg.connect(a, b)
    ddg.connect(b, c)
    return ddg, (a, b, c)


class TestGraphConstruction:
    def test_operations_in_insertion_order(self):
        ddg, (a, b, c) = build_simple_chain()
        assert ddg.operations == [a, b, c]
        assert len(ddg) == 3

    def test_duplicate_operation_rejected(self):
        ddg, (a, _, _) = build_simple_chain()
        with pytest.raises(ValueError):
            ddg.add_operation(a)

    def test_dependence_requires_known_endpoints(self):
        ddg = DataDependenceGraph()
        a = ddg.add_operation(make_operation("a", "add"))
        stranger = make_operation("b", "add")
        with pytest.raises(ValueError):
            ddg.connect(a, stranger)

    def test_negative_distance_rejected(self):
        ddg, (a, b, _) = build_simple_chain()
        with pytest.raises(ValueError):
            ddg.add_dependence(Dependence(a, b, DependenceKind.REG_FLOW, -1))

    def test_find_by_name(self):
        ddg, (a, _, _) = build_simple_chain()
        assert ddg.find("a") is a
        with pytest.raises(KeyError):
            ddg.find("missing")

    def test_memory_operations_filter(self):
        ddg = DataDependenceGraph()
        ld = ddg.add_operation(
            make_operation("ld", "ld", MemoryAccess(array="a", stride_bytes=4))
        )
        ddg.add_operation(make_operation("x", "add"))
        assert ddg.memory_operations == [ld]

    def test_predecessors_and_successors(self):
        ddg, (a, b, c) = build_simple_chain()
        assert ddg.predecessors(b) == [a]
        assert ddg.successors(b) == [c]
        assert ddg.dependences_to(b)[0].src is a
        assert ddg.dependences_from(b)[0].dst is c

    def test_copy_preserves_structure(self):
        ddg, _ = build_simple_chain()
        clone = ddg.copy("copy")
        assert len(clone) == len(ddg)
        assert len(clone.dependences()) == len(ddg.dependences())

    def test_merge_graphs(self):
        first, _ = build_simple_chain()
        second = DataDependenceGraph("other")
        second.add_operation(make_operation("z", "add"))
        merged = merge_graphs("merged", [first, second])
        assert len(merged) == 4


class TestValidation:
    def test_duplicate_names_rejected(self):
        ddg = DataDependenceGraph()
        ddg.add_operation(make_operation("same", "add"))
        ddg.add_operation(make_operation("same", "mul"))
        with pytest.raises(ValueError):
            ddg.validate()

    def test_zero_distance_self_loop_rejected(self):
        ddg = DataDependenceGraph()
        a = ddg.add_operation(make_operation("a", "add"))
        ddg.connect(a, a, DependenceKind.REG_FLOW, 0)
        with pytest.raises(ValueError):
            ddg.validate()

    def test_valid_graph_passes(self):
        ddg, _ = build_simple_chain()
        ddg.validate()


class TestRecurrences:
    def test_acyclic_graph_has_no_recurrences(self):
        ddg, _ = build_simple_chain()
        assert ddg.recurrences() == []
        assert rec_mii(ddg, _unit_latency) == 1

    def test_self_recurrence(self):
        ddg = DataDependenceGraph()
        acc = ddg.add_operation(make_operation("acc", "add"))
        ddg.connect(acc, acc, DependenceKind.REG_FLOW, 1)
        recurrences = ddg.recurrences()
        assert len(recurrences) == 1
        assert recurrences[0].total_distance == 1
        assert recurrences[0].initiation_interval(_unit_latency) == 1

    def test_two_node_recurrence_ii(self):
        ddg = DataDependenceGraph()
        a = ddg.add_operation(make_operation("a", "add"))
        b = ddg.add_operation(make_operation("b", "mul"))
        ddg.connect(a, b, DependenceKind.REG_FLOW, 0)
        ddg.connect(b, a, DependenceKind.REG_FLOW, 1)
        recurrence = ddg.recurrences()[0]
        assert recurrence.initiation_interval(lambda op: 3) == 6
        assert rec_mii(ddg, lambda op: 3) == 6

    def test_anti_dependence_contributes_no_latency(self):
        ddg = DataDependenceGraph()
        a = ddg.add_operation(make_operation("a", "add"))
        b = ddg.add_operation(make_operation("b", "mul"))
        ddg.connect(a, b, DependenceKind.REG_FLOW, 0)
        ddg.connect(b, a, DependenceKind.REG_ANTI, 1)
        recurrence = ddg.recurrences()[0]
        # Only a's latency counts: the anti edge does not wait for b.
        assert recurrence.latency_sum(lambda op: 4) == 4

    def test_memory_edge_contributes_one_cycle(self):
        ddg = DataDependenceGraph()
        ld = ddg.add_operation(
            make_operation("ld", "ld", MemoryAccess(array="a", stride_bytes=4))
        )
        st = ddg.add_operation(
            make_operation(
                "st", "st", MemoryAccess(array="a", stride_bytes=4, is_store=True)
            )
        )
        ddg.connect(ld, st, DependenceKind.MEMORY, 0)
        ddg.connect(st, ld, DependenceKind.MEMORY, 1)
        recurrence = ddg.recurrences()[0]
        assert recurrence.latency_sum(lambda op: 15) == 2

    def test_recurrence_memory_operations(self):
        ddg = DataDependenceGraph()
        ld = ddg.add_operation(
            make_operation("ld", "ld", MemoryAccess(array="a", stride_bytes=4))
        )
        add = ddg.add_operation(make_operation("x", "add"))
        ddg.connect(ld, add, DependenceKind.REG_FLOW, 0)
        ddg.connect(add, ld, DependenceKind.REG_FLOW, 1)
        assert ddg.recurrences()[0].memory_operations() == [ld]

    def test_recurrence_enumeration_is_bounded(self):
        # A conservative-disambiguation style graph with many interleaved
        # cycles must not blow up the enumeration.
        ddg = DataDependenceGraph()
        stores = [
            ddg.add_operation(
                make_operation(
                    f"st{i}",
                    "st",
                    MemoryAccess(array="a", stride_bytes=4, is_store=True),
                )
            )
            for i in range(6)
        ]
        loads = [
            ddg.add_operation(
                make_operation(
                    f"ld{i}", "ld", MemoryAccess(array="a", stride_bytes=4)
                )
            )
            for i in range(12)
        ]
        for st in stores:
            for ld in loads:
                ddg.connect(st, ld, DependenceKind.MEMORY, 0)
                ddg.connect(ld, st, DependenceKind.MEMORY, 1)
        recurrences = ddg.recurrences(max_count=50)
        assert 0 < len(recurrences) <= 50

    def test_recurrences_shortest_first(self):
        ddg = DataDependenceGraph()
        ops = [ddg.add_operation(make_operation(f"op{i}", "add")) for i in range(4)]
        # A long 4-cycle plus a short 2-cycle embedded in it.
        for i in range(4):
            ddg.connect(ops[i], ops[(i + 1) % 4], DependenceKind.REG_FLOW, 1 if i == 3 else 0)
        ddg.connect(ops[1], ops[0], DependenceKind.REG_FLOW, 1)
        lengths = [len(rec.nodes) for rec in ddg.recurrences()]
        assert lengths == sorted(lengths)

    def test_recurrences_independent_of_operation_uids(self):
        # Operation hashes are process-global uids; recurrence enumeration
        # (and with it every schedule downstream) must not depend on how many
        # operations were created earlier in the process.  Regression test for
        # run-order-dependent benchmark results.
        def build():
            ddg = DataDependenceGraph()
            stores = [
                ddg.add_operation(
                    make_operation(
                        f"st{i}",
                        "st",
                        MemoryAccess(array="a", stride_bytes=4, is_store=True),
                    )
                )
                for i in range(4)
            ]
            loads = [
                ddg.add_operation(
                    make_operation(
                        f"ld{i}", "ld", MemoryAccess(array="a", stride_bytes=4)
                    )
                )
                for i in range(8)
            ]
            for st in stores:
                for ld in loads:
                    ddg.connect(st, ld, DependenceKind.MEMORY, 0)
                    ddg.connect(ld, st, DependenceKind.MEMORY, 1)
            return ddg

        def names(ddg):
            return [tuple(op.name for op in rec.nodes) for rec in ddg.recurrences(max_count=20)]

        first = names(build())
        for i in range(997):  # shift subsequent uids by an odd prime
            make_operation(f"uid_burn_{i}", "add")
        assert names(build()) == first

    def test_recurrence_cache_reused(self):
        ddg = DataDependenceGraph()
        a = ddg.add_operation(make_operation("a", "add"))
        ddg.connect(a, a, DependenceKind.REG_FLOW, 1)
        first = ddg.recurrences()
        second = ddg.recurrences()
        assert first == second

    def test_zero_distance_recurrence_rejected(self):
        ddg = DataDependenceGraph()
        a = ddg.add_operation(make_operation("a", "add"))
        b = ddg.add_operation(make_operation("b", "add"))
        ddg.connect(a, b, DependenceKind.REG_FLOW, 0)
        ddg.connect(b, a, DependenceKind.REG_FLOW, 0)
        recurrence = ddg.recurrences()[0]
        with pytest.raises(ValueError):
            recurrence.initiation_interval(_unit_latency)


class TestConnectedComponents:
    def test_components_by_memory_edges(self):
        ddg = DataDependenceGraph()
        ld1 = ddg.add_operation(
            make_operation("ld1", "ld", MemoryAccess(array="a", stride_bytes=4))
        )
        st1 = ddg.add_operation(
            make_operation(
                "st1", "st", MemoryAccess(array="a", stride_bytes=4, is_store=True)
            )
        )
        ld2 = ddg.add_operation(
            make_operation("ld2", "ld", MemoryAccess(array="b", stride_bytes=4))
        )
        ddg.connect(ld1, st1, DependenceKind.MEMORY, 0)
        components = ddg.connected_components(lambda dep: dep.is_memory)
        grouped = [component for component in components if len(component) > 1]
        assert grouped == [{ld1, st1}]
        assert any(component == {ld2} for component in components)

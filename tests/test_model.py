"""Tests for the analytical performance model (:mod:`repro.model`).

Covers the four layers of the subsystem -- bounds, locality, prediction,
calibration -- plus the two acceptance properties of the model: calibrated
cycle-count error at most 15% MARE over the full benchmark suite, and
result-shape compatibility with the simulator's containers so the analysis
layer consumes either.
"""

from __future__ import annotations

import math

import pytest

from repro.analysis import metrics
from repro.analysis.metrics import (
    mean_absolute_relative_error,
    relative_error,
)
from repro.machine.config import MachineConfig
from repro.memory.classify import AccessType
from repro.memory.layout import stride_cluster_fractions, stride_locality
from repro.model import (
    CalibrationSample,
    ExpectedAccessMix,
    ModelCalibration,
    PredictedResult,
    fit_calibration,
    loop_access_mix,
    loop_bounds,
    predict_benchmark,
    predict_job,
    predict_loop,
)
from repro.model.locality import operation_access_mix
from repro.scheduler.mii import (
    compute_mii,
    critical_path_length,
    make_latency_function,
)
from repro.scheduler.pipeline import CompilerOptions, compile_loop
from repro.sim.engine import SimulationOptions, simulate_compiled_loops
from repro.sweep.spec import job_from_description, make_job
from repro.sweep.workloads import resolve_workload
from repro.workloads.mediabench import BENCHMARK_NAMES

from tests.conftest import (
    build_indirect_loop,
    build_recurrence_loop,
    build_streaming_loop,
)


# ----------------------------------------------------------------------
# Geometry queries (memory layer)
# ----------------------------------------------------------------------
class TestStrideGeometry:
    def test_fractions_are_a_distribution(self, interleaved_config):
        fractions = stride_cluster_fractions(interleaved_config, stride_bytes=2)
        assert sum(fractions.values()) == pytest.approx(1.0)
        assert all(fraction > 0 for fraction in fractions.values())

    def test_span_multiple_stride_stays_on_one_cluster(self, interleaved_config):
        span = interleaved_config.interleave_span
        fractions = stride_cluster_fractions(interleaved_config, stride_bytes=span)
        assert fractions == {0: 1.0}
        assert stride_locality(interleaved_config, 3 * span) == 1.0

    def test_word_stride_spreads_evenly(self, interleaved_config):
        # Stride == interleaving factor: each access moves one cluster over.
        fractions = stride_cluster_fractions(
            interleaved_config, interleaved_config.interleaving_factor
        )
        clusters = interleaved_config.num_clusters
        assert len(fractions) == clusters
        for fraction in fractions.values():
            assert fraction == pytest.approx(1.0 / clusters)

    def test_phase_shifts_do_not_change_locality(self, interleaved_config):
        for stride in (2, 4, 6, 8, 12):
            base = stride_locality(interleaved_config, stride)
            shifted = stride_locality(interleaved_config, stride, phase_bytes=8)
            assert base == pytest.approx(shifted)

    def test_zero_stride_is_fully_local(self, interleaved_config):
        assert stride_locality(interleaved_config, 0) == 1.0


# ----------------------------------------------------------------------
# Critical path (scheduler layer)
# ----------------------------------------------------------------------
class TestCriticalPath:
    def test_streaming_loop_path_covers_load_consumer_chain(
        self, interleaved_config
    ):
        loop = build_streaming_loop()
        latency_of = make_latency_function(interleaved_config)
        path = critical_path_length(loop.ddg, latency_of)
        # ld(1, local hit) -> mul(2) -> shl(1) -> st(1): at least 5 cycles.
        assert path >= 5

    def test_longer_latencies_lengthen_the_path(self, interleaved_config):
        loop = build_streaming_loop()
        short = critical_path_length(
            loop.ddg, make_latency_function(interleaved_config)
        )
        long = critical_path_length(
            loop.ddg,
            make_latency_function(interleaved_config, default_memory_latency=15),
        )
        assert long > short


# ----------------------------------------------------------------------
# Locality model
# ----------------------------------------------------------------------
class TestLocalityModel:
    def test_mix_fractions_sum_to_one(self, interleaved_config):
        loop = build_streaming_loop()
        for mix in loop_access_mix(loop, interleaved_config).values():
            total = mix.local_hit + mix.remote_hit + mix.local_miss + mix.remote_miss
            assert total == pytest.approx(1.0)

    def test_unified_cache_is_fully_local(self, unified_config):
        loop = build_streaming_loop()
        for mix in loop_access_mix(loop, unified_config).values():
            assert mix.local == pytest.approx(1.0)
            assert mix.remote == pytest.approx(0.0)

    def test_wide_accesses_cannot_be_local(self, interleaved_config):
        loop = build_streaming_loop(element_bytes=8)  # > 4-byte interleaving
        for op, mix in loop_access_mix(loop, interleaved_config).items():
            assert mix.local == pytest.approx(0.0), op.name

    def test_unaligned_stack_data_loses_locality(self, interleaved_config):
        from repro.ir.loop import StorageClass

        loop = build_streaming_loop(storage=StorageClass.STACK)
        aligned = loop_access_mix(loop, interleaved_config, aligned=True)
        unaligned = loop_access_mix(loop, interleaved_config, aligned=False)
        for op in loop.memory_operations:
            assert unaligned[op].local <= aligned[op].local
            assert unaligned[op].local == pytest.approx(
                1.0 / interleaved_config.num_clusters
            )

    def test_attraction_buffers_convert_remote_to_local(
        self, interleaved_config, interleaved_ab_config
    ):
        # A 2-byte stride revisits each interleaving chunk, so the buffers
        # convert a share of the remote accesses into local hits.
        loop = build_streaming_loop(element_bytes=2)
        without = loop_access_mix(loop, interleaved_config)
        with_ab = loop_access_mix(loop, interleaved_ab_config)
        load = next(op for op in loop.memory_operations if op.is_load)
        assert with_ab[load].remote < without[load].remote
        assert with_ab[load].local_hit > without[load].local_hit

    def test_indirect_access_spreads_over_clusters(self, interleaved_config):
        loop = build_indirect_loop()
        lookup = next(
            op for op in loop.memory_operations if op.memory.indirect
        )
        mix = operation_access_mix(loop, lookup, interleaved_config)
        assert mix.local == pytest.approx(1.0 / interleaved_config.num_clusters)

    def test_expected_stall_mirrors_uncovered_latency(self, interleaved_config):
        mix = ExpectedAccessMix(
            local_hit=0.5, remote_hit=0.3, local_miss=0.1, remote_miss=0.1
        )
        lat = interleaved_config.latencies
        expected = (
            0.3 * (lat.remote_hit - 1)
            + 0.1 * (lat.local_miss - 1)
            + 0.1 * (lat.remote_miss - 1)
        )
        assert mix.expected_stall(interleaved_config, 1) == pytest.approx(expected)
        # Covering the worst case leaves no stall.
        assert mix.expected_stall(interleaved_config, lat.remote_miss) == 0.0
        by_type = mix.stall_by_type(interleaved_config, 1)
        assert by_type[AccessType.REMOTE_HIT] == pytest.approx(
            0.3 * (lat.remote_hit - 1)
        )


# ----------------------------------------------------------------------
# Bounds
# ----------------------------------------------------------------------
class TestBounds:
    def test_bounds_reuse_scheduler_mii(self, interleaved_config):
        loop = build_recurrence_loop()
        latency_of = make_latency_function(interleaved_config)
        bounds = loop_bounds(loop, interleaved_config, latency_of=latency_of)
        mii = compute_mii(loop, interleaved_config, latency_of)
        assert bounds.res_mii == mii.res_mii
        assert bounds.rec_mii == mii.rec_mii
        assert bounds.ii >= mii.mii

    def test_chain_constraint_raises_the_bound(self, interleaved_config):
        loop = build_recurrence_loop()
        with_chains = loop_bounds(loop, interleaved_config, use_chains=True)
        without = loop_bounds(loop, interleaved_config, use_chains=False)
        assert with_chains.cluster_mii >= without.cluster_mii

    def test_wide_accesses_create_bus_pressure(self, interleaved_config):
        wide = build_streaming_loop(element_bytes=8)
        narrow = build_streaming_loop(element_bytes=4)
        wide_bounds = loop_bounds(wide, interleaved_config)
        narrow_bounds = loop_bounds(narrow, interleaved_config)
        assert wide_bounds.bus_mii > narrow_bounds.bus_mii

    def test_describe_names_the_binding_constraint(self, interleaved_config):
        bounds = loop_bounds(build_streaming_loop(), interleaved_config)
        summary = bounds.describe()
        assert summary["ii_bound"] == bounds.ii
        assert summary["binding_constraint"] in (
            "resources",
            "recurrences",
            "cluster-assignment",
            "memory-buses",
            "memory-ports",
        )


# ----------------------------------------------------------------------
# Prediction shape compatibility
# ----------------------------------------------------------------------
class TestPredictedResultShape:
    def test_predicted_result_is_shaped_like_simulation_result(
        self, interleaved_config
    ):
        benchmark = resolve_workload("kernels-mix")
        predicted = predict_benchmark(benchmark, interleaved_config)
        compiled = [
            compile_loop(loop, interleaved_config, CompilerOptions())
            for loop in benchmark.loops
        ]
        simulated = simulate_compiled_loops(
            compiled, benchmark.name, interleaved_config
        )
        predicted_keys = set(predicted.describe())
        simulated_keys = set(simulated.describe())
        assert simulated_keys <= predicted_keys
        assert predicted.describe()["source"] == "model"

    def test_analysis_metrics_consume_predictions(self, interleaved_config):
        benchmark = resolve_workload("kernels-mix")
        predicted = predict_benchmark(benchmark, interleaved_config)
        fractions = metrics.access_fractions(predicted)
        assert sum(fractions.values()) == pytest.approx(1.0)
        assert 0.0 <= metrics.local_hit_ratio(predicted) <= 1.0
        assert metrics.workload_balance(predicted) > 0.0
        breakdown = metrics.normalized_cycle_breakdown(
            {"model": predicted, "model2": predicted}, baseline="model"
        )
        assert breakdown["model"].total == pytest.approx(1.0)

    def test_prediction_is_deterministic(self, interleaved_config):
        benchmark = resolve_workload("kernel:streaming")
        first = predict_benchmark(benchmark, interleaved_config)
        second = predict_benchmark(benchmark, interleaved_config)
        assert first.total_cycles == second.total_cycles
        assert first.describe() == second.describe()

    def test_predict_job_resolves_workloads(self):
        job = make_job(
            "kernel:reduction",
            MachineConfig.word_interleaved(),
            CompilerOptions(),
            SimulationOptions(iteration_cap=64),
        )
        predicted = predict_job(job)
        assert predicted.benchmark == "kernel:reduction"
        assert predicted.total_cycles > 0

    def test_loop_prediction_reports_bounds(self, interleaved_config):
        loop = build_streaming_loop()
        predicted = predict_loop(loop, interleaved_config)
        assert predicted.bounds is not None
        assert predicted.ii >= predicted.bounds.mii
        assert predicted.compute_cycles >= predicted.iterations


# ----------------------------------------------------------------------
# Job descriptions round-trip (store self-description)
# ----------------------------------------------------------------------
class TestDescriptionRoundTrip:
    def test_machine_config_round_trips(self):
        for config in (
            MachineConfig.word_interleaved(),
            MachineConfig.word_interleaved(attraction_buffers=True, entries=32),
            MachineConfig.unified(latency=5),
            MachineConfig.multivliw().with_clusters(2),
        ):
            rebuilt = MachineConfig.from_description(config.describe())
            assert rebuilt == config

    def test_job_round_trips_to_the_same_key(self):
        job = make_job(
            "kernel:strided",
            MachineConfig.word_interleaved(attraction_buffers=True),
            CompilerOptions(),
            SimulationOptions(dataset="execution", iteration_cap=96),
        )
        rebuilt = job_from_description(job.describe())
        assert rebuilt.key == job.key
        assert rebuilt.describe() == job.describe()


# ----------------------------------------------------------------------
# Calibration
# ----------------------------------------------------------------------
class TestCalibration:
    def test_fit_recovers_linear_coefficients(self):
        # Synthetic ground truth: actual = 2 * compute + 3 * stall.
        samples = [
            CalibrationSample("bench", 100.0, 10.0, 2 * 100.0 + 3 * 10.0),
            CalibrationSample("bench", 150.0, 40.0, 2 * 150.0 + 3 * 40.0),
            CalibrationSample("bench", 80.0, 90.0, 2 * 80.0 + 3 * 90.0),
        ]
        calibration, report = fit_calibration(samples)
        compute_scale, stall_scale = calibration.scales_for("bench")
        assert compute_scale == pytest.approx(2.0)
        assert stall_scale == pytest.approx(3.0)
        assert report.mare_calibrated == pytest.approx(0.0, abs=1e-9)
        assert report.mare_raw > 0.0

    def test_scale_only_fallback_for_single_sample(self):
        samples = [CalibrationSample("one", 100.0, 0.0, 150.0)]
        calibration, report = fit_calibration(samples)
        compute_scale, stall_scale = calibration.scales_for("one")
        assert compute_scale == pytest.approx(1.5)
        assert stall_scale == pytest.approx(1.5)
        assert report.mare_calibrated == pytest.approx(0.0, abs=1e-9)

    def test_unknown_benchmark_uses_global_scales(self):
        samples = [
            CalibrationSample("a", 100.0, 0.0, 120.0),
            CalibrationSample("a", 200.0, 0.0, 240.0),
        ]
        calibration, _ = fit_calibration(samples)
        assert calibration.scales_for("never-seen") == (
            calibration.compute_scale,
            calibration.stall_scale,
        )

    def test_round_trips_through_json(self, tmp_path):
        calibration = ModelCalibration(
            compute_scale=1.25,
            stall_scale=0.5,
            per_benchmark={"epicdec": (1.1, 0.9)},
        )
        path = tmp_path / "calibration.json"
        calibration.save(path)
        loaded = ModelCalibration.load(path)
        assert loaded.compute_scale == calibration.compute_scale
        assert loaded.stall_scale == calibration.stall_scale
        assert loaded.per_benchmark == calibration.per_benchmark

    def test_error_metrics(self):
        assert relative_error(110.0, 100.0) == pytest.approx(0.1)
        assert relative_error(0.0, 0.0) == 0.0
        assert relative_error(5.0, 0.0) == 1.0
        assert mean_absolute_relative_error(
            [(110.0, 100.0), (90.0, 100.0)]
        ) == pytest.approx(0.1)


# ----------------------------------------------------------------------
# Acceptance: calibrated error over the full benchmark suite
# ----------------------------------------------------------------------
class TestModelAccuracy:
    #: The acceptance threshold of the subsystem.
    MARE_THRESHOLD = 0.15

    def test_calibrated_mare_below_threshold_on_full_suite(self):
        """Calibrated predictions stay within 15% MARE across the suite."""
        options = CompilerOptions()
        simulation = SimulationOptions(iteration_cap=64)
        configs = [
            MachineConfig.word_interleaved(),
            MachineConfig.word_interleaved(attraction_buffers=True),
            MachineConfig.word_interleaved().with_clusters(2),
        ]
        samples = []
        for name in BENCHMARK_NAMES:
            benchmark = resolve_workload(name)
            for config in configs:
                predicted = predict_benchmark(
                    benchmark, config, options, simulation
                )
                compiled = [
                    compile_loop(loop, config, options)
                    for loop in benchmark.loops
                ]
                simulated = simulate_compiled_loops(
                    compiled, name, config, simulation
                )
                samples.append(
                    CalibrationSample.from_results(
                        predicted, simulated.total_cycles
                    )
                )
        assert len(samples) == len(BENCHMARK_NAMES) * len(configs)
        _, report = fit_calibration(samples)
        assert report.mare_calibrated <= self.MARE_THRESHOLD, (
            f"calibrated MARE {report.mare_calibrated:.3f} exceeds "
            f"{self.MARE_THRESHOLD}: "
            + ", ".join(
                f"{row.benchmark}={row.mare_calibrated:.2f}"
                for row in report.rows
            )
        )
        # The raw model is informative on its own -- not an order of
        # magnitude off -- and calibration only tightens it.
        assert report.mare_raw < 0.5
        assert report.mare_calibrated <= report.mare_raw

    def test_predictions_are_cheaper_than_simulation(self):
        """The model must stay well under the compile+simulate cost."""
        import time

        benchmark = resolve_workload("gsmdec")
        config = MachineConfig.word_interleaved()
        options = CompilerOptions()
        simulation = SimulationOptions(iteration_cap=64)

        started = time.perf_counter()
        predict_benchmark(benchmark, config, options, simulation)
        model_seconds = time.perf_counter() - started

        started = time.perf_counter()
        compiled = [
            compile_loop(loop, config, options) for loop in benchmark.loops
        ]
        simulate_compiled_loops(compiled, benchmark.name, config, simulation)
        simulate_seconds = time.perf_counter() - started

        # Generous 2x margin: the observed gap is ~10-20x, but CI machines
        # are noisy and the property that matters is "cheaper".
        assert model_seconds < simulate_seconds / 2


class TestModelValidationExperiment:
    def test_experiment_reports_per_benchmark_errors(self):
        from repro.experiments.common import ExperimentOptions
        from repro.experiments.model_validation import run_model_validation

        options = ExperimentOptions(
            benchmarks=("epicdec", "mpeg2dec"), simulation_iteration_cap=64
        )
        rows, result = run_model_validation(options=options)
        assert len(rows) == 2 * 3  # benchmarks x setups
        assert any("MARE" in note for note in result.notes)
        rendered = result.render()
        assert "epicdec" in rendered and "mpeg2dec" in rendered
        for row in rows:
            assert row.actual_cycles > 0
            assert math.isfinite(row.calibrated_error)

"""Tests for the simulator, the workload suite, and the analysis metrics."""

import pytest

from repro.analysis.metrics import (
    arithmetic_mean,
    classify_stall_factors,
    normalized_cycle_breakdown,
    speedup,
    stall_reduction,
)
from repro.analysis.report import format_dict, format_table
from repro.machine.config import MachineConfig
from repro.memory.coherent import make_cache_model
from repro.scheduler.core import SchedulingHeuristic
from repro.scheduler.pipeline import CompilerOptions, compile_loop
from repro.sim.engine import SimulationOptions, simulate_compiled_loop, simulate_compiled_loops
from repro.workloads.generator import (
    iir_kernel,
    indirect_kernel,
    long_chain_kernel,
    reduction_kernel,
    streaming_kernel,
    wide_kernel,
)
from repro.workloads.mediabench import BENCHMARK_NAMES, make_benchmark, mediabench_suite
from tests.conftest import build_recurrence_loop, build_streaming_loop


def _compile_and_simulate(loop, config, heuristic, iteration_cap=128):
    compiled = compile_loop(loop, config, CompilerOptions(heuristic=heuristic))
    result = simulate_compiled_loop(
        compiled, options=SimulationOptions(iteration_cap=iteration_cap)
    )
    return compiled, result


class TestSimulatorEngine:
    def test_compute_cycles_match_schedule_formula(self, interleaved_config):
        loop = build_streaming_loop()
        compiled, result = _compile_and_simulate(
            loop, interleaved_config, SchedulingHeuristic.IPBC
        )
        assert result.compute_cycles == compiled.schedule.compute_cycles(
            compiled.loop.trip_count
        )

    def test_streaming_loop_has_no_stall(self, interleaved_config):
        loop = build_streaming_loop()
        _, result = _compile_and_simulate(
            loop, interleaved_config, SchedulingHeuristic.IPBC
        )
        # Loads outside recurrences are covered by the remote-miss latency.
        assert result.stall_cycles == 0

    def test_memory_recurrence_generates_stall_without_buffers(self, interleaved_config):
        loop = iir_kernel("iir_stall", trip_count=512)
        _, result = _compile_and_simulate(
            loop, interleaved_config, SchedulingHeuristic.IBC
        )
        assert result.stall_cycles > 0
        assert result.stalls.total > 0

    def test_attraction_buffers_reduce_stall(self):
        loop = iir_kernel("iir_ab", trip_count=512)
        without = _compile_and_simulate(
            loop, MachineConfig.word_interleaved(), SchedulingHeuristic.IBC
        )[1]
        with_buffers = _compile_and_simulate(
            loop,
            MachineConfig.word_interleaved(attraction_buffers=True),
            SchedulingHeuristic.IBC,
        )[1]
        assert with_buffers.stall_cycles <= without.stall_cycles

    def test_access_counts_scale_to_trip_count(self, interleaved_config):
        loop = build_streaming_loop(trip_count=1000)
        _, result = _compile_and_simulate(
            loop, interleaved_config, SchedulingHeuristic.IPBC, iteration_cap=100
        )
        total_accesses = result.accesses.total
        expected = len(result.operation_records) * 1000 / max(1, result.ii)
        # Two memory ops per original iteration -> roughly 2 * trip_count
        # accesses after scaling, independent of the simulated prefix.
        assert total_accesses == pytest.approx(
            2 * loop.trip_count, rel=0.1
        ) or total_accesses > 0 and expected > 0

    def test_stall_ratio_small_for_ipbc(self, interleaved_config):
        loop = build_recurrence_loop()
        _, result = _compile_and_simulate(
            loop, interleaved_config, SchedulingHeuristic.IPBC
        )
        assert result.stall_ratio < 0.6

    def test_operation_records_cover_memory_ops(self, interleaved_config):
        loop = build_streaming_loop()
        compiled, result = _compile_and_simulate(
            loop, interleaved_config, SchedulingHeuristic.IPBC
        )
        assert set(result.operation_records) == set(compiled.loop.memory_operations)

    def test_benchmark_aggregation_weights_loops(self, interleaved_config):
        loops = [
            streaming_kernel("agg_a", trip_count=256, weight=1.0),
            streaming_kernel("agg_b", trip_count=256, weight=3.0),
        ]
        options = CompilerOptions(heuristic=SchedulingHeuristic.IPBC)
        compiled = [compile_loop(loop, interleaved_config, options) for loop in loops]
        result = simulate_compiled_loops(
            compiled, "agg", interleaved_config, SimulationOptions(iteration_cap=64)
        )
        manual = sum(r.total_cycles * r.weight for r in result.loops)
        assert result.total_cycles == pytest.approx(manual)

    def test_empty_benchmark_rejected(self, interleaved_config):
        with pytest.raises(ValueError):
            simulate_compiled_loops([], "empty", interleaved_config)


class TestWorkloadGenerators:
    def test_streaming_kernel_shape(self):
        loop = streaming_kernel("s", num_inputs=2, compute_depth=3)
        assert len(loop.memory_operations) == 3
        assert not loop.ddg.recurrences()

    def test_reduction_kernel_has_register_recurrence(self):
        loop = reduction_kernel("r")
        recurrences = loop.ddg.recurrences()
        assert recurrences
        assert all(not rec.memory_operations() for rec in recurrences)

    def test_iir_kernel_has_memory_recurrence(self):
        loop = iir_kernel("i")
        assert any(rec.memory_operations() for rec in loop.ddg.recurrences())

    def test_indirect_kernel_marks_indirect_access(self):
        loop = indirect_kernel("x")
        assert any(op.memory.indirect for op in loop.memory_operations)

    def test_wide_kernel_has_wide_accesses(self):
        loop = wide_kernel("w")
        assert any(op.memory.granularity == 8 for op in loop.memory_operations)

    def test_long_chain_kernel_chains_all_memory_ops(self):
        from repro.ir.chains import build_memory_chains

        loop = long_chain_kernel("c", num_loads=19)
        chains = build_memory_chains(loop.ddg)
        assert chains.longest_chain_length() == 20  # 19 loads + 1 store

    def test_kernels_validate(self):
        for factory in (streaming_kernel, reduction_kernel, iir_kernel, indirect_kernel):
            loop = factory("val_" + factory.__name__)
            loop.ddg.validate()


class TestMediabenchSuite:
    def test_all_fourteen_benchmarks_present(self):
        suite = mediabench_suite()
        assert suite.names() == list(BENCHMARK_NAMES)
        assert len(suite) == 14

    def test_dominant_sizes_match_paper(self):
        suite = mediabench_suite()
        for benchmark in suite:
            measured, fraction = benchmark.measured_dominant_size()
            assert measured == benchmark.characteristics.dominant_element_bytes
            assert fraction > 0.3

    def test_indirect_heavy_benchmarks(self):
        pegwitdec = make_benchmark("pegwitdec")
        jpegdec = make_benchmark("jpegdec")
        gsmdec = make_benchmark("gsmdec")
        assert pegwitdec.measured_indirect_fraction() > jpegdec.measured_indirect_fraction()
        assert jpegdec.measured_indirect_fraction() > gsmdec.measured_indirect_fraction()

    def test_chain_heavy_benchmarks_have_long_chains(self):
        from repro.ir.chains import build_memory_chains

        epicdec = make_benchmark("epicdec")
        longest = max(
            build_memory_chains(loop.ddg).longest_chain_length()
            for loop in epicdec.loops
        )
        assert longest >= 19

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(KeyError):
            make_benchmark("quake3")

    def test_suite_subset(self):
        subset = mediabench_suite().subset(["gsmdec", "rasta"])
        assert subset.names() == ["gsmdec", "rasta"]

    def test_benchmark_describe(self):
        info = make_benchmark("mpeg2dec").describe()
        assert info["dominant_size_bytes"] == 8
        assert info["paper_dominant_size_bytes"] == 8


class TestAnalysisMetrics:
    def test_arithmetic_mean(self):
        assert arithmetic_mean([1.0, 2.0, 3.0]) == 2.0
        assert arithmetic_mean([]) == 0.0

    def test_speedup(self):
        assert speedup(200, 100) == 2.0
        assert speedup(200, 0) == 0.0

    def test_stall_reduction_and_factors(self, interleaved_config):
        loop = iir_kernel("metrics_iir", trip_count=512)
        options = CompilerOptions(heuristic=SchedulingHeuristic.IBC)
        compiled = [compile_loop(loop, interleaved_config, options)]
        without = simulate_compiled_loops(
            compiled, "m", interleaved_config, SimulationOptions(iteration_cap=128)
        )
        ab_config = MachineConfig.word_interleaved(attraction_buffers=True)
        compiled_ab = [compile_loop(loop, ab_config, options)]
        with_ab = simulate_compiled_loops(
            compiled_ab, "m", ab_config, SimulationOptions(iteration_cap=128)
        )
        assert -1.0 <= stall_reduction(without, with_ab) <= 1.0
        breakdown = classify_stall_factors(without, interleaved_config)
        for value in breakdown.as_dict().values():
            assert 0.0 <= value <= 1.0

    def test_normalized_cycle_breakdown(self, interleaved_config):
        loop = build_streaming_loop()
        options = CompilerOptions(heuristic=SchedulingHeuristic.IPBC)
        compiled = [compile_loop(loop, interleaved_config, options)]
        sim = simulate_compiled_loops(
            compiled, "n", interleaved_config, SimulationOptions(iteration_cap=64)
        )
        normalized = normalized_cycle_breakdown({"a": sim, "base": sim}, "base")
        assert normalized["a"].total == pytest.approx(1.0)
        with pytest.raises(KeyError):
            normalized_cycle_breakdown({"a": sim}, "missing")

    def test_report_formatting(self):
        table = format_table(["a", "b"], [["x", 1.5], ["y", 2]], title="T")
        assert "T" in table and "1.500" in table
        text = format_dict({"k": 1.25, "s": "v"}, title="D")
        assert "1.250" in text and "v" in text

"""Reproduction of "Effective Instruction Scheduling Techniques for an
Interleaved Cache Clustered VLIW Processor" (Gibert, Sánchez, González;
MICRO-35, 2002).

The package is organized bottom-up:

* :mod:`repro.ir` and :mod:`repro.machine` -- the compiler IR and the
  machine description;
* :mod:`repro.memory` -- behavioural models of the word-interleaved cache,
  the unified cache, the multiVLIW coherent cache and the Attraction
  Buffers;
* :mod:`repro.profiling` -- hit-rate / preferred-cluster profiling;
* :mod:`repro.scheduler` -- the paper's contribution: modulo scheduling with
  selective unrolling, latency assignment and the IBC/IPBC heuristics;
* :mod:`repro.sim` -- the cycle-accounting simulator;
* :mod:`repro.workloads` -- the synthetic Mediabench-like benchmark suite;
* :mod:`repro.analysis` and :mod:`repro.experiments` -- metrics and the
  per-figure reproduction harness.
"""

from repro.ir import LoopBuilder
from repro.machine import MachineConfig
from repro.scheduler import (
    CompilerOptions,
    SchedulingHeuristic,
    UnrollPolicy,
    compile_loop,
    schedule_for_interleaved,
    schedule_for_multivliw,
    schedule_for_unified,
)
from repro.sim import SimulationOptions, simulate_compiled_loop, simulate_compiled_loops
from repro.workloads import make_benchmark, mediabench_suite

__version__ = "1.0.0"

__all__ = [
    "CompilerOptions",
    "LoopBuilder",
    "MachineConfig",
    "SchedulingHeuristic",
    "SimulationOptions",
    "UnrollPolicy",
    "__version__",
    "compile_loop",
    "make_benchmark",
    "mediabench_suite",
    "schedule_for_interleaved",
    "schedule_for_multivliw",
    "schedule_for_unified",
    "simulate_compiled_loop",
    "simulate_compiled_loops",
]

"""Named entry points for the four evaluated schedulers.

These wrappers bundle the compilation pipeline with the heuristic /
architecture pairings used throughout Section 5:

* :func:`schedule_for_unified` -- the BASE algorithm on the unified-cache
  clustered processor (1- or 5-cycle cache);
* :func:`schedule_for_interleaved` -- the proposed algorithm on the
  word-interleaved processor, with either the IBC or the IPBC heuristic;
* :func:`schedule_for_multivliw` -- the IBC-style scheduler on the
  cache-coherent multiVLIW.
"""

from __future__ import annotations

from typing import Optional

from repro.ir.loop import Loop
from repro.machine.config import MachineConfig
from repro.scheduler.core import SchedulingHeuristic
from repro.scheduler.pipeline import CompiledLoop, CompilerOptions, compile_loop
from repro.scheduler.unrolling import UnrollPolicy


def schedule_for_unified(
    loop: Loop,
    cache_latency: int = 1,
    unroll_policy: UnrollPolicy = UnrollPolicy.SELECTIVE,
    config: Optional[MachineConfig] = None,
) -> CompiledLoop:
    """Compile a loop with the BASE algorithm for the unified-cache machine."""
    machine = config or MachineConfig.unified(latency=cache_latency)
    options = CompilerOptions(
        heuristic=SchedulingHeuristic.BASE, unroll_policy=unroll_policy
    )
    return compile_loop(loop, machine, options)


def schedule_for_interleaved(
    loop: Loop,
    heuristic: SchedulingHeuristic = SchedulingHeuristic.IPBC,
    unroll_policy: UnrollPolicy = UnrollPolicy.SELECTIVE,
    variable_alignment: bool = True,
    use_chains: bool = True,
    attraction_buffers: bool = False,
    config: Optional[MachineConfig] = None,
) -> CompiledLoop:
    """Compile a loop for the word-interleaved cache clustered processor."""
    if heuristic not in (SchedulingHeuristic.IBC, SchedulingHeuristic.IPBC):
        raise ValueError("the interleaved scheduler uses the IBC or IPBC heuristic")
    machine = config or MachineConfig.word_interleaved(
        attraction_buffers=attraction_buffers
    )
    options = CompilerOptions(
        heuristic=heuristic,
        unroll_policy=unroll_policy,
        variable_alignment=variable_alignment,
        use_chains=use_chains,
    )
    return compile_loop(loop, machine, options)


def schedule_for_multivliw(
    loop: Loop,
    unroll_policy: UnrollPolicy = UnrollPolicy.SELECTIVE,
    config: Optional[MachineConfig] = None,
) -> CompiledLoop:
    """Compile a loop for the cache-coherent multiVLIW processor."""
    machine = config or MachineConfig.multivliw()
    options = CompilerOptions(
        heuristic=SchedulingHeuristic.MULTIVLIW, unroll_policy=unroll_policy
    )
    return compile_loop(loop, machine, options)

"""Benchmark E-F8: regenerate Figure 8 (cycle counts across architectures)."""

from benchmarks.conftest import save_report
from repro.experiments.figure8 import amean_normalized_totals, run_figure8


def test_figure8_cycle_counts(benchmark, experiment_runner, results_dir):
    rows, result = benchmark.pedantic(
        run_figure8, kwargs={"runner": experiment_runner}, rounds=1, iterations=1
    )
    save_report(results_dir, "figure8", result.render())
    means = amean_normalized_totals(rows)

    # Paper headline comparisons (shape, not absolute numbers):
    # 1. the word-interleaved processor beats the realistic 5-cycle unified
    #    cache with both heuristics (paper: +5% IPBC, +10% IBC);
    assert means["unified-L5"] > means["ipbc+ab"]
    assert means["unified-L5"] > means["ibc+ab"]
    # 2. it trails the optimistic 1-cycle unified cache (paper: 18% / 11%);
    assert means["ipbc+ab"] >= 1.0
    assert means["ibc+ab"] >= 1.0
    # 3. it is in the same performance class as the multiVLIW (paper: ~7%
    #    cycle-count difference); allow a generous band around parity.
    assert abs(means["ipbc+ab"] - means["multivliw"]) / means["multivliw"] < 0.25

"""Tests for MII computation, node ordering, and latency assignment."""

import pytest

from repro.experiments.latency_example import (
    example_loop,
    example_machine,
    example_stats,
    run_latency_example,
)
from repro.machine.config import MachineConfig
from repro.profiling.profiler import profile_loop
from repro.scheduler.latency import (
    LatencyAssigner,
    LatencyModel,
    MemoryOpStats,
    assign_latencies,
    expected_stall,
    latency_classes,
    stats_from_profile,
)
from repro.scheduler.mii import compute_mii, make_latency_function
from repro.scheduler.ordering import order_nodes, ordering_quality


class TestMII:
    def test_resource_bound_for_streaming_loop(self, streaming_loop, interleaved_config):
        result = compute_mii(streaming_loop, interleaved_config)
        # Two memory operations over four memory units -> ResMII 1.
        assert result.res_mii == 1
        assert result.mii >= 1

    def test_recurrence_bound_for_memory_recurrence(self, recurrence_loop, interleaved_config):
        latency_of = make_latency_function(interleaved_config)
        result = compute_mii(recurrence_loop, interleaved_config, latency_of)
        # ld_y (1) + fmul (4) + fadd (2) + memory edge (1) around distance 1.
        assert result.rec_mii >= 5
        assert result.mii == result.rec_mii

    def test_latency_function_uses_assignment(self, recurrence_loop, interleaved_config):
        load = recurrence_loop.ddg.find("ld_y")
        latency_of = make_latency_function(
            interleaved_config, memory_latencies={load: 15}
        )
        assert latency_of(load) == 15
        store = recurrence_loop.ddg.find("st_y")
        assert latency_of(store) == interleaved_config.latencies.store_issue

    def test_memory_default_latency(self, streaming_loop, interleaved_config):
        latency_of = make_latency_function(interleaved_config, default_memory_latency=15)
        assert latency_of(streaming_loop.ddg.find("ld")) == 15


class TestOrdering:
    def test_order_is_a_permutation(self, recurrence_loop, interleaved_config):
        latency_of = make_latency_function(interleaved_config)
        order = order_nodes(recurrence_loop.ddg, latency_of)
        assert sorted(op.name for op in order) == sorted(
            op.name for op in recurrence_loop.operations
        )

    def test_order_respects_zero_distance_edges(self, streaming_loop, interleaved_config):
        latency_of = make_latency_function(interleaved_config)
        order = order_nodes(streaming_loop.ddg, latency_of)
        position = {op: index for index, op in enumerate(order)}
        for dep in streaming_loop.ddg.dependences():
            if dep.distance == 0:
                assert position[dep.src] < position[dep.dst]

    def test_recurrence_nodes_come_first(self, recurrence_loop, interleaved_config):
        latency_of = make_latency_function(interleaved_config)
        recurrences = recurrence_loop.ddg.recurrences()
        order = order_nodes(recurrence_loop.ddg, latency_of, recurrences)
        recurrence_ops = {op for rec in recurrences for op in rec.nodes}
        first_ops = set(order[: len(recurrence_ops)])
        # Every operation ordered before the recurrence finishes is either in
        # the recurrence or a mandatory predecessor of one of its members.
        assert recurrence_ops & first_ops

    def test_ordering_quality_metric(self, streaming_loop, interleaved_config):
        latency_of = make_latency_function(interleaved_config)
        order = order_nodes(streaming_loop.ddg, latency_of)
        quality = ordering_quality(streaming_loop.ddg, order)
        assert 0.0 <= quality["one_sided_fraction"] <= 1.0


class TestStallEstimate:
    def setup_method(self):
        self.config = MachineConfig.default()

    def test_covered_latency_has_no_stall(self):
        stats = MemoryOpStats(hit_rate=0.5, local_ratio=0.5)
        assert expected_stall(stats, 15, self.config, LatencyModel.INTERLEAVED) == 0.0

    def test_local_hit_assignment_pays_for_all_others(self):
        stats = MemoryOpStats(hit_rate=0.9, local_ratio=0.5)
        stall = expected_stall(stats, 1, self.config, LatencyModel.INTERLEAVED)
        assert stall == pytest.approx(2.95)

    def test_latency_classes_per_model(self):
        assert latency_classes(self.config, LatencyModel.INTERLEAVED) == [1, 5, 10, 15]
        unified = MachineConfig.unified(latency=5)
        assert latency_classes(unified, LatencyModel.UNIFIED) == [5, 15]
        assert latency_classes(self.config, LatencyModel.COHERENT) == [1, 10]

    def test_stats_from_profile_wide_access_never_local(self, interleaved_config):
        from repro.workloads.generator import wide_kernel

        loop = wide_kernel("wide_test", trip_count=64)
        profile = profile_loop(loop, interleaved_config)
        stats = stats_from_profile(loop, profile, interleaved_config)
        wide_ops = [op for op in loop.memory_operations if op.memory.granularity == 8]
        assert wide_ops
        assert all(stats[op].local_ratio == 0.0 for op in wide_ops)

    def test_invalid_stats_rejected(self):
        with pytest.raises(ValueError):
            MemoryOpStats(hit_rate=1.5, local_ratio=0.5)
        with pytest.raises(ValueError):
            MemoryOpStats(hit_rate=0.5, local_ratio=-0.1)


class TestLatencyAssignment:
    def test_stores_get_issue_latency(self, recurrence_loop, interleaved_config):
        profile = profile_loop(recurrence_loop, interleaved_config)
        assignment = assign_latencies(recurrence_loop, interleaved_config, profile)
        store = recurrence_loop.ddg.find("st_y")
        assert assignment.latency_of(store) == interleaved_config.latencies.store_issue

    def test_non_recurrent_loads_keep_largest_latency(
        self, streaming_loop, interleaved_config
    ):
        profile = profile_loop(streaming_loop, interleaved_config)
        assignment = assign_latencies(streaming_loop, interleaved_config, profile)
        load = streaming_loop.ddg.find("ld")
        assert assignment.latency_of(load) == interleaved_config.latencies.remote_miss

    def test_recurrent_load_is_lowered(self, recurrence_loop, interleaved_config):
        profile = profile_loop(recurrence_loop, interleaved_config)
        assignment = assign_latencies(recurrence_loop, interleaved_config, profile)
        feedback = recurrence_loop.ddg.find("ld_y")
        assert assignment.latency_of(feedback) < interleaved_config.latencies.remote_miss

    def test_requires_profile_or_stats(self, streaming_loop, interleaved_config):
        with pytest.raises(ValueError):
            assign_latencies(streaming_loop, interleaved_config)


class TestPaperWorkedExample:
    """Section 4.3.3: the paper's own benefit-function table and outcome."""

    def setup_method(self):
        self.loop = example_loop()
        self.config = example_machine()
        self.stats = example_stats(self.loop)
        self.assignment = LatencyAssigner(self.loop, self.config, self.stats).assign()

    def test_target_mii_is_8(self):
        assert self.assignment.target_mii == 8

    def test_final_latencies_match_paper(self):
        ddg = self.loop.ddg
        assert self.assignment.latency_of(ddg.find("n2")) == 1
        assert self.assignment.latency_of(ddg.find("n1")) == 4
        assert self.assignment.latency_of(ddg.find("n6")) == 1

    def test_first_applied_change_is_n2_to_local_miss(self):
        applied = self.assignment.applied_steps()
        assert applied[0].operation.name == "n2"
        assert applied[0].from_latency == 15
        assert applied[0].to_latency == 10
        assert applied[0].benefit == pytest.approx(20.0, rel=0.01)

    def test_step1_benefits_match_paper_table(self):
        # Candidates evaluated before the first change is applied.
        first_round = [step for step in self.assignment.steps if not step.applied][:6]
        benefits = {
            (step.operation.name, step.to_latency): step.benefit for step in first_round
        }
        assert benefits[("n2", 10)] == pytest.approx(20.0, rel=0.01)
        assert benefits[("n2", 5)] == pytest.approx(13.3, rel=0.01)
        assert benefits[("n2", 1)] == pytest.approx(4.75, rel=0.01)
        assert benefits[("n1", 10)] == pytest.approx(5.0, rel=0.01)
        assert benefits[("n1", 5)] == pytest.approx(3.33, rel=0.01)

    def test_rendered_report(self):
        outcome, result = run_latency_example()
        text = result.render()
        assert "n1" in text and "n2" in text
        assert outcome.final_latency("n1") == 4

"""Nested spans on monotonic clocks.

A span measures one named region of work.  Durations always come from
``time.perf_counter()`` (monotonic, immune to wall-clock steps); the wall
clock is read once per span, at entry, solely so events from different
processes can be laid out on one shared timeline.

Two entry points:

* :func:`span` -- the telemetry primitive.  When telemetry is disabled
  (``REPRO_OBS=off``) it returns a shared, stateless no-op singleton:
  no allocation, no clock reads, no lock -- a disabled span costs one
  boolean check.  Use it everywhere a timing is *only* telemetry.
* :func:`measured_span` -- for timings that are product data (e.g. the
  ``elapsed_seconds`` field of a sweep record).  It always measures
  ``elapsed`` with the same ``perf_counter`` pair the hand-rolled code
  used, and records a trace event only when telemetry is enabled, so
  emitted record fields stay byte-identical whichever way the switch is
  set.

Spans nest through a thread-local stack: a span opened while another is
active records that span's id as its ``parent``.  Each thread has its own
stack, so concurrent threads produce independent, correctly-parented
trees.  Finished spans land in a bounded process-local buffer that
:func:`take_events` drains -- the sweep executor flushes it into
per-worker JSONL shards (:mod:`repro.obs.events`).
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from typing import Optional

from repro.obs import profilehook

#: Environment variable controlling telemetry.  Unset or any other value
#: means enabled; the values below (case-insensitive) disable it.
ENV_VAR = "REPRO_OBS"
_OFF_VALUES = frozenset({"off", "0", "false", "no", "disabled"})

#: Upper bound on buffered finished spans.  A long-lived process that
#: never drains the buffer (e.g. a REPL compiling loops by hand) must not
#: grow without limit; when the cap is hit the oldest half is dropped and
#: counted in :func:`trace_overview`.
MAX_BUFFERED_EVENTS = 50_000

_LOCK = threading.Lock()
_EVENTS: list[dict] = []
_DROPPED = 0
_IDS = itertools.count(1)
_TLS = threading.local()


def _enabled_from_env() -> bool:
    return os.environ.get(ENV_VAR, "").strip().lower() not in _OFF_VALUES


_ENABLED = _enabled_from_env()


def enabled() -> bool:
    """Whether spans are currently being recorded."""
    return _ENABLED


def set_enabled(flag: bool) -> bool:
    """Switch telemetry on or off; returns the previous setting.

    Overrides the ``REPRO_OBS`` environment variable for this process
    (used by tests and the perf harness's overhead measurement).
    """
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(flag)
    return previous


def refresh_from_env() -> bool:
    """Re-read ``REPRO_OBS`` (after an env change); returns the setting."""
    set_enabled(_enabled_from_env())
    return _ENABLED


def new_span_id() -> str:
    """Process-unique span id; globally unique through the pid prefix."""
    return f"{os.getpid()}:{next(_IDS)}"


def _stack() -> list:
    stack = getattr(_TLS, "stack", None)
    if stack is None:
        stack = []
        _TLS.stack = stack
    return stack


def current_span_id() -> Optional[str]:
    """Id of this thread's innermost open span, or None."""
    stack = _stack()
    return stack[-1].id if stack else None


class Span:
    """One named, timed region; use via ``with``.

    ``elapsed`` (seconds, monotonic) is valid after exit.  When the span
    records (telemetry enabled), ``id`` and ``parent`` identify it in the
    event log; otherwise both stay None and nothing is buffered.
    """

    __slots__ = (
        "name", "attrs", "id", "parent", "started", "elapsed", "_t0", "_prof"
    )

    def __init__(self, name: str, attrs: dict, record: bool) -> None:
        self.name = name
        self.attrs = attrs
        self.id: Optional[str] = new_span_id() if record else None
        self.parent: Optional[str] = None
        self.started = 0.0
        self.elapsed = 0.0
        self._prof = None

    def __enter__(self) -> "Span":
        if self.id is not None:
            stack = _stack()
            self.parent = stack[-1].id if stack else None
            stack.append(self)
            # REPRO_OBS_PROFILE: only recording spans consult the hook, so
            # profiling implies telemetry on, and an unset glob costs one
            # falsy check.  start() returns None for non-matching names.
            self._prof = profilehook.start(self.name)
        self.started = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.elapsed = time.perf_counter() - self._t0
        if self._prof is not None:
            profilehook.stop(self._prof)
            self._prof = None
        if self.id is not None:
            stack = _stack()
            if stack and stack[-1] is self:
                stack.pop()
            if exc_type is not None:
                self.attrs["error"] = exc_type.__name__
            event = {
                "kind": "span",
                "id": self.id,
                "parent": self.parent,
                "name": self.name,
                "ts": self.started,
                "dur": self.elapsed,
                "pid": os.getpid(),
                "tid": threading.get_ident(),
                "attrs": self.attrs,
            }
            global _DROPPED
            with _LOCK:
                _EVENTS.append(event)
                if len(_EVENTS) > MAX_BUFFERED_EVENTS:
                    drop = MAX_BUFFERED_EVENTS // 2
                    del _EVENTS[:drop]
                    _DROPPED += drop
        return False

    def annotate(self, **attrs: object) -> None:
        """Attach attributes discovered after entry (e.g. a cache hit)."""
        self.attrs.update(attrs)


class _NoopSpan:
    """The shared disabled-mode span: every operation is a no-op."""

    __slots__ = ()

    name = ""
    id = None
    parent = None
    started = 0.0
    elapsed = 0.0

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def annotate(self, **attrs: object) -> None:
        pass


NOOP_SPAN = _NoopSpan()


def span(name: str, **attrs: object):
    """A telemetry span; the shared no-op singleton when disabled."""
    if not _ENABLED:
        return NOOP_SPAN
    return Span(name, attrs, True)


def measured_span(name: str, **attrs: object) -> Span:
    """A span whose ``elapsed`` is always measured.

    Recording still follows the telemetry switch, so product code can
    replace a hand-rolled ``perf_counter`` pair with this and keep its
    emitted fields identical whether telemetry is on or off.
    """
    return Span(name, attrs, _ENABLED)


def record_span(
    name: str,
    started: float,
    elapsed: float,
    parent: Optional[str] = None,
    **attrs: object,
) -> Optional[str]:
    """Append an externally timed, already-finished span event.

    For callers that measure a region whose start and end live in
    different stack frames -- the sweep service's per-request spans open
    at ``submit`` and close at the request's ``done``, with arbitrary
    event-loop callbacks in between -- so a ``with``-scoped :class:`Span`
    (and its thread-local nesting stack) cannot model them.  ``started``
    is wall-clock seconds, ``elapsed`` monotonic seconds, exactly as a
    :class:`Span` records them.  Returns the span id, or None when
    telemetry is disabled.
    """
    if not _ENABLED:
        return None
    event = {
        "kind": "span",
        "id": new_span_id(),
        "parent": parent,
        "name": name,
        "ts": started,
        "dur": elapsed,
        "pid": os.getpid(),
        "tid": threading.get_ident(),
        "attrs": attrs,
    }
    global _DROPPED
    with _LOCK:
        _EVENTS.append(event)
        if len(_EVENTS) > MAX_BUFFERED_EVENTS:
            drop = MAX_BUFFERED_EVENTS // 2
            del _EVENTS[:drop]
            _DROPPED += drop
    return event["id"]


def take_events() -> list[dict]:
    """Drain and return this process's buffered finished-span events."""
    global _EVENTS
    with _LOCK:
        events, _EVENTS = _EVENTS, []
    return events


def trace_overview() -> dict[str, int]:
    """Buffer statistics (pending events, dropped-at-cap count)."""
    with _LOCK:
        return {"pending": len(_EVENTS), "dropped": _DROPPED}


def reset() -> None:
    """Clear buffered events and this thread's span stack.

    Used by pool-worker initializers: a forked worker inherits the
    parent's undrained buffer, which would otherwise be re-emitted in
    the worker's shard and duplicated at merge time.
    """
    global _DROPPED
    with _LOCK:
        _EVENTS.clear()
        _DROPPED = 0
    _TLS.stack = []

"""Benchmark E-F5: regenerate Figure 5 (classification of stalling accesses)."""

from benchmarks.conftest import save_report
from repro.experiments.figure5 import not_in_preferred_share, run_figure5


def test_figure5_stall_factor_classification(benchmark, experiment_runner, results_dir):
    rows, result = benchmark.pedantic(
        run_figure5, kwargs={"runner": experiment_runner}, rounds=1, iterations=1
    )
    save_report(results_dir, "figure5", result.render())
    assert len(rows) == 14 * 2
    # Paper (Section 5.2): IBC shows more stall from instructions not
    # scheduled in their preferred cluster than IPBC, because IBC ignores
    # the profile information when assigning clusters.
    assert not_in_preferred_share(rows, "ibc") >= not_in_preferred_share(rows, "ipbc")

"""Declarative descriptions of design-space sweeps.

A sweep is a parameter grid over machine configurations, compiler options
and benchmarks.  :class:`SweepSpec` holds the grid declaratively (axis name
-> list of values) and :meth:`SweepSpec.expand` turns it into concrete
:class:`SweepJob` objects, each carrying the fully built
:class:`~repro.machine.config.MachineConfig`,
:class:`~repro.scheduler.pipeline.CompilerOptions` and
:class:`~repro.sim.engine.SimulationOptions` for one point.

Every job has a stable content-addressed :attr:`SweepJob.key` -- the SHA-256
of the canonical JSON encoding of the job's complete description.  Two jobs
with the same benchmark, machine and knobs always hash to the same key, no
matter how they were constructed (CLI grid, experiment harness, or by hand),
which is what makes the on-disk result store incremental.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field, fields, replace
from functools import cached_property
from typing import Iterable, Mapping, Optional

from repro.machine.config import CacheOrganization, MachineConfig
from repro.scheduler.core import SchedulingHeuristic
from repro.scheduler.pipeline import CompilerOptions, default_heuristic_for
from repro.scheduler.unrolling import UnrollPolicy
from repro.sim.engine import SimulationOptions

#: Version tag mixed into every job key.  Bump when the meaning of a job's
#: description changes so stale records are never mistaken for hits.
#: 3: loops simulate on per-loop cold caches (no cross-loop address
#: aliasing), so records written under the shared-cache semantics must
#: never satisfy a cache hit.
JOB_SCHEMA = 3


def canonical_json(data: object) -> str:
    """Deterministic JSON encoding used for hashing."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def job_key(description: Mapping[str, object]) -> str:
    """Stable content hash of a job description."""
    payload = canonical_json({"schema": JOB_SCHEMA, "job": dict(description)})
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class SweepPoint:
    """One point of the declarative grid, in primitive (JSON-able) terms.

    ``heuristic="auto"`` resolves to the heuristic the paper pairs with the
    selected cache organization; ``attraction_entries=0`` disables the
    Attraction Buffers.
    """

    benchmark: str
    organization: str = CacheOrganization.WORD_INTERLEAVED.value
    clusters: int = 4
    interleaving: int = 4
    attraction_entries: int = 0
    unified_latency: int = 1
    heuristic: str = "auto"
    unroll_policy: str = UnrollPolicy.SELECTIVE.value
    variable_alignment: bool = True
    use_chains: bool = True
    iteration_cap: int = 256
    dataset: str = "execution"

    def machine_config(self) -> MachineConfig:
        """Build the machine configuration of this point."""
        organization = CacheOrganization(self.organization)
        if organization is CacheOrganization.UNIFIED:
            config = MachineConfig.unified(latency=self.unified_latency)
        elif organization is CacheOrganization.COHERENT:
            config = MachineConfig.multivliw()
        else:
            config = MachineConfig.word_interleaved(
                attraction_buffers=self.attraction_entries > 0,
                entries=self.attraction_entries or 16,
            )
        if config.num_clusters != self.clusters:
            config = config.with_clusters(self.clusters)
        if config.interleaving_factor != self.interleaving:
            config = config.with_interleaving(self.interleaving)
        return config

    def compiler_options(self) -> CompilerOptions:
        """Build the compiler options of this point."""
        if self.heuristic == "auto":
            heuristic = default_heuristic_for(self.machine_config())
        else:
            heuristic = SchedulingHeuristic(self.heuristic)
        return CompilerOptions(
            heuristic=heuristic,
            unroll_policy=UnrollPolicy(self.unroll_policy),
            variable_alignment=self.variable_alignment,
            use_chains=self.use_chains,
        )

    def simulation_options(self) -> SimulationOptions:
        """Build the simulation options of this point."""
        return SimulationOptions(
            dataset=self.dataset, iteration_cap=self.iteration_cap
        )

    def architecture_name(self) -> str:
        """Short display name for reports."""
        organization = CacheOrganization(self.organization)
        if organization is CacheOrganization.UNIFIED:
            return f"unified-L{self.unified_latency}"
        if organization is CacheOrganization.COHERENT:
            return "multivliw"
        heuristic = self.compiler_options().heuristic.value
        suffix = f"+ab{self.attraction_entries}" if self.attraction_entries else ""
        return (
            f"{heuristic}{suffix}/c{self.clusters}i{self.interleaving}"
        )

    def job(self) -> "SweepJob":
        """Materialize this point into an executable job."""
        return SweepJob(
            benchmark=self.benchmark,
            architecture=self.architecture_name(),
            config=self.machine_config(),
            options=self.compiler_options(),
            simulation=self.simulation_options(),
        )


@dataclass(frozen=True)
class SweepJob:
    """A fully built, executable point of the design space.

    The ``architecture`` string is a display name only; it is deliberately
    excluded from :meth:`describe` (and therefore from :attr:`key`) so two
    experiments that sweep the same configuration under different labels
    share one stored result.

    ``loop`` optionally narrows the job to a single loop of the benchmark:
    a loop-scoped job compiles and simulates just that loop, which is the
    unit the executor schedules at ``granularity="loop"``.  The loop name
    is part of :meth:`describe` only when set, so benchmark-level jobs keep
    the keys they have always had.
    """

    benchmark: str
    architecture: str
    config: MachineConfig
    options: CompilerOptions
    simulation: SimulationOptions
    loop: Optional[str] = None

    def describe(self) -> dict[str, object]:
        """Canonical description: the basis of the content hash."""
        description: dict[str, object] = {
            "benchmark": self.benchmark,
            "machine": self.config.describe(),
            "compiler": self.options.describe(),
            "simulation": self.simulation.describe(),
        }
        if self.loop is not None:
            description["loop"] = self.loop
        return description

    @cached_property
    def key(self) -> str:
        """Content-addressed identity of this job."""
        return job_key(self.describe())

    def scoped_to(self, loop: str) -> "SweepJob":
        """A copy of this job narrowed to one loop of its benchmark."""
        return replace(self, loop=loop)


def expand_loop_jobs(job: SweepJob) -> list[SweepJob]:
    """Split one benchmark-level job into one job per loop.

    A job that is already loop-scoped expands to itself.  The returned jobs
    follow the benchmark's loop order, so aggregating their results in this
    order reassembles the benchmark-level result exactly.
    """
    if job.loop is not None:
        return [job]
    from repro.sweep.workloads import loop_names

    return [job.scoped_to(name) for name in loop_names(job.benchmark)]


def make_job(
    benchmark: str,
    config: MachineConfig,
    options: CompilerOptions,
    simulation: Optional[SimulationOptions] = None,
    architecture: Optional[str] = None,
) -> SweepJob:
    """Build a job from already-constructed configuration objects."""
    return SweepJob(
        benchmark=benchmark,
        architecture=architecture or config.organization.value,
        config=config,
        options=options,
        simulation=simulation or SimulationOptions(),
    )


def job_from_description(description: Mapping[str, object]) -> SweepJob:
    """Rebuild an executable job from a stored job description.

    The inverse of :meth:`SweepJob.describe`: every record the
    :class:`~repro.sweep.store.ResultStore` holds carries enough information
    to reconstruct the job that produced it, so model calibration
    (:mod:`repro.model.calibrate`) can re-predict stored results without the
    original spec.  Round-trips exactly -- the rebuilt job hashes to the
    same key.
    """
    machine = dict(description["machine"])
    compiler = dict(description["compiler"])
    simulation = dict(description.get("simulation", {}))
    config = MachineConfig.from_description(machine)
    options = CompilerOptions.from_description(compiler)
    sim_options = SimulationOptions(
        dataset=str(simulation.get("dataset", "execution")),
        iteration_cap=int(simulation.get("iteration_cap", 256)),
    )
    job = make_job(
        str(description["benchmark"]), config, options, sim_options
    )
    loop = description.get("loop")
    if loop is not None:
        job = job.scoped_to(str(loop))
    return job


_POINT_FIELDS = {f.name for f in fields(SweepPoint)}


@dataclass
class SweepSpec:
    """A named parameter grid over benchmarks and :class:`SweepPoint` axes.

    ``axes`` maps a SweepPoint field name to the list of values to sweep;
    ``base`` overrides SweepPoint defaults for fields that are not swept.
    Benchmarks are an implicit outermost axis.
    """

    name: str = "sweep"
    benchmarks: tuple[str, ...] = ()
    axes: dict[str, tuple] = field(default_factory=dict)
    base: dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.benchmarks:
            raise ValueError("a sweep needs at least one benchmark")
        from repro.sweep.workloads import workload_names

        known = set(workload_names())
        unknown_benchmarks = [b for b in self.benchmarks if b not in known]
        if unknown_benchmarks:
            raise ValueError(
                f"unknown workloads: {unknown_benchmarks}; "
                f"known: {', '.join(sorted(known))}"
            )
        unknown = (set(self.axes) | set(self.base)) - (_POINT_FIELDS - {"benchmark"})
        if unknown:
            raise ValueError(
                f"unknown sweep parameters: {sorted(unknown)}; "
                f"known: {sorted(_POINT_FIELDS - {'benchmark'})}"
            )
        for axis, values in self.axes.items():
            if not values:
                raise ValueError(f"axis {axis!r} has no values")

    @property
    def num_points(self) -> int:
        """Size of the expanded grid."""
        count = len(self.benchmarks)
        for values in self.axes.values():
            count *= len(values)
        return count

    def points(self) -> list[SweepPoint]:
        """Expand the grid into concrete points (deterministic order)."""
        axis_names = list(self.axes)
        combos = itertools.product(*(self.axes[name] for name in axis_names))
        points = []
        for combo in combos:
            overrides = dict(self.base)
            overrides.update(zip(axis_names, combo))
            for benchmark in self.benchmarks:
                points.append(SweepPoint(benchmark=benchmark, **overrides))
        return points

    def expand(self, granularity: str = "benchmark") -> list[SweepJob]:
        """Expand the grid into executable jobs.

        With ``granularity="loop"`` every grid point is split into one
        content-addressed job per (loop, machine, compiler-options) point;
        the default emits one job per (benchmark, machine, compiler-options)
        point as before.

        Raises ValueError (via the compiler-option constructors) when an
        explicitly requested heuristic is incompatible with the swept cache
        organization; use ``heuristic="auto"`` to pair them automatically.
        """
        if granularity not in ("benchmark", "loop"):
            raise ValueError(
                f"unknown granularity {granularity!r}; use 'benchmark' or 'loop'"
            )
        jobs = [point.job() for point in self.points()]
        _check_compatibility(jobs)
        if granularity == "loop":
            jobs = [scoped for job in jobs for scoped in expand_loop_jobs(job)]
        return jobs

    # ------------------------------------------------------------------
    # JSON (de)serialization for the CLI
    # ------------------------------------------------------------------
    def to_mapping(self) -> dict[str, object]:
        """Plain-dict form, suitable for JSON."""
        return {
            "name": self.name,
            "benchmarks": list(self.benchmarks),
            "axes": {name: list(values) for name, values in self.axes.items()},
            "base": dict(self.base),
        }

    @staticmethod
    def from_mapping(data: Mapping[str, object]) -> "SweepSpec":
        """Build a spec from a plain dict (e.g. a parsed JSON file)."""
        return SweepSpec(
            name=str(data.get("name", "sweep")),
            benchmarks=tuple(data.get("benchmarks", ())),
            axes={name: tuple(values) for name, values in dict(data.get("axes", {})).items()},
            base=dict(data.get("base", {})),
        )


def _check_compatibility(jobs: Iterable[SweepJob]) -> None:
    from repro.scheduler.pipeline import _heuristic_matches

    for job in jobs:
        if not _heuristic_matches(job.config, job.options.heuristic):
            raise ValueError(
                f"job {job.benchmark!r}: heuristic {job.options.heuristic.value} "
                f"does not match the {job.config.organization.value} cache "
                "organization (use heuristic='auto' to pair them)"
            )


def default_spec(
    benchmarks: tuple[str, ...] = ("kernels-mix",),
    iteration_cap: int = 256,
) -> SweepSpec:
    """The 8-point architectural grid of ``examples/design_space_sweep.py``."""
    return SweepSpec(
        name="design-space",
        benchmarks=benchmarks,
        axes={
            "clusters": (2, 4),
            "interleaving": (4, 8),
            "attraction_entries": (0, 16),
        },
        base={"heuristic": "ipbc", "iteration_cap": iteration_cap},
    )

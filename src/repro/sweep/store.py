"""Content-addressed, on-disk store for sweep results.

Layout under the store root::

    records/<shard>/<key>.json   -- one queryable JSON record per job
    payloads/<shard>/<key>.pkl   -- the full BenchmarkSimulationResult
                                    (optional)

``<shard>`` is the first two hex characters of the key, so a
million-record store spreads over 256 directories instead of forcing
every lookup to scan one flat directory.  Stores written by earlier
versions (flat ``records/<key>.json``) are migrated in place the first
time they are opened; records keep their keys, so nothing else changes.

The JSON record is the durable, tool-friendly artefact: it carries the
complete job description (benchmark, machine, compiler and simulation
knobs) plus the flat metrics, so results remain queryable long after the
process that produced them exited.  The pickle payload preserves full
fidelity (per-operation records, counters) so the experiment harness can
serve figure computations from the store without re-simulating.

Writes are atomic (temp file + ``os.replace``) so concurrent writers of
the same key -- e.g. two pool workers racing on a shared configuration --
cannot leave a torn record behind.  :meth:`ResultStore.save` writes the
payload first and the record last: a record never describes a payload
that is not yet durable, and a crash between the two writes leaves at
worst an orphaned payload, which :meth:`ResultStore.vacuum` collects.

Reads are *self-healing*: a record that does not parse or a payload that
does not unpickle -- torn by a crash that bypassed the atomic-write path
(power loss mid-``fsync``, a truncating filesystem error) or corrupted at
rest -- is moved into ``quarantine/`` under the store root, counted in
the ``store.records_quarantined``/``store.payloads_quarantined`` metrics,
and reported as absent, so the caller recomputes it instead of crashing
(the same torn-line policy the obs ledger reader applies to its JSONL).
"""

from __future__ import annotations

import json
import os
import pickle
import tempfile
import time
from pathlib import Path
from typing import Iterator, Optional

from repro import faults
from repro.obs import metrics as obs_metrics

#: Version of the record format, stored in every record.
RECORD_SCHEMA = 1

#: Number of leading key characters that name a record's shard directory.
SHARD_CHARS = 2

#: Subdirectory of the store root where corrupt files are preserved.
QUARANTINE_DIRNAME = "quarantine"


def shard_of(key: str) -> str:
    """Shard directory name of a key (its first hex characters)."""
    return key[:SHARD_CHARS] or "_"


class ResultStore:
    """Directory-backed store of sweep result records keyed by job hash."""

    def __init__(self, root: Path | str) -> None:
        self.root = Path(root)
        self._records_dir = self.root / "records"
        self._payloads_dir = self.root / "payloads"
        self._records_dir.mkdir(parents=True, exist_ok=True)
        self._payloads_dir.mkdir(parents=True, exist_ok=True)
        self._migrate_flat_layout()

    def _migrate_flat_layout(self) -> None:
        """Move flat (pre-shard) records/payloads into their shard dirs.

        Stores written before key-prefix sharding kept every file directly
        under ``records/`` and ``payloads/``.  Migration is a rename per
        file (same filesystem, atomic), keeps every key unchanged and is
        idempotent; a store that is already sharded pays only a directory
        listing.

        Concurrent-open safe: the sweep service, ``submit`` clients and
        plain ``run`` processes may all construct a :class:`ResultStore`
        on the same root at once, so another process racing this loop may
        migrate (or a writer may re-shard) a listed file first -- a
        vanished source is its success, not our error.
        """
        for directory, suffix in (
            (self._records_dir, ".json"),
            (self._payloads_dir, ".pkl"),
        ):
            for path in directory.iterdir():
                if not path.is_file() or path.suffix != suffix:
                    continue
                target_dir = directory / shard_of(path.stem)
                target_dir.mkdir(exist_ok=True)
                try:
                    os.replace(path, target_dir / path.name)
                except FileNotFoundError:
                    continue

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def record_path(self, key: str) -> Path:
        """Path of the JSON record of ``key``."""
        return self._records_dir / shard_of(key) / f"{key}.json"

    def payload_path(self, key: str) -> Path:
        """Path of the pickle payload of ``key``."""
        return self._payloads_dir / shard_of(key) / f"{key}.pkl"

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __contains__(self, key: str) -> bool:
        return self.record_path(key).is_file()

    def __len__(self) -> int:
        return sum(1 for _ in self._records_dir.glob("*/*.json"))

    def keys(self) -> list[str]:
        """All stored job keys, sorted."""
        return sorted(path.stem for path in self._records_dir.glob("*/*.json"))

    def load_record(self, key: str) -> Optional[dict]:
        """Load one JSON record, or None if absent or unreadable.

        A record that exists but does not parse is torn or corrupt; it is
        quarantined (so the next lookup is a clean miss and the bytes stay
        inspectable) and reported as absent -- the caller recomputes.
        """
        path = self.record_path(key)
        try:
            with path.open("r", encoding="utf-8") as handle:
                return json.load(handle)
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, UnicodeDecodeError):
            self._quarantine(path, "records")
            return None
        except OSError:
            return None

    def records(self) -> Iterator[dict]:
        """Iterate every stored record, sorted by key.

        Torn records are quarantined and skipped (see :meth:`load_record`),
        so iteration over a damaged store yields every healthy record
        instead of raising.
        """
        for key in self.keys():
            record = self.load_record(key)
            if record is not None:
                yield record

    def load_payload(self, key: str) -> Optional[object]:
        """Unpickle the full simulation result, or None if absent/broken.

        A payload that exists but does not unpickle is quarantined like a
        torn record.  Unpickling arbitrary damaged bytes can raise far
        more than ``PickleError`` (ImportError after a class moved,
        ValueError, IndexError...), so anything non-I/O counts as
        corruption.
        """
        path = self.payload_path(key)
        try:
            with path.open("rb") as handle:
                return pickle.load(handle)
        except FileNotFoundError:
            return None
        except OSError:
            return None
        except Exception:
            self._quarantine(path, "payloads")
            return None

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def save(
        self, key: str, record: dict, payload: Optional[object] = None
    ) -> None:
        """Atomically persist a record (and optionally its payload).

        The payload is written *before* the record: once a record is
        visible its payload is guaranteed durable, and a crash between the
        two writes can only leave an orphaned payload (collected by
        :meth:`vacuum`), never a record pointing at a torn payload.
        """
        if payload is not None:
            self._atomic_write(
                self.payload_path(key),
                faults.mangle(
                    "store.payload",
                    pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL),
                ),
            )
        body = dict(record)
        body.setdefault("schema", RECORD_SCHEMA)
        body.setdefault("key", key)
        encoded = json.dumps(body, indent=2, sort_keys=True).encode("utf-8")
        self._atomic_write(self.record_path(key), faults.mangle("store.record", encoded))

    def discard(self, key: str) -> None:
        """Remove a record and its payload if present."""
        for path in (self.record_path(key), self.payload_path(key)):
            try:
                path.unlink()
            except FileNotFoundError:
                pass

    def discard_payload(self, key: str) -> None:
        """Remove just the pickle payload of a key, if present.

        Used when a record is replaced by one that has no payload (e.g. a
        model-only record overwriting a force-rerun simulator record), so a
        stale pickle can never outlive the record that described it.
        """
        try:
            self.payload_path(key).unlink()
        except FileNotFoundError:
            pass

    def _quarantine(self, path: Path, category: str) -> None:
        """Move a corrupt file into ``quarantine/<category>/``.

        The damaged bytes are preserved for inspection rather than
        deleted; the move is a same-filesystem rename, so a concurrent
        reader sees either the corrupt file or a miss, never a partial.
        A file that vanished first (another reader quarantined it, or a
        writer replaced it) is left alone.
        """
        target_dir = self.root / QUARANTINE_DIRNAME / category
        try:
            target_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, target_dir / path.name)
        except OSError:
            return
        obs_metrics.registry().counter(f"store.{category}_quarantined").inc()

    def quarantined_counts(self) -> dict[str, int]:
        """Files sitting in quarantine, per category (records/payloads)."""
        counts = {}
        for category in ("records", "payloads"):
            directory = self.root / QUARANTINE_DIRNAME / category
            counts[category] = (
                sum(1 for p in directory.iterdir() if p.is_file())
                if directory.is_dir()
                else 0
            )
        return counts

    def vacuum(self, grace_seconds: float = 60.0) -> list[str]:
        """Drop payloads no record describes; returns their keys, sorted.

        A crash between :meth:`save`'s payload write and record write
        leaves a payload nothing references; nothing ever reads it (every
        lookup goes record first), so it is pure leaked disk space until
        collected here.  Leftover temp files from interrupted atomic
        writes are swept as well.

        ``grace_seconds`` makes vacuuming safe next to a live sweep: a
        payload younger than the window may belong to a save whose record
        simply has not landed yet (payload is written first), and a young
        dotfile may be another process's in-flight atomic write.  Only
        files older than the window are collected; pass ``0`` when the
        store is known to be offline.
        """
        cutoff = time.time() - grace_seconds

        def expired(path: Path) -> bool:
            try:
                return path.stat().st_mtime <= cutoff
            except OSError:
                return False

        orphaned = []
        for path in self._payloads_dir.glob("*/*.pkl"):
            if not self.record_path(path.stem).is_file() and expired(path):
                orphaned.append(path.stem)
                try:
                    path.unlink()
                except FileNotFoundError:
                    pass
        for directory in (self._records_dir, self._payloads_dir):
            for stale in directory.glob("**/.*"):
                if stale.is_file() and expired(stale):
                    try:
                        stale.unlink()
                    except FileNotFoundError:
                        pass
        return sorted(orphaned)

    @staticmethod
    def _atomic_write(path: Path, data: bytes) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        handle = tempfile.NamedTemporaryFile(
            mode="wb", dir=path.parent, prefix=f".{path.name}.", delete=False
        )
        try:
            with handle:
                handle.write(data)
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise

"""Model validation: analytical predictions vs. the simulator.

For every benchmark of the suite and a small set of representative
architectures, this experiment simulates the configuration (through the
shared :class:`~repro.experiments.common.ExperimentRunner`, so results are
memoized and store-backed like every other experiment), predicts the same
configuration with :mod:`repro.model`, fits the calibration coefficients on
the collected pairs, and reports the relative cycle-count error before and
after calibration -- per benchmark and overall.

This is the experiment that backs the pruning mode's honesty: the overall
calibrated MARE it prints is the error budget a ``--prune-model`` sweep
operates under.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.metrics import relative_error
from repro.experiments.common import (
    ArchitectureSetup,
    ExperimentOptions,
    ExperimentResult,
    ExperimentRunner,
    interleaved_setup,
    unified_setup,
)
from repro.model.calibrate import (
    CalibrationSample,
    ModelCalibration,
    fit_calibration,
)
from repro.model.predict import PredictedResult, predict_benchmark


@dataclass
class ModelValidationRow:
    """Model-vs-simulator comparison of one (benchmark, setup) pair."""

    benchmark: str
    architecture: str
    predicted_cycles: float
    calibrated_cycles: float
    actual_cycles: float

    @property
    def raw_error(self) -> float:
        """Relative error of the uncalibrated prediction."""
        return relative_error(self.predicted_cycles, self.actual_cycles)

    @property
    def calibrated_error(self) -> float:
        """Relative error after calibration."""
        return relative_error(self.calibrated_cycles, self.actual_cycles)


def _setups() -> list[ArchitectureSetup]:
    return [
        interleaved_setup(name="model/ipbc"),
        interleaved_setup(attraction_buffers=True, name="model/ipbc+ab"),
        unified_setup(latency=1, name="model/unified-L1"),
    ]


def sweep_setups() -> list:
    """The setups this experiment simulates, for sweep prewarming."""
    return _setups()


def _collect_samples(
    runner: ExperimentRunner,
) -> tuple[
    dict[tuple[str, str], PredictedResult],
    dict[tuple[str, str], float],
    list[CalibrationSample],
]:
    """Predict and simulate every (benchmark, setup) pair of the suite."""
    simulation = runner.options.simulation_options()
    predictions: dict[tuple[str, str], PredictedResult] = {}
    actuals: dict[tuple[str, str], float] = {}
    samples: list[CalibrationSample] = []
    for benchmark in runner.benchmarks:
        for setup in _setups():
            predicted = predict_benchmark(
                benchmark,
                setup.config,
                setup.options,
                simulation,
                architecture=setup.name,
            )
            actual = runner.run_benchmark(benchmark, setup)
            key = (benchmark.name, setup.name)
            predictions[key] = predicted
            actuals[key] = actual.total_cycles
            samples.append(
                CalibrationSample.from_results(predicted, actual.total_cycles)
            )
    return predictions, actuals, samples


def run_model_validation(
    runner: Optional[ExperimentRunner] = None,
    options: Optional[ExperimentOptions] = None,
) -> tuple[list[ModelValidationRow], ExperimentResult]:
    """Compare model predictions against the simulator across the suite."""
    runner = runner or ExperimentRunner(options)
    predictions, actuals, samples = _collect_samples(runner)
    calibration, report = fit_calibration(samples)

    rows: list[ModelValidationRow] = []
    result = ExperimentResult(
        title="Model validation - predicted vs simulated cycle counts",
        headers=[
            "benchmark",
            "architecture",
            "predicted",
            "calibrated",
            "simulated",
            "raw_error",
            "cal_error",
        ],
    )
    for (benchmark_name, setup_name), predicted in predictions.items():
        calibrated = calibration.apply(predicted)
        row = ModelValidationRow(
            benchmark=benchmark_name,
            architecture=setup_name,
            predicted_cycles=predicted.total_cycles,
            calibrated_cycles=calibrated.total_cycles,
            actual_cycles=actuals[(benchmark_name, setup_name)],
        )
        rows.append(row)
        result.add_row(
            [
                row.benchmark,
                row.architecture,
                round(row.predicted_cycles),
                round(row.calibrated_cycles),
                round(row.actual_cycles),
                row.raw_error,
                row.calibrated_error,
            ]
        )
    result.notes.append(
        f"MARE raw={report.mare_raw:.3f} calibrated={report.mare_calibrated:.3f} "
        f"over {len(samples)} samples; per-benchmark coefficients fitted by "
        "least squares on (compute, stall) predictions"
    )
    return rows, result


def fitted_calibration(
    runner: Optional[ExperimentRunner] = None,
    options: Optional[ExperimentOptions] = None,
) -> ModelCalibration:
    """Convenience: run the validation and return just the calibration."""
    runner = runner or ExperimentRunner(options)
    _, _, samples = _collect_samples(runner)
    calibration, _ = fit_calibration(samples)
    return calibration

"""Tests for the loop builder, loop descriptors, and loop unrolling."""

import pytest

from repro.ir.builder import LoopBuilder
from repro.ir.ddg import DependenceKind
from repro.ir.loop import ArraySpec, Loop, LoopNest, StorageClass, gather_arrays
from repro.ir.unroll import unroll_ddg, unroll_loop


class TestLoopBuilder:
    def test_builds_wellformed_loop(self, streaming_loop):
        assert isinstance(streaming_loop, Loop)
        assert len(streaming_loop.operations) == 4
        assert len(streaming_loop.memory_operations) == 2
        streaming_loop.ddg.validate()

    def test_undeclared_array_rejected(self):
        builder = LoopBuilder("bad", trip_count=10)
        with pytest.raises(ValueError):
            builder.load("ld", "missing", stride=4)

    def test_duplicate_array_rejected(self):
        builder = LoopBuilder("bad", trip_count=10)
        builder.array("a", 4, 16)
        with pytest.raises(ValueError):
            builder.array("a", 4, 16)

    def test_register_flow_edges_from_inputs(self, streaming_loop):
        scale = streaming_loop.ddg.find("scale")
        load = streaming_loop.ddg.find("ld")
        deps = streaming_loop.ddg.dependences_to(scale)
        assert any(dep.src is load and dep.kind is DependenceKind.REG_FLOW for dep in deps)

    def test_loop_carried_inputs(self):
        builder = LoopBuilder("acc", trip_count=16)
        builder.array("a", 4, 64)
        ld = builder.load("ld", "a", stride=4)
        acc = builder.compute("acc", "add", inputs=[ld], loop_carried_inputs=[])
        builder.flow(acc, acc, distance=1)
        loop = builder.build()
        self_deps = [
            dep for dep in loop.ddg.dependences() if dep.src is acc and dep.dst is acc
        ]
        assert self_deps and self_deps[0].distance == 1

    def test_metadata_round_trip(self):
        builder = LoopBuilder("meta", trip_count=16, weight=2.0)
        builder.array("a", 4, 64)
        builder.load("ld", "a", stride=4)
        builder.metadata(paper_loop=67)
        loop = builder.build()
        assert loop.metadata["paper_loop"] == 67
        assert loop.weight == 2.0

    def test_granularity_defaults_to_element_size(self):
        builder = LoopBuilder("gran", trip_count=16)
        builder.array("short", 2, 64)
        op = builder.load("ld", "short", stride=2)
        assert op.memory.granularity == 2


class TestLoopDescriptor:
    def test_trip_count_must_be_positive(self, streaming_loop):
        with pytest.raises(ValueError):
            Loop(
                name="bad",
                ddg=streaming_loop.ddg,
                arrays=streaming_loop.arrays,
                trip_count=0,
            )

    def test_profile_trip_count_defaults_to_trip_count(self, streaming_loop):
        assert streaming_loop.profile_trip_count == streaming_loop.trip_count

    def test_unknown_array_reference_rejected(self, streaming_loop):
        with pytest.raises(ValueError):
            Loop(
                name="bad",
                ddg=streaming_loop.ddg,
                arrays={},
                trip_count=10,
            )

    def test_dynamic_operations(self, streaming_loop):
        assert streaming_loop.dynamic_operations() == 4 * streaming_loop.trip_count

    def test_describe(self, streaming_loop):
        info = streaming_loop.describe()
        assert info["operations"] == 4
        assert info["memory_operations"] == 2

    def test_gather_arrays_conflict_detection(self, streaming_loop):
        conflicting = Loop(
            name="other",
            ddg=streaming_loop.ddg.copy("other"),
            arrays={
                "src": ArraySpec("src", 8, 64),
                "dst": streaming_loop.arrays["dst"],
            },
            trip_count=16,
        )
        with pytest.raises(ValueError):
            gather_arrays([streaming_loop, conflicting])

    def test_loop_nest(self, streaming_loop, recurrence_loop):
        nest = LoopNest("program", [streaming_loop, recurrence_loop])
        assert len(nest) == 2
        assert nest.total_weight() == pytest.approx(2.0)

    def test_array_spec_validation(self):
        with pytest.raises(ValueError):
            ArraySpec("bad", element_bytes=3, num_elements=10)
        with pytest.raises(ValueError):
            ArraySpec("bad", element_bytes=4, num_elements=0)

    def test_storage_classes(self):
        spec = ArraySpec("heap", 4, 16, storage=StorageClass.HEAP)
        assert spec.size_bytes == 64


class TestUnrolling:
    def test_factor_one_is_identity(self, streaming_loop):
        assert unroll_loop(streaming_loop, 1) is streaming_loop

    def test_operation_replication(self, streaming_loop):
        unrolled = unroll_loop(streaming_loop, 4)
        assert len(unrolled.operations) == 4 * len(streaming_loop.operations)
        assert unrolled.unroll_factor == 4
        assert unrolled.original is streaming_loop

    def test_trip_count_division(self, streaming_loop):
        unrolled = unroll_loop(streaming_loop, 4)
        assert unrolled.trip_count == -(-streaming_loop.trip_count // 4)

    def test_memory_offsets_and_strides(self, streaming_loop):
        unrolled = unroll_loop(streaming_loop, 4)
        offsets = sorted(
            op.memory.offset_bytes for op in unrolled.memory_operations if op.is_load
        )
        assert offsets == [0, 4, 8, 12]
        strides = {op.memory.stride_bytes for op in unrolled.memory_operations}
        assert strides == {16}

    def test_loop_carried_dependence_retargeting(self):
        builder = LoopBuilder("acc", trip_count=64)
        builder.array("a", 4, 128)
        ld = builder.load("ld", "a", stride=4)
        acc = builder.compute("acc", "add", inputs=[ld])
        builder.flow(acc, acc, distance=1)
        loop = builder.build()
        unrolled, replicas = unroll_ddg(loop.ddg, 3, "acc.x3")
        acc0 = replicas[(acc, 0)]
        acc1 = replicas[(acc, 1)]
        acc2 = replicas[(acc, 2)]
        # acc of copy k feeds acc of copy k+1 at distance 0, and the last
        # copy feeds the first at distance 1.
        edges = {
            (dep.src, dep.dst): dep.distance
            for dep in unrolled.dependences()
            if dep.src.mnemonic == "add" and dep.dst.mnemonic == "add"
        }
        assert edges[(acc0, acc1)] == 0
        assert edges[(acc1, acc2)] == 0
        assert edges[(acc2, acc0)] == 1

    def test_rejects_non_positive_factor(self, streaming_loop):
        with pytest.raises(ValueError):
            unroll_loop(streaming_loop, 0)

    def test_indirect_access_not_rewritten(self, indirect_loop):
        unrolled = unroll_loop(indirect_loop, 2)
        indirect_ops = [op for op in unrolled.memory_operations if op.memory.indirect]
        assert len(indirect_ops) == 2
        assert all(op.memory.offset_bytes == 0 for op in indirect_ops)

    def test_unique_names_after_unrolling(self, streaming_loop):
        unrolled = unroll_loop(streaming_loop, 4)
        names = [op.name for op in unrolled.operations]
        assert len(names) == len(set(names))
        unrolled.ddg.validate()

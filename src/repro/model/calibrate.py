"""Calibration of the analytical model against simulator records.

The raw model predicts *structural* quantities (II-driven compute cycles,
expected uncovered latency).  Real schedules carry systematic offsets the
model cannot see -- copy operations lengthen the II, schedule slack hides
part of the memory latency, bus contention adds to it.  Both effects are
close to linear, so the calibration pass fits

    actual_total_cycles ~ a * predicted_compute + b * predicted_stall

by ordinary least squares, globally and per benchmark, against simulator
records already persisted in a sweep
:class:`~repro.sweep.store.ResultStore`.  Stored job descriptions are
self-describing (:func:`repro.sweep.spec.job_from_description`), so
calibration needs nothing but the store directory.

The per-benchmark error report is the honesty check: it states the mean
absolute relative error before and after calibration, per benchmark and
overall, and is what the ``model-validation`` experiment renders.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Mapping, Optional

from repro.analysis.metrics import mean_absolute_relative_error, relative_error
from repro.model.predict import PredictedResult, predict_job

#: Coefficients below which a least-squares fit is considered degenerate.
_MIN_DETERMINANT = 1e-9


@dataclass(frozen=True)
class CalibrationSample:
    """One (prediction, simulator ground truth) pair."""

    benchmark: str
    predicted_compute: float
    predicted_stall: float
    actual_total: float
    key: str = ""

    @property
    def predicted_total(self) -> float:
        """Uncalibrated total prediction."""
        return self.predicted_compute + self.predicted_stall

    @staticmethod
    def from_results(
        predicted: PredictedResult, actual_total: float, key: str = ""
    ) -> "CalibrationSample":
        """Build a sample from a prediction and a measured cycle count."""
        return CalibrationSample(
            benchmark=predicted.benchmark,
            predicted_compute=predicted.compute_cycles,
            predicted_stall=predicted.stall_cycles,
            actual_total=actual_total,
            key=key,
        )


@dataclass
class ModelCalibration:
    """Fitted compute/stall coefficients, global plus per benchmark."""

    compute_scale: float = 1.0
    stall_scale: float = 1.0
    per_benchmark: dict[str, tuple[float, float]] = field(default_factory=dict)

    def scales_for(self, benchmark: str) -> tuple[float, float]:
        """(compute, stall) coefficients applicable to one benchmark."""
        return self.per_benchmark.get(
            benchmark, (self.compute_scale, self.stall_scale)
        )

    def apply(self, predicted: PredictedResult) -> PredictedResult:
        """Return a calibrated copy of a prediction."""
        compute_scale, stall_scale = self.scales_for(predicted.benchmark)
        return predicted.scaled(compute_scale, stall_scale)

    def calibrated_total(
        self, benchmark: str, predicted_compute: float, predicted_stall: float
    ) -> float:
        """Calibrated total-cycle estimate without building a result."""
        compute_scale, stall_scale = self.scales_for(benchmark)
        return compute_scale * predicted_compute + stall_scale * predicted_stall

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_mapping(self) -> dict[str, object]:
        """Plain-dict form, suitable for JSON."""
        return {
            "compute_scale": self.compute_scale,
            "stall_scale": self.stall_scale,
            "per_benchmark": {
                name: list(scales) for name, scales in self.per_benchmark.items()
            },
        }

    @staticmethod
    def from_mapping(data: Mapping[str, object]) -> "ModelCalibration":
        """Rebuild a calibration from a plain dict."""
        return ModelCalibration(
            compute_scale=float(data.get("compute_scale", 1.0)),
            stall_scale=float(data.get("stall_scale", 1.0)),
            per_benchmark={
                str(name): (float(scales[0]), float(scales[1]))
                for name, scales in dict(data.get("per_benchmark", {})).items()
            },
        )

    def save(self, path: Path | str) -> None:
        """Write the calibration as JSON."""
        Path(path).write_text(
            json.dumps(self.to_mapping(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    @staticmethod
    def load(path: Path | str) -> "ModelCalibration":
        """Read a calibration written by :meth:`save`."""
        return ModelCalibration.from_mapping(
            json.loads(Path(path).read_text(encoding="utf-8"))
        )


@dataclass(frozen=True)
class BenchmarkErrorRow:
    """Model error of one benchmark, before and after calibration."""

    benchmark: str
    samples: int
    mare_raw: float
    mare_calibrated: float
    worst_calibrated: float


@dataclass
class CalibrationReport:
    """Per-benchmark and overall error of a fitted calibration."""

    rows: list[BenchmarkErrorRow]
    mare_raw: float
    mare_calibrated: float

    def describe(self) -> dict[str, object]:
        """Flat summary for logs and JSON reports."""
        return {
            "benchmarks": len(self.rows),
            "samples": sum(row.samples for row in self.rows),
            "mare_raw": round(self.mare_raw, 4),
            "mare_calibrated": round(self.mare_calibrated, 4),
        }


def _least_squares(
    samples: list[CalibrationSample],
) -> Optional[tuple[float, float]]:
    """Fit a*compute + b*stall ~ actual; None when degenerate."""
    sum_cc = sum(s.predicted_compute * s.predicted_compute for s in samples)
    sum_cs = sum(s.predicted_compute * s.predicted_stall for s in samples)
    sum_ss = sum(s.predicted_stall * s.predicted_stall for s in samples)
    sum_cy = sum(s.predicted_compute * s.actual_total for s in samples)
    sum_sy = sum(s.predicted_stall * s.actual_total for s in samples)
    determinant = sum_cc * sum_ss - sum_cs * sum_cs
    if abs(determinant) < _MIN_DETERMINANT * max(1.0, sum_cc * sum_ss):
        return None
    compute_scale = (sum_cy * sum_ss - sum_sy * sum_cs) / determinant
    stall_scale = (sum_sy * sum_cc - sum_cy * sum_cs) / determinant
    if compute_scale <= 0.0 or stall_scale < 0.0:
        # A negative coefficient means the two regressors are nearly
        # collinear on this sample set; the scale-only fallback is safer.
        return None
    return compute_scale, stall_scale


def _scale_only(samples: list[CalibrationSample]) -> tuple[float, float]:
    """Single multiplicative factor on the total prediction."""
    denominator = sum(s.predicted_total * s.predicted_total for s in samples)
    if denominator <= 0.0:
        return 1.0, 1.0
    scale = sum(s.predicted_total * s.actual_total for s in samples) / denominator
    return scale, scale


def _fit(samples: list[CalibrationSample]) -> tuple[float, float]:
    if len(samples) >= 2:
        fitted = _least_squares(samples)
        if fitted is not None:
            return fitted
    return _scale_only(samples)


def fit_calibration(
    samples: Iterable[CalibrationSample],
) -> tuple[ModelCalibration, CalibrationReport]:
    """Fit global and per-benchmark coefficients; report the errors."""
    samples = list(samples)
    if not samples:
        return ModelCalibration(), CalibrationReport(
            rows=[], mare_raw=0.0, mare_calibrated=0.0
        )

    compute_scale, stall_scale = _fit(samples)
    calibration = ModelCalibration(
        compute_scale=compute_scale, stall_scale=stall_scale
    )
    by_benchmark: dict[str, list[CalibrationSample]] = {}
    for sample in samples:
        by_benchmark.setdefault(sample.benchmark, []).append(sample)
    for benchmark, group in by_benchmark.items():
        calibration.per_benchmark[benchmark] = _fit(group)

    rows = []
    for benchmark in sorted(by_benchmark):
        group = by_benchmark[benchmark]
        calibrated_errors = [
            relative_error(
                calibration.calibrated_total(
                    benchmark, s.predicted_compute, s.predicted_stall
                ),
                s.actual_total,
            )
            for s in group
        ]
        rows.append(
            BenchmarkErrorRow(
                benchmark=benchmark,
                samples=len(group),
                mare_raw=mean_absolute_relative_error(
                    (s.predicted_total, s.actual_total) for s in group
                ),
                mare_calibrated=sum(calibrated_errors) / len(calibrated_errors),
                worst_calibrated=max(calibrated_errors),
            )
        )
    report = CalibrationReport(
        rows=rows,
        mare_raw=mean_absolute_relative_error(
            (s.predicted_total, s.actual_total) for s in samples
        ),
        mare_calibrated=mean_absolute_relative_error(
            (
                calibration.calibrated_total(
                    s.benchmark, s.predicted_compute, s.predicted_stall
                ),
                s.actual_total,
            )
            for s in samples
        ),
    )
    return calibration, report


def samples_from_store(
    store,
    predict: Callable[[object], PredictedResult] = predict_job,
) -> list[CalibrationSample]:
    """Re-predict every *simulator* record of a result store.

    Model-only records (``source == "model"``) are skipped -- calibrating
    the model against itself would be circular.
    """
    from repro.sweep.spec import job_from_description

    samples = []
    for record in store.records():
        if record.get("source") == "model":
            continue
        description = record.get("job")
        metrics = record.get("metrics", {})
        actual = metrics.get("total_cycles")
        if not description or actual is None:
            continue
        job = job_from_description(description)
        samples.append(
            CalibrationSample.from_results(
                predict(job), float(actual), key=str(record.get("key", ""))
            )
        )
    return samples


def fit_from_store(
    store,
    predict: Callable[[object], PredictedResult] = predict_job,
) -> tuple[ModelCalibration, CalibrationReport]:
    """Fit a calibration against every simulator record of a store."""
    return fit_calibration(samples_from_store(store, predict))

"""Lightweight, dependency-free observability for the repro stack.

The subsystem has four layers, each usable on its own:

* :mod:`repro.obs.trace` -- nested ``span(name, **attrs)`` context
  managers on monotonic clocks, thread-safe, with a true no-op path when
  telemetry is disabled (``REPRO_OBS=off``);
* :mod:`repro.obs.metrics` -- a process-local registry of counters,
  gauges and histograms whose snapshots merge exactly, so per-worker
  telemetry combines into one run-level view without cross-process
  queues;
* :mod:`repro.obs.events` -- a schema-versioned JSONL event log (one
  span per line), per-worker shard files, straggler annotation, the
  in-progress run header, and the per-run manifest (spec hash, machine
  grid, git describe, schema versions);
* :mod:`repro.obs.export` -- Chrome trace-event/Perfetto JSON export and
  the human ``--timings`` percentile summary.

On top of those sit the cross-run layers:

* :mod:`repro.obs.ledger` -- the append-only ``obs/ledger.jsonl``: one
  compact entry per finalized run (manifest provenance, host
  fingerprint, merged counters, stage hit rates, per-span-name
  p50/p90/p99 digests), listed by ``repro-sweep runs``;
* :mod:`repro.obs.regress` -- noise-aware regression verdicts between
  ledger entries (``repro-sweep regress [--gate]``);
* :mod:`repro.obs.profilehook` -- ``REPRO_OBS_PROFILE=<span-glob>``
  cProfile capture on matching spans, persisted as pstats dumps plus
  collapsed-stack folded files (``repro-sweep trace --folded``).

Telemetry never changes what the simulator or the compiler computes:
every byte of benchmark output is identical with telemetry enabled and
disabled (asserted in CI).  See ``docs/observability.md`` for the span
and metric naming conventions and the on-disk layout.
"""

from repro.obs.trace import (
    Span,
    current_span_id,
    enabled,
    measured_span,
    set_enabled,
    span,
    take_events,
    trace_overview,
)
from repro.obs.metrics import MetricsRegistry, merge_snapshots, registry

__all__ = [
    "MetricsRegistry",
    "Span",
    "current_span_id",
    "enabled",
    "measured_span",
    "merge_snapshots",
    "registry",
    "set_enabled",
    "span",
    "take_events",
    "trace_overview",
]

"""Per-cluster and shared resource accounting used by the schedulers.

The modulo scheduler needs to know, for every candidate (cycle, cluster),
whether a functional unit of the right kind and -- for inter-cluster
operations -- a bus slot is available.  :class:`ResourceModel` derives those
counts from a :class:`~repro.machine.config.MachineConfig` and also provides
the resource-constrained minimum initiation interval (ResMII).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable

from repro.ir.operation import MNEMONIC_CLASSES, Operation, OperationClass
from repro.machine.config import FunctionalUnitKind, MachineConfig


_CLASS_TO_UNIT: dict[OperationClass, FunctionalUnitKind] = {
    OperationClass.INTEGER: FunctionalUnitKind.INTEGER,
    OperationClass.FLOAT: FunctionalUnitKind.FLOAT,
    OperationClass.MEMORY: FunctionalUnitKind.MEMORY,
    OperationClass.BRANCH: FunctionalUnitKind.INTEGER,
    OperationClass.COPY: FunctionalUnitKind.INTEGER,
}

# Mnemonic-keyed mirror of _CLASS_TO_UNIT: the IR guarantees the mnemonic
# determines the class, and string keys hash at C speed where Enum keys go
# through the Python-level Enum.__hash__ -- measurable on the scheduler's
# hot path, which classifies every operation many times per II attempt.
_MNEMONIC_TO_UNIT: dict[str, FunctionalUnitKind] = {
    mnemonic: _CLASS_TO_UNIT[op_class]
    for mnemonic, op_class in MNEMONIC_CLASSES.items()
}


def unit_kind_for(op: Operation) -> FunctionalUnitKind:
    """Functional-unit kind an operation executes on."""
    return _MNEMONIC_TO_UNIT[op.mnemonic]


@dataclass(frozen=True)
class ResourceUsageSummary:
    """Static operation counts per functional-unit kind."""

    integer: int
    float_: int
    memory: int

    @staticmethod
    def from_operations(ops: Iterable[Operation]) -> "ResourceUsageSummary":
        """Count operations by the functional unit kind they need."""
        counts: Counter[FunctionalUnitKind] = Counter()
        for op in ops:
            counts[unit_kind_for(op)] += 1
        return ResourceUsageSummary(
            integer=counts[FunctionalUnitKind.INTEGER],
            float_=counts[FunctionalUnitKind.FLOAT],
            memory=counts[FunctionalUnitKind.MEMORY],
        )


class ResourceModel:
    """Knows how many units of each kind the machine provides.

    The model treats the machine as ``num_clusters`` identical clusters, each
    with the functional-unit mix of the configuration, plus shared register
    and memory buses.
    """

    def __init__(self, config: MachineConfig) -> None:
        self._config = config
        lat = config.op_latencies
        base = {
            OperationClass.INTEGER: lat.int_alu,
            OperationClass.FLOAT: lat.fp_alu,
            OperationClass.BRANCH: lat.branch,
            OperationClass.COPY: lat.copy,
        }
        # Latency by mnemonic, resolved once: the mnemonic determines the
        # class and the multiply/divide overrides, so the per-operation
        # lookup is a single string-keyed dict probe.
        self._latency_by_mnemonic: dict[str, int] = {}
        for mnemonic, op_class in MNEMONIC_CLASSES.items():
            if op_class is OperationClass.MEMORY:
                continue
            latency = base[op_class]
            if mnemonic == "mul":
                latency = lat.int_mul
            elif mnemonic == "fmul":
                latency = lat.fp_mul
            elif mnemonic in ("div", "fdiv"):
                latency = lat.fp_div
            self._latency_by_mnemonic[mnemonic] = latency

    @property
    def config(self) -> MachineConfig:
        """The underlying machine configuration."""
        return self._config

    def units_per_cluster(self, kind: FunctionalUnitKind) -> int:
        """Units of ``kind`` in a single cluster."""
        return self._config.functional_units.count(kind)

    def total_units(self, kind: FunctionalUnitKind) -> int:
        """Units of ``kind`` across the whole machine."""
        return self.units_per_cluster(kind) * self._config.num_clusters

    def res_mii(self, ops: Iterable[Operation]) -> int:
        """Resource-constrained minimum initiation interval.

        ``ResMII = max over resource kinds of ceil(uses / units)`` where the
        machine-wide unit count is used because the cluster assignment is not
        yet known when the MII is computed.
        """
        summary = ResourceUsageSummary.from_operations(ops)
        bounds = []
        for kind, uses in (
            (FunctionalUnitKind.INTEGER, summary.integer),
            (FunctionalUnitKind.FLOAT, summary.float_),
            (FunctionalUnitKind.MEMORY, summary.memory),
        ):
            total = self.total_units(kind)
            if uses:
                bounds.append(-(-uses // total))
        return max(bounds, default=1)

    def cluster_res_mii(self, ops: Iterable[Operation]) -> int:
        """ResMII if all operations had to fit in a single cluster."""
        summary = ResourceUsageSummary.from_operations(ops)
        bounds = []
        for kind, uses in (
            (FunctionalUnitKind.INTEGER, summary.integer),
            (FunctionalUnitKind.FLOAT, summary.float_),
            (FunctionalUnitKind.MEMORY, summary.memory),
        ):
            per_cluster = self.units_per_cluster(kind)
            if uses:
                bounds.append(-(-uses // per_cluster))
        return max(bounds, default=1)

    def operation_latency(self, op: Operation) -> int:
        """Non-memory operation latency from the machine description.

        Memory operations do not have a fixed latency -- the scheduler
        assigns one -- so this raises for them.
        """
        latency = self._latency_by_mnemonic.get(op.mnemonic)
        if latency is None:
            raise ValueError(
                "memory operations have scheduler-assigned latencies; "
                "use the latency assignment pass"
            )
        return latency

"""Ablation experiments beyond the paper's main figures.

Two studies the paper discusses in prose (Sections 5.2 and 5.4) but does not
plot in full are reproduced here:

* **Attraction Buffer sizing and attractable hints** -- the epicdec loop with
  19 memory instructions in one chain overflows a 16-entry buffer; marking
  only the K most profitable instructions as attractable recovers part of the
  lost stall reduction, especially for 8-entry buffers.
* **Unrolling policy** -- how the no-unrolling, unroll-by-N, OUF and
  selective policies trade local hit ratio against execution time, the
  trade-off that motivates selective unrolling.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.analysis.metrics import arithmetic_mean
from repro.experiments.common import (
    ExperimentOptions,
    ExperimentResult,
    ExperimentRunner,
    interleaved_setup,
)
from repro.scheduler.core import SchedulingHeuristic
from repro.scheduler.unrolling import UnrollPolicy


# ----------------------------------------------------------------------
# Attraction-Buffer sizing / attractable hints (epicdec study)
# ----------------------------------------------------------------------
_AB_CONFIGURATIONS = (
    ("no-ab", dict(attraction_buffers=False)),
    ("ab-8", dict(attraction_buffers=True, attraction_entries=8)),
    ("ab-16", dict(attraction_buffers=True, attraction_entries=16)),
    ("ab-32", dict(attraction_buffers=True, attraction_entries=32)),
)


def sweep_pairs_attraction_buffers(
    benchmark_name: str = "epicdec",
) -> list[tuple[str, object]]:
    """(benchmark, setup) pairs of the sizing ablation, for prewarming."""
    pairs = []
    for heuristic in (SchedulingHeuristic.IPBC, SchedulingHeuristic.IBC):
        for config_name, config_options in _AB_CONFIGURATIONS:
            pairs.append(
                (
                    benchmark_name,
                    interleaved_setup(
                        heuristic,
                        name=f"abl-ab/{heuristic.value}/{config_name}",
                        **config_options,
                    ),
                )
            )
    # The attractable-hint study's baseline configuration rides along.
    pairs.append(
        (
            benchmark_name,
            interleaved_setup(
                SchedulingHeuristic.IPBC,
                attraction_buffers=True,
                attraction_entries=8,
                name="abl-hint/8",
            ),
        )
    )
    return pairs


def run_attraction_buffer_ablation(
    runner: Optional[ExperimentRunner] = None,
    options: Optional[ExperimentOptions] = None,
    benchmark_name: str = "epicdec",
) -> tuple[list[dict[str, object]], ExperimentResult]:
    """Stall time of the chain-heavy benchmark across buffer configurations."""
    runner = runner or ExperimentRunner(options)
    benchmark = runner.benchmark(benchmark_name)

    configurations = _AB_CONFIGURATIONS
    rows: list[dict[str, object]] = []
    result = ExperimentResult(
        title=f"Ablation - Attraction Buffer size on {benchmark_name}",
        headers=["heuristic", "configuration", "stall_cycles", "normalized_stall"],
    )
    for heuristic in (SchedulingHeuristic.IPBC, SchedulingHeuristic.IBC):
        baseline_stall: Optional[float] = None
        for config_name, config_options in configurations:
            setup = interleaved_setup(
                heuristic,
                name=f"abl-ab/{heuristic.value}/{config_name}",
                **config_options,
            )
            sim = runner.run_benchmark(benchmark, setup)
            if baseline_stall is None:
                baseline_stall = sim.stall_cycles or 1.0
            row = {
                "heuristic": heuristic.value,
                "configuration": config_name,
                "stall_cycles": sim.stall_cycles,
                "normalized_stall": sim.stall_cycles / baseline_stall,
            }
            rows.append(row)
            result.add_row(
                [
                    heuristic.value,
                    config_name,
                    round(sim.stall_cycles),
                    row["normalized_stall"],
                ]
            )
    result.notes.append(
        "larger buffers recover the stall lost to chain-induced overflow "
        "(Section 5.2's epicdec discussion)"
    )
    return rows, result


def run_attractable_hint_ablation(
    runner: Optional[ExperimentRunner] = None,
    options: Optional[ExperimentOptions] = None,
    benchmark_name: str = "epicdec",
    entries: int = 8,
    attractable_budget: int = 6,
) -> tuple[list[dict[str, object]], ExperimentResult]:
    """Compiler 'attractable' hints when the chain overflows the buffer.

    The hint policy marks only the ``attractable_budget`` memory operations
    with the most accesses per loop as attractable, so the buffer is not
    thrashed by the rest of the chain.
    """
    runner = runner or ExperimentRunner(options)
    benchmark = runner.benchmark(benchmark_name)
    setup = interleaved_setup(
        SchedulingHeuristic.IPBC,
        attraction_buffers=True,
        attraction_entries=entries,
        name=f"abl-hint/{entries}",
    )

    # One MemoryAccess may be shared by several unrolled clones, so record
    # the first-seen value per object, not per operation.
    saved_hints: dict[int, tuple[object, bool]] = {}

    def _with_hints() -> list:
        compiled_loops = runner.compile_benchmark(benchmark, setup)
        hinted = []
        for compiled in compiled_loops:
            loop = compiled.loop
            memory_ops = loop.memory_operations
            keep = set(
                sorted(
                    memory_ops,
                    key=lambda op: compiled.profile.operations[op].accesses,
                    reverse=True,
                )[:attractable_budget]
            )
            for op in memory_ops:
                if op not in keep:
                    memory = op.memory
                    if id(memory) not in saved_hints:
                        saved_hints[id(memory)] = (memory, memory.attractable)
                    object.__setattr__(memory, "attractable", False)
            hinted.append(compiled)
        return hinted

    from repro.sim.engine import simulate_compiled_loops

    baseline = runner.run_benchmark(benchmark, setup)
    hinted_loops = _with_hints()
    try:
        hinted = simulate_compiled_loops(
            hinted_loops,
            benchmark.name,
            setup.config,
            runner.options.simulation_options(),
            architecture="hinted",
        )
    finally:
        # Restore the original hints (the MemoryAccess objects are shared
        # with the source loop and every cached compilation of it).
        for memory, attractable in saved_hints.values():
            object.__setattr__(memory, "attractable", attractable)

    rows = [
        {"configuration": "all-attractable", "stall_cycles": baseline.stall_cycles},
        {"configuration": f"top-{attractable_budget}-attractable", "stall_cycles": hinted.stall_cycles},
    ]
    result = ExperimentResult(
        title=f"Ablation - attractable hints on {benchmark_name} ({entries}-entry buffers)",
        headers=["configuration", "stall_cycles", "reduction vs all-attractable"],
    )
    base = baseline.stall_cycles or 1.0
    for row in rows:
        result.add_row(
            [
                row["configuration"],
                round(row["stall_cycles"]),
                1.0 - row["stall_cycles"] / base,
            ]
        )
    return rows, result


# ----------------------------------------------------------------------
# Unrolling-policy ablation
# ----------------------------------------------------------------------
_UNROLL_POLICIES = (
    UnrollPolicy.NONE,
    UnrollPolicy.TIMES_N,
    UnrollPolicy.OUF,
    UnrollPolicy.SELECTIVE,
)


def sweep_setups_unrolling() -> list:
    """The setups of the unrolling ablation, for prewarming."""
    return [
        interleaved_setup(
            SchedulingHeuristic.IPBC,
            unroll_policy=policy,
            name=f"abl-unroll/{policy.value}",
        )
        for policy in _UNROLL_POLICIES
    ]


def run_unrolling_ablation(
    runner: Optional[ExperimentRunner] = None,
    options: Optional[ExperimentOptions] = None,
) -> tuple[list[dict[str, object]], ExperimentResult]:
    """Local hit ratio and cycles for each unrolling policy (IPBC)."""
    runner = runner or ExperimentRunner(options)
    policies = _UNROLL_POLICIES
    rows: list[dict[str, object]] = []
    result = ExperimentResult(
        title="Ablation - unrolling policy (IPBC)",
        headers=["policy", "mean local hit ratio", "mean normalized cycles"],
    )
    baseline_cycles: dict[str, float] = {}
    per_policy: dict[UnrollPolicy, dict[str, float]] = {}
    for policy in policies:
        setup = interleaved_setup(
            SchedulingHeuristic.IPBC,
            unroll_policy=policy,
            name=f"abl-unroll/{policy.value}",
        )
        ratios = []
        normalized = []
        for benchmark in runner.benchmarks:
            sim = runner.run_benchmark(benchmark, setup)
            ratios.append(sim.local_hit_ratio())
            if policy is UnrollPolicy.NONE:
                baseline_cycles[benchmark.name] = sim.total_cycles or 1.0
            normalized.append(
                sim.total_cycles / baseline_cycles.get(benchmark.name, sim.total_cycles or 1.0)
            )
        per_policy[policy] = {
            "local_hit_ratio": arithmetic_mean(ratios),
            "normalized_cycles": arithmetic_mean(normalized),
        }
        rows.append({"policy": policy.value, **per_policy[policy]})
        result.add_row(
            [
                policy.value,
                per_policy[policy]["local_hit_ratio"],
                per_policy[policy]["normalized_cycles"],
            ]
        )
    result.notes.append(
        "selective unrolling should match or beat every fixed policy on "
        "cycles while keeping most of OUF's local-hit-ratio gain"
    )
    return rows, result

"""Schedule data structures produced by the modulo schedulers.

A :class:`ClusteredSchedule` records, for every operation of a loop, the
cluster it was assigned to, its start cycle in the flattened schedule, the
latency the scheduler assumed for it, and the inter-cluster copy operations
that were inserted to move register values between clusters.  The simulator
replays this structure against a memory-system model; the analysis code
derives compute time, workload balance and communication counts from it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional

from repro.ir.loop import Loop
from repro.ir.operation import Operation
from repro.machine.config import MachineConfig


@dataclass(frozen=True)
class ScheduledOperation:
    """Placement of one operation in the modulo schedule."""

    operation: Operation
    cluster: int
    start_cycle: int
    assigned_latency: int
    ii: int

    @property
    def row(self) -> int:
        """Row in the kernel (start cycle modulo II)."""
        return self.start_cycle % self.ii

    @property
    def stage(self) -> int:
        """Software pipeline stage of the operation."""
        return self.start_cycle // self.ii


@dataclass(frozen=True)
class CopyOperation:
    """An inter-cluster register copy inserted by the scheduler."""

    producer: Operation
    consumer: Operation
    source_cluster: int
    target_cluster: int
    issue_cycle: int
    latency: int


@dataclass
class ClusteredSchedule:
    """A complete modulo schedule of one loop."""

    loop: Loop
    config: MachineConfig
    ii: int
    entries: dict[Operation, ScheduledOperation]
    copies: list[CopyOperation] = field(default_factory=list)
    heuristic: str = "unspecified"
    metadata: dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.ii <= 0:
            raise ValueError("the initiation interval must be positive")
        missing = [op.name for op in self.loop.operations if op not in self.entries]
        if missing:
            raise ValueError(f"schedule is missing operations: {missing}")

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def cluster_of(self, op: Operation) -> int:
        """Cluster the operation was assigned to."""
        return self.entries[op].cluster

    def start_cycle_of(self, op: Operation) -> int:
        """Start cycle of the operation in the flattened schedule."""
        return self.entries[op].start_cycle

    def assigned_latency_of(self, op: Operation) -> int:
        """Latency the scheduler assumed when placing the operation."""
        return self.entries[op].assigned_latency

    def scheduled_operations(self) -> list[ScheduledOperation]:
        """All placements, ordered by start cycle then cluster."""
        return sorted(
            self.entries.values(), key=lambda entry: (entry.start_cycle, entry.cluster)
        )

    # ------------------------------------------------------------------
    # Derived schedule-level quantities
    # ------------------------------------------------------------------
    @property
    def stage_count(self) -> int:
        """Number of overlapped iterations (SC)."""
        if not self.entries:
            return 1
        last = max(entry.start_cycle for entry in self.entries.values())
        return last // self.ii + 1

    @property
    def schedule_length(self) -> int:
        """Length of one iteration's flattened schedule, in cycles."""
        if not self.entries:
            return self.ii
        return max(
            entry.start_cycle + entry.assigned_latency
            for entry in self.entries.values()
        )

    @property
    def num_copies(self) -> int:
        """Number of inter-cluster register copies inserted."""
        return len(self.copies)

    def compute_cycles(self, iterations: Optional[int] = None) -> int:
        """Compute time of the modulo-scheduled loop, without stalls.

        ``(iterations + SC - 1) * II`` -- the classic execution-time model of
        a software-pipelined loop with a high trip count (Section 4.3.1).
        """
        if iterations is None:
            iterations = self.loop.trip_count
        if iterations <= 0:
            return 0
        return (iterations + self.stage_count - 1) * self.ii

    def workload_balance(self) -> float:
        """The WB(L) metric of Section 5.2 (Figure 7).

        ``NumInstsInMaxCluster / TotalNumInsts``: 1/N is perfect balance, 1.0
        means every instruction landed in a single cluster.  Inserted copy
        operations are not counted, as the paper's metric is defined over the
        loop's instructions.
        """
        if not self.entries:
            return 0.0
        per_cluster = [0] * self.config.num_clusters
        for entry in self.entries.values():
            per_cluster[entry.cluster] += 1
        return max(per_cluster) / len(self.entries)

    def operations_per_cluster(self) -> list[int]:
        """Number of loop operations assigned to each cluster."""
        per_cluster = [0] * self.config.num_clusters
        for entry in self.entries.values():
            per_cluster[entry.cluster] += 1
        return per_cluster

    def memory_operations_per_cluster(self) -> list[int]:
        """Number of memory operations assigned to each cluster."""
        per_cluster = [0] * self.config.num_clusters
        for entry in self.entries.values():
            if entry.operation.is_memory:
                per_cluster[entry.cluster] += 1
        return per_cluster

    def register_pressure_estimate(self) -> int:
        """Upper bound on simultaneously live values in the kernel.

        Each register-flow dependence keeps its value alive from the
        producer's issue until the consumer's issue; the estimate counts the
        maximum number of such lifetimes overlapping any kernel row.  It is a
        reporting aid, not a constraint (the paper does not spill).
        """
        live_per_row = [0] * self.ii
        for dep in self.loop.ddg.dependences():
            if not dep.is_register or dep.src not in self.entries:
                continue
            if dep.dst not in self.entries:
                continue
            start = self.entries[dep.src].start_cycle
            end = self.entries[dep.dst].start_cycle + dep.distance * self.ii
            span = max(1, end - start)
            for offset in range(min(span, self.ii)):
                live_per_row[(start + offset) % self.ii] += 1
        return max(live_per_row, default=0)

    def describe(self) -> dict[str, object]:
        """Summary used by reports and examples."""
        return {
            "loop": self.loop.name,
            "heuristic": self.heuristic,
            "ii": self.ii,
            "stage_count": self.stage_count,
            "operations": len(self.entries),
            "copies": self.num_copies,
            "workload_balance": round(self.workload_balance(), 3),
            "register_pressure": self.register_pressure_estimate(),
        }


def validate_schedule(schedule: ClusteredSchedule) -> None:
    """Check the structural invariants of a schedule.

    Raises ValueError when a dependence is violated (taking the II and the
    iteration distance into account) or when an operation landed outside the
    machine's cluster range.  Copies are assumed to be reflected in the
    effective latencies already (the scheduler adds the copy latency when
    producer and consumer live in different clusters).
    """
    config = schedule.config
    copy_latency = config.op_latencies.copy
    for entry in schedule.entries.values():
        if not 0 <= entry.cluster < config.num_clusters:
            raise ValueError(
                f"operation {entry.operation.name} scheduled on invalid "
                f"cluster {entry.cluster}"
            )
        if entry.start_cycle < 0:
            raise ValueError(
                f"operation {entry.operation.name} has a negative start cycle"
            )
    for dep in schedule.loop.ddg.dependences():
        if dep.src not in schedule.entries or dep.dst not in schedule.entries:
            continue
        src = schedule.entries[dep.src]
        dst = schedule.entries[dep.dst]
        if dep.is_register and dep.kind.name == "REG_FLOW":
            latency = src.assigned_latency
            if src.cluster != dst.cluster:
                latency += copy_latency
        elif dep.is_memory:
            latency = 1
        else:  # anti / output / control dependences only need ordering
            latency = 0
        earliest = src.start_cycle + latency - dep.distance * schedule.ii
        if dst.start_cycle < earliest:
            raise ValueError(
                f"dependence {dep.src.name} -> {dep.dst.name} violated: "
                f"{dst.start_cycle} < {earliest}"
            )

"""Simulation statistics containers.

The simulator separates *compute time* (the cycles the modulo schedule
itself accounts for) from *stall time* (extra cycles paid when a memory
operation's real latency exceeds the latency the scheduler assumed), exactly
the decomposition plotted in Figures 6 and 8 of the paper.  It also keeps
per-static-operation records so the stall-factor classification of Figure 5
and the access classification of Figure 4 can be derived.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Optional

from repro.ir.operation import Operation
from repro.memory.classify import AccessCounters, AccessType, StallCounters


@dataclass
class OperationSimRecord:
    """Execution summary of one static memory operation."""

    operation: Operation
    cluster: int
    assigned_latency: int
    profile_preferred_cluster: Optional[int]
    profile_distribution: float
    access_counts: Counter = field(default_factory=Counter)
    stall_by_type: Counter = field(default_factory=Counter)
    clusters_touched: Counter = field(default_factory=Counter)
    total_stall: int = 0

    def record(self, classification: AccessType, home_cluster: Optional[int], stall: int) -> None:
        """Record one dynamic access of this operation."""
        self.access_counts[classification] += 1
        if home_cluster is not None:
            self.clusters_touched[home_cluster] += 1
        if stall > 0:
            self.stall_by_type[classification] += stall
            self.total_stall += stall

    @property
    def accesses(self) -> int:
        """Total dynamic accesses observed."""
        return sum(self.access_counts.values())

    @property
    def touches_multiple_clusters(self) -> bool:
        """True if the operation's accesses map to more than one cluster."""
        return len(self.clusters_touched) > 1

    @property
    def scheduled_in_preferred(self) -> bool:
        """True if the operation runs in its profile-preferred cluster."""
        return (
            self.profile_preferred_cluster is not None
            and self.cluster == self.profile_preferred_cluster
        )

    @property
    def local_accesses(self) -> int:
        """Accesses that were served locally (hits or misses)."""
        return (
            self.access_counts[AccessType.LOCAL_HIT]
            + self.access_counts[AccessType.LOCAL_MISS]
        )


@dataclass
class LoopSimulationResult:
    """Result of simulating one compiled loop on one memory system."""

    loop_name: str
    heuristic: str
    ii: int
    stage_count: int
    iterations: int
    simulated_iterations: int
    compute_cycles: int
    stall_cycles: int
    accesses: AccessCounters
    stalls: StallCounters
    operation_records: dict[Operation, OperationSimRecord]
    workload_balance: float
    num_copies: int
    ops_per_iteration: int = 0
    weight: float = 1.0

    @property
    def total_cycles(self) -> int:
        """Compute plus stall cycles."""
        return self.compute_cycles + self.stall_cycles

    @property
    def stall_ratio(self) -> float:
        """Stall time over total time."""
        total = self.total_cycles
        return self.stall_cycles / total if total else 0.0

    @property
    def ipc(self) -> float:
        """Dynamic operations per cycle (copies excluded, as in the paper)."""
        if self.total_cycles == 0:
            return 0.0
        dynamic_ops = self.iterations * self.ops_per_iteration
        return dynamic_ops / self.total_cycles

    def describe(self) -> dict[str, object]:
        """Flat summary used by reports and examples."""
        return {
            "loop": self.loop_name,
            "heuristic": self.heuristic,
            "ii": self.ii,
            "iterations": self.iterations,
            "compute_cycles": self.compute_cycles,
            "stall_cycles": self.stall_cycles,
            "total_cycles": self.total_cycles,
            "local_hit_ratio": round(self.accesses.local_hit_ratio(), 4),
            "workload_balance": round(self.workload_balance, 4),
        }


@dataclass
class BenchmarkSimulationResult:
    """Aggregated simulation result of a whole benchmark."""

    benchmark: str
    architecture: str
    heuristic: str
    loops: list[LoopSimulationResult]

    @property
    def compute_cycles(self) -> float:
        """Weighted compute cycles over all loops."""
        return sum(result.compute_cycles * result.weight for result in self.loops)

    @property
    def stall_cycles(self) -> float:
        """Weighted stall cycles over all loops."""
        return sum(result.stall_cycles * result.weight for result in self.loops)

    @property
    def total_cycles(self) -> float:
        """Weighted total cycles over all loops."""
        return self.compute_cycles + self.stall_cycles

    @property
    def stall_ratio(self) -> float:
        """Stall time over total time."""
        total = self.total_cycles
        return self.stall_cycles / total if total else 0.0

    def access_counters(self) -> AccessCounters:
        """Weighted access classification over all loops.

        Weights are applied by scaling each loop's counters; the result is
        rounded to integers, which is harmless because only fractions are
        ever reported.
        """
        merged = AccessCounters()
        for result in self.loops:
            scaled = result.accesses.scaled(result.weight)
            merged.local_hits += int(round(scaled["local_hits"]))
            merged.remote_hits += int(round(scaled["remote_hits"]))
            merged.local_misses += int(round(scaled["local_misses"]))
            merged.remote_misses += int(round(scaled["remote_misses"]))
            merged.combined += int(round(scaled["combined"]))
        return merged

    def stall_counters(self) -> StallCounters:
        """Weighted stall attribution over all loops."""
        merged = StallCounters()
        for result in self.loops:
            merged.remote_hit += int(round(result.stalls.remote_hit * result.weight))
            merged.local_miss += int(round(result.stalls.local_miss * result.weight))
            merged.remote_miss += int(round(result.stalls.remote_miss * result.weight))
            merged.combined += int(round(result.stalls.combined * result.weight))
        return merged

    def local_hit_ratio(self) -> float:
        """Weighted fraction of accesses that are local hits."""
        return self.access_counters().local_hit_ratio()

    def workload_balance(self) -> float:
        """Weighted arithmetic mean of the per-loop workload balance."""
        total_weight = sum(result.weight for result in self.loops)
        if total_weight == 0:
            return 0.0
        return (
            sum(result.workload_balance * result.weight for result in self.loops)
            / total_weight
        )

    def dynamic_operations(self) -> float:
        """Weighted dynamic operation count (for IPC computations)."""
        return sum(
            result.weight * result.iterations * result.ops_per_iteration
            for result in self.loops
        )

    def ipc(self) -> float:
        """Weighted instructions per cycle across the benchmark."""
        total = self.total_cycles
        return self.dynamic_operations() / total if total else 0.0

    def describe(self) -> dict[str, object]:
        """Flat summary used by reports."""
        return {
            "benchmark": self.benchmark,
            "architecture": self.architecture,
            "heuristic": self.heuristic,
            "compute_cycles": round(self.compute_cycles),
            "stall_cycles": round(self.stall_cycles),
            "total_cycles": round(self.total_cycles),
            "stall_ratio": round(self.stall_ratio, 4),
            "local_hit_ratio": round(self.local_hit_ratio(), 4),
            "workload_balance": round(self.workload_balance(), 4),
        }


def merge_benchmark_results(
    parts: list[BenchmarkSimulationResult],
    architecture: Optional[str] = None,
) -> BenchmarkSimulationResult:
    """Reassemble one benchmark-level result from partial (per-loop) results.

    Loops simulate independently (see
    :func:`~repro.sim.engine.simulate_compiled_loops`), so concatenating the
    loop results of the parts -- in the order given, which the loop-level
    sweep keeps aligned with the benchmark's loop order -- yields a result
    that is metric-for-metric identical to simulating the whole benchmark
    at once.  Every aggregate of this class is a weighted sum or mean over
    ``self.loops``, so no information is lost in the split.
    """
    if not parts:
        raise ValueError("cannot merge zero partial results")
    benchmarks = {part.benchmark for part in parts}
    if len(benchmarks) != 1:
        raise ValueError(
            f"partial results span several benchmarks: {sorted(benchmarks)}"
        )
    heuristics = {part.heuristic for part in parts}
    architectures = {part.architecture for part in parts}
    return BenchmarkSimulationResult(
        benchmark=parts[0].benchmark,
        architecture=architecture
        or (architectures.pop() if len(architectures) == 1 else "mixed"),
        heuristic=heuristics.pop() if len(heuristics) == 1 else "mixed",
        loops=[loop for part in parts for loop in part.loops],
    )

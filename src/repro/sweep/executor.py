"""Execution engine of the sweep subsystem.

Jobs are executed either in-process (``workers <= 1``) or fanned out
across persistent worker processes driven by the benchmark-affine
work-stealing scheduler (:mod:`repro.sweep.scheduler`).  Compilation runs
through the staged
pipeline (:mod:`repro.scheduler.pipeline`) backed by a per-process
:class:`~repro.sweep.artifacts.ArtifactCache`: each stage output is keyed
by exactly the input slice it depends on, so jobs that differ only in
downstream knobs (scheduling heuristic, Attraction Buffers, simulation
options) reuse the upstream stages instead of recompiling.  The same
cache serves the ``trace`` stage -- the precomputed address traces of
:mod:`repro.profiling.trace` that both the profiler and the simulator
replay -- so a loop's profile- and execution-data-set traces are
materialised once for the whole grid.  When a result store is configured
the cache is disk-backed (``<store>/artifacts``), which shares the stage
artifacts *across* workers, across benchmark- and loop-granularity jobs,
and across interrupted and resumed runs; per-stage hit/miss counters
surface in the run summary.

Results flow back to the parent as ``(record, BenchmarkSimulationResult)``
pairs and are written to the :class:`~repro.sweep.store.ResultStore`; jobs
whose key is already stored are skipped entirely (incremental re-runs),
unless ``force=True``.

``granularity="loop"`` schedules one job per (loop, machine,
compiler-options) point instead of one per benchmark: the loop jobs of
every pending benchmark job are fanned out across the pool (a multi-loop
benchmark no longer serializes behind a single worker) and the per-loop
results are reassembled -- exactly, since loops simulate independently --
into the same benchmark-level records and payloads the monolithic path
writes, so ``report``, ``status``, pruning and the experiment harness
consume either granularity unchanged.  Loop-level records/payloads are
stored too, which makes interrupted loop-granularity runs resumable.

With :class:`PruneOptions` the analytical model (:mod:`repro.model`) ranks
every benchmark's jobs by predicted cycles first and only the most
promising fraction is simulated; the pruned remainder is stored as
model-only records (``"source": "model"``), which never satisfy the
cache-hit check of a later unpruned run -- simulating a previously pruned
point simply overwrites its model record.  Pruning ranks whole benchmarks
regardless of granularity, so pruned runs keep identical keep-sets at
either granularity.
"""

from __future__ import annotations

import hashlib
import math
import os
import socket
import time
import traceback as traceback_module
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Optional, Sequence, Union

from repro import faults, kernels
from repro.obs import events as obs_events
from repro.obs import metrics as obs_metrics
from repro.obs import profilehook as obs_profilehook
from repro.obs import trace as obs
from repro.scheduler.pipeline import compile_loop
from repro.sim.engine import simulate_compiled_loops
from repro.sim.stats import BenchmarkSimulationResult, merge_benchmark_results
from repro.sweep.artifacts import ARTIFACTS_DIRNAME, ArtifactCache, ArtifactStore
from repro.sweep.scheduler import (
    JobCompletion,
    WorkerFailure,
    WorkStealingScheduler,
    retry_delay,
)
from repro.sweep.spec import SweepJob, SweepSpec, expand_loop_jobs
from repro.sweep.store import ResultStore
from repro.sweep.workloads import resolve_loop, resolve_workload

#: Per-process stage-artifact cache.  Memory-only by default; pool workers
#: and in-process runs with a result store rebind it to the store's
#: artifact directory via :func:`configure_artifacts`.
_ARTIFACTS: Optional[ArtifactCache] = None


def default_workers(cap: int = 8) -> int:
    """Default pool size: the CPU count, capped.

    Never exceeds the machine's CPU count -- a single-core CI runner gets
    one worker (the in-process path), not an oversubscribed pool.
    """
    return max(1, min(cap, os.cpu_count() or 1))


def artifact_cache() -> ArtifactCache:
    """This process's stage-artifact cache (memory-only until configured)."""
    global _ARTIFACTS
    if _ARTIFACTS is None:
        _ARTIFACTS = ArtifactCache()
    return _ARTIFACTS


def configure_artifacts(root: Union[Path, str, None]) -> ArtifactCache:
    """Point this process's artifact cache at a disk store (or at nothing).

    Used as the pool-worker initializer and by in-process runs; returns
    the new cache so callers can read its counters.
    """
    global _ARTIFACTS
    _ARTIFACTS = ArtifactCache(ArtifactStore(root) if root else None)
    return _ARTIFACTS


def make_record(
    job: SweepJob,
    result: BenchmarkSimulationResult,
    elapsed_seconds: float,
    source_timing: str = "measured",
) -> dict:
    """Assemble the queryable JSON record of one executed job.

    ``source_timing`` marks what ``elapsed_seconds`` measured:
    ``"measured"`` for a fresh compile+simulate, ``"replayed"`` for a
    loop-granularity aggregate whose parts were (at least partly) served
    from stored loop results -- their summed timings describe the original
    runs, not this one.  Report percentiles filter on this marker so
    cache-replay timings never dilute fresh-simulation timings.
    """
    metrics = result.describe()
    metrics["ipc"] = round(result.ipc(), 4)
    return {
        "key": job.key,
        "architecture": job.architecture,
        "job": job.describe(),
        "metrics": metrics,
        "source": "simulator",
        "elapsed_seconds": round(elapsed_seconds, 4),
        "source_timing": source_timing,
        "worker_pid": os.getpid(),
    }


def make_model_record(
    job: SweepJob, predicted, elapsed_seconds: float, calibrated: bool = False
) -> dict:
    """Assemble the store record of a model-only (pruned) job.

    ``calibrated`` marks records whose metrics went through fitted
    coefficients; raw and calibrated predictions are not interchangeable,
    so the flag is what the record-reuse path keys on.
    """
    metrics = predicted.describe()
    metrics.pop("source", None)  # recorded at the top level instead
    metrics["ipc"] = round(predicted.ipc(), 4)
    return {
        "key": job.key,
        "architecture": job.architecture,
        "job": job.describe(),
        "metrics": metrics,
        "source": "model",
        "calibrated": calibrated,
        "elapsed_seconds": round(elapsed_seconds, 4),
        "source_timing": "model",
        "worker_pid": os.getpid(),
    }


#: Schema of the quarantined-job record :func:`make_failed_record` writes.
FAILED_RECORD_SCHEMA = 1

#: How many trailing traceback lines a failed record keeps.
TRACEBACK_TAIL_LINES = 20


def make_failed_record(
    job: SweepJob,
    error: str,
    attempts: int,
    traceback_text: Optional[str] = None,
) -> dict:
    """Assemble the quarantine record of a job that exhausted its retries.

    Written through the normal store path (``source="failed"``) so sweeps
    and service sessions complete with partial results and the failure is
    queryable like any record.  A failed record never satisfies the
    cache-hit check -- a rerun retries the job -- unless the rerun opts
    into ``keep_failed``.
    """
    tail = None
    if traceback_text:
        lines = traceback_text.strip().splitlines()
        tail = "\n".join(lines[-TRACEBACK_TAIL_LINES:])
    return {
        "key": job.key,
        "architecture": job.architecture,
        "job": job.describe(),
        "source": "failed",
        "failed_schema": FAILED_RECORD_SCHEMA,
        "error": error,
        "traceback": tail,
        "attempts": attempts,
        "host": socket.gethostname(),
        "source_timing": "failed",
        "worker_pid": os.getpid(),
    }


def is_simulated_record(record: Optional[dict]) -> bool:
    """True for records the simulator produced.

    Model-only and failed records don't count: either way the job is
    recomputed (and its record overwritten) on the next unpruned run.
    Records written before the ``source`` field existed are simulator
    records.
    """
    return record is not None and record.get("source", "simulator") == "simulator"


def is_failed_record(record: Optional[dict]) -> bool:
    """True for quarantine records left by a job that exhausted retries."""
    return record is not None and record.get("source") == "failed"


def execute_job(job: SweepJob) -> tuple[dict, BenchmarkSimulationResult]:
    """Compile (through the stage cache) and simulate one job.

    A loop-scoped job compiles and simulates just its loop; the returned
    result is a single-loop :class:`BenchmarkSimulationResult` whose loop
    entry is identical to the one a benchmark-level run would produce
    (loops simulate independently).  Stage outputs are served from and
    fed into this process's :func:`artifact_cache`, so repeated jobs
    sharing upstream stages recompile nothing.
    """
    # The span's elapsed *is* the record's ``elapsed_seconds``
    # (measured_span keeps it identical to the old hand-rolled
    # ``perf_counter`` pair whether telemetry records or not).
    with obs.measured_span(
        "sweep.job",
        benchmark=job.benchmark,
        loop=job.loop,
        architecture=job.architecture,
        key=job.key[:12],
    ) as job_span:
        faults.fire("executor.job")
        benchmark = resolve_workload(job.benchmark)
        if job.loop is None:
            loops = benchmark.loops
        else:
            loops = [resolve_loop(job.benchmark, job.loop)]
        cache = artifact_cache()
        compiled = [
            compile_loop(loop, job.config, job.options, cache=cache)
            for loop in loops
        ]
        result = simulate_compiled_loops(
            compiled,
            benchmark.name,
            job.config,
            job.simulation,
            architecture=job.architecture,
            trace_cache=cache,
        )
    return make_record(job, result, job_span.elapsed), result


def _init_worker(
    artifacts_root: Optional[str],
    shard_dir: Optional[str],
    obs_enabled: bool,
    profile_spec: Optional[str] = None,
) -> None:
    """Pool-worker initializer: artifact cache plus telemetry binding.

    The telemetry state is reset explicitly because a *forked* worker
    inherits the parent's undrained span buffer and live metric counters
    (which would be duplicated at merge time), while a *spawned* worker
    re-reads ``REPRO_OBS`` but misses any ``set_enabled`` override -- so
    the effective switch (and the profiling glob with it) travels as an
    initarg.  A forked worker's inherited accumulated profiles are
    dropped for the same duplication reason.
    """
    configure_artifacts(artifacts_root)
    obs.reset()
    obs.set_enabled(obs_enabled)
    obs_metrics.registry().clear()
    obs_events.configure_shard(shard_dir)
    obs_profilehook.reset()
    obs_profilehook.configure(profile_spec)


@dataclass
class JobOutcome:
    """What happened to one job of a sweep run."""

    job: SweepJob
    record: dict
    cached: bool
    result: Optional[BenchmarkSimulationResult] = None
    pruned: bool = False
    failed: bool = False

    @property
    def key(self) -> str:
        """Content hash of the job."""
        return self.job.key


@dataclass(frozen=True)
class PruneOptions:
    """Model-guided pruning knobs of a sweep run.

    ``keep_fraction`` is the fraction of each benchmark's jobs that is
    actually simulated; the rest is recorded from the analytical model
    only.  Already-simulated (stored) jobs always count towards the kept
    set -- their results are free.  ``calibration`` optionally applies
    fitted coefficients before ranking.
    """

    keep_fraction: float = 0.5
    metric: str = "total_cycles"
    calibration: Optional[object] = None

    def __post_init__(self) -> None:
        if not 0.0 < self.keep_fraction <= 1.0:
            raise ValueError("keep_fraction must be in (0, 1]")

    def keep_count(self, total: int) -> int:
        """Jobs of a benchmark that survive pruning."""
        return max(1, math.ceil(total * self.keep_fraction))


@dataclass
class SweepRunSummary:
    """Aggregate outcome of one sweep run.

    ``total``/``executed``/``cache_hits``/``pruned`` always count
    benchmark-level jobs, whatever the granularity, so summaries stay
    comparable across runs.  ``loop_jobs``/``loop_cache_hits`` break the
    executed jobs down further at ``granularity="loop"``, and
    ``peak_parallelism`` is how many jobs the pool could actually run
    side by side -- at loop granularity this exceeds the benchmark count
    whenever multi-loop benchmarks are swept.

    ``stage_hits``/``stage_misses`` count compilation-stage cache lookups
    (per stage name) across every executed job and worker: a miss is a
    stage actually computed, a hit a stage reused from the artifact cache.
    """

    total: int
    executed: int
    cache_hits: int
    workers: int
    elapsed_seconds: float
    outcomes: list[JobOutcome] = field(default_factory=list)
    pruned: int = 0
    granularity: str = "benchmark"
    loop_jobs: int = 0
    loop_cache_hits: int = 0
    peak_parallelism: int = 0
    stage_hits: dict[str, int] = field(default_factory=dict)
    stage_misses: dict[str, int] = field(default_factory=dict)
    #: Jobs that exhausted their retry budget and were quarantined as
    #: ``source="failed"`` records (never counted in ``executed``).
    failed: int = 0
    failed_keys: list[str] = field(default_factory=list)
    #: Supervision counters from the scheduler: attempts requeued after a
    #: failure, worker processes replaced, jobs killed by ``job_timeout``.
    retried: int = 0
    respawned: int = 0
    timeouts: int = 0
    #: Where this run's merged telemetry was written (``<store>/obs``), or
    #: None for storeless or ``REPRO_OBS=off`` runs.
    telemetry_dir: Optional[Path] = None

    def describe(self) -> dict[str, object]:
        """Flat summary for logs and the CLI."""
        info: dict[str, object] = {
            "total_jobs": self.total,
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "pruned": self.pruned,
            "workers": self.workers,
            "granularity": self.granularity,
            "peak_parallelism": self.peak_parallelism,
            "elapsed_seconds": round(self.elapsed_seconds, 3),
        }
        if self.failed:
            info["failed"] = self.failed
        if self.retried or self.respawned or self.timeouts:
            info["retried"] = self.retried
            info["respawned"] = self.respawned
            info["timeouts"] = self.timeouts
        if self.granularity == "loop":
            info["loop_jobs"] = self.loop_jobs
            info["loop_cache_hits"] = self.loop_cache_hits
        if self.stage_hits or self.stage_misses:
            info["stage_cache_hits"] = sum(self.stage_hits.values())
            info["stage_cache_misses"] = sum(self.stage_misses.values())
        return info

    def stage_cache_line(self) -> str:
        """One-line per-stage ``hits/requests`` rendering for the CLI."""
        stages = sorted(set(self.stage_hits) | set(self.stage_misses))
        parts = []
        for stage in ("unroll", "profile", "latency", "schedule", "trace"):
            if stage in stages:
                stages.remove(stage)
                hits = self.stage_hits.get(stage, 0)
                total = hits + self.stage_misses.get(stage, 0)
                parts.append(f"{stage} {hits}/{total}")
        for stage in stages:  # unknown stage names, if any, go last
            hits = self.stage_hits.get(stage, 0)
            total = hits + self.stage_misses.get(stage, 0)
            parts.append(f"{stage} {hits}/{total}")
        return "stage cache: " + ", ".join(parts) + " (hits/requests)"

    def record_stage_stats(self, stats: Optional[dict]) -> None:
        """Fold one job's per-stage hit/miss counters into the summary."""
        if not stats:
            return
        for counter, totals in (
            (stats.get("hits"), self.stage_hits),
            (stats.get("misses"), self.stage_misses),
        ):
            for stage, count in (counter or {}).items():
                totals[stage] = totals.get(stage, 0) + count


def _dedupe(jobs: Iterable[SweepJob]) -> list[SweepJob]:
    seen: set[str] = set()
    unique: list[SweepJob] = []
    for job in jobs:
        if job.key not in seen:
            seen.add(job.key)
            unique.append(job)
    return unique


def predict_job_with_calibration(
    job: SweepJob,
    prune: Optional[PruneOptions],
    artifacts: Optional[ArtifactCache] = None,
):
    """Predict one job, applying the prune options' calibration if set.

    ``artifacts`` lets the model reuse already-compiled unroll artifacts
    (the pipeline's real candidate factors) instead of re-deriving the
    candidate set analytically; lookups go through :meth:`ArtifactCache.peek`
    so read-only predictions never skew the run's stage hit counters.
    """
    from repro.model.predict import predict_job

    predicted = predict_job(job, artifacts=artifacts)
    if prune is not None and prune.calibration is not None:
        predicted = prune.calibration.apply(predicted)
    return predicted


def _prune_pending(
    unique: Sequence[SweepJob],
    pending: Sequence[SweepJob],
    prune: PruneOptions,
    artifacts: Optional[ArtifactCache] = None,
) -> tuple[list[SweepJob], list[SweepJob], dict[str, tuple[object, float]]]:
    """Split pending jobs into (simulate, model-only) per benchmark.

    Every benchmark keeps ``keep_count`` of its grid points; stored
    simulator results occupy kept slots first (they cost nothing), and the
    best-predicted pending jobs fill the rest.
    """
    pending_keys = {job.key for job in pending}
    by_benchmark: dict[str, list[SweepJob]] = {}
    for job in unique:
        by_benchmark.setdefault(job.benchmark, []).append(job)

    predictions: dict[str, tuple[object, float]] = {}
    kept: set[str] = set()
    for group in by_benchmark.values():
        budget = prune.keep_count(len(group))
        budget -= sum(1 for job in group if job.key not in pending_keys)
        if budget <= 0:
            # Stored simulator results already fill the keep budget; no
            # ranking (and therefore no prediction) is needed to decide
            # that every pending job of this benchmark is pruned.
            continue
        scored = []
        for job in group:
            if job.key not in pending_keys:
                continue
            with obs.measured_span(
                "model.predict",
                benchmark=job.benchmark,
                architecture=job.architecture,
            ) as predict_span:
                predicted = predict_job_with_calibration(job, prune, artifacts)
            predictions[job.key] = (predicted, predict_span.elapsed)
            metrics = predicted.describe()
            score = metrics.get(prune.metric, predicted.total_cycles)
            scored.append((score, job.key))
        scored.sort()
        kept.update(key for _, key in scored[:budget])

    simulate = [job for job in pending if job.key in kept]
    model_only = [job for job in pending if job.key not in kept]
    return simulate, model_only, predictions


def _resolve_artifacts_root(
    artifacts: Union[ArtifactStore, Path, str, None],
    store: Optional[ResultStore],
) -> Optional[Path]:
    """Where a run's stage artifacts live on disk (None = memory only).

    Defaults to ``<result store>/artifacts`` so every run against one
    store -- whatever its worker count, granularity or spec -- shares one
    artifact store.
    """
    if isinstance(artifacts, ArtifactStore):
        return artifacts.root
    if artifacts is not None:
        return Path(artifacts)
    if store is not None:
        return store.root / ARTIFACTS_DIRNAME
    return None


def run_jobs(
    jobs: Sequence[SweepJob],
    store: Optional[ResultStore] = None,
    workers: int = 1,
    force: bool = False,
    save_payloads: bool = True,
    progress: Optional[Callable[[int, int, JobOutcome], None]] = None,
    prune: Optional[PruneOptions] = None,
    granularity: str = "benchmark",
    artifacts: Union[ArtifactStore, Path, str, None] = None,
    max_retries: int = 2,
    job_timeout: Optional[float] = None,
    max_failures: Optional[int] = None,
    fail_fast: bool = False,
    keep_failed: bool = False,
) -> SweepRunSummary:
    """Execute jobs, skipping stored results, optionally in parallel.

    Duplicate jobs (same content hash) are executed once.  With a store,
    finished results are persisted as JSON records plus (optionally) full
    pickle payloads; without one, everything is computed in memory.  Only
    *simulator* records count as cache hits -- a model-only record left by
    a pruned run is recomputed (and overwritten) once the job is actually
    simulated, and a ``source="failed"`` quarantine record is retried
    (unless ``keep_failed`` leaves quarantined keys alone).

    A job whose attempts all fail -- worker death, timeout, worker-side
    exception -- is retried ``max_retries`` times (with backoff) and then
    *quarantined*: a failed record is saved through the normal store path
    and the sweep continues, so a run completes with partial results by
    default.  ``fail_fast`` aborts on the first quarantined job,
    ``max_failures`` after more than N of them; either way the abort
    raises :class:`~repro.sweep.scheduler.WorkerFailure` *after* the
    failed records are saved.  ``job_timeout`` bounds one attempt's
    wall-clock seconds (multi-worker runs only: the in-process path has
    no supervisor to kill a hung attempt).

    With ``granularity="loop"`` every pending benchmark-level job is split
    into per-loop jobs that are scheduled across the pool individually and
    reassembled into the benchmark-level record afterwards; cache checks,
    pruning, outcomes and the returned summary stay at benchmark level, so
    callers observe the same results either way (only the load balance and
    the extra loop-level store records differ).

    With ``prune``, the analytical model ranks each benchmark's jobs and
    only the configured fraction is simulated; pruned jobs are recorded
    from the model alone.  Combining ``prune`` with ``force`` re-ranks the
    whole grid from scratch: previously simulated points that fall outside
    the keep budget are deliberately replaced by model-only records (their
    stale payloads are removed with them).

    ``artifacts`` overrides where compilation-stage artifacts persist;
    by default they live under the result store (memory-only without one).
    """
    if granularity not in ("benchmark", "loop"):
        raise ValueError(
            f"unknown granularity {granularity!r}; use 'benchmark' or 'loop'"
        )
    unique = _dedupe(jobs)
    # The root span's elapsed is the summary's ``elapsed_seconds`` (it
    # replaces the old hand-rolled ``perf_counter`` pair); every span the
    # run opens -- including pool workers' job spans, re-parented at merge
    # time -- hangs off its id in the exported trace.
    run_root = obs.measured_span(
        "sweep.run", jobs=len(unique), granularity=granularity, workers=workers
    )
    telemetry = store is not None and obs.enabled()
    if telemetry:
        # Spans buffered by earlier in-process activity (a previous run
        # against another store, ad-hoc compiles) belong to no shard and
        # would otherwise merge -- misparented -- into this run's trace.
        obs.take_events()
    shard_dir = obs_events.obs_dir(store.root) if telemetry else None
    with run_root:
        artifacts_root = _resolve_artifacts_root(artifacts, store)
        parent_artifacts = (
            ArtifactCache(ArtifactStore(artifacts_root))
            if artifacts_root is not None
            else artifact_cache()
        )

        outcomes: list[JobOutcome] = []
        pending: list[SweepJob] = []
        kept_failed = 0
        for job in unique:
            record = (
                None if (force or store is None) else store.load_record(job.key)
            )
            if is_simulated_record(record):
                outcomes.append(JobOutcome(job=job, record=record, cached=True))
            elif keep_failed and is_failed_record(record):
                # The caller asked not to retry quarantined keys; their
                # failed records ride along as cached outcomes.
                outcomes.append(
                    JobOutcome(job=job, record=record, cached=True, failed=True)
                )
                kept_failed += 1
            else:
                pending.append(job)

        pruned_jobs: list[SweepJob] = []
        predictions: dict[str, tuple[object, float]] = {}
        if prune is not None and pending:
            pending, pruned_jobs, predictions = _prune_pending(
                unique, pending, prune, parent_artifacts
            )

        done = len(outcomes)
        total = len(unique)
        if progress is not None:
            for index, outcome in enumerate(outcomes, start=1):
                progress(index, total, outcome)

        def finish(outcome: JobOutcome) -> None:
            nonlocal done
            outcomes.append(outcome)
            done += 1
            if progress is not None:
                progress(done, total, outcome)

        for job in pruned_jobs:
            entry = predictions.get(job.key)
            if entry is None:
                # The benchmark's keep budget was already filled by stored
                # simulator results, so this job was pruned without ranking.
                # Raw predictions are deterministic, so an existing *raw*
                # model record is reusable as-is; calibrated records are
                # tied to the coefficients that produced them and are never
                # reused.
                if (
                    store is not None
                    and prune is not None
                    and prune.calibration is None
                ):
                    existing = store.load_record(job.key)
                    if (
                        existing is not None
                        and existing.get("source") == "model"
                        and not existing.get("calibrated", False)
                    ):
                        finish(
                            JobOutcome(
                                job=job, record=existing, cached=True, pruned=True
                            )
                        )
                        continue
                with obs.measured_span(
                    "model.predict",
                    benchmark=job.benchmark,
                    architecture=job.architecture,
                ) as predict_span:
                    predicted = predict_job_with_calibration(job, prune)
                entry = (predicted, predict_span.elapsed)
            predicted, elapsed = entry
            record = make_model_record(
                job,
                predicted,
                elapsed,
                calibrated=prune is not None and prune.calibration is not None,
            )
            if store is not None:
                store.save(job.key, record)
                # A force re-run may prune a previously simulated point;
                # drop the stale simulator payload so it cannot outlive its
                # record.
                store.discard_payload(job.key)
            finish(JobOutcome(job=job, record=record, cached=False, pruned=True))

        def finish_executed(
            job: SweepJob, record: dict, result: BenchmarkSimulationResult
        ) -> None:
            if store is not None:
                store.save(
                    job.key, record, payload=result if save_payloads else None
                )
            finish(
                JobOutcome(job=job, record=record, cached=False, result=result)
            )

        summary = SweepRunSummary(
            total=total,
            executed=len(pending),
            cache_hits=total - len(pending) - len(pruned_jobs) - kept_failed,
            workers=1,
            elapsed_seconds=0.0,
            outcomes=outcomes,
            pruned=len(pruned_jobs),
            granularity=granularity,
            failed=kept_failed,
            failed_keys=[
                outcome.key for outcome in outcomes if outcome.failed
            ],
        )

        # fail_fast is "abort after 0 tolerated failures"; max_failures
        # tolerates N quarantined jobs before aborting; None never aborts.
        failure_budget = 0 if fail_fast else max_failures
        failure_count = 0

        def finish_failed(job: SweepJob, completion: JobCompletion) -> bool:
            nonlocal failure_count
            record = make_failed_record(
                job, completion.error, completion.attempts, completion.traceback
            )
            if store is not None:
                store.save(job.key, record)
                # A retried key may hold a payload from an earlier
                # successful run; it must not outlive its record.
                store.discard_payload(job.key)
            summary.failed += 1
            summary.failed_keys.append(job.key)
            summary.executed -= 1
            finish(JobOutcome(job=job, record=record, cached=False, failed=True))
            failure_count += 1
            return failure_budget is None or failure_count <= failure_budget

        loop_stats = {"jobs": 0, "cache_hits": 0}
        if granularity == "loop":
            run_units, supervision = _execute_loop_granularity(
                pending,
                store,
                workers,
                force,
                save_payloads,
                finish_executed,
                loop_stats,
                artifacts_root,
                summary.record_stage_stats,
                shard_dir,
                max_retries=max_retries,
                job_timeout=job_timeout,
                on_parent_failure=finish_failed,
            )
        else:
            run_units = pending
            if telemetry and pending:
                obs_events.write_run_header(
                    store.root,
                    {
                        "run_id": run_root.id,
                        "pid": os.getpid(),
                        "total_jobs": total,
                        "total_units": len(pending),
                        "workers": min(max(1, workers), len(pending)),
                        "granularity": granularity,
                    },
                )
            supervision = _dispatch(
                pending,
                workers,
                finish_executed,
                artifacts_root,
                summary.record_stage_stats,
                shard_dir,
                max_retries=max_retries,
                job_timeout=job_timeout,
                on_failure=finish_failed,
            )
        summary.retried = supervision["retried"]
        summary.respawned = supervision["respawned"]
        summary.timeouts = supervision["timeouts"]

        summary.workers = max(1, min(workers, len(run_units)))
        summary.loop_jobs = loop_stats["jobs"]
        summary.loop_cache_hits = loop_stats["cache_hits"]
        summary.peak_parallelism = (
            min(max(1, workers), len(run_units)) if run_units else 0
        )

    summary.elapsed_seconds = run_root.elapsed
    if telemetry:
        spec_hash = hashlib.sha256(
            "\n".join(sorted(job.key for job in unique)).encode("utf-8")
        ).hexdigest()
        summary.telemetry_dir = obs_events.finalize_run(
            store.root,
            run_id=run_root.id,
            manifest_extra={
                "spec_hash": spec_hash,
                "benchmarks": sorted({job.benchmark for job in unique}),
                "machine_grid": sorted({job.architecture for job in unique}),
                "granularity": granularity,
                "sim_kernel": kernels.active_backend(),
                "workers": summary.workers,
                "run": summary.describe(),
                "stage_hits": dict(summary.stage_hits),
                "stage_misses": dict(summary.stage_misses),
            },
        )
    return summary


def _dispatch(
    jobs: Sequence[SweepJob],
    workers: int,
    handle: Callable[[SweepJob, dict, BenchmarkSimulationResult], None],
    artifacts_root: Optional[Path] = None,
    on_stats: Optional[Callable[[dict], None]] = None,
    shard_dir: Optional[Path] = None,
    max_retries: int = 2,
    job_timeout: Optional[float] = None,
    on_failure: Optional[Callable[[SweepJob, JobCompletion], bool]] = None,
) -> dict[str, int]:
    """Execute jobs in-process or across workers, streaming completions.

    ``handle`` is called in the parent process as each job finishes
    (completion order under multiple workers, submission order
    in-process).  The multi-worker path runs on a
    :class:`~repro.sweep.scheduler.WorkStealingScheduler` -- one
    benchmark's jobs stay affine to one worker's warm caches, idle
    workers steal, the pump supervises (respawn, ``job_timeout``,
    retries) -- torn down when the call returns; the long-lived service
    keeps its own scheduler alive across submissions instead of calling
    this.  The in-process path retries a failed attempt with the same
    backoff, but catches only ``Exception``: it cannot survive a crash
    or kill a hang of its own process, and ``job_timeout`` is therefore
    ignored there.

    A job that exhausts ``max_retries`` goes to ``on_failure(job,
    completion)``; returning True continues, False (or no handler)
    raises :class:`~repro.sweep.scheduler.WorkerFailure`.

    With ``artifacts_root`` every executing process --
    scheduler workers via their initializer, the in-process path for the
    duration of the call -- binds its stage cache to that store;
    ``on_stats`` receives each finished job's per-stage hit/miss
    counters.  With ``shard_dir`` every executing process flushes its
    telemetry to a per-pid JSONL shard there after each job, which is
    what gives ``repro-sweep watch`` live progress whatever the worker
    count.

    Returns the supervision counters of the run
    (``retried``/``respawned``/``timeouts``).
    """
    counters = {"retried": 0, "respawned": 0, "timeouts": 0}
    pool_size = min(workers, len(jobs))
    if pool_size > 1:
        scheduler = WorkStealingScheduler(
            pool_size,
            artifacts_root=artifacts_root,
            shard_dir=shard_dir,
            max_retries=max_retries,
            job_timeout=job_timeout,
        )
        try:
            scheduler.run_all(jobs, handle, on_stats, on_failure=on_failure)
        finally:
            lifetime = scheduler.counters()
            for name in counters:
                counters[name] = lifetime[name]
            scheduler.close()
    else:
        global _ARTIFACTS
        previous = _ARTIFACTS
        if artifacts_root is not None:
            configure_artifacts(artifacts_root)
        else:
            # Reusing the process-global cache: drop counters left behind
            # by direct execute_job() calls so this run's summary only
            # counts its own stage lookups.
            artifact_cache().take_stats()
        if shard_dir is not None:
            obs_events.configure_shard(shard_dir)
        try:
            for job in jobs:
                attempts = 0
                while True:
                    attempts += 1
                    try:
                        record, result = execute_job(job)
                    except Exception as error:  # noqa: BLE001 - retried/quarantined
                        if attempts <= max_retries:
                            counters["retried"] += 1
                            time.sleep(retry_delay(job.key, attempts))
                            continue
                        completion = JobCompletion(
                            job.key,
                            None,
                            None,
                            None,
                            f"{type(error).__name__}: {error}",
                            attempts,
                            traceback_module.format_exc(),
                        )
                        if on_failure is not None and on_failure(job, completion):
                            break
                        raise WorkerFailure(
                            f"job {job.key[:12]} failed after {attempts} "
                            f"attempt(s): {completion.error}"
                        ) from error
                    if on_stats is not None:
                        on_stats(artifact_cache().take_stats())
                    handle(job, record, result)
                    if shard_dir is not None:
                        obs_events.flush_shard()
                    break
        finally:
            if artifacts_root is not None:
                _ARTIFACTS = previous
            if shard_dir is not None:
                obs_events.configure_shard(None)
    return counters


def _execute_loop_granularity(
    pending: Sequence[SweepJob],
    store: Optional[ResultStore],
    workers: int,
    force: bool,
    save_payloads: bool,
    finish_executed: Callable[[SweepJob, dict, BenchmarkSimulationResult], None],
    loop_stats: dict,
    artifacts_root: Optional[Path] = None,
    on_stats: Optional[Callable[[dict], None]] = None,
    shard_dir: Optional[Path] = None,
    max_retries: int = 2,
    job_timeout: Optional[float] = None,
    on_parent_failure: Optional[Callable[[SweepJob, JobCompletion], bool]] = None,
) -> tuple[list[SweepJob], dict[str, int]]:
    """Fan the pending benchmark jobs out as per-loop jobs and reassemble.

    Each benchmark job expands into one job per loop (benchmark order);
    loop jobs already stored *with a payload* are reused, the rest run
    across the pool, and as soon as the last loop of a benchmark finishes
    its per-loop results are merged -- exactly, since loops simulate
    independently -- into the benchmark-level record ``finish_executed``
    persists.  Loop-level records and payloads are stored as well, so an
    interrupted run resumes loop by loop.

    A loop job that exhausts its retries is quarantined at loop level
    (its own failed record) and dooms its parent benchmark jobs: once
    all of a doomed parent's loops finish, the parent goes to
    ``on_parent_failure`` instead of aggregating.

    Returns the loop jobs actually executed (the run's schedulable
    units) and the dispatch's supervision counters.
    """
    expansions: dict[str, list[SweepJob]] = {
        job.key: expand_loop_jobs(job) for job in pending
    }
    loop_stats["jobs"] = sum(len(parts) for parts in expansions.values())

    loop_results: dict[str, tuple[dict, BenchmarkSimulationResult]] = {}
    served_from_store: set[str] = set()
    to_run: list[SweepJob] = []
    seen: set[str] = set()
    for parts in expansions.values():
        for loop_job in parts:
            if loop_job.key in seen:
                continue
            seen.add(loop_job.key)
            if not force and store is not None:
                record = store.load_record(loop_job.key)
                if is_simulated_record(record):
                    payload = store.load_payload(loop_job.key)
                    if payload is not None:
                        loop_results[loop_job.key] = (record, payload)
                        served_from_store.add(loop_job.key)
                        loop_stats["cache_hits"] += 1
                        continue
            to_run.append(loop_job)

    parents: dict[str, SweepJob] = {job.key: job for job in pending}
    remaining: dict[str, int] = {
        job.key: sum(
            1 for part in expansions[job.key] if part.key not in loop_results
        )
        for job in pending
    }
    parents_of: dict[str, list[str]] = {}
    for parent_key, parts in expansions.items():
        for part in parts:
            parents_of.setdefault(part.key, []).append(parent_key)

    # parent key -> completions of its failed loop jobs.
    failed_loops: dict[str, list[JobCompletion]] = {}

    def aggregate(parent_key: str) -> None:
        parent = parents[parent_key]
        parts = [loop_results[part.key] for part in expansions[parent_key]]
        merged = merge_benchmark_results(
            [result for _, result in parts], architecture=parent.architecture
        )
        elapsed = sum(
            float(record.get("elapsed_seconds", 0.0)) for record, _ in parts
        )
        # If any part was replayed from the store, the summed elapsed mixes
        # this run's timings with past runs' -- mark the record so report
        # percentiles can keep fresh and replayed timings apart.
        timing = (
            "replayed"
            if any(
                part.key in served_from_store for part in expansions[parent_key]
            )
            else "measured"
        )
        finish_executed(
            parent,
            make_record(parent, merged, elapsed, source_timing=timing),
            merged,
        )

    def finalize(parent_key: str) -> bool:
        """Aggregate a finished parent, or hand a doomed one to the
        failure callback; returns whether the sweep continues."""
        completions = failed_loops.pop(parent_key, None)
        if completions is None:
            aggregate(parent_key)
            return True
        last = completions[-1]
        rollup = JobCompletion(
            key=parent_key,
            record=None,
            result=None,
            stats=None,
            error=(
                f"{len(completions)} loop job(s) failed; last: {last.error}"
            ),
            attempts=max(c.attempts for c in completions),
            traceback=last.traceback,
        )
        if on_parent_failure is None:
            raise WorkerFailure(
                f"job {parent_key[:12]} failed: {rollup.error}"
            )
        return on_parent_failure(parents[parent_key], rollup)

    def finish_loop(loop_job: SweepJob, record: dict, result) -> None:
        if store is not None:
            store.save(
                loop_job.key, record, payload=result if save_payloads else None
            )
        loop_results[loop_job.key] = (record, result)
        for parent_key in parents_of.get(loop_job.key, ()):
            remaining[parent_key] -= 1
            if remaining[parent_key] == 0:
                finalize(parent_key)

    def fail_loop(loop_job: SweepJob, completion: JobCompletion) -> bool:
        if store is not None:
            store.save(
                loop_job.key,
                make_failed_record(
                    loop_job,
                    completion.error,
                    completion.attempts,
                    completion.traceback,
                ),
            )
            store.discard_payload(loop_job.key)
        keep_going = True
        for parent_key in parents_of.get(loop_job.key, ()):
            failed_loops.setdefault(parent_key, []).append(completion)
            remaining[parent_key] -= 1
            if remaining[parent_key] == 0 and not finalize(parent_key):
                keep_going = False
        return keep_going

    # Benchmarks fully served from stored loop results aggregate up front.
    for parent_key, count in list(remaining.items()):
        if count == 0:
            finalize(parent_key)

    if shard_dir is not None and store is not None and to_run:
        obs_events.write_run_header(
            store.root,
            {
                "run_id": obs.current_span_id(),
                "pid": os.getpid(),
                "total_jobs": len(pending),
                "total_units": len(to_run),
                "workers": min(max(1, workers), len(to_run)),
                "granularity": "loop",
            },
        )
    supervision = _dispatch(
        to_run,
        workers,
        finish_loop,
        artifacts_root,
        on_stats,
        shard_dir,
        max_retries=max_retries,
        job_timeout=job_timeout,
        on_failure=fail_loop,
    )
    return to_run, supervision


def run_sweep(
    spec: SweepSpec,
    store: Optional[ResultStore] = None,
    workers: int = 1,
    force: bool = False,
    save_payloads: bool = True,
    progress: Optional[Callable[[int, int, JobOutcome], None]] = None,
    prune: Optional[PruneOptions] = None,
    granularity: str = "benchmark",
    artifacts: Union[ArtifactStore, Path, str, None] = None,
    max_retries: int = 2,
    job_timeout: Optional[float] = None,
    max_failures: Optional[int] = None,
    fail_fast: bool = False,
    keep_failed: bool = False,
) -> SweepRunSummary:
    """Expand a spec and execute the resulting grid."""
    return run_jobs(
        spec.expand(),
        store=store,
        workers=workers,
        force=force,
        save_payloads=save_payloads,
        progress=progress,
        prune=prune,
        granularity=granularity,
        artifacts=artifacts,
        max_retries=max_retries,
        job_timeout=job_timeout,
        max_failures=max_failures,
        fail_fast=fail_fast,
        keep_failed=keep_failed,
    )

"""End-to-end smoke tests for the ``examples/`` scripts.

The examples double as user-facing documentation; these tests run them the
way a reader would (a fresh subprocess, ``PYTHONPATH=src``) so a refactor
that breaks their imports or CLI flags fails the suite instead of the
first user.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES = REPO_ROOT / "examples"


def _run_example(script: str, *args: str, cwd: Path) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        cwd=cwd,
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )


def test_design_space_sweep_example_end_to_end(tmp_path):
    results_dir = tmp_path / "sweep-results"
    proc = _run_example(
        "design_space_sweep.py",
        "--workers",
        "2",
        "--results-dir",
        str(results_dir),
        cwd=tmp_path,
    )
    assert proc.returncode == 0, proc.stderr

    # The 8-point grid must have been executed and persisted (records land
    # in key-prefix shard directories).
    assert "8 points: 8 executed" in proc.stdout
    records = sorted((results_dir / "records").glob("*/*.json"))
    assert len(records) == 8
    for path in records:
        record = json.loads(path.read_text(encoding="utf-8"))
        assert record["source"] == "simulator"
        assert record["metrics"]["total_cycles"] > 0
    # The rendered report shows every architecture of the grid.
    assert "ipbc/c4i8" in proc.stdout
    assert "ipbc+ab16/c2i4" in proc.stdout

    # A second run completes entirely from the store.
    proc = _run_example(
        "design_space_sweep.py",
        "--workers",
        "2",
        "--results-dir",
        str(results_dir),
        cwd=tmp_path,
    )
    assert proc.returncode == 0, proc.stderr
    assert "8 points: 0 executed" in proc.stdout


def test_quickstart_example(tmp_path):
    proc = _run_example("quickstart.py", cwd=tmp_path)
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip()

"""The vectorised replay backend (numpy bulk passes).

Three kernels live here, all replaying the same flat trace arrays the
scalar loops walk (see :mod:`repro.kernels` for the backend contract):

* :func:`replay_lru` -- lockstep per-set LRU replay.  Accesses are
  grouped by set (a stable sort preserves each set's access order),
  padded into a ``sets x depth`` matrix, and the LRU state of *every*
  set advances one access per step: tag match, way shift and fill are
  ``(sets, ways)`` array operations, so the Python-level loop runs
  ``max accesses per set`` times instead of once per access.  A repeat
  of the immediately preceding key in the same set is a guaranteed hit
  that leaves the state unchanged, so such runs are collapsed first --
  this defeats the hot-set worst case (e.g. an accumulator re-touched
  every iteration) that would otherwise degrade lockstep to scalar.
* :func:`profile_replay` -- the profiler's set-associative replay as one
  :func:`replay_lru` call over the transposed block arrays.
* :func:`sim_replay` -- the simulator's event loop.  The periodic event
  template fixes the global access order independent of stall cycles,
  so event expansion, address/home/block/span derivation and the
  consumer-cover test are always bulk passes.  What happens next depends
  on how much the memory model couples cycles to outcomes:

  - **all-local interleaved** and **unified** replays are outcome-wise
    cycle-free: classifications come from :func:`replay_lru`, stalls are
    a prefix sum, and the only cycle-coupled resources (next-level ports,
    unified cache ports) are FIFO servers -- assume zero waits, compute
    final cycles, then *verify* the zero-wait hypothesis
    (``cycle[k] >= cycle[k - ports] + 1``); on failure the kernel
    declines and the scalar oracle runs.
  - **interleaved with remote accesses** is irreducibly sequenced (the
    combining window ``pending_ready > cycle`` feeds stalls back into
    classification), so a *thin sequenced pass* runs instead: the same
    access-by-access semantics as the scalar engine, but over the
    precomputed flat arrays with the model's wrapper layers (result
    dataclasses, per-access counter dispatch) folded into batched
    counters.
  - **coherent** caches couple state across stores; the kernel declines.

Every kernel either produces byte-identical state/results or returns
``None`` -- partial work never leaks into the model.
"""

from __future__ import annotations

import os
from array import array
from heapq import heapify, heappop, heappush
from typing import Optional, Sequence

import numpy as np

from repro.memory.classify import AccessType
from repro.memory.interleaved import WordInterleavedDataCache
from repro.memory.unified import UnifiedDataCache

#: Way sentinel for empty slots; block indices are non-negative, so this
#: can never collide with a real key.
_EMPTY = -(2**62)

#: Lockstep depth cutoff: beyond this many accesses to one set (after
#: duplicate collapse) the per-step overhead outweighs the batching win.
#: Default; override per process with :data:`MAX_DEPTH_ENV`.
_MAX_DEPTH = 512

#: Estimated-work ratio cutoff: decline when the padded matrix implies
#: more than this many array cells per real access.  Default; override
#: per process with :data:`WORK_RATIO_ENV`.
_MAX_WORK_RATIO = 48

#: Environment overrides for the two lockstep-decline cutoffs, so the
#: crossover can be re-tuned on a given machine (or forced low/high in
#: experiments) without editing code.  Read on every replay, so tests
#: and sweeps can flip them per call; invalid or non-positive values
#: fall back to the defaults.
MAX_DEPTH_ENV = "REPRO_SIM_KERNEL_MAX_DEPTH"
WORK_RATIO_ENV = "REPRO_SIM_KERNEL_WORK_RATIO"


def _env_cutoff(name: str, default: int) -> int:
    text = os.environ.get(name)
    if not text:
        return default
    try:
        value = int(text)
    except ValueError:
        return default
    return value if value > 0 else default


def lockstep_cutoffs() -> tuple[int, int]:
    """The effective ``(max_depth, max_work_ratio)`` decline cutoffs."""
    return (
        _env_cutoff(MAX_DEPTH_ENV, _MAX_DEPTH),
        _env_cutoff(WORK_RATIO_ENV, _MAX_WORK_RATIO),
    )

_STALL_FIELDS = {
    1: "remote_hit",
    2: "local_miss",
    3: "remote_miss",
    4: "combined",
}

_CLASSES = (
    AccessType.LOCAL_HIT,
    AccessType.REMOTE_HIT,
    AccessType.LOCAL_MISS,
    AccessType.REMOTE_MISS,
    AccessType.COMBINED,
)


# ----------------------------------------------------------------------
# Lockstep LRU
# ----------------------------------------------------------------------
def replay_lru(
    set_ids: np.ndarray,
    keys: np.ndarray,
    associativity: int,
    initial_ways: Optional[dict[int, list[int]]] = None,
    collect_state: bool = True,
):
    """Replay ``keys`` (lookup, insert on miss) against per-set LRU state.

    ``set_ids`` and ``keys`` are parallel int arrays in access order;
    sets are independent, so only the per-set subsequences' orders
    matter -- which a stable grouping sort preserves.  ``initial_ways``
    optionally seeds touched sets (LRU-to-MRU key lists, the
    ``SetAssociativeStore.export_ways`` shape).

    Returns ``(hits, final_ways, evictions)`` -- the per-access hit
    flags, plus per-touched-set final contents and eviction counts keyed
    by set id -- or ``None`` when the access pattern is too deep for
    lockstep to pay off (the caller falls back to the scalar path).
    With ``collect_state=False`` (callers that only need the hit flags,
    like the profiler) the last two are ``None`` and the per-step
    eviction accounting is skipped.
    """
    total = int(keys.shape[0])
    if total == 0:
        return np.zeros(0, dtype=bool), {}, {}
    if keys.min() < 0:
        return None

    keys = keys.astype(np.int64, copy=False)
    order = np.argsort(set_ids, kind="stable")
    grouped_keys = keys[order]
    grouped_sets = set_ids[order]

    # Collapse immediate repeats within a set: the preceding access left
    # the key most-recently-used, so a repeat hits and changes nothing.
    dup = np.zeros(total, dtype=bool)
    if total > 1:
        dup[1:] = (grouped_sets[1:] == grouped_sets[:-1]) & (
            grouped_keys[1:] == grouped_keys[:-1]
        )
    keep = ~dup
    kept_keys = grouped_keys[keep]
    kept_pos = order[keep]
    kept_sets = grouped_sets[keep]

    unique_sets, counts = np.unique(kept_sets, return_counts=True)
    runs = int(unique_sets.shape[0])
    depth = int(counts.max())
    kept = int(kept_keys.shape[0])
    max_depth, max_work_ratio = lockstep_cutoffs()
    if depth > max_depth or depth * runs * associativity > max_work_ratio * max(
        kept, 1
    ):
        return None

    # Deep-sets-first row order: at step ``t`` exactly the first
    # ``(counts > t).sum()`` rows are live, so each step slices a prefix
    # instead of boolean-masking the whole matrix.
    row_order = np.argsort(-counts, kind="stable")
    counts_desc = counts[row_order]
    sets_desc = unique_sets[row_order]

    # Ragged fill: the keys of each run packed into one matrix row, so a
    # lockstep step touches only contiguous column slices (no gathers).
    run_of = np.repeat(np.arange(runs), counts)
    offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
    within = np.arange(kept) - offsets[run_of]
    row_of = np.empty(runs, dtype=np.int64)
    row_of[row_order] = np.arange(runs)
    rows = row_of[run_of]
    key_matrix = np.full((runs, depth), _EMPTY, dtype=np.int64)
    key_matrix[rows, within] = kept_keys
    hit_matrix = np.zeros((runs, depth), dtype=bool)

    tags = np.full((runs, associativity), _EMPTY, dtype=np.int64)
    if initial_ways:
        for row, set_id in enumerate(sets_desc.tolist()):
            ways = initial_ways.get(set_id)
            if ways:
                tags[row, associativity - len(ways):] = ways

    # Rows are live while they still have accesses; counts_desc is
    # descending, so live(step) = #(counts_desc > step), precomputed for
    # every step with one searchsorted over the ascending view.
    lives = runs - np.searchsorted(
        counts_desc[::-1], np.arange(depth), side="right"
    )
    evictions_rows = np.zeros(runs, dtype=np.int64)
    if associativity == 2:
        # The common geometry gets a two-column fast path: an MRU hit
        # changes nothing; an LRU hit or a miss shifts the MRU way down
        # and installs the key as MRU.
        lru = tags[:, 0]
        mru = tags[:, 1]
        for step in range(depth):
            live = int(lives[step])
            step_keys = key_matrix[:live, step]
            lru_live = lru[:live]
            mru_live = mru[:live]
            mru_hit = mru_live == step_keys
            hit = (lru_live == step_keys) | mru_hit
            hit_matrix[:live, step] = hit
            if collect_state:
                evictions_rows[:live] += ~hit & (lru_live != _EMPTY)
            lru[:live] = np.where(mru_hit, lru_live, mru_live)
            mru[:live] = step_keys
    else:
        columns = np.arange(associativity - 1)
        for step in range(depth):
            live = int(lives[step])
            step_keys = key_matrix[:live, step]
            live_tags = tags[:live]
            matches = live_tags == step_keys[:, None]
            hit = matches.any(axis=1)
            hit_matrix[:live, step] = hit
            # First (only) match position for hits; misses shift the
            # whole row -- i.e. evict the LRU way at position 0.
            position = np.where(hit, matches.argmax(axis=1), 0)
            if collect_state:
                evictions_rows[:live] += (~hit) & (live_tags[:, 0] != _EMPTY)
            if associativity > 1:
                shift = columns[None, :] >= position[:, None]
                tags[:live, :-1] = np.where(
                    shift, live_tags[:, 1:], live_tags[:, :-1]
                )
            tags[:live, associativity - 1] = step_keys

    hits = np.zeros(total, dtype=bool)
    hits[kept_pos] = hit_matrix[rows, within]
    hits[order[dup]] = True
    if not collect_state:
        return hits, None, None

    final_ways: dict[int, list[int]] = {}
    evictions: dict[int, int] = {}
    tag_rows = tags.tolist()
    eviction_rows = evictions_rows.tolist()
    for row, set_id in enumerate(sets_desc.tolist()):
        final_ways[set_id] = [key for key in tag_rows[row] if key != _EMPTY]
        evictions[set_id] = eviction_rows[row]
    return hits, final_ways, evictions


# ----------------------------------------------------------------------
# Profiler replay
# ----------------------------------------------------------------------
def profile_replay(
    blocks: Sequence, homes: Optional[Sequence], num_sets: int,
    associativity: int, unified: bool,
) -> Optional[list[int]]:
    """Per-operation hit counts of the profiler's cache replay.

    ``blocks``/``homes`` are the per-operation trace arrays
    (:meth:`LoopTrace.blocks` / :meth:`LoopTrace.home_clusters`); the
    replay order is iteration-major, operation-minor -- exactly the
    transposed walk of the scalar profiler.  Unified geometries replay
    one store; distributed ones key sets by ``(home cluster, set)``.
    """
    ops = len(blocks)
    if ops == 0:
        return []
    block_matrix = np.stack(
        [np.frombuffer(column, dtype=np.int64) for column in blocks]
    )
    flat_blocks = block_matrix.T.reshape(-1)
    if unified:
        set_ids = flat_blocks % num_sets
    else:
        home_matrix = np.stack(
            [np.frombuffer(column, dtype=np.int16) for column in homes]
        ).astype(np.int64)
        set_ids = home_matrix.T.reshape(-1) * num_sets + flat_blocks % num_sets
    outcome = replay_lru(set_ids, flat_blocks, associativity, collect_state=False)
    if outcome is None:
        return None
    hits, _, _ = outcome
    per_op = hits.reshape(-1, ops).sum(axis=0)
    return [int(count) for count in per_op]


def home_streams(
    addresses: Sequence, interleaving: int, clusters: int
) -> list[array]:
    """Per-operation home-cluster streams: ``(address // I) % N`` in bulk.

    Returns ``array('h')`` columns -- the exact shape (and values) of the
    scalar comprehension in :meth:`LoopTrace.home_clusters`.
    """
    streams = []
    for addrs in addresses:
        values = np.frombuffer(addrs, dtype=np.int64)
        homes = (values // interleaving) % clusters
        column = array("h")
        column.frombytes(homes.astype(np.int16).tobytes())
        streams.append(column)
    return streams


def block_streams(addresses: Sequence, block_bytes: int) -> list[array]:
    """Per-operation cache-block streams: ``address // block_bytes`` in bulk."""
    streams = []
    for addrs in addresses:
        values = np.frombuffer(addrs, dtype=np.int64)
        column = array("q")
        column.frombytes((values // block_bytes).tobytes())
        streams.append(column)
    return streams


def cluster_histograms(homes: Sequence) -> list[list[tuple[int, int]]]:
    """Per-operation ``(cluster, count)`` pairs in first-touch order.

    First-touch order matches ``Counter(stream)`` insertion order, so the
    resulting histograms are indistinguishable from the scalar path's.
    One combined ``np.unique`` pass covers every operation: streams are
    op-major in the flattened key array, so a key's global first index
    orders it exactly as its within-stream first touch.
    """
    if not homes:
        return []
    matrix = np.stack(
        [np.frombuffer(column, dtype=np.int16) for column in homes]
    ).astype(np.int64)
    if matrix.size == 0:
        return [[] for _ in homes]
    span = int(matrix.max()) + 1
    keys = (np.arange(matrix.shape[0])[:, None] * span + matrix).reshape(-1)
    groups = _grouped_first_touch(keys, span)
    return [groups.get(index, []) for index in range(matrix.shape[0])]


# ----------------------------------------------------------------------
# Simulator replay
# ----------------------------------------------------------------------
def sim_replay(plan, cache, stalls) -> Optional[int]:
    """Vectorised replacement for the engine's event loop.

    ``plan`` is the engine's :class:`repro.sim.engine.ReplayPlan`;
    ``cache`` the live :class:`DataCacheModel` (state is either written
    back wholesale after verification or mutated exactly as the scalar
    loop would); ``stalls`` the run's :class:`StallCounters`.  Returns
    the accumulated stall cycles, or ``None`` to decline.
    """
    per_op = plan.per_op
    simulated = plan.simulated
    if not per_op or not simulated:
        return None

    interleaved = isinstance(cache, WordInterleavedDataCache)
    if not interleaved and not isinstance(cache, UnifiedDataCache):
        return None  # coherent: cross-store coupling, scalar only

    config = cache.config
    num_clusters = config.num_clusters
    ops = len(per_op)
    clusters_static = np.array([entry[3] for entry in per_op], dtype=np.int64)
    sizes_static = np.array([entry[4] for entry in per_op], dtype=np.int64)
    if (
        (clusters_static < 0).any()
        or (clusters_static >= num_clusters).any()
        or (sizes_static <= 0).any()
    ):
        return None  # scalar wrapper raises the matching ValueError

    # --- event expansion: (m, template position) order, exactly the
    # scalar loop's sweep ---------------------------------------------
    phases = np.array([entry[0] for entry in per_op], dtype=np.int64)
    wraps = np.array([entry[1] for entry in per_op], dtype=np.int64)
    rounds = simulated + int(wraps.max())
    m_values = np.arange(rounds, dtype=np.int64)[:, None]
    iteration = m_values - wraps[None, :]
    valid = (iteration >= 0) & (iteration < simulated)
    flat_valid = valid.reshape(-1)
    ev_op = np.broadcast_to(np.arange(ops), (rounds, ops)).reshape(-1)[flat_valid]
    ev_iter = iteration.reshape(-1)[flat_valid]
    ev_base = (m_values * plan.ii + phases[None, :]).reshape(-1)[flat_valid]

    addresses = np.stack(
        [np.frombuffer(entry[2], dtype=np.int64) for entry in per_op]
    )
    ev_addr = addresses[ev_op, ev_iter]
    covers = np.array(
        [float(entry[7]) for entry in per_op], dtype=np.float64
    )
    is_store = np.array([bool(entry[5]) for entry in per_op])
    block_bytes = config.cache.block_bytes
    ev_block = ev_addr // block_bytes
    ev_cluster = clusters_static[ev_op]

    if interleaved:
        factor = config.interleaving_factor
        home0 = (ev_addr // factor) % num_clusters
        spans = (sizes_static > factor)[ev_op]
        local = (home0 == ev_cluster) & ~spans
        if bool(local.all()):
            outcome = _interleaved_all_local(
                plan, cache, stalls, ev_op, ev_base, ev_block, ev_cluster,
                covers, is_store,
            )
            if outcome is not None:
                return outcome
        return _interleaved_sequenced(
            plan, cache, stalls, ev_op, ev_base, ev_addr, ev_block,
            home0, spans, local,
        )
    return _unified_vector(
        plan, cache, stalls, ev_op, ev_base, ev_block, covers, is_store
    )


def _stall_prefix(
    hits: np.ndarray,
    hit_latency: int,
    miss_latency: int,
    ev_op: np.ndarray,
    covers: np.ndarray,
    is_store: np.ndarray,
):
    """Latency, per-event stall and pre-access cycles under fixed latencies."""
    latency = np.where(hits, hit_latency, miss_latency).astype(np.int64)
    ev_cover = covers[ev_op]
    stall = np.where(
        (~is_store[ev_op]) & (latency > ev_cover), latency - ev_cover, 0.0
    ).astype(np.int64)
    accumulated = np.cumsum(stall)
    return latency, stall, accumulated - stall, int(accumulated[-1])


def _fifo_zero_wait(cycles: np.ndarray, ports: int) -> bool:
    """True iff a ``ports``-server unit-service FIFO (initially idle)
    would serve every arrival in ``cycles`` (nondecreasing) without wait."""
    if cycles.shape[0] <= ports:
        return True
    return bool((cycles[ports:] >= cycles[:-ports] + 1).all())


def _replace_heap(heap: list[int], served: np.ndarray, occupancy: int) -> None:
    """Rebuild a unit-service port heap after zero-wait bulk service."""
    ports = len(heap)
    ends = (served[-ports:] + occupancy).tolist()
    if len(ends) < ports:
        ends.extend(heap[: ports - len(ends)])
    heap[:] = ends
    heapify(heap)


def _grouped_first_touch(group_keys: np.ndarray, span: int, weights=None):
    """Per-group ``[(value, total), ...]`` lists in first-touch order.

    ``group_keys`` encodes ``group * span + value``; the result maps each
    group to its value totals ordered by first appearance in the event
    stream -- one ``np.unique`` pass for every group at once, where the
    naive per-group loop would pay a pass per group.
    """
    groups: dict[int, list[tuple[int, int]]] = {}
    if group_keys.shape[0] == 0:
        return groups
    uniques, first_index, totals = np.unique(
        group_keys, return_index=True, return_counts=True
    )
    if weights is not None:
        totals = np.bincount(
            np.searchsorted(uniques, group_keys),
            weights=weights,
            minlength=uniques.shape[0],
        )
    for i in np.argsort(first_index).tolist():
        key = int(uniques[i])
        groups.setdefault(key // span, []).append(
            (key % span, int(totals[i]))
        )
    return groups


def _fill_records(
    per_op,
    ev_op: np.ndarray,
    classes: np.ndarray,
    homes: Optional[np.ndarray],
    stall: np.ndarray,
) -> None:
    """Populate each operation's ``OperationSimRecord`` from event arrays.

    Counters are rebuilt in first-touch order so their iteration order --
    observable through serialized reports -- matches the scalar loop's
    insertion order.
    """
    span = len(_CLASSES)
    class_keys = ev_op * span + classes
    for index, pairs in _grouped_first_touch(class_keys, span).items():
        record = per_op[index][8]
        for value, count in pairs:
            record.access_counts[_CLASSES[value]] = count
    if homes is not None:
        cluster_span = int(homes.max()) + 1
        home_keys = ev_op * cluster_span + homes
        for index, pairs in _grouped_first_touch(
            home_keys, cluster_span
        ).items():
            record = per_op[index][8]
            for value, count in pairs:
                record.clusters_touched[value] = count
    stalled = stall > 0
    if stalled.any():
        stalled_totals = _grouped_first_touch(
            class_keys[stalled], span, weights=stall[stalled]
        )
        op_totals = np.bincount(
            ev_op[stalled], weights=stall[stalled], minlength=len(per_op)
        )
        for index, pairs in stalled_totals.items():
            record = per_op[index][8]
            for value, total in pairs:
                record.stall_by_type[_CLASSES[value]] = total
            record.total_stall = int(op_totals[index])


def _interleaved_all_local(
    plan, cache, stalls, ev_op, ev_base, ev_block, ev_cluster, covers, is_store
) -> Optional[int]:
    """Full-vector replay of an interleaved loop with only local accesses.

    Local accesses touch the home module and (on miss) the next-level
    ports; nothing else.  Latencies are fixed per outcome once next-level
    waits are zero, which the FIFO check verifies on the final cycles --
    so state is only written back after the hypothesis holds.
    """
    if any(cache.next_level._port_free_at):
        return None  # zero-wait hypothesis assumes idle ports
    config = cache.config
    module = cache.module(0)
    num_sets, associativity = module.num_sets, module.associativity
    set_ids = ev_cluster * num_sets + ev_block % num_sets

    touched_clusters = np.unique(ev_cluster).tolist()
    initial_ways: dict[int, list[int]] = {}
    for cluster in touched_clusters:
        store = cache.module(cluster)
        if not store.occupied:
            continue
        for set_index, ways in enumerate(store.export_ways()):
            if ways:
                initial_ways[cluster * num_sets + set_index] = ways
    outcome = replay_lru(set_ids, ev_block, associativity, initial_ways)
    if outcome is None:
        return None
    hits, final_ways, evictions = outcome

    latencies = config.latencies
    _, stall, before, total_stall = _stall_prefix(
        hits, latencies.local_hit, latencies.local_miss, ev_op, covers, is_store
    )
    miss_cycles = (ev_base + before)[~hits]
    if not _fifo_zero_wait(miss_cycles, config.next_level.ports):
        return None

    # --- verified: write back state and results ----------------------
    cluster_ways: dict[int, dict[int, list[int]]] = {}
    cluster_evictions: dict[int, int] = {}
    for set_id, contents in final_ways.items():
        cluster = set_id // num_sets
        cluster_ways.setdefault(cluster, {})[set_id % num_sets] = contents
        cluster_evictions[cluster] = (
            cluster_evictions.get(cluster, 0) + evictions[set_id]
        )
    for cluster in touched_clusters:
        store = cache.module(cluster)
        store.update_ways(cluster_ways.get(cluster, {}))
        mine = ev_cluster == cluster
        store.note_statistics(
            hits=int(hits[mine].sum()),
            misses=int((~hits[mine]).sum()),
            evictions=cluster_evictions.get(cluster, 0),
        )
    cache.next_level.note_bulk(
        accesses=int((~hits).sum()),
        wait_cycles=0,
        served_at=miss_cycles,
        occupancy=1,
    )

    counters = cache.counters
    counters.local_hits += int(hits.sum())
    counters.local_misses += int((~hits).sum())
    stalls.local_miss += int(stall[~hits].sum())
    classes = np.where(hits, 0, 2)
    _fill_records(plan.per_op, ev_op, classes, ev_cluster, stall)
    return total_stall


def _unified_vector(
    plan, cache, stalls, ev_op, ev_base, ev_block, covers, is_store
) -> Optional[int]:
    """Full-vector replay of the unified cache (port FIFO verified)."""
    if any(cache._port_free_at) or any(cache.next_level._port_free_at):
        return None  # zero-wait hypothesis assumes idle ports
    config = cache.config
    store = cache._store
    num_sets, associativity = store.num_sets, store.associativity
    set_ids = ev_block % num_sets
    initial_ways = {}
    if store.occupied:
        initial_ways = {
            set_index: ways
            for set_index, ways in enumerate(store.export_ways())
            if ways
        }
    outcome = replay_lru(set_ids, ev_block, associativity, initial_ways)
    if outcome is None:
        return None
    hits, final_ways, evictions = outcome

    base = config.unified_cache_latency
    _, stall, before, total_stall = _stall_prefix(
        hits, base, base + config.next_level.latency, ev_op, covers, is_store
    )
    cycles = ev_base + before
    if not _fifo_zero_wait(cycles, config.unified_cache_ports):
        return None
    miss_cycles = cycles[~hits]
    if not _fifo_zero_wait(miss_cycles, config.next_level.ports):
        return None

    store.update_ways(final_ways)
    store.note_statistics(
        hits=int(hits.sum()),
        misses=int((~hits).sum()),
        evictions=sum(evictions.values()),
    )
    _replace_heap(cache._port_free_at, cycles, 1)
    cache.next_level.note_bulk(
        accesses=int((~hits).sum()),
        wait_cycles=0,
        served_at=miss_cycles,
        occupancy=1,
    )

    counters = cache.counters
    counters.local_hits += int(hits.sum())
    counters.local_misses += int((~hits).sum())
    stalls.local_miss += int(stall[~hits].sum())
    classes = np.where(hits, 0, 2)
    _fill_records(plan.per_op, ev_op, classes, None, stall)
    return total_stall


def _interleaved_sequenced(
    plan, cache, stalls, ev_op, ev_base, ev_addr, ev_block, home0, spans, local
) -> int:
    """Thin sequenced pass for interleaved loops with remote accesses.

    Request combining makes classification cycle-dependent (a stall
    shifts later accesses out of -- or into -- the combining window), so
    the access order *and* cycles must advance together: this pass keeps
    the scalar semantics access by access, but all address arithmetic,
    re-homing and event expansion are precomputed above, and the model's
    per-access wrapper layers (``AccessResult`` construction, counter
    dispatch, method indirection) are folded into flat local state that
    is credited back in bulk.  This is exact, not verified-optimistic:
    it transcribes ``WordInterleavedDataCache._access`` one-to-one.
    """
    config = cache.config
    latencies = config.latencies
    hit_latency = latencies.local_hit
    local_miss_latency = latencies.local_miss
    remote_hit_latency = latencies.remote_hit
    remote_miss_latency = latencies.remote_miss

    factor = config.interleaving_factor
    num_clusters = config.num_clusters
    rehome = spans & (home0 == np.array(
        [entry[3] for entry in plan.per_op], dtype=np.int64
    )[ev_op])
    shifted = ev_addr + factor
    home_final = np.where(rehome, (shifted // factor) % num_clusters, home0)
    key_block = np.where(rehome, shifted // config.cache.block_bytes, ev_block)

    events = ev_op.shape[0]
    op_list = ev_op.tolist()
    base_list = ev_base.tolist()
    home_list = home_final.tolist()
    block_list = ev_block.tolist()
    key_list = key_block.tolist()
    local_list = local.tolist()

    per_op = plan.per_op
    store_flags = [bool(entry[5]) for entry in per_op]
    attract_flags = [bool(entry[6]) for entry in per_op]
    cover_values = [entry[7] for entry in per_op]
    cluster_values = [entry[3] for entry in per_op]

    module_sets = [cache.module(c)._sets for c in range(num_clusters)]
    num_sets = cache.module(0).num_sets
    associativity = cache.module(0).associativity
    buffers = cache.attraction_buffers
    ab_enabled = buffers.enabled
    pending = cache._pending
    bus_heap = cache.memory_buses._free_at
    transfer_cycles = cache.memory_buses.config.transfer_cycles
    next_heap = cache.next_level._port_free_at

    store_hits = [0] * num_clusters
    store_misses = [0] * num_clusters
    store_evictions = [0] * num_clusters
    class_totals = [0] * 5
    ab_hits = 0
    bus_transfers = 0
    bus_wait_total = 0
    next_accesses = 0
    next_wait_total = 0
    accumulated = 0
    ev_class = [0] * events
    ev_stall = [0] * events

    for event in range(events):
        op = op_list[event]
        if local_list[event]:
            cluster = home_list[event]
            block = block_list[event]
            entry_set = module_sets[cluster][block % num_sets]
            if block in entry_set:
                entry_set.move_to_end(block)
                store_hits[cluster] += 1
                classification = 0
                latency = hit_latency
            else:
                store_misses[cluster] += 1
                if len(entry_set) >= associativity:
                    entry_set.popitem(last=False)
                    store_evictions[cluster] += 1
                entry_set[block] = None
                cycle = base_list[event] + accumulated
                earliest = heappop(next_heap)
                start = cycle if cycle > earliest else earliest
                heappush(next_heap, start + 1)
                wait = start - cycle
                next_accesses += 1
                next_wait_total += wait
                classification = 2
                latency = local_miss_latency + wait
        else:
            cycle = base_list[event] + accumulated
            home = home_list[event]
            subblock_key = (home, key_list[event])
            storing = store_flags[op]
            if ab_enabled:
                hashed = hash(subblock_key)
                requester = cluster_values[op]
                if storing:
                    buffers[requester].invalidate(hashed)
            served = False
            if not storing and ab_enabled and buffers[requester].lookup(hashed):
                ab_hits += 1
                classification = 0
                latency = hit_latency
                served = True
            if not served:
                ready = pending.get(subblock_key)
                if ready is not None and ready > cycle:
                    classification = 4
                    latency = ready - cycle
                else:
                    earliest = heappop(bus_heap)
                    start = cycle if cycle > earliest else earliest
                    heappush(bus_heap, start + transfer_cycles)
                    bus_wait = start - cycle
                    bus_transfers += 1
                    bus_wait_total += bus_wait
                    block = block_list[event]
                    entry_set = module_sets[home][block % num_sets]
                    if block in entry_set:
                        entry_set.move_to_end(block)
                        store_hits[home] += 1
                        classification = 1
                        latency = remote_hit_latency + bus_wait
                    else:
                        store_misses[home] += 1
                        if len(entry_set) >= associativity:
                            entry_set.popitem(last=False)
                            store_evictions[home] += 1
                        entry_set[block] = None
                        earliest = heappop(next_heap)
                        arrival = cycle + bus_wait
                        start = arrival if arrival > earliest else earliest
                        heappush(next_heap, start + 1)
                        wait = start - arrival
                        next_accesses += 1
                        next_wait_total += wait
                        classification = 3
                        latency = remote_miss_latency + bus_wait + wait
                    if not storing and ab_enabled and attract_flags[op]:
                        buffers[requester].attract(hashed)
                    pending[subblock_key] = cycle + latency
                    if len(pending) > 4096:
                        pending = {
                            key: value
                            for key, value in pending.items()
                            if value > cycle
                        }

        class_totals[classification] += 1
        ev_class[event] = classification
        if not store_flags[op]:
            cover = cover_values[op]
            if latency > cover:
                stall = latency - cover
                accumulated += stall
                ev_stall[event] = stall

    # --- bulk credit of everything the wrapper layers used to do ------
    cache._pending = pending
    for cluster in range(num_clusters):
        if store_hits[cluster] or store_misses[cluster]:
            cache.module(cluster).note_statistics(
                hits=store_hits[cluster],
                misses=store_misses[cluster],
                evictions=store_evictions[cluster],
            )
    cache.memory_buses.note_transfers(bus_transfers, bus_wait_total)
    cache.next_level.note_bulk(
        accesses=next_accesses, wait_cycles=next_wait_total
    )
    counters = cache.counters
    counters.local_hits += class_totals[0]
    counters.remote_hits += class_totals[1]
    counters.local_misses += class_totals[2]
    counters.remote_misses += class_totals[3]
    counters.combined += class_totals[4]
    counters.attraction_buffer_hits += ab_hits

    class_array = np.array(ev_class, dtype=np.int64)
    stall_array = np.array(ev_stall, dtype=np.int64)
    for value, field in _STALL_FIELDS.items():
        total = int(stall_array[class_array == value].sum())
        if total:
            setattr(stalls, field, getattr(stalls, field) + total)
    _fill_records(per_op, ev_op, class_array, home_final, stall_array)
    return accumulated

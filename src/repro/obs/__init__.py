"""Lightweight, dependency-free observability for the repro stack.

The subsystem has four layers, each usable on its own:

* :mod:`repro.obs.trace` -- nested ``span(name, **attrs)`` context
  managers on monotonic clocks, thread-safe, with a true no-op path when
  telemetry is disabled (``REPRO_OBS=off``);
* :mod:`repro.obs.metrics` -- a process-local registry of counters,
  gauges and histograms whose snapshots merge exactly, so per-worker
  telemetry combines into one run-level view without cross-process
  queues;
* :mod:`repro.obs.events` -- a schema-versioned JSONL event log (one
  span per line), per-worker shard files, and the per-run manifest
  (spec hash, machine grid, git describe, schema versions);
* :mod:`repro.obs.export` -- Chrome trace-event/Perfetto JSON export and
  the human ``--timings`` percentile summary.

Telemetry never changes what the simulator or the compiler computes:
every byte of benchmark output is identical with telemetry enabled and
disabled (asserted in CI).  See ``docs/observability.md`` for the span
and metric naming conventions and the on-disk layout.
"""

from repro.obs.trace import (
    Span,
    current_span_id,
    enabled,
    measured_span,
    set_enabled,
    span,
    take_events,
    trace_overview,
)
from repro.obs.metrics import MetricsRegistry, merge_snapshots, registry

__all__ = [
    "MetricsRegistry",
    "Span",
    "current_span_id",
    "enabled",
    "measured_span",
    "merge_snapshots",
    "registry",
    "set_enabled",
    "span",
    "take_events",
    "trace_overview",
]

"""Content-addressed, on-disk store for sweep results.

Layout under the store root::

    records/<key>.json   -- one queryable JSON record per executed job
    payloads/<key>.pkl   -- the full BenchmarkSimulationResult (optional)

The JSON record is the durable, tool-friendly artefact: it carries the
complete job description (benchmark, machine, compiler and simulation
knobs) plus the flat metrics, so results remain queryable long after the
process that produced them exited.  The pickle payload preserves full
fidelity (per-operation records, counters) so the experiment harness can
serve figure computations from the store without re-simulating.

Writes are atomic (temp file + ``os.replace``) so concurrent writers of
the same key -- e.g. two pool workers racing on a shared configuration --
cannot leave a torn record behind.
"""

from __future__ import annotations

import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Iterator, Optional

#: Version of the record format, stored in every record.
RECORD_SCHEMA = 1


class ResultStore:
    """Directory-backed store of sweep result records keyed by job hash."""

    def __init__(self, root: Path | str) -> None:
        self.root = Path(root)
        self._records_dir = self.root / "records"
        self._payloads_dir = self.root / "payloads"
        self._records_dir.mkdir(parents=True, exist_ok=True)
        self._payloads_dir.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def record_path(self, key: str) -> Path:
        """Path of the JSON record of ``key``."""
        return self._records_dir / f"{key}.json"

    def payload_path(self, key: str) -> Path:
        """Path of the pickle payload of ``key``."""
        return self._payloads_dir / f"{key}.pkl"

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __contains__(self, key: str) -> bool:
        return self.record_path(key).is_file()

    def __len__(self) -> int:
        return sum(1 for _ in self._records_dir.glob("*.json"))

    def keys(self) -> list[str]:
        """All stored job keys, sorted."""
        return sorted(path.stem for path in self._records_dir.glob("*.json"))

    def load_record(self, key: str) -> Optional[dict]:
        """Load one JSON record, or None if absent or unreadable."""
        path = self.record_path(key)
        try:
            with path.open("r", encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None

    def records(self) -> Iterator[dict]:
        """Iterate every stored record, sorted by key."""
        for key in self.keys():
            record = self.load_record(key)
            if record is not None:
                yield record

    def load_payload(self, key: str) -> Optional[object]:
        """Unpickle the full simulation result, or None if absent/broken."""
        path = self.payload_path(key)
        try:
            with path.open("rb") as handle:
                return pickle.load(handle)
        except (OSError, pickle.PickleError, EOFError, AttributeError):
            return None

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def save(
        self, key: str, record: dict, payload: Optional[object] = None
    ) -> None:
        """Atomically persist a record (and optionally its payload)."""
        if payload is not None:
            self._atomic_write(
                self.payload_path(key), pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
            )
        body = dict(record)
        body.setdefault("schema", RECORD_SCHEMA)
        body.setdefault("key", key)
        encoded = json.dumps(body, indent=2, sort_keys=True).encode("utf-8")
        self._atomic_write(self.record_path(key), encoded)

    def discard(self, key: str) -> None:
        """Remove a record and its payload if present."""
        for path in (self.record_path(key), self.payload_path(key)):
            try:
                path.unlink()
            except FileNotFoundError:
                pass

    def discard_payload(self, key: str) -> None:
        """Remove just the pickle payload of a key, if present.

        Used when a record is replaced by one that has no payload (e.g. a
        model-only record overwriting a force-rerun simulator record), so a
        stale pickle can never outlive the record that described it.
        """
        try:
            self.payload_path(key).unlink()
        except FileNotFoundError:
            pass

    @staticmethod
    def _atomic_write(path: Path, data: bytes) -> None:
        handle = tempfile.NamedTemporaryFile(
            mode="wb", dir=path.parent, prefix=f".{path.name}.", delete=False
        )
        try:
            with handle:
                handle.write(data)
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise

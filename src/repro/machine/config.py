"""Machine description for clustered VLIW processors.

The configuration objects in this module describe the processors evaluated in
the paper (Table 2):

* a clustered VLIW with a **word-interleaved** L1 data cache (the proposal),
* a clustered VLIW with a **unified** L1 data cache (1-cycle and 5-cycle
  variants), and
* the **multiVLIW**, a cache-coherent clustered VLIW used as the
  state-of-the-art baseline.

Every parameter that the paper lists is configurable here so that the
experiment harness can sweep them; :func:`MachineConfig.default` returns the
exact configuration of Table 2.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field, replace


class CacheOrganization(enum.Enum):
    """L1 data-cache organization of the processor."""

    WORD_INTERLEAVED = "word-interleaved"
    UNIFIED = "unified"
    COHERENT = "coherent"  # the multiVLIW organization


class FunctionalUnitKind(enum.Enum):
    """Kinds of functional units found in each cluster."""

    INTEGER = "integer"
    FLOAT = "float"
    MEMORY = "memory"


@dataclass(frozen=True)
class FunctionalUnitSet:
    """Number of functional units of each kind in a single cluster."""

    integer: int = 1
    float_: int = 1
    memory: int = 1

    def count(self, kind: FunctionalUnitKind) -> int:
        """Return the number of units of ``kind`` in one cluster."""
        if kind is FunctionalUnitKind.INTEGER:
            return self.integer
        if kind is FunctionalUnitKind.FLOAT:
            return self.float_
        return self.memory

    def total(self) -> int:
        """Total number of functional units in one cluster."""
        return self.integer + self.float_ + self.memory


@dataclass(frozen=True)
class CacheGeometry:
    """Geometry of an L1 data cache (or of a single cache module)."""

    size_bytes: int
    block_bytes: int = 32
    associativity: int = 2

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("cache size must be positive")
        if self.block_bytes <= 0 or self.block_bytes & (self.block_bytes - 1):
            raise ValueError("block size must be a positive power of two")
        if self.associativity <= 0:
            raise ValueError("associativity must be positive")
        if self.size_bytes % (self.block_bytes * self.associativity):
            raise ValueError(
                "cache size must be a multiple of block size times associativity"
            )

    @property
    def num_blocks(self) -> int:
        """Number of blocks (lines) the cache can hold."""
        return self.size_bytes // self.block_bytes

    @property
    def num_sets(self) -> int:
        """Number of sets."""
        return self.num_blocks // self.associativity


@dataclass(frozen=True)
class MemoryLatencies:
    """Latencies, in core cycles, of the four access classes of the paper.

    ``local_hit`` and ``remote_hit`` correspond to the 1- and 5-cycle cache
    latencies of Table 2 (a remote hit pays two bus traversals plus the cache
    access); the miss latencies add the 10-cycle next-memory-level access.
    These are the values used in the worked example of Section 4.3.3.
    """

    local_hit: int = 1
    remote_hit: int = 5
    local_miss: int = 10
    remote_miss: int = 15
    store_issue: int = 1

    def __post_init__(self) -> None:
        ordered = (self.local_hit, self.remote_hit, self.local_miss, self.remote_miss)
        if any(lat <= 0 for lat in ordered):
            raise ValueError("latencies must be positive")
        if list(ordered) != sorted(ordered):
            raise ValueError(
                "latencies must be ordered: local hit <= remote hit <= "
                "local miss <= remote miss"
            )

    def ordered(self) -> tuple[int, int, int, int]:
        """Return (local_hit, remote_hit, local_miss, remote_miss)."""
        return (self.local_hit, self.remote_hit, self.local_miss, self.remote_miss)


@dataclass(frozen=True)
class BusConfig:
    """A set of shared buses running at a fraction of the core frequency."""

    count: int = 4
    frequency_divisor: int = 2

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ValueError("bus count must be positive")
        if self.frequency_divisor <= 0:
            raise ValueError("frequency divisor must be positive")

    @property
    def transfer_cycles(self) -> int:
        """Core cycles a single transfer occupies one bus."""
        return self.frequency_divisor


@dataclass(frozen=True)
class AttractionBufferConfig:
    """Configuration of the per-cluster Attraction Buffers."""

    enabled: bool = False
    entries: int = 16
    associativity: int = 2

    def __post_init__(self) -> None:
        if self.entries <= 0:
            raise ValueError("attraction buffer must have at least one entry")
        if self.associativity <= 0 or self.entries % self.associativity:
            raise ValueError("entries must be a multiple of the associativity")

    @property
    def num_sets(self) -> int:
        """Number of sets in the buffer."""
        return self.entries // self.associativity


@dataclass(frozen=True)
class NextLevelConfig:
    """Next memory level (always hits in the paper's evaluation)."""

    latency: int = 10
    ports: int = 4

    def __post_init__(self) -> None:
        if self.latency <= 0 or self.ports <= 0:
            raise ValueError("next-level latency and ports must be positive")


@dataclass(frozen=True)
class OperationLatencies:
    """Latencies of non-memory operations, in cycles."""

    int_alu: int = 1
    int_mul: int = 2
    fp_alu: int = 2
    fp_mul: int = 4
    fp_div: int = 6
    branch: int = 1
    copy: int = 2  # register-to-register inter-cluster communication

    def __post_init__(self) -> None:
        for name in ("int_alu", "int_mul", "fp_alu", "fp_mul", "fp_div", "branch", "copy"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} latency must be positive")


@dataclass(frozen=True)
class MachineConfig:
    """Complete description of one of the evaluated processors."""

    num_clusters: int = 4
    organization: CacheOrganization = CacheOrganization.WORD_INTERLEAVED
    functional_units: FunctionalUnitSet = field(default_factory=FunctionalUnitSet)
    cache: CacheGeometry = field(default_factory=lambda: CacheGeometry(size_bytes=8 * 1024))
    interleaving_factor: int = 4
    latencies: MemoryLatencies = field(default_factory=MemoryLatencies)
    op_latencies: OperationLatencies = field(default_factory=OperationLatencies)
    register_buses: BusConfig = field(default_factory=BusConfig)
    memory_buses: BusConfig = field(default_factory=BusConfig)
    attraction_buffer: AttractionBufferConfig = field(
        default_factory=AttractionBufferConfig
    )
    next_level: NextLevelConfig = field(default_factory=NextLevelConfig)
    unified_cache_latency: int = 1
    unified_cache_ports: int = 5
    registers_per_cluster: int = 64

    def __post_init__(self) -> None:
        if self.num_clusters <= 0:
            raise ValueError("num_clusters must be positive")
        if self.interleaving_factor <= 0 or (
            self.interleaving_factor & (self.interleaving_factor - 1)
        ):
            raise ValueError("interleaving factor must be a positive power of two")
        if self.organization is CacheOrganization.WORD_INTERLEAVED:
            if self.cache.size_bytes % self.num_clusters:
                raise ValueError("cache size must divide evenly across clusters")
            subblock = self.cache.block_bytes // self.num_clusters
            if subblock < self.interleaving_factor:
                raise ValueError(
                    "block size too small for the number of clusters and "
                    "interleaving factor"
                )
        if self.unified_cache_latency <= 0:
            raise ValueError("unified cache latency must be positive")
        if self.unified_cache_ports <= 0:
            raise ValueError("unified cache ports must be positive")
        if self.registers_per_cluster <= 0:
            raise ValueError("registers_per_cluster must be positive")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def interleave_span(self) -> int:
        """N x I: bytes after which the cluster mapping repeats."""
        return self.num_clusters * self.interleaving_factor

    @property
    def module_geometry(self) -> CacheGeometry:
        """Geometry of a single per-cluster cache module."""
        if self.organization is CacheOrganization.UNIFIED:
            return self.cache
        return CacheGeometry(
            size_bytes=self.cache.size_bytes // self.num_clusters,
            block_bytes=self.cache.block_bytes,
            associativity=self.cache.associativity,
        )

    @property
    def subblock_bytes(self) -> int:
        """Bytes of each cache block mapped to a single cluster."""
        return self.cache.block_bytes // self.num_clusters

    def cluster_of_address(self, address: int) -> int:
        """Return the home cluster of ``address`` under word interleaving."""
        return (address // self.interleaving_factor) % self.num_clusters

    def memory_latency_for(self, local: bool, hit: bool) -> int:
        """Latency of an access given locality and hit/miss outcome."""
        if local and hit:
            return self.latencies.local_hit
        if not local and hit:
            return self.latencies.remote_hit
        if local and not hit:
            return self.latencies.local_miss
        return self.latencies.remote_miss

    def spans_multiple_clusters(self, granularity: int) -> bool:
        """True if an access of ``granularity`` bytes cannot be local."""
        return granularity > self.interleaving_factor

    # ------------------------------------------------------------------
    # Named configurations from the paper
    # ------------------------------------------------------------------
    @staticmethod
    def default() -> "MachineConfig":
        """The baseline word-interleaved configuration of Table 2."""
        return MachineConfig()

    @staticmethod
    def word_interleaved(
        attraction_buffers: bool = False, entries: int = 16
    ) -> "MachineConfig":
        """Word-interleaved cache configuration, optionally with ABs."""
        return MachineConfig(
            organization=CacheOrganization.WORD_INTERLEAVED,
            attraction_buffer=AttractionBufferConfig(
                enabled=attraction_buffers, entries=entries
            ),
        )

    @staticmethod
    def unified(latency: int = 1, ports: int = 5) -> "MachineConfig":
        """Unified-cache clustered configuration (1- or 5-cycle latency)."""
        return MachineConfig(
            organization=CacheOrganization.UNIFIED,
            unified_cache_latency=latency,
            unified_cache_ports=ports,
        )

    @staticmethod
    def multivliw() -> "MachineConfig":
        """The cache-coherent multiVLIW configuration."""
        return MachineConfig(organization=CacheOrganization.COHERENT)

    def with_clusters(self, num_clusters: int) -> "MachineConfig":
        """Return a copy with a different cluster count."""
        return replace(self, num_clusters=num_clusters)

    def with_interleaving(self, interleaving_factor: int) -> "MachineConfig":
        """Return a copy with a different interleaving factor."""
        return replace(self, interleaving_factor=interleaving_factor)

    @staticmethod
    def from_description(data: dict) -> "MachineConfig":
        """Rebuild a configuration from :meth:`describe` output.

        The sweep store persists job descriptions as JSON; this inverse makes
        stored records self-describing -- the calibration pass of
        :mod:`repro.model` re-predicts stored jobs without needing the
        process that produced them.  Round-trips exactly:
        ``MachineConfig.from_description(c.describe()) == c``.
        """
        fu = data["fu_per_cluster"]
        lat = data["latencies"]
        ab = data["attraction_buffer"]
        op_lat = data["op_latencies"]
        return MachineConfig(
            num_clusters=int(data["clusters"]),
            organization=CacheOrganization(data["organization"]),
            functional_units=FunctionalUnitSet(
                integer=int(fu["integer"]),
                float_=int(fu["float"]),
                memory=int(fu["memory"]),
            ),
            cache=CacheGeometry(
                size_bytes=int(data["cache_total_bytes"]),
                block_bytes=int(data["cache_block_bytes"]),
                associativity=int(data["cache_associativity"]),
            ),
            interleaving_factor=int(data["interleaving_factor"]),
            latencies=MemoryLatencies(
                local_hit=int(lat["local_hit"]),
                remote_hit=int(lat["remote_hit"]),
                local_miss=int(lat["local_miss"]),
                remote_miss=int(lat["remote_miss"]),
                store_issue=int(data["store_issue_latency"]),
            ),
            op_latencies=OperationLatencies(
                int_alu=int(op_lat["int_alu"]),
                int_mul=int(op_lat["int_mul"]),
                fp_alu=int(op_lat["fp_alu"]),
                fp_mul=int(op_lat["fp_mul"]),
                fp_div=int(op_lat["fp_div"]),
                branch=int(op_lat["branch"]),
                copy=int(op_lat["copy"]),
            ),
            register_buses=BusConfig(
                count=int(data["register_buses"]),
                frequency_divisor=int(data["register_bus_divisor"]),
            ),
            memory_buses=BusConfig(
                count=int(data["memory_buses"]),
                frequency_divisor=int(data["memory_bus_divisor"]),
            ),
            attraction_buffer=AttractionBufferConfig(
                enabled=bool(ab["enabled"]),
                entries=int(ab["entries"]),
                associativity=int(ab["associativity"]),
            ),
            next_level=NextLevelConfig(
                latency=int(data["next_level_latency"]),
                ports=int(data["next_level_ports"]),
            ),
            unified_cache_latency=int(data["unified_cache_latency"]),
            unified_cache_ports=int(data["unified_cache_ports"]),
            registers_per_cluster=int(data["registers_per_cluster"]),
        )

    def describe(self) -> dict[str, object]:
        """A flat dictionary used by reports and Table-2 style output."""
        return {
            "clusters": self.num_clusters,
            "organization": self.organization.value,
            "fu_per_cluster": {
                "integer": self.functional_units.integer,
                "float": self.functional_units.float_,
                "memory": self.functional_units.memory,
            },
            "cache_total_bytes": self.cache.size_bytes,
            "cache_block_bytes": self.cache.block_bytes,
            "cache_associativity": self.cache.associativity,
            "interleaving_factor": self.interleaving_factor,
            "latencies": {
                "local_hit": self.latencies.local_hit,
                "remote_hit": self.latencies.remote_hit,
                "local_miss": self.latencies.local_miss,
                "remote_miss": self.latencies.remote_miss,
            },
            "register_buses": self.register_buses.count,
            "register_bus_divisor": self.register_buses.frequency_divisor,
            "memory_buses": self.memory_buses.count,
            "memory_bus_divisor": self.memory_buses.frequency_divisor,
            "attraction_buffer": {
                "enabled": self.attraction_buffer.enabled,
                "entries": self.attraction_buffer.entries,
                "associativity": self.attraction_buffer.associativity,
            },
            "next_level_latency": self.next_level.latency,
            "next_level_ports": self.next_level.ports,
            "unified_cache_latency": self.unified_cache_latency,
            "unified_cache_ports": self.unified_cache_ports,
            "registers_per_cluster": self.registers_per_cluster,
            "op_latencies": {
                "int_alu": self.op_latencies.int_alu,
                "int_mul": self.op_latencies.int_mul,
                "fp_alu": self.op_latencies.fp_alu,
                "fp_mul": self.op_latencies.fp_mul,
                "fp_div": self.op_latencies.fp_div,
                "branch": self.op_latencies.branch,
                "copy": self.op_latencies.copy,
            },
            "store_issue_latency": self.latencies.store_issue,
        }


def unrolling_span(config: MachineConfig) -> int:
    """Return N x I, the stride period that makes accesses single-cluster.

    A memory instruction whose stride is a multiple of this value touches the
    same cluster in every iteration of the unrolled loop.
    """
    return config.interleave_span


def individual_unroll_factor(config: MachineConfig, stride_bytes: int) -> int:
    """The per-instruction unrolling factor U_i of Section 4.3.1, Step 1.

    ``U_i = (N*I) / gcd(N*I, S_i mod N*I)``, capped at ``N*I``.  A stride of
    zero (or already a multiple of N*I) needs no unrolling and returns 1.
    """
    span = config.interleave_span
    residue = stride_bytes % span
    if residue == 0:
        return 1
    return span // math.gcd(span, residue)

"""Tests for the IR operations (repro.ir.operation)."""

import pytest

from repro.ir.operation import (
    MemoryAccess,
    Operation,
    OperationClass,
    load,
    make_operation,
    store,
)


class TestMemoryAccess:
    def test_basic_fields(self):
        access = MemoryAccess(array="a", stride_bytes=4, granularity=4)
        assert access.array == "a"
        assert not access.is_store
        assert not access.indirect
        assert access.stride_known

    def test_rejects_bad_granularity(self):
        with pytest.raises(ValueError):
            MemoryAccess(array="a", granularity=3)

    def test_indirect_needs_index_array(self):
        with pytest.raises(ValueError):
            MemoryAccess(array="a", indirect=True)

    def test_with_offset_and_stride(self):
        access = MemoryAccess(array="a", stride_bytes=4, offset_bytes=8)
        shifted = access.with_offset(4)
        assert shifted.offset_bytes == 12
        widened = access.with_stride(16)
        assert widened.stride_bytes == 16
        # The original is unchanged (the descriptor is immutable).
        assert access.offset_bytes == 8 and access.stride_bytes == 4


class TestOperation:
    def test_make_operation_derives_class(self):
        op = make_operation("a1", "add")
        assert op.op_class is OperationClass.INTEGER
        assert not op.is_memory

    def test_load_and_store_helpers(self):
        ld = load("l", MemoryAccess(array="a", stride_bytes=4))
        st = store("s", MemoryAccess(array="a", stride_bytes=4, is_store=True))
        assert ld.is_load and not ld.is_store
        assert st.is_store and not st.is_load

    def test_load_rejects_store_access(self):
        with pytest.raises(ValueError):
            load("l", MemoryAccess(array="a", is_store=True))

    def test_store_rejects_load_access(self):
        with pytest.raises(ValueError):
            store("s", MemoryAccess(array="a"))

    def test_memory_class_requires_descriptor(self):
        with pytest.raises(ValueError):
            Operation(name="x", mnemonic="ld", op_class=OperationClass.MEMORY)

    def test_non_memory_rejects_descriptor(self):
        with pytest.raises(ValueError):
            Operation(
                name="x",
                mnemonic="add",
                op_class=OperationClass.INTEGER,
                memory=MemoryAccess(array="a"),
            )

    def test_mnemonic_class_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Operation(name="x", mnemonic="add", op_class=OperationClass.FLOAT)

    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(ValueError):
            make_operation("x", "frobnicate")

    def test_renamed_gets_fresh_identity(self):
        op = make_operation("x", "add")
        clone = op.renamed("y")
        assert clone.name == "y"
        assert clone.uid != op.uid
        assert clone.mnemonic == op.mnemonic

    def test_with_memory_replaces_descriptor(self):
        op = load("l", MemoryAccess(array="a", stride_bytes=4))
        moved = op.with_memory(MemoryAccess(array="a", stride_bytes=8))
        assert moved.memory.stride_bytes == 8

    def test_with_memory_rejected_for_compute(self):
        with pytest.raises(ValueError):
            make_operation("x", "add").with_memory(MemoryAccess(array="a"))

    def test_copy_class(self):
        op = make_operation("c", "copy")
        assert op.is_copy

    def test_uids_are_unique(self):
        ops = [make_operation(f"op{i}", "add") for i in range(50)]
        assert len({op.uid for op in ops}) == 50

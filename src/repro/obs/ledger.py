"""The run ledger: one compact, schema-versioned entry per sweep run.

Everything else under ``<results-dir>/obs/`` is *per-run* -- ``finalize_run``
overwrites ``trace.jsonl``/``metrics.json``/``manifest.json`` each time --
but the paper's claims, and every optimisation PR against this repo, are
*comparative*: the question that matters is "did run N get slower than
run N-1, and where?".  The ledger is the cross-run record that makes the
question answerable: ``obs/ledger.jsonl`` is append-only, one JSON line
per finalized run, carrying exactly what a later comparison needs and
nothing bulky:

* provenance -- spec hash, benchmark list, machine grid, granularity,
  workers, ``git describe``, creation time;
* a host fingerprint, so a laptop run is never diffed against a CI run;
* the merged metric counters (artifact-cache hits/puts/evictions, ...);
* per-stage artifact-cache hit rates;
* per-span-name duration digests -- count, total, p50/p90/p99, max from
  the same nearest-rank percentiles ``report --timings`` renders.

Entries are self-describing (``schema`` field); readers skip torn or
foreign-schema lines, so a crashed run can never poison the history.
:mod:`repro.obs.regress` consumes the ledger to produce noise-aware
regression verdicts; ``repro-sweep runs`` lists it.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import platform
import time
from pathlib import Path
from typing import Iterable, Mapping, Optional, Union

from repro.obs.export import percentile, span_durations

#: Version of the ledger-entry format.  Bump when the meaning of entry
#: fields changes so old histories are never misread as comparable.
LEDGER_SCHEMA = 1

#: File name of the ledger inside a store's ``obs/`` directory.
LEDGER_FILENAME = "ledger.jsonl"

#: The percentile fractions recorded per span name.
DIGEST_PERCENTILES: tuple[tuple[str, float], ...] = (
    ("p50", 0.50),
    ("p90", 0.90),
    ("p99", 0.99),
)

_RUN_SEQ = itertools.count(1)


def new_run_id() -> str:
    """A human-sortable, process-unique run identifier.

    ``<UTC stamp>-<pid>-<seq>``: sortable by creation time at one-second
    granularity, unique across concurrent processes through the pid, and
    unique within a process through the sequence number.
    """
    stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime())
    return f"{stamp}-{os.getpid()}-{next(_RUN_SEQ)}"


def host_fingerprint() -> dict[str, object]:
    """What machine this is, plus a short digest over it.

    The fingerprint is what the regression gate keys on: timings are only
    comparable between runs of the same interpreter on the same kind of
    machine, so a baseline recorded elsewhere must never gate a run here.
    """
    info: dict[str, object] = {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
    }
    digest = hashlib.sha256(
        json.dumps(info, sort_keys=True).encode("utf-8")
    ).hexdigest()
    info["fingerprint"] = digest[:16]
    return info


def span_digests(events: Iterable[dict]) -> dict[str, dict[str, object]]:
    """Per-span-name duration digests (seconds) of a run's span events.

    Count, total and nearest-rank p50/p90/p99/max per name -- the compact
    form of the ``--timings`` table, small enough to append per run.
    """
    digests: dict[str, dict[str, object]] = {}
    for name, values in span_durations(events).items():
        digest: dict[str, object] = {
            "count": len(values),
            "total": round(sum(values), 6),
        }
        for label, fraction in DIGEST_PERCENTILES:
            digest[label] = round(percentile(values, fraction), 6)
        digest["max"] = round(max(values), 6)
        digests[name] = digest
    return digests


def stage_rates(
    stage_hits: Mapping[str, int], stage_misses: Mapping[str, int]
) -> dict[str, dict[str, object]]:
    """Per-stage artifact-cache hit rates from the run summary counters."""
    rates: dict[str, dict[str, object]] = {}
    for stage in sorted(set(stage_hits) | set(stage_misses)):
        hits = int(stage_hits.get(stage, 0))
        misses = int(stage_misses.get(stage, 0))
        total = hits + misses
        rates[stage] = {
            "hits": hits,
            "misses": misses,
            "hit_rate": round(hits / total, 4) if total else None,
        }
    return rates


def build_entry(
    manifest: Mapping[str, object],
    events: Iterable[dict],
    metrics_snapshot: Optional[Mapping[str, object]] = None,
    run_id: Optional[str] = None,
) -> dict[str, object]:
    """Assemble one ledger entry from a finalized run's telemetry."""
    run = manifest.get("run") or {}
    counters = dict((metrics_snapshot or {}).get("counters") or {})
    entry: dict[str, object] = {
        "schema": LEDGER_SCHEMA,
        "run_id": run_id or new_run_id(),
        "created": manifest.get("created"),
        "host": host_fingerprint(),
        "git_describe": manifest.get("git_describe"),
        "spec_hash": manifest.get("spec_hash"),
        "benchmarks": manifest.get("benchmarks"),
        "machine_grid": manifest.get("machine_grid"),
        "granularity": manifest.get("granularity"),
        "sim_kernel": manifest.get("sim_kernel"),
        "workers": manifest.get("workers"),
        "run": {
            key: run.get(key)
            for key in (
                "total_jobs",
                "executed",
                "cache_hits",
                "pruned",
                "elapsed_seconds",
            )
            if key in run
        },
        "counters": counters,
        "stages": stage_rates(
            manifest.get("stage_hits") or {}, manifest.get("stage_misses") or {}
        ),
        "spans": span_digests(events),
    }
    if manifest.get("service"):
        # Sweep-service sessions and served requests carry their dedup
        # accounting into the ledger; plain runs stay byte-identical.
        entry["service"] = manifest["service"]
    return entry


def ledger_path(obs_directory: Union[Path, str]) -> Path:
    """The ledger file inside a telemetry directory."""
    return Path(obs_directory) / LEDGER_FILENAME


def append_entry(obs_directory: Union[Path, str], entry: dict) -> Path:
    """Append one entry to the ledger (created on first use).

    Unlike every other file under ``obs/``, the ledger survives run
    finalization: it is the only cross-run state the telemetry keeps.
    A torn final line left by a killed run (no trailing newline) is
    sealed off with a newline first, so it can never glue itself onto --
    and thereby corrupt -- the entry being appended.
    """
    path = ledger_path(obs_directory)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a+b") as handle:
        handle.seek(0, os.SEEK_END)
        if handle.tell() > 0:
            handle.seek(-1, os.SEEK_END)
            if handle.read(1) != b"\n":
                handle.write(b"\n")
        handle.write(
            json.dumps(entry, sort_keys=True).encode("utf-8") + b"\n"
        )
    return path


def read_entries(obs_directory: Union[Path, str]) -> list[dict]:
    """Every readable ledger entry, oldest first.

    Torn lines (a killed run) and foreign-schema lines (an older or newer
    format) are skipped, never fatal -- a comparison tool must not crash
    on the history it is trying to protect.
    """
    path = ledger_path(obs_directory)
    entries: list[dict] = []
    try:
        handle = path.open("r", encoding="utf-8")
    except OSError:
        return entries
    with handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except ValueError:
                continue
            if isinstance(entry, dict) and entry.get("schema") == LEDGER_SCHEMA:
                entries.append(entry)
    return entries

"""Tests of the staged compilation pipeline (PR 4).

Covers the staged-vs-monolithic equivalence contract, the dependency
slices behind the content-addressed stage keys, the process-independent
stage payloads, and the satellite refactors (``CompiledLoop.rejected`` at
construction, ``CompilerOptions.from_description``).
"""

from __future__ import annotations

import pytest

from repro.ir.operation import make_operation
from repro.machine.config import MachineConfig
from repro.profiling.profiler import LoopProfile, profile_loop
from repro.scheduler.core import SchedulingHeuristic
from repro.scheduler.latency import LatencyAssignment, assign_latencies
from repro.scheduler.pipeline import (
    PIPELINE_STAGES,
    CompilerOptions,
    LatencyStage,
    ProfileStage,
    ScheduleStage,
    StageContext,
    UnrollStage,
    compile_loop,
    compile_loop_reference,
)
from repro.scheduler.unrolling import UnrollPolicy
from repro.sim.engine import SimulationOptions, simulate_compiled_loops
from repro.sweep.artifacts import ArtifactCache, ArtifactStore
from repro.sweep.workloads import resolve_workload
from repro.workloads.generator import reduction_kernel, strided_kernel
from repro.workloads.mediabench import BENCHMARK_NAMES, mediabench_suite

SIM = SimulationOptions(iteration_cap=64)


def setups():
    """One setup per cache organization (matching heuristics)."""
    return [
        (MachineConfig.word_interleaved(), CompilerOptions()),
        (
            MachineConfig.unified(latency=1),
            CompilerOptions(heuristic=SchedulingHeuristic.BASE),
        ),
        (
            MachineConfig.multivliw(),
            CompilerOptions(heuristic=SchedulingHeuristic.MULTIVLIW),
        ),
    ]


def assert_compiled_equal(staged, reference) -> None:
    """Field-for-field equivalence of two compiled loops."""
    assert staged.unroll_factor == reference.unroll_factor
    assert staged.ii == reference.ii
    assert staged.estimate == reference.estimate
    assert staged.rejected == reference.rejected
    assert staged.schedule.describe() == reference.schedule.describe()
    # Placement-for-placement: same cluster, cycle and latency per op.
    staged_entries = [
        (entry.operation.name, entry.cluster, entry.start_cycle, entry.assigned_latency)
        for entry in staged.schedule.scheduled_operations()
    ]
    reference_entries = [
        (entry.operation.name, entry.cluster, entry.start_cycle, entry.assigned_latency)
        for entry in reference.schedule.scheduled_operations()
    ]
    assert staged_entries == reference_entries
    assert staged.latency_assignment.target_mii == reference.latency_assignment.target_mii
    staged_latencies = [
        staged.latency_assignment.latency_of(op)
        for op in staged.loop.memory_operations
    ]
    reference_latencies = [
        reference.latency_assignment.latency_of(op)
        for op in reference.loop.memory_operations
    ]
    assert staged_latencies == reference_latencies


class TestStagedVsMonolithicEquivalence:
    """The staged pipeline must match the pre-refactor monolithic path."""

    def test_full_suite_equivalence(self):
        suite = mediabench_suite()
        config = MachineConfig.word_interleaved()
        options = CompilerOptions()
        assert len(BENCHMARK_NAMES) == 14
        for name in BENCHMARK_NAMES:
            for loop in suite[name].loops:
                staged = compile_loop(loop, config, options)
                reference = compile_loop_reference(loop, config, options)
                assert_compiled_equal(staged, reference)
                staged_result = simulate_compiled_loops(
                    [staged], name, config, SIM
                )
                reference_result = simulate_compiled_loops(
                    [reference], name, config, SIM
                )
                assert staged_result.describe() == reference_result.describe()

    def test_equivalence_across_organizations(self):
        benchmark = resolve_workload("kernels-mix")
        for config, options in setups():
            for loop in benchmark.loops:
                staged = compile_loop(loop, config, options)
                reference = compile_loop_reference(loop, config, options)
                assert_compiled_equal(staged, reference)

    def test_cached_path_equivalent_to_uncached(self, tmp_path):
        benchmark = resolve_workload("kernels-mix")
        config = MachineConfig.word_interleaved()
        options = CompilerOptions()
        store = ArtifactStore(tmp_path)
        cold = ArtifactCache(store)
        warm = ArtifactCache(store)  # separate memory front, shared disk
        for loop in benchmark.loops:
            uncached = compile_loop(loop, config, options)
            first = compile_loop(loop, config, options, cache=cold)
            second = compile_loop(loop, config, options, cache=warm)
            assert_compiled_equal(first, uncached)
            assert_compiled_equal(second, uncached)
        assert not cold.hits
        assert sum(warm.hits.values()) == 4 * len(benchmark.loops)
        assert not warm.misses


class TestStageKeys:
    """Stage keys must change exactly when their dependency slice does."""

    LOOP = None

    def ctx(self, **option_changes) -> StageContext:
        loop = resolve_workload("kernel:strided").loops[0]
        config = option_changes.pop("config", MachineConfig.word_interleaved())
        options = CompilerOptions(**option_changes)
        return StageContext(loop, config, options)

    def keys(self, ctx) -> dict[str, str]:
        return {stage.name: stage.key(ctx) for stage in PIPELINE_STAGES}

    def test_heuristic_only_changes_schedule_key(self):
        base = self.keys(self.ctx(heuristic=SchedulingHeuristic.IPBC))
        changed = self.keys(self.ctx(heuristic=SchedulingHeuristic.IBC))
        assert changed["unroll"] == base["unroll"]
        assert changed["profile"] == base["profile"]
        assert changed["latency"] == base["latency"]
        assert changed["schedule"] != base["schedule"]

    def test_use_chains_only_changes_schedule_key(self):
        base = self.keys(self.ctx(use_chains=True))
        changed = self.keys(self.ctx(use_chains=False))
        assert changed["unroll"] == base["unroll"]
        assert changed["profile"] == base["profile"]
        assert changed["latency"] == base["latency"]
        assert changed["schedule"] != base["schedule"]

    def test_attraction_buffers_change_no_compile_key(self):
        base = self.keys(self.ctx(config=MachineConfig.word_interleaved()))
        buffered = self.keys(
            self.ctx(
                config=MachineConfig.word_interleaved(
                    attraction_buffers=True, entries=8
                )
            )
        )
        assert buffered == base

    def test_memory_latencies_spare_unroll_and_profile(self):
        from dataclasses import replace

        from repro.machine.config import MemoryLatencies

        config = MachineConfig.word_interleaved()
        slower = replace(
            config, latencies=MemoryLatencies(remote_miss=20, local_miss=12)
        )
        base = self.keys(self.ctx(config=config))
        changed = self.keys(self.ctx(config=slower))
        assert changed["unroll"] == base["unroll"]
        assert changed["profile"] == base["profile"]
        assert changed["latency"] != base["latency"]
        assert changed["schedule"] != base["schedule"]

    def test_interleaving_changes_every_key(self):
        base = self.keys(self.ctx(config=MachineConfig.word_interleaved()))
        changed = self.keys(
            self.ctx(config=MachineConfig.word_interleaved().with_interleaving(8))
        )
        for stage in ("unroll", "profile", "latency", "schedule"):
            assert changed[stage] != base[stage]

    def test_unroll_policy_changes_every_key(self):
        base = self.keys(self.ctx(unroll_policy=UnrollPolicy.SELECTIVE))
        changed = self.keys(self.ctx(unroll_policy=UnrollPolicy.NONE))
        for stage in ("unroll", "profile", "latency", "schedule"):
            assert changed[stage] != base[stage]

    def test_keys_independent_of_process_history(self):
        """Stage keys never depend on Operation uids.

        Two structurally identical loops built at different points of the
        process's lifetime (different uid ranges) must produce identical
        keys -- that is what makes artifacts shareable across worker
        processes.
        """
        first = strided_kernel("fp", element_bytes=2, stride_elements=8, trip_count=1024)
        # Burn uids so the second loop's operations get a disjoint range.
        for index in range(64):
            make_operation(f"burn{index}", "add")
        second = strided_kernel("fp", element_bytes=2, stride_elements=8, trip_count=1024)
        assert [op.uid for op in first.operations] != [
            op.uid for op in second.operations
        ]
        config = MachineConfig.word_interleaved()
        options = CompilerOptions()
        first_keys = self.keys(StageContext(first, config, options))
        second_keys = self.keys(StageContext(second, config, options))
        assert first_keys == second_keys

    def test_attractable_hint_is_part_of_the_key(self):
        loop = reduction_kernel("hint", element_bytes=4, trip_count=256)
        config = MachineConfig.word_interleaved()
        options = CompilerOptions()
        base = UnrollStage.key(StageContext(loop, config, options))
        op = loop.memory_operations[0]
        object.__setattr__(op.memory, "attractable", False)
        try:
            flipped = UnrollStage.key(StageContext(loop, config, options))
        finally:
            object.__setattr__(op.memory, "attractable", True)
        assert flipped != base


class TestPayloadRoundTrips:
    """Stage payloads rebind losslessly to a fresh process's loops."""

    def test_profile_payload_round_trip(self):
        loop = resolve_workload("kernel:strided").loops[0]
        config = MachineConfig.word_interleaved()
        profile = profile_loop(loop, config, iteration_cap=64)
        clone = LoopProfile.from_payload(profile.to_payload(), loop)
        for op in loop.memory_operations:
            assert clone.hit_rate(op) == profile.hit_rate(op)
            assert clone.preferred_cluster(op) == profile.preferred_cluster(op)
            assert clone.distribution(op) == profile.distribution(op)
        assert clone.profiled_iterations == profile.profiled_iterations
        assert clone.average_trip_count == profile.average_trip_count

    def test_profile_payload_rejects_mismatched_loop(self):
        loop = resolve_workload("kernel:strided").loops[0]
        other = resolve_workload("kernel:stencil").loops[0]
        config = MachineConfig.word_interleaved()
        payload = profile_loop(loop, config, iteration_cap=16).to_payload()
        with pytest.raises(ValueError, match="memory operations"):
            LoopProfile.from_payload(payload, other)

    def test_latency_payload_round_trip(self):
        loop = resolve_workload("kernel:reduction").loops[0]
        config = MachineConfig.word_interleaved()
        profile = profile_loop(loop, config, iteration_cap=64)
        assignment = assign_latencies(loop, config, profile=profile)
        clone = LatencyAssignment.from_payload(
            assignment.to_payload(loop), loop
        )
        assert clone.target_mii == assignment.target_mii
        assert clone.model == assignment.model
        for op in loop.memory_operations:
            assert clone.latency_of(op) == assignment.latency_of(op)
        assert len(clone.steps) == len(assignment.steps)
        for ours, theirs in zip(clone.steps, assignment.steps):
            assert ours.operation == theirs.operation
            assert ours.benefit == theirs.benefit
            assert ours.applied == theirs.applied


class TestCrossProcessArtifacts:
    """Artifacts written under one uid history serve another exactly."""

    def test_rehydration_after_uid_shift(self, tmp_path):
        config = MachineConfig.word_interleaved()
        options = CompilerOptions()
        store = ArtifactStore(tmp_path)

        first = strided_kernel("xp", element_bytes=2, stride_elements=8, trip_count=1024)
        cold = ArtifactCache(store)
        compiled_cold = compile_loop(first, config, options, cache=cold)
        reference = simulate_compiled_loops([compiled_cold], "xp", config, SIM)

        # A "new process": fresh loop objects with different uids, fresh
        # memory front, same disk store.
        for index in range(128):
            make_operation(f"shift{index}", "add")
        second = strided_kernel("xp", element_bytes=2, stride_elements=8, trip_count=1024)
        warm = ArtifactCache(store)
        compiled_warm = compile_loop(second, config, options, cache=warm)
        assert sum(warm.hits.values()) == 4
        assert not warm.misses
        result = simulate_compiled_loops([compiled_warm], "xp", config, SIM)
        assert result.describe() == reference.describe()


class TestCompiledLoopConstruction:
    """Satellite: ``rejected`` is part of construction, not a mutation."""

    def test_rejected_filled_at_construction(self):
        loop = resolve_workload("kernel:streaming").loops[0]
        config = MachineConfig.word_interleaved()
        compiled = compile_loop(loop, config, CompilerOptions())
        reference = compile_loop_reference(loop, config, CompilerOptions())
        # Selective unrolling evaluates several factors, so some estimates
        # must have been rejected -- and they match the monolithic path's.
        assert compiled.rejected
        assert compiled.rejected == reference.rejected
        assert compiled.estimate.factor not in [
            estimate.factor for estimate in compiled.rejected
        ]


class TestCompilerOptionsDescription:
    """Satellite: ``CompilerOptions.from_description`` round trip."""

    def test_round_trip(self):
        options = CompilerOptions(
            heuristic=SchedulingHeuristic.IBC,
            unroll_policy=UnrollPolicy.OUF,
            variable_alignment=False,
            use_chains=False,
            profile_dataset="execution",
            profile_iteration_cap=128,
        )
        assert CompilerOptions.from_description(options.describe()) == options

    def test_defaults_round_trip(self):
        options = CompilerOptions()
        assert CompilerOptions.from_description(options.describe()) == options

    def test_missing_profile_knobs_get_defaults(self):
        description = CompilerOptions().describe()
        description.pop("profile_dataset")
        description.pop("profile_iteration_cap")
        rebuilt = CompilerOptions.from_description(description)
        assert rebuilt.profile_dataset == "profile"
        assert rebuilt.profile_iteration_cap == 512

    def test_unknown_key_rejected(self):
        description = CompilerOptions().describe()
        description["scheduling_mode"] = "aggressive"
        with pytest.raises(ValueError, match="unknown compiler option keys.*scheduling_mode"):
            CompilerOptions.from_description(description)

    def test_missing_core_key_rejected(self):
        description = CompilerOptions().describe()
        description.pop("heuristic")
        with pytest.raises(ValueError, match="missing.*heuristic"):
            CompilerOptions.from_description(description)


class TestStageTimings:
    def test_timings_cover_every_stage(self):
        loop = resolve_workload("kernel:reduction").loops[0]
        timings: dict[str, float] = {}
        compile_loop(
            loop, MachineConfig.word_interleaved(), CompilerOptions(), timings=timings
        )
        assert set(timings) == {stage.name for stage in PIPELINE_STAGES}
        assert all(seconds >= 0.0 for seconds in timings.values())

"""The synthetic Mediabench-like benchmark suite (Table 1 substitute).

Each of the 14 benchmarks evaluated in the paper is modelled as a small set
of loop kernels whose memory behaviour matches what the paper reports about
the original program:

* the dominant data size and its share of dynamic accesses (Table 1),
* the fraction of indirect accesses (Section 5.2: jpegdec 40%, jpegenc 23%,
  pegwitdec 93%, pegwitenc 13%),
* double-precision accesses (mpeg2dec, ~50%),
* long memory dependent chains (epicdec -- including its 19-memory-operation
  loop -- pgpdec, pgpenc, rasta),
* heap-allocated, large-stride data whose preferred cluster moves between
  inputs (the gsmdec example of Section 4.3.4), and
* negligible stall time for g721dec/g721enc.

The absolute trip counts are scaled down so the whole suite compiles and
simulates in seconds; all comparative metrics are ratios, so the scaling
does not affect the shapes the experiments reproduce.
"""

from __future__ import annotations

from functools import lru_cache

from repro.ir.loop import StorageClass
from repro.workloads.generator import (
    iir_kernel,
    indirect_kernel,
    long_chain_kernel,
    reduction_kernel,
    stencil_kernel,
    streaming_kernel,
    strided_kernel,
    update_kernel,
    wide_kernel,
)
from repro.workloads.spec import Benchmark, BenchmarkCharacteristics, BenchmarkSuite

#: Names of the 14 benchmarks, in the order the paper's figures use.
BENCHMARK_NAMES = (
    "epicdec",
    "epicenc",
    "g721dec",
    "g721enc",
    "gsmdec",
    "gsmenc",
    "jpegdec",
    "jpegenc",
    "mpeg2dec",
    "pegwitdec",
    "pegwitenc",
    "pgpdec",
    "pgpenc",
    "rasta",
)


def _epicdec() -> Benchmark:
    """EPIC decoder: wavelet reconstruction with unresolvable pointer refs."""
    loops = [
        long_chain_kernel(
            "epicdec_unquant", num_loads=19, element_bytes=4, trip_count=1200,
            weight=3.0, storage=StorageClass.HEAP,
        ),
        iir_kernel(
            "epicdec_filter", element_bytes=4, float_ops=True, trip_count=1600,
            weight=2.0, storage=StorageClass.HEAP,
        ),
        streaming_kernel(
            "epicdec_expand", element_bytes=4, num_inputs=2, trip_count=2000,
            weight=1.5,
        ),
    ]
    return Benchmark(
        name="epicdec",
        loops=loops,
        characteristics=BenchmarkCharacteristics(
            dominant_element_bytes=4, dominant_fraction=0.84, chain_heavy=True,
            description="wavelet image decoder; long memory dependent chains",
        ),
    )


def _epicenc() -> Benchmark:
    """EPIC encoder: wavelet analysis plus run-length/huffman statistics."""
    loops = [
        stencil_kernel(
            "epicenc_analysis", element_bytes=4, taps=5, trip_count=2000, weight=2.5,
        ),
        indirect_kernel(
            "epicenc_stats", element_bytes=4, with_update=True, trip_count=1200,
            weight=1.0, table_elements=512,
        ),
        reduction_kernel(
            "epicenc_energy", element_bytes=4, float_ops=True, trip_count=2000,
            weight=1.5,
        ),
    ]
    return Benchmark(
        name="epicenc",
        loops=loops,
        characteristics=BenchmarkCharacteristics(
            dominant_element_bytes=4, dominant_fraction=0.89, indirect_fraction=0.15,
            description="wavelet image encoder; spread preferred clusters",
        ),
    )


def _g721(name: str) -> Benchmark:
    """G.721 ADPCM codec: small working set, register-carried predictor."""
    loops = [
        reduction_kernel(
            f"{name}_predict", element_bytes=2, num_inputs=2, compute_depth=3,
            trip_count=2400, weight=3.0, array_elements=512,
        ),
        update_kernel(
            f"{name}_adapt", element_bytes=2, trip_count=1600, weight=1.5,
            array_elements=256,
        ),
        streaming_kernel(
            f"{name}_quant", element_bytes=2, num_inputs=1, trip_count=2000,
            weight=1.0, array_elements=512,
        ),
    ]
    return Benchmark(
        name=name,
        loops=loops,
        characteristics=BenchmarkCharacteristics(
            dominant_element_bytes=2,
            dominant_fraction=0.89 if name.endswith("dec") else 0.917,
            description="ADPCM codec; tiny working set, negligible stall time",
        ),
    )


def _gsm(name: str) -> Benchmark:
    """GSM full-rate codec: 2-byte data, lattice filters, heap buffers."""
    loops = [
        reduction_kernel(
            f"{name}_lattice", element_bytes=2, num_inputs=2, compute_depth=4,
            float_ops=False, trip_count=2400, weight=3.0, storage=StorageClass.HEAP,
        ),
        strided_kernel(
            f"{name}_subsample", element_bytes=2, stride_elements=8, trip_count=1500,
            weight=1.5, storage=StorageClass.HEAP,
        ),
        iir_kernel(
            f"{name}_ltp", element_bytes=2, extra_inputs=1, compute_depth=3,
            float_ops=False, trip_count=2000, weight=1.5, storage=StorageClass.HEAP,
        ),
        streaming_kernel(
            f"{name}_preprocess", element_bytes=2, num_inputs=1, trip_count=1600,
            weight=1.0, storage=StorageClass.HEAP,
        ),
    ]
    return Benchmark(
        name=name,
        loops=loops,
        characteristics=BenchmarkCharacteristics(
            dominant_element_bytes=2, dominant_fraction=0.99,
            description="GSM codec; 2-byte data, alignment-sensitive heap buffers",
        ),
    )


def _jpegdec() -> Benchmark:
    """JPEG decoder: 1-byte samples, heavy table lookups (dequant/IDCT clamp)."""
    loops = [
        indirect_kernel(
            "jpegdec_clamp", element_bytes=1, index_bytes=2, trip_count=2400,
            weight=2.5, table_elements=1024,
        ),
        indirect_kernel(
            "jpegdec_dequant", element_bytes=2, index_bytes=1, trip_count=1600,
            weight=1.5, table_elements=256,
        ),
        stencil_kernel(
            "jpegdec_idct", element_bytes=1, taps=3, float_ops=False, trip_count=2000,
            weight=2.0,
        ),
        streaming_kernel(
            "jpegdec_copy", element_bytes=1, num_inputs=1, compute_depth=1,
            trip_count=2000, weight=1.0,
        ),
    ]
    return Benchmark(
        name="jpegdec",
        loops=loops,
        characteristics=BenchmarkCharacteristics(
            dominant_element_bytes=1, dominant_fraction=0.53, indirect_fraction=0.40,
            description="JPEG decoder; 40% indirect accesses, unclear preferences",
        ),
    )


def _jpegenc() -> Benchmark:
    """JPEG encoder: DCT + quantisation + entropy statistics."""
    loops = [
        stencil_kernel(
            "jpegenc_dct", element_bytes=4, taps=4, float_ops=False, trip_count=2400,
            weight=2.5,
        ),
        indirect_kernel(
            "jpegenc_huff", element_bytes=4, index_bytes=2, with_update=True,
            trip_count=1200, weight=1.0, table_elements=512,
        ),
        # The paper discusses loop 67 of jpegenc: II 9 with IBC, II 10 with
        # IPBC because of 8 extra communications.
        iir_kernel(
            "jpegenc_loop67", element_bytes=4, extra_inputs=2, compute_depth=3,
            float_ops=False, trip_count=2000, weight=2.0,
        ),
        streaming_kernel(
            "jpegenc_downsample", element_bytes=1, num_inputs=2, trip_count=1600,
            weight=1.0,
        ),
    ]
    return Benchmark(
        name="jpegenc",
        loops=loops,
        characteristics=BenchmarkCharacteristics(
            dominant_element_bytes=4, dominant_fraction=0.70, indirect_fraction=0.23,
            description="JPEG encoder; mixed widths, some indirect accesses",
        ),
    )


def _mpeg2dec() -> Benchmark:
    """MPEG-2 decoder: half of the references are double precision."""
    loops = [
        wide_kernel(
            "mpeg2dec_idct", wide_bytes=8, narrow_bytes=4, trip_count=2400, weight=3.0,
        ),
        wide_kernel(
            "mpeg2dec_mc", wide_bytes=8, narrow_bytes=2, trip_count=2000, weight=2.0,
        ),
        streaming_kernel(
            "mpeg2dec_saturate", element_bytes=1, num_inputs=1, trip_count=2000,
            weight=1.0,
        ),
        indirect_kernel(
            "mpeg2dec_vlc", element_bytes=2, index_bytes=2, trip_count=1200,
            weight=1.0, table_elements=512,
        ),
    ]
    return Benchmark(
        name="mpeg2dec",
        loops=loops,
        characteristics=BenchmarkCharacteristics(
            dominant_element_bytes=8, dominant_fraction=0.49, wide_fraction=0.50,
            indirect_fraction=0.10,
            description="MPEG-2 decoder; ~50% double-precision references",
        ),
    )


def _pegwit(name: str, indirect_fraction: float) -> Benchmark:
    """Pegwit public-key encryption: finite-field arithmetic over tables."""
    heavy_indirect = indirect_fraction > 0.5
    loops = [
        indirect_kernel(
            f"{name}_gfmul", element_bytes=2, index_bytes=2, with_update=heavy_indirect,
            trip_count=2400, weight=3.0 if heavy_indirect else 1.0,
            table_elements=1024,
        ),
        update_kernel(
            f"{name}_sha", element_bytes=2, compute_depth=4, trip_count=2000,
            weight=1.5,
        ),
        reduction_kernel(
            f"{name}_checksum", element_bytes=2, trip_count=1600, weight=1.0,
        ),
        streaming_kernel(
            f"{name}_copy", element_bytes=2, num_inputs=1, compute_depth=1,
            trip_count=2000, weight=1.0 if heavy_indirect else 2.5,
        ),
    ]
    return Benchmark(
        name=name,
        loops=loops,
        characteristics=BenchmarkCharacteristics(
            dominant_element_bytes=2,
            dominant_fraction=0.758 if heavy_indirect else 0.836,
            indirect_fraction=indirect_fraction,
            description="elliptic-curve crypto; table-driven field arithmetic",
        ),
    )


def _pgp(name: str) -> Benchmark:
    """PGP: multiprecision integer arithmetic with carry chains."""
    loops = [
        long_chain_kernel(
            f"{name}_mpmul", num_loads=8, element_bytes=4, compute_depth=2,
            trip_count=2000, weight=3.0,
        ),
        update_kernel(
            f"{name}_mpadd", element_bytes=4, compute_depth=2, trip_count=2400,
            weight=2.0,
        ),
        indirect_kernel(
            f"{name}_sbox", element_bytes=4, index_bytes=1, trip_count=1200,
            weight=1.0, table_elements=256,
        ),
        streaming_kernel(
            f"{name}_copy", element_bytes=4, num_inputs=1, compute_depth=1,
            trip_count=1600, weight=1.0,
        ),
    ]
    return Benchmark(
        name=name,
        loops=loops,
        characteristics=BenchmarkCharacteristics(
            dominant_element_bytes=4,
            dominant_fraction=0.921 if name.endswith("dec") else 0.732,
            chain_heavy=True,
            description="public-key cryptography; carry chains limit disambiguation",
        ),
    )


def _rasta() -> Benchmark:
    """RASTA speech analysis: floating-point filter banks with feedback."""
    loops = [
        iir_kernel(
            "rasta_iir", element_bytes=4, extra_inputs=2, compute_depth=3,
            float_ops=True, trip_count=2400, weight=3.0, storage=StorageClass.HEAP,
        ),
        long_chain_kernel(
            "rasta_bands", num_loads=10, element_bytes=4, trip_count=1600, weight=2.0,
            storage=StorageClass.HEAP,
        ),
        reduction_kernel(
            "rasta_power", element_bytes=4, float_ops=True, trip_count=2000,
            weight=1.5,
        ),
        streaming_kernel(
            "rasta_window", element_bytes=4, num_inputs=2, float_ops=True,
            trip_count=2000, weight=1.0,
        ),
    ]
    return Benchmark(
        name="rasta",
        loops=loops,
        characteristics=BenchmarkCharacteristics(
            dominant_element_bytes=4, dominant_fraction=0.95, chain_heavy=True,
            description="speech feature extraction; FP filter banks with feedback",
        ),
    )


_FACTORIES = {
    "epicdec": _epicdec,
    "epicenc": _epicenc,
    "g721dec": lambda: _g721("g721dec"),
    "g721enc": lambda: _g721("g721enc"),
    "gsmdec": lambda: _gsm("gsmdec"),
    "gsmenc": lambda: _gsm("gsmenc"),
    "jpegdec": _jpegdec,
    "jpegenc": _jpegenc,
    "mpeg2dec": _mpeg2dec,
    "pegwitdec": lambda: _pegwit("pegwitdec", indirect_fraction=0.93),
    "pegwitenc": lambda: _pegwit("pegwitenc", indirect_fraction=0.13),
    "pgpdec": lambda: _pgp("pgpdec"),
    "pgpenc": lambda: _pgp("pgpenc"),
    "rasta": _rasta,
}


def make_benchmark(name: str) -> Benchmark:
    """Build one benchmark by name (a fresh instance every call)."""
    try:
        factory = _FACTORIES[name]
    except KeyError as error:
        raise KeyError(
            f"unknown benchmark {name!r}; known: {', '.join(BENCHMARK_NAMES)}"
        ) from error
    return factory()


@lru_cache(maxsize=None)
def _cached_suite(names: tuple[str, ...]) -> BenchmarkSuite:
    return BenchmarkSuite([make_benchmark(name) for name in names])


def mediabench_suite(names: tuple[str, ...] = BENCHMARK_NAMES) -> BenchmarkSuite:
    """The full 14-benchmark suite (cached; loops are shared across callers)."""
    return _cached_suite(tuple(names))


def small_suite() -> BenchmarkSuite:
    """A four-benchmark subset used by fast tests and the quickstart example."""
    return _cached_suite(("epicdec", "gsmdec", "jpegenc", "mpeg2dec"))

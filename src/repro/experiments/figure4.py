"""Figure 4: classification of memory accesses under the IPBC heuristic.

For every benchmark the paper draws four bars -- (i) no unrolling with
variable alignment, (ii) OUF unrolling without variable alignment, (iii) OUF
unrolling with variable alignment, and (iv) OUF unrolling with variable
alignment and no memory dependent chains -- each split into local hits,
remote hits, local misses, remote misses and combined accesses.  The headline
numbers are the average local-hit-ratio improvements: about +20% from
variable alignment and about +27% from OUF unrolling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.metrics import arithmetic_mean
from repro.experiments.common import (
    ArchitectureSetup,
    ExperimentOptions,
    ExperimentResult,
    ExperimentRunner,
    interleaved_setup,
)
from repro.scheduler.core import SchedulingHeuristic
from repro.scheduler.unrolling import UnrollPolicy

#: The four bars of the figure, in paper order.
VARIANTS: tuple[tuple[str, dict], ...] = (
    ("no-unroll+align", dict(unroll_policy=UnrollPolicy.NONE, variable_alignment=True)),
    ("ouf+no-align", dict(unroll_policy=UnrollPolicy.OUF, variable_alignment=False)),
    ("ouf+align", dict(unroll_policy=UnrollPolicy.OUF, variable_alignment=True)),
    (
        "ouf+align+no-chains",
        dict(
            unroll_policy=UnrollPolicy.OUF, variable_alignment=True, use_chains=False
        ),
    ),
)

_FRACTION_KEYS = ("local_hits", "remote_hits", "local_misses", "remote_misses", "combined")


def _setup_for(variant_name: str, variant_options: dict) -> ArchitectureSetup:
    return interleaved_setup(
        heuristic=SchedulingHeuristic.IPBC,
        attraction_buffers=False,
        name=f"ipbc/{variant_name}",
        **variant_options,
    )


def sweep_setups() -> list[ArchitectureSetup]:
    """The setups this figure simulates, for sweep prewarming."""
    return [_setup_for(name, options) for name, options in VARIANTS]


@dataclass
class Figure4Row:
    """One bar of the figure: a benchmark under one scheduling variant."""

    benchmark: str
    variant: str
    fractions: dict[str, float]

    @property
    def local_hit_ratio(self) -> float:
        """Fraction of accesses that are local hits."""
        return self.fractions["local_hits"]


def run_figure4(
    runner: Optional[ExperimentRunner] = None,
    options: Optional[ExperimentOptions] = None,
) -> tuple[list[Figure4Row], ExperimentResult]:
    """Regenerate the data behind Figure 4."""
    runner = runner or ExperimentRunner(options)
    rows: list[Figure4Row] = []
    result = ExperimentResult(
        title="Figure 4 - memory access classification (IPBC)",
        headers=["benchmark", "variant", *_FRACTION_KEYS],
    )

    per_variant_ratio: dict[str, list[float]] = {name: [] for name, _ in VARIANTS}
    for benchmark in runner.benchmarks:
        for variant_name, variant_options in VARIANTS:
            setup = _setup_for(variant_name, variant_options)
            sim = runner.run_benchmark(benchmark, setup)
            fractions = sim.access_counters().fractions()
            row = Figure4Row(
                benchmark=benchmark.name, variant=variant_name, fractions=fractions
            )
            rows.append(row)
            per_variant_ratio[variant_name].append(row.local_hit_ratio)
            result.add_row(
                [
                    benchmark.name,
                    variant_name,
                    *[fractions[key] for key in _FRACTION_KEYS],
                ]
            )

    means = {name: arithmetic_mean(values) for name, values in per_variant_ratio.items()}
    for variant_name, _ in VARIANTS:
        result.add_row(
            ["AMEAN", variant_name]
            + [means[variant_name] if key == "local_hits" else "" for key in _FRACTION_KEYS]
        )

    alignment_gain = means["ouf+align"] - means["ouf+no-align"]
    unrolling_gain = means["ouf+align"] - means["no-unroll+align"]
    result.notes.append(
        f"local-hit-ratio gain from variable alignment (OUF): {alignment_gain:+.3f} "
        "(paper: about +0.20)"
    )
    result.notes.append(
        f"local-hit-ratio gain from OUF unrolling (aligned): {unrolling_gain:+.3f} "
        "(paper: about +0.27)"
    )
    return rows, result


def alignment_and_unrolling_gains(rows: list[Figure4Row]) -> dict[str, float]:
    """Average local-hit-ratio gains implied by a set of Figure-4 rows."""
    by_variant: dict[str, list[float]] = {}
    for row in rows:
        by_variant.setdefault(row.variant, []).append(row.local_hit_ratio)
    means = {name: arithmetic_mean(values) for name, values in by_variant.items()}
    return {
        "alignment_gain": means.get("ouf+align", 0.0) - means.get("ouf+no-align", 0.0),
        "unrolling_gain": means.get("ouf+align", 0.0)
        - means.get("no-unroll+align", 0.0),
        "chain_cost": means.get("ouf+align+no-chains", 0.0)
        - means.get("ouf+align", 0.0),
    }

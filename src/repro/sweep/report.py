"""Rendering of stored sweep results as text tables or JSON rows."""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Iterable, Mapping, Optional, Sequence, Union

from repro.analysis.report import format_table
from repro.obs import events as obs_events
from repro.obs import ledger as obs_ledger
from repro.obs.export import percentile, timings_summary, timings_table
from repro.sweep.spec import SweepSpec
from repro.sweep.store import ResultStore

#: Metric columns shown by default, in order.
DEFAULT_METRICS: tuple[str, ...] = (
    "total_cycles",
    "compute_cycles",
    "stall_cycles",
    "stall_ratio",
    "local_hit_ratio",
    "workload_balance",
    "ipc",
)

#: Record granularities a report can select.
GRANULARITIES = ("benchmark", "loop", "all")


def record_granularity(record: dict) -> str:
    """Whether a stored record covers a whole benchmark or one loop."""
    return "loop" if record.get("job", {}).get("loop") else "benchmark"


def _job_summary(record: dict) -> dict[str, object]:
    job = record.get("job", {})
    machine = job.get("machine", {})
    compiler = job.get("compiler", {})
    attraction = machine.get("attraction_buffer", {})
    return {
        "benchmark": job.get("benchmark", "?"),
        "loop": job.get("loop", ""),
        "architecture": record.get("architecture", machine.get("organization", "?")),
        "clusters": machine.get("clusters", "?"),
        "interleaving": machine.get("interleaving_factor", "?"),
        "ab_entries": attraction.get("entries", 0) if attraction.get("enabled") else 0,
        "heuristic": compiler.get("heuristic", "?"),
        "unroll": compiler.get("unroll_policy", "?"),
        "source": record.get("source", "simulator"),
    }


def _report_rows(
    records: Iterable[dict],
    metrics: Sequence[str],
    sort_by: str,
    benchmark: Optional[str],
    key_length: Optional[int] = 12,
    granularity: str = "benchmark",
) -> tuple[list[str], list[dict[str, object]]]:
    """Shared row assembly of the table and JSON renderings.

    ``granularity`` selects benchmark-level records (the default; also
    matches every record written before loop-granularity sweeps existed),
    loop-level records, or both.  An unknown ``sort_by`` column raises
    ValueError listing the valid columns rather than silently falling back
    to the benchmark sort.
    """
    if granularity not in GRANULARITIES:
        raise ValueError(
            f"unknown granularity {granularity!r}; "
            f"valid: {', '.join(GRANULARITIES)}"
        )
    headers = [
        "benchmark",
        "loop",
        "architecture",
        "clusters",
        "interleaving",
        "ab_entries",
        "heuristic",
        "unroll",
        "source",
        *metrics,
        "key",
    ]
    if granularity == "benchmark":
        # Benchmark-level rows have no loop column (and old stores never
        # did), so it is not a valid sort target either.
        headers.remove("loop")
    if sort_by not in headers:
        raise ValueError(
            f"unknown sort column {sort_by!r}; "
            f"valid columns: {', '.join(headers)}"
        )
    rows = []
    for record in records:
        if granularity != "all" and record_granularity(record) != granularity:
            continue
        summary = _job_summary(record)
        if benchmark is not None and summary["benchmark"] != benchmark:
            continue
        values = record.get("metrics", {})
        key = str(record.get("key", ""))
        rows.append(
            {
                **summary,
                **{name: values.get(name, "") for name in metrics},
                "key": key[:key_length] if key_length else key,
            }
        )
    if granularity == "benchmark":
        for row in rows:
            row.pop("loop", None)
    rows.sort(
        key=lambda row: (
            _sortable(row[sort_by]),
            str(row["benchmark"]),
            str(row.get("loop", "")),
        )
    )
    return headers, rows


def render_report(
    records: Iterable[dict],
    metrics: Sequence[str] = DEFAULT_METRICS,
    sort_by: str = "benchmark",
    benchmark: Optional[str] = None,
    title: str = "Sweep results",
    granularity: str = "benchmark",
) -> str:
    """Render records as an aligned table, one row per stored job."""
    headers, rows = _report_rows(
        records, metrics, sort_by, benchmark, granularity=granularity
    )
    if not rows:
        return f"{title}\n(no stored results)"
    return format_table(headers, [[row[name] for name in headers] for row in rows], title=title)


def render_report_json(
    records: Iterable[dict],
    metrics: Sequence[str] = DEFAULT_METRICS,
    sort_by: str = "benchmark",
    benchmark: Optional[str] = None,
    granularity: str = "benchmark",
) -> str:
    """Render records as a JSON array of flat row objects.

    The machine-readable twin of :func:`render_report` -- same rows, same
    sorting, full (untruncated) job keys -- so model-vs-simulator
    comparisons can be scripted against ``repro-sweep report --format
    json``.
    """
    _, rows = _report_rows(
        records, metrics, sort_by, benchmark, key_length=None,
        granularity=granularity,
    )
    return json.dumps(rows, indent=2, sort_keys=True)


def render_timings(
    store_root: Union[Path, str], records: Iterable[dict]
) -> str:
    """Per-stage and per-job duration percentiles of the last run.

    Two tables: span timings from the finalized run trace
    (``<store>/obs/trace.jsonl`` -- pipeline stages, simulator phases,
    worker jobs), and per-benchmark ``elapsed_seconds`` percentiles from
    the stored records.  The record table only counts fresh simulator
    timings (``source_timing == "measured"``): model predictions and
    loop-granularity replays from earlier runs would skew the
    percentiles of what this run actually paid for.
    """
    sections = []
    trace_path = obs_events.obs_dir(store_root) / obs_events.TRACE_FILENAME
    events = list(obs_events.read_events(trace_path))
    if events:
        sections.append(
            timings_summary(events, title=f"span timings - {trace_path}")
        )
    else:
        sections.append(
            f"span timings - no run trace at {trace_path}\n"
            "(run a sweep against this store with REPRO_OBS enabled)"
        )
    groups: dict[str, list[float]] = {}
    for record in records:
        if record.get("source", "simulator") == "model":
            continue
        if record.get("source_timing", "measured") != "measured":
            continue
        name = record.get("job", {}).get("benchmark", "?")
        groups.setdefault(f"job.{name}", []).append(
            float(record.get("elapsed_seconds", 0.0))
        )
    sections.append(
        timings_table(
            {name: groups[name] for name in sorted(groups)},
            title="job elapsed_seconds (fresh simulator records only)",
        )
    )
    stragglers = render_stragglers(events)
    if stragglers is not None:
        sections.append(stragglers)
    return "\n\n".join(sections)


def render_stragglers(events: Iterable[dict]) -> Optional[str]:
    """Jobs finalize_run flagged as stragglers, slowest first (or None).

    A straggler is a ``sweep.job`` span whose duration exceeded k x the
    run's median job duration (``REPRO_OBS_STRAGGLER_K``, default 3);
    the annotation is made at finalization, so this only reads it back.
    """
    flagged = [
        event
        for event in events
        if event.get("kind") == "span"
        and (event.get("attrs") or {}).get("straggler")
    ]
    if not flagged:
        return None
    flagged.sort(key=lambda event: -float(event.get("dur", 0.0)))
    rows = []
    for event in flagged:
        attrs = event.get("attrs") or {}
        rows.append(
            [
                attrs.get("benchmark", "?"),
                attrs.get("loop") or "",
                attrs.get("architecture", "?"),
                f"{float(event.get('dur', 0.0)):.4f}",
                f"{attrs.get('straggler_ratio', '?')}x median",
            ]
        )
    return format_table(
        ["benchmark", "loop", "architecture", "seconds", "vs median"],
        rows,
        title=f"stragglers - {len(rows)} job(s) exceeded the straggler "
        "threshold",
    )


def render_runs(
    entries: Sequence[Mapping], limit: Optional[int] = None
) -> str:
    """The run ledger as a table, most recent run last."""
    if not entries:
        return "run ledger: (no entries)"
    shown = list(entries[-limit:] if limit else entries)
    rows = []
    for entry in shown:
        run = entry.get("run") or {}
        host = entry.get("host") or {}
        spec_hash = str(entry.get("spec_hash") or "?")
        rows.append(
            [
                entry.get("run_id", "?"),
                entry.get("created", "?"),
                spec_hash[:12],
                host.get("fingerprint", "?"),
                run.get("total_jobs", "?"),
                run.get("executed", "?"),
                run.get("cache_hits", "?"),
                run.get("elapsed_seconds", "?"),
                entry.get("git_describe") or "?",
            ]
        )
    title = f"run ledger - {len(entries)} run(s)"
    if limit and len(entries) > limit:
        title += f", showing last {len(shown)}"
    return format_table(
        [
            "run_id",
            "created",
            "spec",
            "host",
            "jobs",
            "executed",
            "hits",
            "seconds",
            "git",
        ],
        rows,
        title=title,
    )


def render_regress(comparison: Mapping) -> str:
    """A regression comparison as a human-readable report."""
    lines = [
        "regression check: "
        f"{comparison.get('current_run_id')} vs baseline "
        f"{comparison.get('baseline_run_id')}",
        f"  thresholds: {comparison.get('stat')} must grow by more than "
        f"{float(comparison.get('rel_threshold', 0.0)):.0%} and "
        f"{float(comparison.get('abs_floor', 0.0)) * 1e3:g}ms to regress",
    ]
    rows = []
    for row in comparison.get("spans") or []:
        if row["verdict"] == "ok":
            continue
        fmt = lambda value: "-" if value is None else f"{value:.6f}"
        rows.append(
            [
                row["name"],
                row["verdict"],
                fmt(row.get("baseline")),
                fmt(row.get("current")),
                fmt(row.get("delta")),
                "-" if row.get("ratio") is None else f"{row['ratio']:.2f}x",
            ]
        )
    if rows:
        lines.append(
            format_table(
                ["span", "verdict", "baseline_p50", "current_p50", "delta", "ratio"],
                rows,
                title="span verdicts (ok rows omitted)",
            )
        )
    else:
        lines.append("  all spans within thresholds")
    changed = [
        counter
        for counter in comparison.get("counters") or []
        if counter.get("delta")
    ]
    if changed:
        lines.append(
            format_table(
                ["counter", "baseline", "current", "delta"],
                [
                    [c["name"], c.get("baseline"), c.get("current"), c["delta"]]
                    for c in changed
                ],
                title="counter deltas (informational)",
            )
        )
    regressions = comparison.get("regressions") or []
    if regressions:
        lines.append(f"REGRESSION: {', '.join(regressions)}")
    else:
        lines.append("no regressions")
    return "\n".join(lines)


def watch_snapshot(store_root: Union[Path, str]) -> Optional[dict]:
    """One observation of an in-progress run's shard telemetry.

    None when no run header is present (nothing live).  Completed units
    come from the header's ``completed_units`` when the writer maintains
    it (the sweep service does; its worker shards accumulate spans over
    the server's whole lifetime, so the per-shard ``sweep.job`` span
    count is a lifetime total, not this snapshot's progress) and are
    otherwise counted as ``sweep.job`` spans across the worker shards.
    The ETA extrapolates from the running median job duration and the
    worker count, so it sharpens as the run progresses.
    """
    header = obs_events.load_run_header(store_root)
    if header is None:
        return None
    directory = obs_events.obs_dir(store_root)
    durations: list[float] = []
    stage_hits: dict[str, int] = {}
    stage_totals: dict[str, int] = {}
    for shard in sorted(directory.glob(f"{obs_events.SHARD_PREFIX}*.jsonl")):
        for event in obs_events.read_events(shard):
            if event.get("kind") != "span":
                continue
            name = event.get("name")
            if name == "sweep.job":
                durations.append(float(event.get("dur", 0.0)))
            elif isinstance(name, str) and name.startswith("stage."):
                stage = name[len("stage."):]
                stage_totals[stage] = stage_totals.get(stage, 0) + 1
                if (event.get("attrs") or {}).get("cache_hit"):
                    stage_hits[stage] = stage_hits.get(stage, 0) + 1
    total = int(header.get("total_units") or 0)
    if header.get("completed_units") is not None:
        done = int(header.get("completed_units") or 0)
    else:
        done = len(durations)
    elapsed = max(0.0, time.time() - float(header.get("started") or 0.0))
    workers = max(1, int(header.get("workers") or 1))
    median = percentile(durations, 0.5) if durations else None
    eta = None
    if median is not None and total > done:
        eta = (total - done) * median / workers
    return {
        "header": header,
        "total_units": total,
        "completed": done,
        "elapsed_seconds": elapsed,
        "median_job_seconds": median,
        "eta_seconds": eta,
        "stages": {
            stage: {
                "hits": stage_hits.get(stage, 0),
                "total": stage_totals.get(stage, 0),
            }
            for stage in sorted(stage_totals)
        },
    }


def render_watch(snapshot: Mapping) -> str:
    """One ``repro-sweep watch`` progress line block from a snapshot."""
    total = snapshot["total_units"]
    done = snapshot["completed"]
    header = snapshot["header"]
    share = f" ({done / total:.0%})" if total else ""
    kind = "service" if header.get("service") else "run"
    failed = int(header.get("failed") or 0)
    failed_text = f", {failed} failed" if failed else ""
    lines = [
        f"{kind} {header.get('run_id', '?')}: "
        f"{done}/{total or '?'} jobs{share}{failed_text}, "
        f"{snapshot['elapsed_seconds']:.1f}s elapsed"
    ]
    if header.get("service"):
        lines.append(
            f"  requests: {header.get('requests_total', 0)} total, "
            f"{header.get('requests_active', 0)} active; dedup served "
            f"{header.get('served_stored', 0)} stored, "
            f"{header.get('served_inflight', 0)} in-flight"
        )
    median = snapshot.get("median_job_seconds")
    if median is not None:
        eta = snapshot.get("eta_seconds")
        eta_text = f", ~{eta:.0f}s left" if eta is not None else ""
        lines.append(f"  median job {median:.3f}s{eta_text}")
    stages = snapshot.get("stages") or {}
    if stages:
        parts = [
            f"{stage} {info['hits']}/{info['total']}"
            for stage, info in stages.items()
        ]
        lines.append("  stage cache: " + ", ".join(parts) + " (hits/lookups)")
    return "\n".join(lines)


def render_telemetry_status(store_root: Union[Path, str]) -> Optional[str]:
    """Counter/manifest lines of the last finalized run, if any."""
    metrics = obs_events.load_metrics(store_root)
    if metrics is None:
        return None
    lines = ["telemetry (last finalized run):"]
    manifest = obs_events.load_manifest(store_root)
    if manifest is not None:
        created = manifest.get("created", "?")
        described = manifest.get("git_describe") or "?"
        lines.append(f"  run: created {created}, git {described}")
    counters = metrics.get("counters") or {}
    for name in sorted(counters):
        lines.append(f"  {name} = {counters[name]}")
    gauges = metrics.get("gauges") or {}
    for name in sorted(gauges):
        entry = gauges[name]
        value = entry.get("value") if isinstance(entry, dict) else entry
        lines.append(f"  {name} = {value}")
    if len(lines) == 1:
        lines.append("  (no counters recorded)")
    entries = obs_ledger.read_entries(obs_events.obs_dir(store_root))
    if entries:
        lines.append(
            f"  ledger: {len(entries)} run(s) recorded "
            "(see 'runs' and 'regress')"
        )
    return "\n".join(lines)


def _sortable(value: object) -> tuple:
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return (0, float(value), "")
    return (1, 0.0, str(value))


def render_status(
    store: ResultStore,
    spec: Optional[SweepSpec] = None,
    artifacts=None,
) -> str:
    """Summarize store contents, optionally against a spec's grid.

    Loop-level records (written by ``--granularity loop`` runs) are
    counted separately from the benchmark-level records everything else
    keys on; a store without them reports exactly what it always did.
    ``artifacts`` (an :class:`~repro.sweep.artifacts.ArtifactStore`) adds
    a compilation-stage artifact count line when given.
    """
    keys = store.keys()
    lines = [f"result store: {store.root}"]
    per_benchmark: dict[str, int] = {}
    failed_per_benchmark: dict[str, int] = {}
    model_only = 0
    failed = 0
    loop_level = 0
    benchmark_level = 0
    simulated_keys: set[str] = set()
    failed_keys: set[str] = set()
    for record in store.records():
        source = record.get("source", "simulator")
        if record_granularity(record) == "loop":
            loop_level += 1
            if source == "failed":
                failed += 1
            continue
        benchmark_level += 1
        name = record.get("job", {}).get("benchmark", "?")
        per_benchmark[name] = per_benchmark.get(name, 0) + 1
        if source == "model":
            model_only += 1
        elif source == "failed":
            failed += 1
            failed_per_benchmark[name] = failed_per_benchmark.get(name, 0) + 1
            failed_keys.add(str(record.get("key", "")))
        else:
            simulated_keys.add(str(record.get("key", "")))
    summary = f"stored records: {benchmark_level}"
    if model_only:
        summary += f" ({model_only} model-only)"
    if loop_level:
        summary += f" + {loop_level} loop-level"
    lines.append(summary)
    for name in sorted(per_benchmark):
        suffix = ""
        if failed_per_benchmark.get(name):
            suffix = f" ({failed_per_benchmark[name]} failed)"
        lines.append(f"  {name}: {per_benchmark[name]}{suffix}")
    if failed:
        lines.append(
            f"failed/quarantined records: {failed} "
            "(rerun retries them; --keep-failed preserves them)"
        )
    quarantined = store.quarantined_counts()
    if any(quarantined.values()):
        lines.append(
            f"quarantined files: {quarantined['records']} record(s), "
            f"{quarantined['payloads']} payload(s) under "
            f"{store.root / 'quarantine'}"
        )
    if artifacts is not None:
        counts = artifacts.stats()
        total = sum(counts.values())
        breakdown = ", ".join(
            f"{stage} {count}" for stage, count in counts.items()
        )
        lines.append(
            f"stage artifacts: {total}" + (f" ({breakdown})" if breakdown else "")
        )
        held = artifacts.quarantined_count()
        if held:
            lines.append(f"quarantined artifacts: {held}")
    if spec is not None:
        jobs = spec.expand()
        stored = set(keys)
        done = sum(1 for job in jobs if job.key in simulated_keys)
        failed_points = sum(1 for job in jobs if job.key in failed_keys)
        pruned = sum(
            1
            for job in jobs
            if job.key in stored
            and job.key not in simulated_keys
            and job.key not in failed_keys
        )
        lines.append(
            f"spec {spec.name!r}: {done}/{len(jobs)} points simulated"
            + (f", {pruned} model-only" if pruned else "")
            + (f", {failed_points} failed" if failed_points else "")
            + ("" if done < len(jobs) else " (complete)")
        )
    return "\n".join(lines)

"""Profiling: hit rates, preferred clusters, address streams and traces."""

from repro.profiling.address import AddressStream
from repro.profiling.profiler import (
    DEFAULT_PROFILE_ITERATION_CAP,
    LoopProfile,
    OperationProfile,
    profile_loop,
)
from repro.profiling.trace import (
    TRACE_MACHINE_KEYS,
    TRACE_STAGE,
    LoopTrace,
    build_trace,
    loop_trace,
    trace_key,
)

__all__ = [
    "AddressStream",
    "DEFAULT_PROFILE_ITERATION_CAP",
    "LoopProfile",
    "LoopTrace",
    "OperationProfile",
    "TRACE_MACHINE_KEYS",
    "TRACE_STAGE",
    "build_trace",
    "loop_trace",
    "profile_loop",
    "trace_key",
]

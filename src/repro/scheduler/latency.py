"""Latency assignment for memory instructions (Section 4.3.1, Step 2).

Memory operations have variable latency.  Scheduling them with the largest
latency avoids stalls but lengthens recurrences (and thus the II); scheduling
them with the smallest latency keeps the II low but risks stalls.  The paper
resolves the tension with a selective process:

1. every memory instruction starts with the largest latency (remote miss for
   the interleaved cache, miss for the unified cache);
2. working one recurrence at a time -- from the most to the least
   constraining -- the latency of selectively chosen instructions is lowered
   until the recurrence's II matches the MII the loop would have if every
   memory instruction used the local-hit latency;
3. each candidate change is ranked by a *benefit* function
   ``B = (decrease in II) / (increase in estimated stall time)``;
4. when the last change overshoots (the recurrence's II drops below the
   MII), the last changed instruction's latency is raised again so the II
   lands exactly on the MII.

The stall estimate uses the profiled hit rate and the expected fraction of
local accesses, the access granularity and the stride, as described (but not
detailed) in the paper; the formula used here reproduces five of the six
benefit values of the worked example of Section 4.3.3 exactly (see
EXPERIMENTS.md for the remaining entry).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.ir.ddg import Recurrence
from repro.ir.loop import Loop
from repro.ir.operation import Operation
from repro.machine.config import CacheOrganization, MachineConfig
from repro.machine.resources import ResourceModel
from repro.profiling.profiler import LoopProfile
from repro.scheduler.mii import make_latency_function


class LatencyModel(enum.Enum):
    """Which set of latency classes the assignment works with."""

    #: local hit / remote hit / local miss / remote miss (interleaved cache).
    INTERLEAVED = "interleaved"
    #: hit / miss of the unified cache (BASE algorithm).
    UNIFIED = "unified"
    #: hit / miss of the local coherent module (multiVLIW).
    COHERENT = "coherent"

    @staticmethod
    def for_config(config: MachineConfig) -> "LatencyModel":
        """Pick the latency model matching a machine configuration."""
        if config.organization is CacheOrganization.WORD_INTERLEAVED:
            return LatencyModel.INTERLEAVED
        if config.organization is CacheOrganization.UNIFIED:
            return LatencyModel.UNIFIED
        return LatencyModel.COHERENT


@dataclass(frozen=True)
class MemoryOpStats:
    """Profile summary the stall estimator needs for one memory operation."""

    hit_rate: float
    local_ratio: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.hit_rate <= 1.0:
            raise ValueError("hit rate must be in [0, 1]")
        if not 0.0 <= self.local_ratio <= 1.0:
            raise ValueError("local ratio must be in [0, 1]")


def stats_from_profile(
    loop: Loop, profile: LoopProfile, config: MachineConfig
) -> dict[Operation, MemoryOpStats]:
    """Derive per-operation stall statistics from a loop profile.

    The expected local ratio is the concentration of accesses on the
    operation's preferred cluster (its profile "distribution"), except that
    accesses wider than the interleaving factor can never be local.
    """
    stats: dict[Operation, MemoryOpStats] = {}
    for op in loop.memory_operations:
        hit_rate = profile.hit_rate(op)
        if config.organization is CacheOrganization.WORD_INTERLEAVED:
            if config.spans_multiple_clusters(op.memory.granularity):
                local_ratio = 0.0
            else:
                local_ratio = profile.distribution(op)
        else:
            local_ratio = 1.0
        stats[op] = MemoryOpStats(hit_rate=hit_rate, local_ratio=local_ratio)
    return stats


def latency_classes(config: MachineConfig, model: LatencyModel) -> list[int]:
    """The selectable latencies, from smallest to largest."""
    lat = config.latencies
    if model is LatencyModel.INTERLEAVED:
        return [lat.local_hit, lat.remote_hit, lat.local_miss, lat.remote_miss]
    if model is LatencyModel.UNIFIED:
        hit = config.unified_cache_latency
        return [hit, hit + config.next_level.latency]
    return [lat.local_hit, lat.local_miss]


def outcome_probabilities(
    stats: MemoryOpStats, config: MachineConfig, model: LatencyModel
) -> list[tuple[int, float]]:
    """(latency, probability) of each access outcome for one operation."""
    lat = config.latencies
    if model is LatencyModel.INTERLEAVED:
        hit, local = stats.hit_rate, stats.local_ratio
        return [
            (lat.local_hit, hit * local),
            (lat.remote_hit, hit * (1.0 - local)),
            (lat.local_miss, (1.0 - hit) * local),
            (lat.remote_miss, (1.0 - hit) * (1.0 - local)),
        ]
    if model is LatencyModel.UNIFIED:
        hit_latency = config.unified_cache_latency
        miss_latency = hit_latency + config.next_level.latency
        return [
            (hit_latency, stats.hit_rate),
            (miss_latency, 1.0 - stats.hit_rate),
        ]
    return [
        (lat.local_hit, stats.hit_rate),
        (lat.local_miss, 1.0 - stats.hit_rate),
    ]


def expected_stall(
    stats: MemoryOpStats,
    assigned_latency: int,
    config: MachineConfig,
    model: LatencyModel,
) -> float:
    """Expected stall cycles per execution under an assigned latency.

    Each outcome whose true latency exceeds the assigned latency stalls the
    processor for the difference; outcomes covered by the assigned latency
    contribute nothing.
    """
    total = 0.0
    for latency, probability in outcome_probabilities(stats, config, model):
        if latency > assigned_latency:
            total += probability * (latency - assigned_latency)
    return total


@dataclass(frozen=True)
class LatencyStep:
    """One latency change considered (and possibly applied) by the assigner."""

    operation: Operation
    recurrence_index: int
    from_latency: int
    to_latency: int
    ii_decrease: int
    stall_increase: float
    benefit: float
    applied: bool


@dataclass
class LatencyAssignment:
    """Result of the latency assignment pass."""

    latencies: dict[Operation, int]
    target_mii: int
    steps: list[LatencyStep] = field(default_factory=list)
    model: LatencyModel = LatencyModel.INTERLEAVED

    def latency_of(self, op: Operation) -> int:
        """Assigned latency of an operation."""
        return self.latencies[op]

    def applied_steps(self) -> list[LatencyStep]:
        """Only the steps that were actually applied."""
        return [step for step in self.steps if step.applied]

    def to_payload(self, loop: Loop) -> dict[str, object]:
        """Process-independent form of the assignment.

        Operations are referenced by program-order index among ``loop``'s
        memory operations (uids are process-local); :meth:`from_payload`
        rebinds to the current process's loop.  ``loop`` must be the loop
        the assignment was computed for.
        """
        index_of = {op: index for index, op in enumerate(loop.memory_operations)}
        return {
            "latencies": [self.latencies[op] for op in loop.memory_operations],
            "target_mii": self.target_mii,
            "model": self.model.value,
            "steps": [
                {
                    "operation": index_of[step.operation],
                    "recurrence_index": step.recurrence_index,
                    "from_latency": step.from_latency,
                    "to_latency": step.to_latency,
                    "ii_decrease": step.ii_decrease,
                    "stall_increase": step.stall_increase,
                    "benefit": step.benefit,
                    "applied": step.applied,
                }
                for step in self.steps
            ],
        }

    @staticmethod
    def from_payload(
        payload: Mapping[str, object], loop: Loop
    ) -> "LatencyAssignment":
        """Rebind a :meth:`to_payload` dump to ``loop``'s operations."""
        memory_ops = loop.memory_operations
        latencies = payload["latencies"]
        if len(latencies) != len(memory_ops):
            raise ValueError(
                f"latency payload covers {len(latencies)} memory operations, "
                f"loop {loop.name!r} has {len(memory_ops)}"
            )
        return LatencyAssignment(
            latencies={
                op: int(latency) for op, latency in zip(memory_ops, latencies)
            },
            target_mii=int(payload["target_mii"]),
            steps=[
                LatencyStep(
                    operation=memory_ops[int(entry["operation"])],
                    recurrence_index=int(entry["recurrence_index"]),
                    from_latency=int(entry["from_latency"]),
                    to_latency=int(entry["to_latency"]),
                    ii_decrease=int(entry["ii_decrease"]),
                    stall_increase=float(entry["stall_increase"]),
                    benefit=float(entry["benefit"]),
                    applied=bool(entry["applied"]),
                )
                for entry in payload["steps"]
            ],
            model=LatencyModel(payload["model"]),
        )


class LatencyAssigner:
    """Implements the selective latency assignment of the paper."""

    #: Benefit assigned when a change costs no extra stall at all.
    INFINITE_BENEFIT = float("inf")

    def __init__(
        self,
        loop: Loop,
        config: MachineConfig,
        stats: Mapping[Operation, MemoryOpStats],
        model: Optional[LatencyModel] = None,
    ) -> None:
        self._loop = loop
        self._config = config
        self._stats = dict(stats)
        self._model = model or LatencyModel.for_config(config)
        self._classes = latency_classes(config, self._model)
        self._resources = ResourceModel(config)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _stats_of(self, op: Operation) -> MemoryOpStats:
        return self._stats.get(op, MemoryOpStats(hit_rate=0.0, local_ratio=0.0))

    def _stall(self, op: Operation, latency: int) -> float:
        return expected_stall(self._stats_of(op), latency, self._config, self._model)

    def _recurrence_ii(
        self, recurrence: Recurrence, latencies: Mapping[Operation, int]
    ) -> int:
        latency_of = make_latency_function(self._config, memory_latencies=latencies)
        return recurrence.initiation_interval(latency_of)

    def _target_mii(self) -> int:
        """MII with every load at the smallest (local hit) latency."""
        smallest = self._classes[0]
        latency_of = make_latency_function(
            self._config, default_memory_latency=smallest
        )
        res_mii = self._resources.res_mii(self._loop.operations)
        rec_bounds = [
            rec.initiation_interval(latency_of) for rec in self._loop.ddg.recurrences()
        ]
        return max([res_mii, *rec_bounds]) if rec_bounds else res_mii

    # ------------------------------------------------------------------
    # Main entry point
    # ------------------------------------------------------------------
    def assign(self) -> LatencyAssignment:
        """Run the assignment and return per-operation latencies."""
        largest = self._classes[-1]
        latencies: dict[Operation, int] = {}
        for op in self._loop.memory_operations:
            if op.is_store:
                latencies[op] = self._config.latencies.store_issue
            else:
                latencies[op] = largest

        target = self._target_mii()
        steps: list[LatencyStep] = []
        recurrences = list(self._loop.ddg.recurrences())
        # Most constraining recurrences first, evaluated with the initial
        # (largest) latencies, as in the paper.
        recurrences.sort(
            key=lambda rec: -self._recurrence_ii(rec, latencies)
        )

        for rec_index, recurrence in enumerate(recurrences):
            last_changed: Optional[Operation] = None
            while self._recurrence_ii(recurrence, latencies) > target:
                step = self._best_change(
                    recurrence, rec_index, latencies, target, steps
                )
                if step is None:
                    break
                latencies[step.operation] = step.to_latency
                last_changed = step.operation
            self._absorb_slack(recurrence, latencies, target, last_changed)

        return LatencyAssignment(
            latencies=latencies, target_mii=target, steps=steps, model=self._model
        )

    # ------------------------------------------------------------------
    # Benefit evaluation
    # ------------------------------------------------------------------
    def _best_change(
        self,
        recurrence: Recurrence,
        rec_index: int,
        latencies: dict[Operation, int],
        target: int,
        steps: list[LatencyStep],
    ) -> Optional[LatencyStep]:
        current_ii = self._recurrence_ii(recurrence, latencies)
        candidates: list[LatencyStep] = []
        for op in recurrence.memory_operations():
            if op.is_store:
                continue
            current = latencies[op]
            for candidate in self._classes:
                if candidate >= current:
                    continue
                trial = dict(latencies)
                trial[op] = candidate
                new_ii = self._recurrence_ii(recurrence, trial)
                ii_decrease = current_ii - new_ii
                if ii_decrease <= 0:
                    continue
                stall_increase = self._stall(op, candidate) - self._stall(op, current)
                if stall_increase <= 0:
                    benefit = self.INFINITE_BENEFIT
                else:
                    benefit = ii_decrease / stall_increase
                candidates.append(
                    LatencyStep(
                        operation=op,
                        recurrence_index=rec_index,
                        from_latency=current,
                        to_latency=candidate,
                        ii_decrease=ii_decrease,
                        stall_increase=stall_increase,
                        benefit=benefit,
                        applied=False,
                    )
                )
        steps.extend(candidates)
        if not candidates:
            return None
        best = max(
            candidates,
            key=lambda step: (step.benefit, step.ii_decrease, -step.to_latency),
        )
        applied = LatencyStep(
            operation=best.operation,
            recurrence_index=best.recurrence_index,
            from_latency=best.from_latency,
            to_latency=best.to_latency,
            ii_decrease=best.ii_decrease,
            stall_increase=best.stall_increase,
            benefit=best.benefit,
            applied=True,
        )
        steps.append(applied)
        return applied

    def _absorb_slack(
        self,
        recurrence: Recurrence,
        latencies: dict[Operation, int],
        target: int,
        last_changed: Optional[Operation],
    ) -> None:
        """Raise the last changed latency so the recurrence's II equals MII."""
        if last_changed is None:
            return
        current_ii = self._recurrence_ii(recurrence, latencies)
        if current_ii >= target:
            return
        distance = recurrence.total_distance
        slack = (target - current_ii) * max(1, distance)
        ceiling = self._classes[-1]
        raised = min(ceiling, latencies[last_changed] + slack)
        # Never raise beyond the point where the II would exceed the target.
        while raised > latencies[last_changed]:
            trial = dict(latencies)
            trial[last_changed] = raised
            if self._recurrence_ii(recurrence, trial) <= target:
                latencies[last_changed] = raised
                return
            raised -= 1


def assign_latencies(
    loop: Loop,
    config: MachineConfig,
    profile: Optional[LoopProfile] = None,
    stats: Optional[Mapping[Operation, MemoryOpStats]] = None,
    model: Optional[LatencyModel] = None,
) -> LatencyAssignment:
    """Convenience wrapper building the stats from a profile if needed."""
    if stats is None:
        if profile is None:
            raise ValueError("either a profile or explicit stats are required")
        stats = stats_from_profile(loop, profile, config)
    return LatencyAssigner(loop, config, stats, model).assign()

"""Loop unrolling on data dependence graphs.

Unrolling a loop ``U`` times replicates its body ``U`` times and retargets
loop-carried dependences across the copies.  For the interleaved cache it has
the crucial extra effect described in Section 4.3.1, Step 1: each replica of
a strided memory operation gets a constant extra offset of ``k * stride`` and
a new stride of ``U * stride``, so that -- when ``U`` makes the new stride a
multiple of N x I -- each replica references one and only one cache module.
"""

from __future__ import annotations

from dataclasses import replace

from repro.ir.ddg import DataDependenceGraph, Dependence
from repro.ir.loop import Loop
from repro.ir.operation import Operation

#: Attribute that memoizes a loop's unrolled variants on the loop object
#: itself: unrolling is pure (the result is read-only everywhere
#: downstream), so one loop object unrolled by the same factor always
#: yields the same variant -- and a sweep rehydrates the same variants
#: once per grid point.  Loop is an eq-without-hash dataclass, so the
#: memo rides on the instance (identity-keyed, lifetime-tied) instead of
#: a weak mapping.
_VARIANT_MEMO = "_unroll_variant_memo"


def unroll_ddg(ddg: DataDependenceGraph, factor: int, name: str) -> tuple[
    DataDependenceGraph, dict[tuple[Operation, int], Operation]
]:
    """Unroll a DDG ``factor`` times.

    Returns the new graph together with a mapping from
    ``(original operation, copy index)`` to the replicated operation so that
    callers can relate replicas back to their source.
    """
    if factor <= 0:
        raise ValueError("unroll factor must be positive")
    if factor == 1:
        return ddg.copy(name), {(op, 0): op for op in ddg.operations}

    unrolled = DataDependenceGraph(name)
    replica: dict[tuple[Operation, int], Operation] = {}

    for copy_index in range(factor):
        for op in ddg.operations:
            replica[(op, copy_index)] = unrolled.add_operation(
                _replicate(op, copy_index, factor)
            )

    for dep in ddg.dependences():
        for copy_index in range(factor):
            target_iteration = copy_index + dep.distance
            new_distance = target_iteration // factor
            target_copy = target_iteration % factor
            unrolled.add_dependence(
                Dependence(
                    src=replica[(dep.src, copy_index)],
                    dst=replica[(dep.dst, target_copy)],
                    kind=dep.kind,
                    distance=new_distance,
                )
            )
    return unrolled, replica


def _replicate(op: Operation, copy_index: int, factor: int) -> Operation:
    """Create the ``copy_index``-th replica of an operation."""
    clone = op.renamed(f"{op.name}.u{copy_index}" if factor > 1 else op.name)
    if not op.is_memory:
        return clone
    access = op.memory
    if access.stride_known and access.stride_bytes != 0:
        access = replace(
            access,
            offset_bytes=access.offset_bytes + copy_index * access.stride_bytes,
            stride_bytes=access.stride_bytes * factor,
        )
    return clone.with_memory(access)


def unroll_loop(loop: Loop, factor: int) -> Loop:
    """Unroll a loop ``factor`` times, adjusting trip counts and metadata.

    The execution and profile trip counts are divided by the factor (rounded
    up); the returned loop records the original loop and the cumulative
    unroll factor, which the selective-unrolling policy and the reports use.
    """
    if factor <= 0:
        raise ValueError("unroll factor must be positive")
    if factor == 1:
        return loop
    variants = loop.__dict__.setdefault(_VARIANT_MEMO, {})
    cached = variants.get(factor)
    if cached is not None:
        return cached
    ddg, _ = unroll_ddg(loop.ddg, factor, f"{loop.name}.x{factor}")
    variants[factor] = unrolled = Loop(
        name=f"{loop.name}.x{factor}",
        ddg=ddg,
        arrays=dict(loop.arrays),
        trip_count=max(1, -(-loop.trip_count // factor)),
        profile_trip_count=max(1, -(-loop.profile_trip_count // factor)),
        weight=loop.weight,
        unroll_factor=loop.unroll_factor * factor,
        original=loop.original or loop,
        metadata=dict(loop.metadata),
    )
    return unrolled

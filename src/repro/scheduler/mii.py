"""Minimum initiation interval (MII) computation.

The MII of a loop is the maximum of the resource-constrained bound (ResMII,
from functional-unit counts) and the recurrence-constrained bound (RecMII,
from dependence cycles).  The latency-assignment phase of the paper targets
the MII computed *as if every memory operation had the local-hit latency*, so
the helpers here take an explicit latency function.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Optional

from repro.ir.ddg import DataDependenceGraph, DependenceKind, Recurrence
from repro.ir.loop import Loop
from repro.ir.operation import Operation, OperationClass
from repro.machine.config import MachineConfig
from repro.machine.resources import ResourceModel


def make_latency_function(
    config: MachineConfig,
    memory_latencies: Optional[Mapping[Operation, int]] = None,
    default_memory_latency: Optional[int] = None,
) -> Callable[[Operation], int]:
    """Build an operation-latency function for MII and ordering purposes.

    Memory latencies come from ``memory_latencies`` when given, otherwise
    every memory operation gets ``default_memory_latency`` (the local-hit
    latency when that is None as well).  Stores always use the store issue
    latency, as in the paper.
    """
    resources = ResourceModel(config)
    fallback = (
        default_memory_latency
        if default_memory_latency is not None
        else config.latencies.local_hit
    )

    def latency_of(op: Operation) -> int:
        if op.op_class is OperationClass.MEMORY:
            if op.is_store:
                return config.latencies.store_issue
            if memory_latencies is not None and op in memory_latencies:
                return memory_latencies[op]
            return fallback
        return resources.operation_latency(op)

    return latency_of


@dataclass(frozen=True)
class MIIResult:
    """MII decomposition of a loop."""

    res_mii: int
    rec_mii: int
    recurrences: tuple[Recurrence, ...]

    @property
    def mii(self) -> int:
        """The minimum initiation interval."""
        return max(self.res_mii, self.rec_mii)


def compute_mii(
    loop: Loop | DataDependenceGraph,
    config: MachineConfig,
    latency_of: Optional[Callable[[Operation], int]] = None,
) -> MIIResult:
    """Compute ResMII, RecMII and the recurrences of a loop.

    ``latency_of`` defaults to local-hit latencies for loads (the target the
    latency-assignment step aims for) and machine latencies for everything
    else.
    """
    ddg = loop.ddg if isinstance(loop, Loop) else loop
    if latency_of is None:
        latency_of = make_latency_function(config)
    resources = ResourceModel(config)
    res_mii = resources.res_mii(ddg.operations)
    recurrences = tuple(ddg.recurrences())
    rec_mii = max(
        (rec.initiation_interval(latency_of) for rec in recurrences), default=1
    )
    return MIIResult(res_mii=res_mii, rec_mii=rec_mii, recurrences=recurrences)


def recurrence_ii(
    recurrence: Recurrence, latency_of: Callable[[Operation], int]
) -> int:
    """II bound of a single recurrence under the given latencies."""
    return recurrence.initiation_interval(latency_of)


def critical_path_length(
    ddg: DataDependenceGraph, latency_of: Callable[[Operation], int]
) -> int:
    """Length of the longest intra-iteration dependence chain, in cycles.

    Only same-iteration (distance-0) dependences constrain the length of one
    iteration's schedule; loop-carried edges constrain the II instead.  Edge
    latencies follow the same semantics as
    :meth:`~repro.ir.ddg.Recurrence.latency_sum`: anti and output dependences
    add nothing, memory serialization edges add one cycle, flow dependences
    add the producer's latency.  The analytical performance model uses this
    as a stage-count estimate (``SC ~ ceil(path / II)``) without running the
    scheduler.
    """
    longest: dict[Operation, int] = {}
    # Distance-0 dependences always point forward in program order (the IR
    # builder constructs loop bodies that way), so a single program-order
    # pass is a valid topological traversal.
    for op in ddg.operations:
        start = longest.get(op, 0)
        for dep in ddg.dependences_from(op):
            if dep.distance != 0:
                continue
            if dep.kind in (DependenceKind.REG_ANTI, DependenceKind.REG_OUTPUT):
                contribution = 0
            elif dep.kind is DependenceKind.MEMORY:
                contribution = 1
            else:
                contribution = latency_of(op)
            candidate = start + contribution
            if candidate > longest.get(dep.dst, 0):
                longest[dep.dst] = candidate
    if not ddg.operations:
        return 1
    # The path ends when the last operation completes.
    return max(
        longest.get(op, 0) + latency_of(op) for op in ddg.operations
    )

"""Unrolling-factor computation and selection (Section 4.3.1, Step 1).

For a word-interleaved cache, unrolling a loop until every strided memory
instruction's stride is a multiple of N x I makes each (replicated)
instruction access a single cache module, which is the prerequisite for
keeping its accesses local.  The *optimal unrolling factor* (OUF) is the
least common multiple of the per-instruction factors

    U_i = (N*I) / gcd(N*I, S_i mod N*I)

capped at N x I.  Unrolling has costs too (code size, longer memory
dependent chains, fewer iterations), so the paper evaluates three factors per
loop -- no unrolling, unroll-by-N and OUF -- and keeps the one with the
smallest estimated execution time ``(avg_iterations + SC - 1) * II``
(*selective unrolling*).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Optional

from repro.ir.loop import Loop
from repro.ir.operation import Operation
from repro.machine.config import MachineConfig
from repro.profiling.profiler import LoopProfile


class UnrollPolicy(enum.Enum):
    """Which unrolling factor the compiler applies to each loop."""

    NONE = "none"
    TIMES_N = "times-n"
    OUF = "ouf"
    SELECTIVE = "selective"


#: Loops that iterate fewer times than this are never unrolled (Section 5.1).
MIN_TRIP_COUNT_FOR_UNROLLING = 8


def individual_unroll_factor(op: Operation, config: MachineConfig) -> Optional[int]:
    """U_i for one memory instruction, or None if it is not considered.

    Instructions are considered only when their stride is known, their hit
    rate could be non-zero (checked by the caller via the profile) and their
    access granularity does not exceed the interleaving factor.
    """
    access = op.memory
    if access is None or not access.stride_known:
        return None
    if access.granularity > config.interleaving_factor:
        return None
    span = config.interleave_span
    residue = access.stride_bytes % span
    if residue == 0:
        return 1
    return span // math.gcd(span, residue)


def optimal_unroll_factor(
    loop: Loop, config: MachineConfig, profile: Optional[LoopProfile] = None
) -> int:
    """The OUF of a loop: lcm of the individual factors, capped at N x I."""
    span = config.interleave_span
    factors: list[int] = []
    for op in loop.memory_operations:
        if profile is not None and profile.hit_rate(op) <= 0.0:
            continue
        factor = individual_unroll_factor(op, config)
        if factor is not None:
            factors.append(factor)
    if not factors:
        return 1
    result = 1
    for factor in factors:
        result = result * factor // math.gcd(result, factor)
        if result >= span:
            return span
    return min(result, span)


def candidate_factors(
    loop: Loop,
    config: MachineConfig,
    policy: UnrollPolicy,
    profile: Optional[LoopProfile] = None,
) -> list[int]:
    """Unrolling factors the compiler will evaluate for this loop."""
    if loop.trip_count < MIN_TRIP_COUNT_FOR_UNROLLING:
        return [1]
    if policy is UnrollPolicy.NONE:
        return [1]
    if policy is UnrollPolicy.TIMES_N:
        return [config.num_clusters]
    ouf = optimal_unroll_factor(loop, config, profile)
    if policy is UnrollPolicy.OUF:
        return [ouf]
    factors = {1, config.num_clusters, ouf}
    return sorted(factors)


@dataclass(frozen=True)
class UnrollingEstimate:
    """Execution-time estimate of one unrolled variant."""

    factor: int
    ii: int
    stage_count: int
    iterations: int

    @property
    def estimated_cycles(self) -> int:
        """(avg_iterations + SC - 1) * II, the paper's T_exec model."""
        return (self.iterations + self.stage_count - 1) * self.ii


def estimate_execution_time(
    factor: int, ii: int, stage_count: int, original_trip_count: int
) -> UnrollingEstimate:
    """Build the execution-time estimate for one variant."""
    iterations = max(1, -(-original_trip_count // factor))
    return UnrollingEstimate(
        factor=factor, ii=ii, stage_count=stage_count, iterations=iterations
    )

"""Benchmark E-F6: regenerate Figure 6 (stall time +/- Attraction Buffers)."""

from benchmarks.conftest import save_report
from repro.experiments.figure6 import average_stall_reduction, run_figure6


def test_figure6_stall_time_and_attraction_buffers(
    benchmark, experiment_runner, results_dir
):
    rows, result = benchmark.pedantic(
        run_figure6, kwargs={"runner": experiment_runner}, rounds=1, iterations=1
    )
    save_report(results_dir, "figure6", result.render())
    # 12 benchmarks (g721dec/enc excluded) x 4 bars.
    assert len(rows) == 12 * 4
    # Paper: Attraction Buffers cut stall time by ~34% (IBC) / ~29% (IPBC);
    # the reproduction must show a clear reduction for both heuristics.
    assert average_stall_reduction(rows, "ibc") > 0.10
    assert average_stall_reduction(rows, "ipbc") > 0.10

"""Common interface of the L1 data-cache organizations.

Three organizations are modelled (word-interleaved, unified, coherent
multiVLIW); the simulator and the profiler talk to all of them through the
:class:`DataCacheModel` base class so that experiments can swap
architectures without touching any other code.
"""

from __future__ import annotations

import abc

from repro.machine.config import MachineConfig
from repro.memory.bus import BusSet
from repro.memory.classify import AccessCounters, AccessResult
from repro.memory.nextlevel import NextMemoryLevel


class DataCacheModel(abc.ABC):
    """Behavioural model of a complete L1 data-cache organization."""

    def __init__(self, config: MachineConfig) -> None:
        self._config = config
        self.counters = AccessCounters()
        self.next_level = NextMemoryLevel(config.next_level)
        self.memory_buses = BusSet(config.memory_buses)
        # Hoisted constants: ``access`` runs once per simulated memory
        # access, so the per-call attribute chases through the config
        # dataclasses are paid once here instead.
        self._num_clusters = config.num_clusters
        self._block_bytes = config.cache.block_bytes

    @property
    def config(self) -> MachineConfig:
        """The machine configuration this model was built from."""
        return self._config

    # ------------------------------------------------------------------
    # Main entry point
    # ------------------------------------------------------------------
    def access(
        self,
        cluster: int,
        address: int,
        size: int,
        is_store: bool,
        cycle: int,
        attractable: bool = True,
    ) -> AccessResult:
        """Perform one access and record it in the counters."""
        if cluster < 0 or cluster >= self._num_clusters:
            raise ValueError(f"cluster {cluster} out of range")
        if size <= 0:
            raise ValueError("access size must be positive")
        result = self._access(cluster, address, size, is_store, cycle, attractable)
        self.counters.record(result)
        return result

    @abc.abstractmethod
    def _access(
        self,
        cluster: int,
        address: int,
        size: int,
        is_store: bool,
        cycle: int,
        attractable: bool,
    ) -> AccessResult:
        """Organization-specific access handling."""

    # ------------------------------------------------------------------
    # Lifecycle hooks
    # ------------------------------------------------------------------
    def begin_loop(self) -> None:
        """Hook invoked by the simulator at every loop boundary.

        Cache *contents* survive across loops (data written by one loop is
        read by the next), but every time-based resource -- bus occupancy and
        next-level port occupancy -- is reset because the simulator restarts
        its cycle counter for each loop.  The interleaved organization
        additionally flushes its Attraction Buffers here.
        """
        self.memory_buses.reset()
        self.next_level.reset()

    def reset_statistics(self) -> None:
        """Clear access counters without touching cache contents."""
        self.counters = AccessCounters()

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def block_address(self, address: int) -> int:
        """Address of the cache block containing ``address``."""
        return address - (address % self._block_bytes)

    def block_index(self, address: int) -> int:
        """Block number (block address divided by the block size)."""
        return address // self._block_bytes

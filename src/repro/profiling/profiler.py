"""Profiling infrastructure (hit rates and preferred clusters).

The scheduling techniques of the paper use two pieces of profile
information, both obtained by running the program on a *profile* data set:

* the **hit rate** of every memory instruction, which drives the latency
  assignment (Section 4.3.1, Step 2) and the selective-unrolling execution
  time estimate; and
* the **preferred cluster** of every memory instruction -- the cluster it
  accesses most -- together with how concentrated those accesses are (the
  "distribution" factor of Section 5.2), which drives the IPBC heuristic.

:func:`profile_loop` reproduces this by streaming the loop's addresses (from
the profile data set) through a fresh cache-module model and the data-layout
model, then summarising per static operation.  Addresses come from the
loop's precomputed :class:`~repro.profiling.trace.LoopTrace`: the cluster
histograms are bulk-counted from the trace's home-cluster arrays, and only
the (order-dependent) cache replay walks the accesses one by one -- over
flat block arrays, not per-access address computation.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from itertools import chain
from typing import Mapping, Optional

from repro import kernels
from repro.ir.loop import Loop
from repro.ir.operation import Operation
from repro.machine.config import CacheOrganization, MachineConfig
from repro.memory.cachesets import SetAssociativeStore
from repro.obs import trace as obs
from repro.profiling.trace import loop_trace

#: Cap on profiled iterations; profiling is statistical, not exhaustive.
DEFAULT_PROFILE_ITERATION_CAP = 2048


@dataclass
class OperationProfile:
    """Profile summary of one static memory operation."""

    operation: Operation
    accesses: int = 0
    hits: int = 0
    cluster_counts: Counter = field(default_factory=Counter)

    @property
    def hit_rate(self) -> float:
        """Fraction of profiled accesses that hit in the cache."""
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def preferred_cluster(self) -> Optional[int]:
        """The cluster this operation accesses most, or None if unprofiled."""
        if not self.cluster_counts:
            return None
        best = max(self.cluster_counts.values())
        # Deterministic tie-break towards the lowest cluster index.
        for cluster in sorted(self.cluster_counts):
            if self.cluster_counts[cluster] == best:
                return cluster
        return None

    @property
    def distribution(self) -> float:
        """Concentration of accesses on the preferred cluster.

        1.0 means every access goes to one cluster; 1/N means the accesses
        are spread evenly over N clusters (the paper's "unclear preferred
        cluster" metric).
        """
        if not self.cluster_counts:
            return 0.0
        return max(self.cluster_counts.values()) / sum(self.cluster_counts.values())

    def local_ratio_if_scheduled_on(self, cluster: int) -> float:
        """Fraction of accesses that would be local from ``cluster``."""
        if not self.cluster_counts:
            return 0.0
        return self.cluster_counts.get(cluster, 0) / sum(self.cluster_counts.values())


@dataclass
class LoopProfile:
    """Profile of a whole loop."""

    loop: Loop
    operations: dict[Operation, OperationProfile]
    profiled_iterations: int
    average_trip_count: float

    def hit_rate(self, op: Operation) -> float:
        """Hit rate of an operation (0.0 for unprofiled operations)."""
        profile = self.operations.get(op)
        return profile.hit_rate if profile else 0.0

    def preferred_cluster(self, op: Operation) -> Optional[int]:
        """Preferred cluster of an operation, or None."""
        profile = self.operations.get(op)
        return profile.preferred_cluster if profile else None

    def preferred_clusters(self) -> dict[Operation, Optional[int]]:
        """Preferred cluster of every profiled operation."""
        return {op: prof.preferred_cluster for op, prof in self.operations.items()}

    def cluster_histograms(self) -> dict[Operation, Mapping[int, int]]:
        """Per-operation cluster access histograms."""
        return {op: dict(prof.cluster_counts) for op, prof in self.operations.items()}

    def distribution(self, op: Operation) -> float:
        """Preferred-cluster concentration of an operation."""
        profile = self.operations.get(op)
        return profile.distribution if profile else 0.0

    def to_payload(self) -> dict[str, object]:
        """Process-independent form of the profile.

        Per-operation entries are keyed by the operation's program-order
        index among the loop's memory operations instead of the operation
        object itself: operation identity (``uid``) is process-local, so a
        profile persisted by one process would silently miss every lookup
        in another.  :meth:`from_payload` rebinds the data to the current
        process's loop objects.
        """
        return {
            "profiled_iterations": self.profiled_iterations,
            "average_trip_count": self.average_trip_count,
            "ops": [
                {
                    "accesses": profile.accesses,
                    "hits": profile.hits,
                    "clusters": dict(profile.cluster_counts),
                }
                for profile in (
                    self.operations[op] for op in self.loop.memory_operations
                )
            ],
        }

    @staticmethod
    def from_payload(payload: Mapping[str, object], loop: Loop) -> "LoopProfile":
        """Rebind a :meth:`to_payload` dump to ``loop``'s operations.

        ``loop`` must be structurally identical to the loop the payload was
        profiled on (same memory operations in the same program order) --
        the staged pipeline guarantees this by deriving both from the same
        content-addressed loop description.
        """
        entries = payload["ops"]
        memory_ops = loop.memory_operations
        if len(entries) != len(memory_ops):
            raise ValueError(
                f"profile payload covers {len(entries)} memory operations, "
                f"loop {loop.name!r} has {len(memory_ops)}"
            )
        operations = {}
        for op, entry in zip(memory_ops, entries):
            operations[op] = OperationProfile(
                operation=op,
                accesses=int(entry["accesses"]),
                hits=int(entry["hits"]),
                cluster_counts=Counter(
                    {int(cluster): count for cluster, count in entry["clusters"].items()}
                ),
            )
        return LoopProfile(
            loop=loop,
            operations=operations,
            profiled_iterations=int(payload["profiled_iterations"]),
            average_trip_count=float(payload["average_trip_count"]),
        )


def profile_loop(
    loop: Loop,
    config: MachineConfig,
    dataset: str = "profile",
    aligned: bool = True,
    iteration_cap: int = DEFAULT_PROFILE_ITERATION_CAP,
    cache=None,
) -> LoopProfile:
    """Profile one loop on the given machine configuration.

    The profile records, for every memory operation, how many accesses hit in
    the (interleaved) cache modules and which cluster each access mapped to.
    For unified-cache machines the cluster histogram is still collected --
    the interleaving function is a property of addresses -- but is unused by
    the BASE scheduler.

    ``cache`` (a stage-artifact cache, see :mod:`repro.sweep.artifacts`)
    serves and persists the loop's address trace, sharing it across every
    grid point -- and every cache geometry -- with the same interleaving
    layout.
    """
    iterations = min(loop.profile_trip_count, iteration_cap)
    trace = loop_trace(
        loop, config, dataset=dataset, aligned=aligned,
        iterations=iterations, cache=cache,
    )

    unified = config.organization is CacheOrganization.UNIFIED
    if unified:
        geometry = config.cache
        num_sets, associativity = geometry.num_sets, geometry.associativity
    else:
        module = config.module_geometry
        subblocks = module.size_bytes // max(1, config.subblock_bytes)
        num_sets = max(1, subblocks // module.associativity)
        associativity = module.associativity

    memory_ops = loop.memory_operations
    homes = trace.home_clusters()
    blocks = trace.blocks(config.cache.block_bytes)

    # The cache replay is the one genuinely sequential part: store state is
    # shared across operations, so accesses must be walked in the original
    # (iteration, operation) order.  The vector backend replays the whole
    # transposed stream as one lockstep-LRU pass (``None`` falls back to
    # the scalar loop, where ``zip(*blocks)`` transposes the per-op arrays
    # into per-iteration rows at C speed).
    with obs.span(
        "profile.replay",
        loop=loop.name,
        dataset=dataset,
        iterations=iterations,
        backend=kernels.active_backend(),
    ):
        hit_counts = kernels.profile_replay(
            blocks, homes, num_sets, associativity, unified
        )
        if hit_counts is None:
            hit_counts = _replay_scalar(
                blocks, homes, num_sets, associativity, unified, config
            )

    histograms = kernels.profile_histograms(homes)
    profiles: dict[Operation, OperationProfile] = {}
    for index, op in enumerate(memory_ops):
        if histograms is None:
            cluster_counts = Counter(homes[index])
        else:
            # First-touch pair order reproduces Counter insertion order.
            cluster_counts = Counter(dict(histograms[index]))
        profiles[op] = OperationProfile(
            operation=op,
            accesses=iterations,
            hits=hit_counts[index],
            cluster_counts=cluster_counts,
        )

    return LoopProfile(
        loop=loop,
        operations=profiles,
        profiled_iterations=iterations,
        average_trip_count=float(loop.profile_trip_count),
    )


def _replay_scalar(
    blocks, homes, num_sets: int, associativity: int, unified: bool,
    config: MachineConfig,
) -> list[int]:
    """The scalar (oracle) cache replay behind the backend switch."""
    ops = len(blocks)
    hit_counts = [0] * ops
    if unified:
        store = SetAssociativeStore(num_sets, associativity)
        flags = store.replay(chain.from_iterable(zip(*blocks)))
        for index in range(ops):
            hit_counts[index] = sum(flags[index::ops])
    else:
        stores = [
            SetAssociativeStore(num_sets, associativity)
            for _ in range(config.num_clusters)
        ]
        indices = range(ops)
        for block_row, home_row in zip(zip(*blocks), zip(*homes)):
            for index in indices:
                block = block_row[index]
                store = stores[home_row[index]]
                if store.lookup(block):
                    hit_counts[index] += 1
                else:
                    store.insert(block)
    return hit_counts

"""Cycle-accounting simulation of modulo-scheduled loops."""

from repro.sim.engine import (
    DEFAULT_ITERATION_CAP,
    LoopSimulator,
    SimulationOptions,
    simulate_compiled_loop,
    simulate_compiled_loops,
)
from repro.sim.stats import (
    BenchmarkSimulationResult,
    LoopSimulationResult,
    OperationSimRecord,
)

__all__ = [
    "BenchmarkSimulationResult",
    "DEFAULT_ITERATION_CAP",
    "LoopSimulationResult",
    "LoopSimulator",
    "OperationSimRecord",
    "SimulationOptions",
    "simulate_compiled_loop",
    "simulate_compiled_loops",
]

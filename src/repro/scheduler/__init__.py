"""Modulo scheduling for clustered VLIW processors (the paper's core)."""

from repro.scheduler.baselines import (
    schedule_for_interleaved,
    schedule_for_multivliw,
    schedule_for_unified,
)
from repro.scheduler.core import (
    ModuloScheduler,
    SchedulingError,
    SchedulingHeuristic,
    schedule_loop,
)
from repro.scheduler.latency import (
    LatencyAssigner,
    LatencyAssignment,
    LatencyModel,
    LatencyStep,
    MemoryOpStats,
    assign_latencies,
    expected_stall,
    latency_classes,
    stats_from_profile,
)
from repro.scheduler.mii import MIIResult, compute_mii, make_latency_function
from repro.scheduler.mrt import ModuloReservationTable
from repro.scheduler.ordering import order_nodes, ordering_quality
from repro.scheduler.pipeline import (
    CompiledLoop,
    CompilerOptions,
    compile_loop,
    compile_loops,
    default_heuristic_for,
)
from repro.scheduler.schedule import (
    ClusteredSchedule,
    CopyOperation,
    ScheduledOperation,
    validate_schedule,
)
from repro.scheduler.unrolling import (
    MIN_TRIP_COUNT_FOR_UNROLLING,
    UnrollingEstimate,
    UnrollPolicy,
    candidate_factors,
    estimate_execution_time,
    individual_unroll_factor,
    optimal_unroll_factor,
)

__all__ = [
    "ClusteredSchedule",
    "CompiledLoop",
    "CompilerOptions",
    "CopyOperation",
    "LatencyAssigner",
    "LatencyAssignment",
    "LatencyModel",
    "LatencyStep",
    "MIIResult",
    "MIN_TRIP_COUNT_FOR_UNROLLING",
    "MemoryOpStats",
    "ModuloReservationTable",
    "ModuloScheduler",
    "ScheduledOperation",
    "SchedulingError",
    "SchedulingHeuristic",
    "UnrollPolicy",
    "UnrollingEstimate",
    "assign_latencies",
    "candidate_factors",
    "compile_loop",
    "compile_loops",
    "compute_mii",
    "default_heuristic_for",
    "estimate_execution_time",
    "expected_stall",
    "individual_unroll_factor",
    "latency_classes",
    "make_latency_function",
    "optimal_unroll_factor",
    "order_nodes",
    "ordering_quality",
    "schedule_for_interleaved",
    "schedule_for_multivliw",
    "schedule_for_unified",
    "schedule_loop",
    "stats_from_profile",
    "validate_schedule",
]

"""Tests for the machine description (repro.machine.config)."""

import pytest

from repro.machine.config import (
    AttractionBufferConfig,
    BusConfig,
    CacheGeometry,
    CacheOrganization,
    MachineConfig,
    MemoryLatencies,
    NextLevelConfig,
    individual_unroll_factor,
    unrolling_span,
)


class TestCacheGeometry:
    def test_default_table2_geometry(self):
        geometry = CacheGeometry(size_bytes=8 * 1024)
        assert geometry.block_bytes == 32
        assert geometry.associativity == 2
        assert geometry.num_blocks == 256
        assert geometry.num_sets == 128

    def test_rejects_non_power_of_two_blocks(self):
        with pytest.raises(ValueError):
            CacheGeometry(size_bytes=1024, block_bytes=24)

    def test_rejects_size_not_multiple_of_way_size(self):
        with pytest.raises(ValueError):
            CacheGeometry(size_bytes=1000, block_bytes=32, associativity=2)

    def test_rejects_non_positive_size(self):
        with pytest.raises(ValueError):
            CacheGeometry(size_bytes=0)


class TestMemoryLatencies:
    def test_default_latencies_match_paper_example(self):
        latencies = MemoryLatencies()
        assert latencies.ordered() == (1, 5, 10, 15)

    def test_rejects_unordered_latencies(self):
        with pytest.raises(ValueError):
            MemoryLatencies(local_hit=5, remote_hit=1, local_miss=10, remote_miss=15)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            MemoryLatencies(local_hit=0)


class TestBusConfig:
    def test_half_frequency_transfer_takes_two_cycles(self):
        assert BusConfig(count=4, frequency_divisor=2).transfer_cycles == 2

    def test_rejects_zero_buses(self):
        with pytest.raises(ValueError):
            BusConfig(count=0)


class TestAttractionBufferConfig:
    def test_sets_from_entries_and_ways(self):
        config = AttractionBufferConfig(enabled=True, entries=16, associativity=2)
        assert config.num_sets == 8

    def test_rejects_entries_not_multiple_of_ways(self):
        with pytest.raises(ValueError):
            AttractionBufferConfig(entries=10, associativity=4)


class TestMachineConfig:
    def test_default_is_table2(self):
        config = MachineConfig.default()
        assert config.num_clusters == 4
        assert config.interleaving_factor == 4
        assert config.cache.size_bytes == 8 * 1024
        assert config.register_buses.count == 4
        assert config.memory_buses.count == 4
        assert config.next_level.latency == 10
        assert config.organization is CacheOrganization.WORD_INTERLEAVED

    def test_interleave_span(self):
        assert MachineConfig.default().interleave_span == 16

    def test_module_geometry_splits_cache(self):
        module = MachineConfig.default().module_geometry
        assert module.size_bytes == 2 * 1024
        assert module.block_bytes == 32

    def test_subblock_bytes(self):
        assert MachineConfig.default().subblock_bytes == 8

    def test_cluster_of_address_interleaving(self):
        config = MachineConfig.default()
        assert [config.cluster_of_address(4 * w) for w in range(8)] == [
            0, 1, 2, 3, 0, 1, 2, 3,
        ]

    def test_memory_latency_for_all_classes(self):
        config = MachineConfig.default()
        assert config.memory_latency_for(local=True, hit=True) == 1
        assert config.memory_latency_for(local=False, hit=True) == 5
        assert config.memory_latency_for(local=True, hit=False) == 10
        assert config.memory_latency_for(local=False, hit=False) == 15

    def test_spans_multiple_clusters_for_doubles(self):
        config = MachineConfig.default()
        assert config.spans_multiple_clusters(8)
        assert not config.spans_multiple_clusters(4)
        assert not config.spans_multiple_clusters(2)

    def test_unified_factory(self):
        config = MachineConfig.unified(latency=5)
        assert config.organization is CacheOrganization.UNIFIED
        assert config.unified_cache_latency == 5
        assert config.unified_cache_ports == 5

    def test_multivliw_factory(self):
        assert MachineConfig.multivliw().organization is CacheOrganization.COHERENT

    def test_word_interleaved_with_buffers(self):
        config = MachineConfig.word_interleaved(attraction_buffers=True, entries=8)
        assert config.attraction_buffer.enabled
        assert config.attraction_buffer.entries == 8

    def test_with_clusters_and_interleaving(self):
        config = MachineConfig.default().with_clusters(2).with_interleaving(8)
        assert config.num_clusters == 2
        assert config.interleaving_factor == 8
        assert config.interleave_span == 16

    def test_rejects_bad_interleaving(self):
        with pytest.raises(ValueError):
            MachineConfig(interleaving_factor=3)

    def test_rejects_block_too_small_for_clusters(self):
        with pytest.raises(ValueError):
            MachineConfig(
                num_clusters=4,
                interleaving_factor=16,
                cache=CacheGeometry(size_bytes=8 * 1024, block_bytes=32),
            )

    def test_describe_contains_table2_fields(self):
        description = MachineConfig.default().describe()
        assert description["clusters"] == 4
        assert description["cache_total_bytes"] == 8192
        assert description["latencies"]["remote_miss"] == 15
        assert description["next_level_latency"] == 10


class TestUnrollFactors:
    def test_unrolling_span_is_n_times_i(self):
        assert unrolling_span(MachineConfig.default()) == 16

    @pytest.mark.parametrize(
        "stride,expected",
        [(4, 4), (2, 8), (1, 16), (8, 2), (16, 1), (32, 1), (12, 4), (6, 8)],
    )
    def test_individual_unroll_factor(self, stride, expected):
        assert individual_unroll_factor(MachineConfig.default(), stride) == expected

    def test_zero_stride_needs_no_unrolling(self):
        assert individual_unroll_factor(MachineConfig.default(), 0) == 1


class TestNextLevelConfig:
    def test_defaults(self):
        config = NextLevelConfig()
        assert config.latency == 10
        assert config.ports == 4

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            NextLevelConfig(latency=0)

"""Memory hierarchy models: caches, buses, buffers and data layout."""

from repro.memory.attraction import AttractionBuffer, AttractionBufferArray
from repro.memory.bus import BusGrant, BusSet
from repro.memory.cachesets import SetAssociativeStore
from repro.memory.classify import (
    AccessCounters,
    AccessResult,
    AccessType,
    StallCounters,
)
from repro.memory.coherent import CoherentDataCache, make_cache_model
from repro.memory.hierarchy import DataCacheModel
from repro.memory.interleaved import WordInterleavedDataCache
from repro.memory.layout import DataLayout, PlacedArray
from repro.memory.nextlevel import NextMemoryLevel
from repro.memory.unified import UnifiedDataCache

__all__ = [
    "AccessCounters",
    "AccessResult",
    "AccessType",
    "AttractionBuffer",
    "AttractionBufferArray",
    "BusGrant",
    "BusSet",
    "CoherentDataCache",
    "DataCacheModel",
    "DataLayout",
    "NextMemoryLevel",
    "PlacedArray",
    "SetAssociativeStore",
    "StallCounters",
    "UnifiedDataCache",
    "WordInterleavedDataCache",
    "make_cache_model",
]

"""Benchmark E-LAT: the Section 4.3.3 latency-assignment worked example."""

from benchmarks.conftest import save_report
from repro.experiments.latency_example import run_latency_example


def test_latency_assignment_worked_example(benchmark, results_dir):
    outcome, result = benchmark.pedantic(run_latency_example, rounds=1, iterations=1)
    save_report(results_dir, "latency_example", result.render())
    assert outcome.assignment.target_mii == 8
    assert outcome.final_latency("n2") == 1
    assert outcome.final_latency("n1") == 4
    assert outcome.final_latency("n6") == 1

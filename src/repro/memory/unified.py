"""The unified-cache clustered baseline.

The comparison architecture of Section 5.3: the register file and the
functional units are clustered, but the L1 data cache is a single shared
structure with five read/write ports.  Two latency variants are evaluated in
the paper -- an optimistic 1-cycle cache and a realistic 5-cycle cache whose
latency includes the propagation between the clusters and the centralized
cache -- and both are expressed through
:attr:`~repro.machine.config.MachineConfig.unified_cache_latency`.
"""

from __future__ import annotations

import heapq

from repro.machine.config import CacheOrganization, MachineConfig
from repro.memory.cachesets import SetAssociativeStore
from repro.memory.classify import AccessResult, AccessType
from repro.memory.hierarchy import DataCacheModel


class UnifiedDataCache(DataCacheModel):
    """Behavioural model of the unified (centralized) L1 data cache."""

    def __init__(self, config: MachineConfig) -> None:
        if config.organization is not CacheOrganization.UNIFIED:
            raise ValueError("configuration is not a unified-cache machine")
        super().__init__(config)
        geometry = config.cache
        self._store = SetAssociativeStore(geometry.num_sets, geometry.associativity)
        self._port_free_at: list[int] = [0] * config.unified_cache_ports
        heapq.heapify(self._port_free_at)
        self._port_conflicts = 0

    @property
    def port_conflicts(self) -> int:
        """Accesses that had to wait for a read/write port."""
        return self._port_conflicts

    def begin_loop(self) -> None:
        """Reset bus/port occupancy at loop boundaries (contents survive)."""
        super().begin_loop()
        self._port_free_at = [0] * self._config.unified_cache_ports
        heapq.heapify(self._port_free_at)

    def _acquire_port(self, cycle: int) -> int:
        """Wait for a free port; returns the wait in cycles."""
        earliest = heapq.heappop(self._port_free_at)
        start = max(cycle, earliest)
        heapq.heappush(self._port_free_at, start + 1)
        wait = start - cycle
        if wait:
            self._port_conflicts += 1
        return wait

    def _access(
        self,
        cluster: int,
        address: int,
        size: int,
        is_store: bool,
        cycle: int,
        attractable: bool,
    ) -> AccessResult:
        port_wait = self._acquire_port(cycle)
        block = self.block_index(address)
        hit = self._store.lookup(block)
        base_latency = self._config.unified_cache_latency
        if hit:
            return AccessResult(
                classification=AccessType.LOCAL_HIT,
                latency=base_latency + port_wait,
                home_cluster=None,
                requesting_cluster=cluster,
                bus_wait=port_wait,
            )
        self._store.insert(block)
        next_latency = self.next_level.access(cycle + port_wait)
        return AccessResult(
            classification=AccessType.LOCAL_MISS,
            latency=base_latency + port_wait + next_latency,
            home_cluster=None,
            requesting_cluster=cluster,
            bus_wait=port_wait,
        )

"""Run every experiment and assemble the full reproduction report.

``python -m repro.experiments.runner`` (or :func:`run_all_experiments`)
regenerates every table and figure of the paper's evaluation section plus the
ablations, and renders them as one text report.  The benchmark harness under
``benchmarks/`` runs the same entry points one artefact at a time.

The heavy (benchmark x architecture) simulations execute through the sweep
engine (:mod:`repro.sweep`): with ``--workers N`` the full grid every
selected experiment needs is fanned out across worker processes first, and
with ``--results-dir DIR`` results persist on disk so later runs (and the
``python -m repro.sweep`` CLI) reuse them instead of re-simulating.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Callable, Optional

from repro.experiments import (
    ablations,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    model_validation,
)
from repro.experiments.ablations import (
    run_attraction_buffer_ablation,
    run_unrolling_ablation,
)
from repro.experiments.common import (
    ArchitectureSetup,
    ExperimentOptions,
    ExperimentResult,
    ExperimentRunner,
)
from repro.experiments.figure4 import run_figure4
from repro.experiments.figure5 import run_figure5
from repro.experiments.figure6 import run_figure6
from repro.experiments.figure7 import run_figure7
from repro.experiments.figure8 import run_figure8
from repro.experiments.latency_example import run_latency_example
from repro.experiments.model_validation import run_model_validation
from repro.experiments.table1 import run_table1
from repro.workloads.mediabench import BENCHMARK_NAMES

#: (benchmark, setup) pairs an experiment will simulate, for prewarming.
PrewarmPairs = Callable[[ExperimentOptions], list[tuple[str, ArchitectureSetup]]]


@dataclass(frozen=True)
class ExperimentEntry:
    """One runnable experiment of the harness."""

    key: str
    description: str
    runner: Callable[[ExperimentRunner], ExperimentResult]
    prewarm: Optional[PrewarmPairs] = None


def _wrap(func) -> Callable[[ExperimentRunner], ExperimentResult]:
    def run(shared_runner: ExperimentRunner) -> ExperimentResult:
        _, result = func(runner=shared_runner)
        return result

    return run


def _suite_pairs(setups_fn: Callable[[], list]) -> PrewarmPairs:
    def pairs(options: ExperimentOptions) -> list[tuple[str, ArchitectureSetup]]:
        return [
            (benchmark, setup)
            for setup in setups_fn()
            for benchmark in options.benchmarks
        ]

    return pairs


def _ablation_ab_pairs(options: ExperimentOptions) -> list:
    return ablations.sweep_pairs_attraction_buffers()


EXPERIMENTS: tuple[ExperimentEntry, ...] = (
    ExperimentEntry("table1", "benchmark characterisation", lambda r: run_table1()[1]),
    ExperimentEntry(
        "latency-example",
        "Section 4.3.3 worked example",
        lambda r: run_latency_example()[1],
    ),
    ExperimentEntry(
        "figure4",
        "memory access classification",
        _wrap(run_figure4),
        prewarm=_suite_pairs(figure4.sweep_setups),
    ),
    ExperimentEntry(
        "figure5",
        "stall factor classification",
        _wrap(run_figure5),
        prewarm=_suite_pairs(figure5.sweep_setups),
    ),
    ExperimentEntry(
        "figure6",
        "stall time and Attraction Buffers",
        _wrap(run_figure6),
        prewarm=_suite_pairs(figure6.sweep_setups),
    ),
    ExperimentEntry(
        "figure7",
        "workload balance",
        _wrap(run_figure7),
        prewarm=_suite_pairs(figure7.sweep_setups),
    ),
    ExperimentEntry(
        "figure8",
        "cycle counts across architectures",
        _wrap(run_figure8),
        prewarm=_suite_pairs(figure8.sweep_setups),
    ),
    ExperimentEntry(
        "ablation-ab",
        "Attraction Buffer sizing ablation",
        _wrap(run_attraction_buffer_ablation),
        prewarm=_ablation_ab_pairs,
    ),
    ExperimentEntry(
        "ablation-unroll",
        "unrolling policy ablation",
        _wrap(run_unrolling_ablation),
        prewarm=_suite_pairs(ablations.sweep_setups_unrolling),
    ),
    ExperimentEntry(
        "model-validation",
        "analytical model vs simulator error",
        _wrap(run_model_validation),
        prewarm=_suite_pairs(model_validation.sweep_setups),
    ),
)


def run_all_experiments(
    options: Optional[ExperimentOptions] = None,
    keys: Optional[list[str]] = None,
    workers: int = 1,
    store=None,
    progress=None,
    granularity: str = "benchmark",
) -> dict[str, ExperimentResult]:
    """Run the selected experiments (all of them by default).

    With ``workers > 1`` every (benchmark, architecture) simulation the
    selected experiments need is executed up front through the sweep
    engine's process pool; the per-experiment aggregation then runs from
    cache.  ``store`` (a directory path or ResultStore) makes the results
    persistent across runs.  ``granularity="loop"`` fans individual loops
    out across the pool instead of whole benchmarks -- identical results,
    better load balance when a few multi-loop benchmarks dominate.
    """
    options = options or ExperimentOptions()
    shared_runner = ExperimentRunner(options, store=store)
    selected = {entry.key: entry for entry in EXPERIMENTS}
    if keys:
        unknown = [key for key in keys if key not in selected]
        if unknown:
            raise KeyError(f"unknown experiments: {unknown}")
        entries = [selected[key] for key in keys]
    else:
        entries = list(EXPERIMENTS)

    if workers > 1:
        pairs: list[tuple[str, ArchitectureSetup]] = []
        for entry in entries:
            if entry.prewarm is not None:
                pairs.extend(entry.prewarm(options))
        if pairs:
            shared_runner.prewarm(
                pairs, workers=workers, progress=progress,
                granularity=granularity,
            )

    return {entry.key: entry.runner(shared_runner) for entry in entries}


def render_report(results: dict[str, ExperimentResult]) -> str:
    """Concatenate the rendered experiments into one report."""
    return "\n\n".join(result.render() for result in results.values())


def main(argv: Optional[list[str]] = None) -> int:
    """Command-line entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--experiment",
        action="append",
        dest="experiments",
        choices=[entry.key for entry in EXPERIMENTS],
        help="run only the selected experiment (repeatable)",
    )
    parser.add_argument(
        "--benchmarks",
        nargs="+",
        default=list(BENCHMARK_NAMES),
        choices=list(BENCHMARK_NAMES),
        help="restrict the benchmark set",
    )
    parser.add_argument(
        "--iterations",
        type=int,
        default=256,
        help="simulated iterations per loop (default 256)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the simulation grid (default: serial)",
    )
    parser.add_argument(
        "--results-dir",
        default=None,
        help="persist simulation results to this sweep store directory",
    )
    parser.add_argument(
        "--granularity",
        choices=("benchmark", "loop"),
        default="benchmark",
        help="prewarm job granularity (loop = schedule individual loops "
        "across the pool)",
    )
    args = parser.parse_args(argv)
    options = ExperimentOptions(
        benchmarks=tuple(args.benchmarks),
        simulation_iteration_cap=args.iterations,
    )
    results = run_all_experiments(
        options,
        args.experiments,
        workers=args.workers,
        store=args.results_dir,
        granularity=args.granularity,
    )
    print(render_report(results))
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    raise SystemExit(main())

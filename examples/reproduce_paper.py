"""Regenerate the paper's evaluation artefacts from the command line.

Thin wrapper around :mod:`repro.experiments.runner`: runs every table,
figure and ablation (or a selected subset) over the full 14-benchmark
synthetic suite and prints the rendered reports.

Run with::

    python examples/reproduce_paper.py                    # everything
    python examples/reproduce_paper.py figure8 figure6    # a subset
    python examples/reproduce_paper.py --fast figure4     # fewer benchmarks
"""

import argparse

from repro.experiments import ExperimentOptions, render_report, run_all_experiments
from repro.experiments.runner import EXPERIMENTS
from repro.workloads import BENCHMARK_NAMES


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help=(
            "experiments to run (default: all); known keys: "
            + ", ".join(entry.key for entry in EXPERIMENTS)
        ),
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="use a four-benchmark subset and fewer simulated iterations",
    )
    args = parser.parse_args()

    if args.fast:
        options = ExperimentOptions(
            benchmarks=("epicdec", "gsmdec", "jpegenc", "mpeg2dec"),
            simulation_iteration_cap=96,
        )
    else:
        options = ExperimentOptions(benchmarks=BENCHMARK_NAMES)

    results = run_all_experiments(options, args.experiments or None)
    print(render_report(results))


if __name__ == "__main__":
    main()

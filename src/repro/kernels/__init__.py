"""Replay kernel backends (scalar oracle vs. vectorised bulk passes).

The simulator and profiler inner loops exist twice:

* the **scalar** path -- the per-access loops in
  :mod:`repro.sim.engine` and :mod:`repro.profiling.profiler` -- is the
  equivalence oracle: straightforward, dependency-free and always
  correct; and
* the **vector** path (:mod:`repro.kernels.vector`) replays the same
  flat trace arrays as bulk numpy passes, falling back to the scalar
  loop whenever the memory model forces genuinely sequential cycles it
  cannot reproduce (a kernel *declines* by returning ``None``).

Both backends must produce byte-identical results; the differential
tests in ``tests/test_kernels.py`` and the committed benchmark outputs
enforce that.  Backend selection:

* ``REPRO_SIM_KERNEL=scalar`` forces the oracle path;
* ``REPRO_SIM_KERNEL=vector`` forces the vectorised path (an error if
  numpy is not importable);
* ``REPRO_SIM_KERNEL=auto`` (or unset) picks ``vector`` when numpy is
  importable and silently falls back to ``scalar`` otherwise -- numpy is
  the optional ``repro[perf]`` extra, never a hard dependency.
"""

from __future__ import annotations

import os
from typing import Optional

_ENV_VAR = "REPRO_SIM_KERNEL"
_CHOICES = ("auto", "scalar", "vector")

#: Cached numpy availability (None = not probed yet).
_numpy_available: Optional[bool] = None


def numpy_available() -> bool:
    """True when numpy can be imported (probed once per process)."""
    global _numpy_available
    if _numpy_available is None:
        try:
            import numpy  # noqa: F401
        except ImportError:
            _numpy_available = False
        else:
            _numpy_available = True
    return _numpy_available


def active_backend() -> str:
    """The replay backend in effect: ``"scalar"`` or ``"vector"``.

    Reads ``REPRO_SIM_KERNEL`` on every call so tests (and sweep workers
    inheriting the environment) can switch backends without reimporting.
    """
    value = os.environ.get(_ENV_VAR, "auto").strip().lower() or "auto"
    if value not in _CHOICES:
        raise ValueError(
            f"{_ENV_VAR} must be one of {', '.join(_CHOICES)}; got {value!r}"
        )
    if value == "auto":
        return "vector" if numpy_available() else "scalar"
    if value == "vector" and not numpy_available():
        raise RuntimeError(
            f"{_ENV_VAR}=vector requires numpy (install the repro[perf] "
            f"extra); unset it or use REPRO_SIM_KERNEL=scalar"
        )
    return value


def sim_replay(plan, cache, stalls) -> Optional[int]:
    """Dispatch the simulator replay to the active backend.

    Returns the accumulated stall cycles when the vector backend handled
    the replay, or ``None`` when the scalar loop should run (scalar
    backend selected, or the vector kernel declined the loop's shape).
    """
    if active_backend() != "vector":
        return None
    from repro.kernels import vector

    return vector.sim_replay(plan, cache, stalls)


def profile_replay(blocks, homes, num_sets, associativity, unified) -> Optional[list]:
    """Dispatch the profiler replay to the active backend.

    Returns per-operation hit counts, or ``None`` when the scalar replay
    should run.
    """
    if active_backend() != "vector":
        return None
    from repro.kernels import vector

    return vector.profile_replay(blocks, homes, num_sets, associativity, unified)


def home_streams(addresses, interleaving, clusters) -> Optional[list]:
    """Dispatch home-cluster stream derivation to the active backend.

    Returns ``array('h')`` columns identical to the scalar comprehension,
    or ``None`` when the scalar path should run.
    """
    if active_backend() != "vector":
        return None
    from repro.kernels import vector

    return vector.home_streams(addresses, interleaving, clusters)


def block_streams(addresses, block_bytes) -> Optional[list]:
    """Dispatch cache-block stream derivation to the active backend.

    Returns ``array('q')`` columns identical to the scalar comprehension,
    or ``None`` when the scalar path should run.
    """
    if active_backend() != "vector":
        return None
    from repro.kernels import vector

    return vector.block_streams(addresses, block_bytes)


def profile_histograms(homes) -> Optional[list]:
    """Dispatch the profiler's cluster counting to the active backend.

    Returns per-operation ``(cluster, count)`` pairs in first-touch order
    (the ``Counter`` insertion order the scalar path produces), or
    ``None`` when the scalar counting should run.
    """
    if active_backend() != "vector":
        return None
    from repro.kernels import vector

    return vector.cluster_histograms(homes)

"""Tests for the modulo scheduler, the MRT, unrolling policy and pipeline."""

import pytest

from repro.ir.chains import build_memory_chains
from repro.ir.operation import make_operation
from repro.machine.config import MachineConfig
from repro.profiling.profiler import profile_loop
from repro.scheduler.core import ModuloScheduler, SchedulingHeuristic, schedule_loop
from repro.scheduler.latency import assign_latencies
from repro.scheduler.mrt import ModuloReservationTable
from repro.scheduler.pipeline import CompilerOptions, compile_loop, default_heuristic_for
from repro.scheduler.schedule import validate_schedule
from repro.scheduler.unrolling import (
    UnrollPolicy,
    candidate_factors,
    estimate_execution_time,
    optimal_unroll_factor,
)
from repro.workloads.generator import long_chain_kernel
from tests.conftest import build_recurrence_loop, build_streaming_loop


def _compile(loop, config, heuristic, **kwargs):
    options = CompilerOptions(heuristic=heuristic, **kwargs)
    return compile_loop(loop, config, options)


class TestModuloReservationTable:
    def setup_method(self):
        self.config = MachineConfig.default()
        self.mrt = ModuloReservationTable(4, self.config)

    def test_fu_capacity_per_row(self):
        op = make_operation("a", "add")
        assert self.mrt.fu_available(0, 0, op)
        self.mrt.reserve_fu(0, 0, op)
        assert not self.mrt.fu_available(0, 0, op)
        # Another row or another cluster is still free.
        assert self.mrt.fu_available(1, 0, op)
        assert self.mrt.fu_available(0, 1, op)

    def test_over_reservation_rejected(self):
        op = make_operation("a", "add")
        self.mrt.reserve_fu(0, 0, op)
        with pytest.raises(ValueError):
            self.mrt.reserve_fu(4, 0, op)  # row 0 again (4 % 4)

    def test_register_bus_occupancy_spans_two_rows(self):
        for _ in range(self.config.register_buses.count):
            self.mrt.reserve_register_bus(0)
        assert not self.mrt.register_bus_available(0)
        assert not self.mrt.register_bus_available(1)
        assert self.mrt.register_bus_available(2)

    def test_find_register_bus_slot(self):
        assert self.mrt.find_register_bus_slot(0, 3) == 0
        for _ in range(self.config.register_buses.count):
            self.mrt.reserve_register_bus(0)
        assert self.mrt.find_register_bus_slot(0, 0) is None
        assert self.mrt.find_register_bus_slot(0, 3) == 2

    def test_utilization(self):
        op = make_operation("a", "add")
        self.mrt.reserve_fu(0, 0, op)
        util = self.mrt.utilization()
        assert 0 < util["functional_units"] < 1


class TestModuloScheduler:
    def test_streaming_loop_schedules_at_res_mii(self, interleaved_config):
        loop = build_streaming_loop()
        profile = profile_loop(loop, interleaved_config)
        assignment = assign_latencies(loop, interleaved_config, profile)
        schedule = schedule_loop(
            loop, interleaved_config, assignment, SchedulingHeuristic.IBC, profile
        )
        validate_schedule(schedule)
        assert schedule.ii >= 1

    def test_all_heuristics_produce_valid_schedules(self):
        loop = build_recurrence_loop()
        cases = [
            (MachineConfig.word_interleaved(), SchedulingHeuristic.IBC),
            (MachineConfig.word_interleaved(), SchedulingHeuristic.IPBC),
            (MachineConfig.unified(), SchedulingHeuristic.BASE),
            (MachineConfig.multivliw(), SchedulingHeuristic.MULTIVLIW),
        ]
        for config, heuristic in cases:
            compiled = _compile(loop, config, heuristic)
            validate_schedule(compiled.schedule)
            assert compiled.schedule.heuristic == heuristic.value

    def test_ipbc_places_memory_ops_in_preferred_cluster(self, interleaved_config):
        from repro.ir.unroll import unroll_loop

        loop = unroll_loop(build_streaming_loop(), 4)
        profile = profile_loop(loop, interleaved_config)
        assignment = assign_latencies(loop, interleaved_config, profile)
        schedule = schedule_loop(
            loop, interleaved_config, assignment, SchedulingHeuristic.IPBC, profile
        )
        for op in loop.memory_operations:
            preferred = profile.preferred_cluster(op)
            chains = build_memory_chains(loop.ddg)
            if preferred is not None and chains.chain_of(op).is_trivial:
                assert schedule.cluster_of(op) == preferred

    def test_chain_members_share_a_cluster(self, interleaved_config):
        loop = long_chain_kernel("chain_test", num_loads=6, trip_count=64)
        compiled = _compile(loop, interleaved_config, SchedulingHeuristic.IPBC)
        chains = build_memory_chains(compiled.loop.ddg)
        for chain in chains.non_trivial_chains:
            clusters = {compiled.schedule.cluster_of(op) for op in chain}
            assert len(clusters) == 1

    def test_no_chains_flag_relaxes_constraint(self, interleaved_config):
        loop = long_chain_kernel("chain_free", num_loads=8, trip_count=64)
        constrained = _compile(loop, interleaved_config, SchedulingHeuristic.IPBC)
        free = _compile(
            loop, interleaved_config, SchedulingHeuristic.IPBC, use_chains=False
        )
        assert free.schedule.workload_balance() <= constrained.schedule.workload_balance()

    def test_ipbc_requires_profile(self, interleaved_config, streaming_loop):
        profile = profile_loop(streaming_loop, interleaved_config)
        assignment = assign_latencies(streaming_loop, interleaved_config, profile)
        with pytest.raises(ValueError):
            ModuloScheduler(
                streaming_loop,
                interleaved_config,
                assignment,
                SchedulingHeuristic.IPBC,
                profile=None,
            )

    def test_interleaved_heuristics_reject_unified_machine(self, streaming_loop):
        config = MachineConfig.unified()
        profile = profile_loop(streaming_loop, config)
        assignment = assign_latencies(streaming_loop, config, profile)
        with pytest.raises(ValueError):
            ModuloScheduler(
                streaming_loop, config, assignment, SchedulingHeuristic.IBC, profile
            )

    def test_cross_cluster_flow_inserts_copies(self, interleaved_config):
        from repro.ir.unroll import unroll_loop

        # Unrolled streaming loop with IPBC: stores follow their own
        # preferred clusters, so values produced elsewhere need copies.
        loop = unroll_loop(build_streaming_loop(), 4)
        profile = profile_loop(loop, interleaved_config)
        assignment = assign_latencies(loop, interleaved_config, profile)
        schedule = schedule_loop(
            loop, interleaved_config, assignment, SchedulingHeuristic.IPBC, profile
        )
        cross = [
            dep
            for dep in loop.ddg.dependences()
            if dep.kind.name == "REG_FLOW"
            and schedule.cluster_of(dep.src) != schedule.cluster_of(dep.dst)
        ]
        if cross:
            assert schedule.num_copies >= 1

    def test_schedule_metadata_records_mii(self, compiled_streaming_ipbc):
        metadata = compiled_streaming_ipbc.schedule.metadata
        assert metadata["mii"] >= 1
        assert metadata["res_mii"] >= 1
        assert compiled_streaming_ipbc.schedule.ii >= metadata["mii"]


class TestScheduleObject:
    def test_compute_cycles_formula(self, compiled_streaming_ipbc):
        schedule = compiled_streaming_ipbc.schedule
        iterations = 100
        expected = (iterations + schedule.stage_count - 1) * schedule.ii
        assert schedule.compute_cycles(iterations) == expected

    def test_workload_balance_range(self, compiled_streaming_ipbc):
        balance = compiled_streaming_ipbc.schedule.workload_balance()
        assert 0.25 <= balance <= 1.0

    def test_operations_per_cluster_sums_to_total(self, compiled_streaming_ipbc):
        schedule = compiled_streaming_ipbc.schedule
        assert sum(schedule.operations_per_cluster()) == len(schedule.entries)

    def test_register_pressure_positive(self, compiled_streaming_ipbc):
        assert compiled_streaming_ipbc.schedule.register_pressure_estimate() >= 1

    def test_describe_keys(self, compiled_streaming_ipbc):
        info = compiled_streaming_ipbc.schedule.describe()
        assert {"ii", "stage_count", "copies", "workload_balance"} <= set(info)


class TestUnrollingPolicy:
    def test_optimal_factor_for_word_stride(self, streaming_loop, interleaved_config):
        profile = profile_loop(streaming_loop, interleaved_config)
        assert optimal_unroll_factor(streaming_loop, interleaved_config, profile) == 4

    def test_candidate_factors_by_policy(self, streaming_loop, interleaved_config):
        profile = profile_loop(streaming_loop, interleaved_config)
        assert candidate_factors(
            streaming_loop, interleaved_config, UnrollPolicy.NONE, profile
        ) == [1]
        assert candidate_factors(
            streaming_loop, interleaved_config, UnrollPolicy.TIMES_N, profile
        ) == [4]
        assert candidate_factors(
            streaming_loop, interleaved_config, UnrollPolicy.OUF, profile
        ) == [4]
        assert candidate_factors(
            streaming_loop, interleaved_config, UnrollPolicy.SELECTIVE, profile
        ) == [1, 4]

    def test_short_loops_never_unrolled(self, interleaved_config):
        loop = build_streaming_loop(trip_count=4)
        assert candidate_factors(loop, interleaved_config, UnrollPolicy.SELECTIVE) == [1]

    def test_execution_time_estimate(self):
        estimate = estimate_execution_time(4, ii=8, stage_count=3, original_trip_count=400)
        assert estimate.iterations == 100
        assert estimate.estimated_cycles == (100 + 2) * 8

    def test_selective_picks_minimum_estimate(self, interleaved_config):
        loop = build_streaming_loop()
        compiled = _compile(
            loop, interleaved_config, SchedulingHeuristic.IPBC,
            unroll_policy=UnrollPolicy.SELECTIVE,
        )
        for rejected in compiled.rejected:
            assert compiled.estimate.estimated_cycles <= rejected.estimated_cycles


class TestPipeline:
    def test_default_heuristics(self):
        assert default_heuristic_for(MachineConfig.unified()) is SchedulingHeuristic.BASE
        assert (
            default_heuristic_for(MachineConfig.multivliw())
            is SchedulingHeuristic.MULTIVLIW
        )
        assert (
            default_heuristic_for(MachineConfig.word_interleaved())
            is SchedulingHeuristic.IPBC
        )

    def test_mismatched_heuristic_rejected(self, streaming_loop):
        with pytest.raises(ValueError):
            compile_loop(
                streaming_loop,
                MachineConfig.unified(),
                CompilerOptions(heuristic=SchedulingHeuristic.IPBC),
            )

    def test_compiled_loop_describe(self, compiled_streaming_ipbc):
        info = compiled_streaming_ipbc.describe()
        assert info["heuristic"] == "ipbc"
        assert info["unroll_factor"] == compiled_streaming_ipbc.unroll_factor

    def test_unrolled_variant_preserves_original(self, compiled_streaming_ipbc):
        if compiled_streaming_ipbc.unroll_factor > 1:
            assert compiled_streaming_ipbc.loop.original is compiled_streaming_ipbc.original

    def test_compile_independent_of_operation_uids(self):
        # Schedules must depend only on the loop and the options, not on how
        # many Operation uids the process allocated beforehand (regression:
        # run-order-dependent benchmark results via recurrence enumeration).
        config = MachineConfig.word_interleaved()
        options = CompilerOptions(
            heuristic=SchedulingHeuristic.IPBC, unroll_policy=UnrollPolicy.OUF
        )
        loop = long_chain_kernel("uid_chain", num_loads=10, trip_count=256)

        def signature():
            compiled = compile_loop(loop, config, options)
            return (
                compiled.schedule.ii,
                compiled.unroll_factor,
                tuple(
                    sorted(
                        (op.name, entry.start_cycle, entry.cluster)
                        for op, entry in compiled.schedule.entries.items()
                    )
                ),
            )

        first = signature()
        for i in range(997):
            make_operation(f"uid_burn_{i}", "add")
        assert signature() == first

"""JSONL event log, per-worker shards, and the per-run manifest.

On-disk layout under a sweep result store (``<results-dir>/obs/``)::

    obs/trace.jsonl        -- the merged run trace, one event per line
    obs/metrics.json       -- merged counter/gauge/histogram snapshot
    obs/manifest.json      -- spec hash, machine grid, git describe,
                              schema versions, run summary
    obs/worker-<pid>.jsonl -- transient per-worker shards (merged and
                              removed by finalize_run)

Every JSONL line is a self-describing JSON object carrying ``schema``
(:data:`EVENT_SCHEMA`) and ``kind`` (``"span"`` or ``"metrics"``).  Pool
workers append to their own shard file -- one writer per file, no
cross-process queues or locks -- and the parent merges the shards into
``trace.jsonl`` at summary time, re-parenting each worker's top-level
spans under the run's root span so the whole sweep renders as one tree.

Unreadable lines are skipped, never fatal: a worker killed mid-write
leaves at worst one torn trailing line, and telemetry must not take a
run down with it.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path
from typing import Iterable, Iterator, Optional, Union

from repro.obs import ledger as obs_ledger
from repro.obs import metrics as obs_metrics
from repro.obs import profilehook as obs_profilehook
from repro.obs import trace as obs_trace

#: Version of the JSONL event format.  Bump when the meaning of event
#: fields changes so old shards and traces are never misread.
EVENT_SCHEMA = 1

#: Version of the manifest format.
MANIFEST_SCHEMA = 1

#: Version of the in-progress run header (``obs/run.json``).
RUN_HEADER_SCHEMA = 1

#: Subdirectory of a result store that holds its telemetry.
OBS_DIRNAME = "obs"

TRACE_FILENAME = "trace.jsonl"
METRICS_FILENAME = "metrics.json"
MANIFEST_FILENAME = "manifest.json"
RUN_FILENAME = "run.json"
SHARD_PREFIX = "worker-"

#: Environment variable overriding the straggler threshold factor.
STRAGGLER_ENV_VAR = "REPRO_OBS_STRAGGLER_K"

#: A job span is annotated ``straggler=true`` when its duration exceeds
#: this multiple of the run's median job duration.
DEFAULT_STRAGGLER_FACTOR = 3.0

#: Straggler annotation needs a population: tiny runs (fewer spans than
#: this) are never annotated, so a 2-job run can't flag its slower half.
MIN_STRAGGLER_SAMPLES = 4

#: This process's shard file (pool workers only; None elsewhere).
_SHARD_PATH: Optional[Path] = None


def obs_dir(root: Union[Path, str]) -> Path:
    """The telemetry directory under a result-store root."""
    return Path(root) / OBS_DIRNAME


def append_events(path: Path, events: Iterable[dict]) -> int:
    """Append events to a JSONL file; returns how many were written.

    Each line gains the ``schema`` field; the file is opened in append
    mode, so a worker can flush after every job without rewriting.
    """
    lines = [
        json.dumps({"schema": EVENT_SCHEMA, **event}, sort_keys=True)
        for event in events
    ]
    if not lines:
        return 0
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a", encoding="utf-8") as handle:
        handle.write("\n".join(lines) + "\n")
    return len(lines)


def read_events(path: Path) -> Iterator[dict]:
    """Yield the events of a JSONL file, skipping unreadable lines.

    Lines that fail to parse, or whose ``schema`` does not match
    :data:`EVENT_SCHEMA`, are silently dropped -- a torn trailing line
    from a killed worker must not poison the merged trace.
    """
    try:
        handle = path.open("r", encoding="utf-8")
    except OSError:
        return
    with handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except ValueError:
                continue
            if isinstance(event, dict) and event.get("schema") == EVENT_SCHEMA:
                yield event


def configure_shard(directory: Union[Path, str, None]) -> Optional[Path]:
    """Bind this process's event flushes to a per-pid shard file.

    Called from pool-worker initializers; ``None`` unbinds.  Returns the
    shard path so tests can assert it.
    """
    global _SHARD_PATH
    if directory is None:
        _SHARD_PATH = None
    else:
        _SHARD_PATH = Path(directory) / f"{SHARD_PREFIX}{os.getpid()}.jsonl"
    return _SHARD_PATH


def flush_shard() -> int:
    """Drain buffered spans and metrics into this process's shard.

    No-op (returns 0) when no shard is configured or telemetry is
    disabled.  The metrics registry is snapshot-and-reset on every flush,
    so successive snapshots in one shard merge exactly.
    """
    if _SHARD_PATH is None or not obs_trace.enabled():
        return 0
    events: list[dict] = obs_trace.take_events()
    snapshot = obs_metrics.registry().take_snapshot()
    if any(snapshot.get(kind) for kind in ("counters", "gauges", "histograms")):
        events.append(
            {"kind": "metrics", "pid": os.getpid(), "snapshot": snapshot}
        )
    if obs_profilehook.active():
        # Accumulated span profiles ride along with the shard: per-pid
        # pstats dumps under obs/profile/, merged at finalization.
        obs_profilehook.flush(
            _SHARD_PATH.parent / obs_profilehook.PROFILE_DIRNAME
        )
    return append_events(_SHARD_PATH, events)


def write_run_header(
    store_root: Union[Path, str],
    info: Optional[dict] = None,
    started: Optional[float] = None,
) -> Path:
    """Publish the in-progress run's header (``obs/run.json``).

    Written by the executor just before jobs are dispatched and removed
    by :func:`finalize_run`, so its presence means "a run is live" --
    ``repro-sweep watch`` reads it for the job total, start time and
    worker count its progress rendering needs.  A long-lived caller that
    *rewrites* the header as it makes progress (the sweep service bumps
    ``completed_units`` and its dedup counters) passes the original
    ``started`` so elapsed time survives the rewrites; the default stamps
    the current wall clock.
    """
    directory = obs_dir(store_root)
    directory.mkdir(parents=True, exist_ok=True)
    header = {
        "schema": RUN_HEADER_SCHEMA,
        "started": time.time() if started is None else started,
    }
    if info:
        header.update(info)
    path = directory / RUN_FILENAME
    path.write_text(
        json.dumps(header, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path


def load_run_header(store_root: Union[Path, str]) -> Optional[dict]:
    """The in-progress run's header, or None when no run is live."""
    path = obs_dir(store_root) / RUN_FILENAME
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    return data if isinstance(data, dict) else None


def straggler_factor() -> float:
    """The configured straggler threshold multiple (see module env var)."""
    raw = os.environ.get(STRAGGLER_ENV_VAR, "")
    try:
        value = float(raw)
    except ValueError:
        return DEFAULT_STRAGGLER_FACTOR
    return value if value > 1.0 else DEFAULT_STRAGGLER_FACTOR


def mark_stragglers(
    events: Iterable[dict],
    name: str = "sweep.job",
    factor: Optional[float] = None,
) -> list[dict]:
    """Annotate job spans that ran far longer than the run's median.

    Spans called ``name`` whose duration exceeds ``factor`` times the
    median of all such spans gain ``straggler=true`` (plus the ratio) in
    their attrs; ``report --timings`` surfaces them.  Runs with fewer
    than :data:`MIN_STRAGGLER_SAMPLES` job spans are left unannotated --
    a median over two points flags nothing but noise.  Returns the
    annotated spans.
    """
    if factor is None:
        factor = straggler_factor()
    jobs = [
        event
        for event in events
        if event.get("kind") == "span" and event.get("name") == name
    ]
    if len(jobs) < MIN_STRAGGLER_SAMPLES:
        return []
    durations = sorted(float(event.get("dur", 0.0)) for event in jobs)
    median = durations[len(durations) // 2]
    if median <= 0.0:
        return []
    stragglers = []
    for event in jobs:
        duration = float(event.get("dur", 0.0))
        if duration > factor * median:
            attrs = event.setdefault("attrs", {})
            attrs["straggler"] = True
            attrs["straggler_ratio"] = round(duration / median, 2)
            stragglers.append(event)
    return stragglers


def _git_describe() -> Optional[str]:
    """``git describe`` of the working tree, or an explicit None.

    The probe is provenance, never a requirement: a missing ``git``
    binary, a tree that is not a repository (e.g. an installed package),
    a hung subprocess or any other failure yields ``None`` without a
    byte reaching this process's stdout/stderr -- both streams are
    captured and discarded on failure, so CLI output stays clean.
    """
    try:
        completed = subprocess.run(
            ["git", "describe", "--always", "--dirty", "--tags"],
            capture_output=True,
            text=True,
            timeout=5,
            cwd=Path(__file__).resolve().parent,
            stdin=subprocess.DEVNULL,
        )
    except (OSError, ValueError, subprocess.SubprocessError):
        return None
    if completed.returncode != 0:
        return None
    return completed.stdout.strip() or None


def build_manifest(extra: Optional[dict] = None) -> dict[str, object]:
    """The per-run manifest: provenance plus every schema version."""
    manifest: dict[str, object] = {
        "schema": MANIFEST_SCHEMA,
        "event_schema": EVENT_SCHEMA,
        "metric_schema": obs_metrics.METRIC_SCHEMA,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z", time.localtime()),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "argv": list(sys.argv),
        "pid": os.getpid(),
        "git_describe": _git_describe(),
    }
    if extra:
        manifest.update(extra)
    return manifest


def finalize_run(
    store_root: Union[Path, str],
    run_id: Optional[str],
    manifest_extra: Optional[dict] = None,
) -> Path:
    """Merge this run's telemetry into ``<store_root>/obs/``.

    Drains the parent process's span buffer and metrics registry, folds
    in every ``worker-*.jsonl`` shard (re-parenting orphan top-level
    spans under ``run_id`` so worker job spans hang off the run root),
    annotates straggler job spans, and writes ``trace.jsonl``,
    ``metrics.json`` and ``manifest.json``.  Accumulated span profiles
    (``REPRO_OBS_PROFILE``) are merged into ``obs/profile/``, one ledger
    entry is appended to ``obs/ledger.jsonl``, and the in-progress run
    header (``run.json``) is removed.  The trace is per-run: an earlier
    run's files are overwritten, and the consumed shards are removed.
    Returns the telemetry directory.
    """
    directory = obs_dir(store_root)
    directory.mkdir(parents=True, exist_ok=True)

    events = obs_trace.take_events()
    snapshots = [obs_metrics.registry().take_snapshot()]
    for shard in sorted(directory.glob(f"{SHARD_PREFIX}*.jsonl")):
        for event in read_events(shard):
            if event.get("kind") == "metrics":
                snapshots.append(event.get("snapshot") or {})
            else:
                events.append(event)
        try:
            shard.unlink()
        except OSError:
            pass

    for event in events:
        if (
            event.get("kind") == "span"
            and event.get("parent") is None
            and event.get("id") != run_id
        ):
            event["parent"] = run_id
    events.sort(key=lambda event: (event.get("ts", 0.0), str(event.get("id"))))
    mark_stragglers(events)

    trace_path = directory / TRACE_FILENAME
    trace_path.unlink(missing_ok=True)
    append_events(trace_path, events)

    merged = obs_metrics.merge_snapshots(snapshots)
    (directory / METRICS_FILENAME).write_text(
        json.dumps(merged, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )

    profiled = obs_profilehook.finalize(directory)
    manifest = build_manifest(manifest_extra)
    if profiled:
        manifest["profiled_spans"] = profiled
    (directory / MANIFEST_FILENAME).write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )

    obs_ledger.append_entry(
        directory, obs_ledger.build_entry(manifest, events, merged)
    )
    (directory / RUN_FILENAME).unlink(missing_ok=True)
    return directory


def load_metrics(store_root: Union[Path, str]) -> Optional[dict]:
    """The merged metrics snapshot of the last finalized run, if any."""
    path = obs_dir(store_root) / METRICS_FILENAME
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    return data if isinstance(data, dict) else None


def load_manifest(store_root: Union[Path, str]) -> Optional[dict]:
    """The manifest of the last finalized run, if any."""
    path = obs_dir(store_root) / MANIFEST_FILENAME
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    return data if isinstance(data, dict) else None

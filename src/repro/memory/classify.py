"""Classification of memory accesses.

Section 3 of the paper classifies every access of the interleaved cache into
local hit, remote hit, local miss and remote miss, plus *combined* accesses
(requests to a subblock that is already in flight, which are merged with the
pending request).  The same classification is reused, with the obvious
degeneration, for the unified cache (everything is "local") and the
multiVLIW (remote hits are accesses served from another cluster's cache).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class AccessType(enum.Enum):
    """Outcome class of a memory access."""

    LOCAL_HIT = "local-hit"
    REMOTE_HIT = "remote-hit"
    LOCAL_MISS = "local-miss"
    REMOTE_MISS = "remote-miss"
    COMBINED = "combined"

    # Members are singletons, so the identity hash is correct -- and, being
    # implemented in C, far cheaper than ``Enum.__hash__`` in the simulator's
    # per-access counter updates (dicts and Counters keyed by AccessType).
    __hash__ = object.__hash__

    @property
    def is_hit(self) -> bool:
        """True if the data was found in some first-level structure."""
        return self in (AccessType.LOCAL_HIT, AccessType.REMOTE_HIT)

    @property
    def is_local(self) -> bool:
        """True if the access was served by the local cache module."""
        return self in (AccessType.LOCAL_HIT, AccessType.LOCAL_MISS)

    @property
    def is_remote(self) -> bool:
        """True if the access had to cross the memory buses."""
        return self in (AccessType.REMOTE_HIT, AccessType.REMOTE_MISS)


@dataclass(frozen=True)
class AccessResult:
    """Result of one memory access against a data-cache model."""

    classification: AccessType
    latency: int
    home_cluster: int | None = None
    requesting_cluster: int | None = None
    via_attraction_buffer: bool = False
    spans_clusters: bool = False
    bus_wait: int = 0

    @property
    def is_local(self) -> bool:
        """True if no memory-bus traversal was needed."""
        return self.classification.is_local or self.via_attraction_buffer


@dataclass
class AccessCounters:
    """Running counts of access classifications.

    These counters are what Figure 4 plots (fractions of all accesses) and
    what the local-hit-ratio metric of the paper is computed from.
    """

    local_hits: int = 0
    remote_hits: int = 0
    local_misses: int = 0
    remote_misses: int = 0
    combined: int = 0
    attraction_buffer_hits: int = 0

    def record(self, result: AccessResult) -> None:
        """Record one access result."""
        # Identity dispatch: this runs once per simulated access, where the
        # old name-indirection (dict lookup + getattr + setattr) dominated.
        classification = result.classification
        if classification is AccessType.LOCAL_HIT:
            self.local_hits += 1
        elif classification is AccessType.REMOTE_HIT:
            self.remote_hits += 1
        elif classification is AccessType.LOCAL_MISS:
            self.local_misses += 1
        elif classification is AccessType.REMOTE_MISS:
            self.remote_misses += 1
        else:
            self.combined += 1
        if result.via_attraction_buffer:
            self.attraction_buffer_hits += 1

    @property
    def total(self) -> int:
        """Total number of accesses recorded."""
        return (
            self.local_hits
            + self.remote_hits
            + self.local_misses
            + self.remote_misses
            + self.combined
        )

    @property
    def local_accesses(self) -> int:
        """Accesses served without crossing the memory buses."""
        return self.local_hits + self.local_misses

    @property
    def remote_accesses(self) -> int:
        """Accesses that crossed the memory buses."""
        return self.remote_hits + self.remote_misses

    def local_hit_ratio(self) -> float:
        """Fraction of all accesses that are local hits (Figure 4's metric)."""
        if self.total == 0:
            return 0.0
        return self.local_hits / self.total

    def fractions(self) -> dict[str, float]:
        """Per-class fraction of all accesses."""
        total = self.total or 1
        return {
            "local_hits": self.local_hits / total,
            "remote_hits": self.remote_hits / total,
            "local_misses": self.local_misses / total,
            "remote_misses": self.remote_misses / total,
            "combined": self.combined / total,
        }

    def scale(self, factor: float) -> None:
        """Scale every counter in place, rounding to integers.

        Used by the simulator to extrapolate the counters of a sampled
        iteration prefix to a loop's full trip count.
        """
        self.local_hits = int(round(self.local_hits * factor))
        self.remote_hits = int(round(self.remote_hits * factor))
        self.local_misses = int(round(self.local_misses * factor))
        self.remote_misses = int(round(self.remote_misses * factor))
        self.combined = int(round(self.combined * factor))
        self.attraction_buffer_hits = int(
            round(self.attraction_buffer_hits * factor)
        )

    def merge(self, other: "AccessCounters") -> "AccessCounters":
        """Return the element-wise sum of two counter sets."""
        return AccessCounters(
            local_hits=self.local_hits + other.local_hits,
            remote_hits=self.remote_hits + other.remote_hits,
            local_misses=self.local_misses + other.local_misses,
            remote_misses=self.remote_misses + other.remote_misses,
            combined=self.combined + other.combined,
            attraction_buffer_hits=self.attraction_buffer_hits
            + other.attraction_buffer_hits,
        )

    def scaled(self, factor: float) -> dict[str, float]:
        """Counts multiplied by ``factor`` (used to weight loops)."""
        return {
            "local_hits": self.local_hits * factor,
            "remote_hits": self.remote_hits * factor,
            "local_misses": self.local_misses * factor,
            "remote_misses": self.remote_misses * factor,
            "combined": self.combined * factor,
        }


@dataclass
class StallCounters:
    """Stall cycles attributed to each access class (Figure 6's metric)."""

    remote_hit: int = 0
    local_miss: int = 0
    remote_miss: int = 0
    combined: int = 0

    def record(self, classification: AccessType, cycles: int) -> None:
        """Attribute ``cycles`` of stall to an access class.

        Local hits never cause stalls (the scheduler never assumes a latency
        below the local-hit latency), so they are rejected here.
        """
        if cycles <= 0:
            return
        if classification is AccessType.REMOTE_HIT:
            self.remote_hit += cycles
        elif classification is AccessType.LOCAL_MISS:
            self.local_miss += cycles
        elif classification is AccessType.REMOTE_MISS:
            self.remote_miss += cycles
        elif classification is AccessType.COMBINED:
            self.combined += cycles
        else:
            raise ValueError("local hits cannot generate stall time")

    @property
    def total(self) -> int:
        """Total stall cycles."""
        return self.remote_hit + self.local_miss + self.remote_miss + self.combined

    def fractions(self) -> dict[str, float]:
        """Per-class fraction of stall time."""
        total = self.total or 1
        return {
            "remote_hit": self.remote_hit / total,
            "local_miss": self.local_miss / total,
            "remote_miss": self.remote_miss / total,
            "combined": self.combined / total,
        }

    def scale(self, factor: float) -> None:
        """Scale every stall counter in place, rounding to integers."""
        self.remote_hit = int(round(self.remote_hit * factor))
        self.local_miss = int(round(self.local_miss * factor))
        self.remote_miss = int(round(self.remote_miss * factor))
        self.combined = int(round(self.combined * factor))

    def merge(self, other: "StallCounters") -> "StallCounters":
        """Return the element-wise sum of two stall counter sets."""
        return StallCounters(
            remote_hit=self.remote_hit + other.remote_hit,
            local_miss=self.local_miss + other.local_miss,
            remote_miss=self.remote_miss + other.remote_miss,
            combined=self.combined + other.combined,
        )

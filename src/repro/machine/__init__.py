"""Machine descriptions of the evaluated clustered VLIW processors."""

from repro.machine.config import (
    AttractionBufferConfig,
    BusConfig,
    CacheGeometry,
    CacheOrganization,
    FunctionalUnitKind,
    FunctionalUnitSet,
    MachineConfig,
    MemoryLatencies,
    NextLevelConfig,
    OperationLatencies,
    individual_unroll_factor,
    unrolling_span,
)
from repro.machine.resources import ResourceModel, ResourceUsageSummary, unit_kind_for

__all__ = [
    "AttractionBufferConfig",
    "BusConfig",
    "CacheGeometry",
    "CacheOrganization",
    "FunctionalUnitKind",
    "FunctionalUnitSet",
    "MachineConfig",
    "MemoryLatencies",
    "NextLevelConfig",
    "OperationLatencies",
    "ResourceModel",
    "ResourceUsageSummary",
    "individual_unroll_factor",
    "unit_kind_for",
    "unrolling_span",
]

"""Sweep architectural parameters of the word-interleaved processor.

The paper fixes the configuration of Table 2 (4 clusters, 4-byte
interleaving, 16-entry Attraction Buffers) and mentions that a different
interleaving factor would suit other application domains.  This example
sweeps the cluster count, the interleaving factor and the Attraction Buffer
size on a small mix of kernels and reports the local hit ratio and total
cycles of each point -- the kind of design-space exploration the library's
API is meant to support.

Run with::

    python examples/design_space_sweep.py
"""

from repro.analysis.report import format_table
from repro.machine import MachineConfig
from repro.scheduler import CompilerOptions, SchedulingHeuristic, compile_loop
from repro.sim import SimulationOptions, simulate_compiled_loops
from repro.workloads import reduction_kernel, streaming_kernel, strided_kernel


def build_kernels():
    """A small mix: streaming, reduction and a large-stride heap loop."""
    return [
        streaming_kernel("sweep_stream", element_bytes=2, trip_count=2048),
        reduction_kernel("sweep_reduce", element_bytes=4, trip_count=2048),
        strided_kernel("sweep_stride", element_bytes=2, stride_elements=8, trip_count=1024),
    ]


def evaluate(config: MachineConfig, loops) -> tuple[float, float]:
    """Compile and simulate the kernels; return (local hit ratio, cycles)."""
    options = CompilerOptions(heuristic=SchedulingHeuristic.IPBC)
    compiled = [compile_loop(loop, config, options) for loop in loops]
    result = simulate_compiled_loops(
        compiled, "sweep", config, SimulationOptions(iteration_cap=256)
    )
    return result.local_hit_ratio(), result.total_cycles


def main() -> None:
    loops = build_kernels()
    rows = []
    for clusters in (2, 4):
        for interleaving in (4, 8):
            for ab_entries in (None, 16):
                config = MachineConfig.word_interleaved(
                    attraction_buffers=ab_entries is not None,
                    entries=ab_entries or 16,
                ).with_clusters(clusters).with_interleaving(interleaving)
                ratio, cycles = evaluate(config, loops)
                rows.append(
                    [
                        clusters,
                        interleaving,
                        "yes" if ab_entries else "no",
                        ratio,
                        int(cycles),
                    ]
                )
    print(
        format_table(
            ["clusters", "interleaving (B)", "attraction buffers", "local hit ratio", "cycles"],
            rows,
            title="Design-space sweep (IPBC, selective unrolling)",
        )
    )


if __name__ == "__main__":
    main()

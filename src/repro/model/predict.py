"""Benchmark-level performance prediction (no scheduling, no simulation).

:func:`predict_loop` mirrors the decisions of the compilation pipeline --
candidate unrolling factors, selective latency assignment, the paper's
``(iterations + SC - 1) * II`` execution model -- but replaces every
measured quantity with its analytical counterpart:

* the profile-derived hit rate / preferred-cluster concentration becomes
  the closed-form mix of :mod:`repro.model.locality`;
* the scheduler's II becomes the bound of :mod:`repro.model.bounds` under
  the latencies the (real) latency-assignment pass picks when fed the
  model's statistics;
* the stage count becomes ``ceil(critical_path / II)``;
* stall time becomes the expected uncovered latency per access, scaled by
  the trip count -- the same ``max(0, real - assigned)`` rule the
  simulator applies per dynamic operation.

The result types subclass the simulator's containers, so everything that
consumes a :class:`~repro.sim.stats.BenchmarkSimulationResult` -- the
metrics of :mod:`repro.analysis.metrics`, the sweep report, the experiment
harness -- consumes a :class:`PredictedResult` unchanged; ``source`` tells
them apart where it matters (the result store).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.ir.ddg import DependenceKind
from repro.ir.loop import Loop
from repro.ir.operation import Operation
from repro.ir.unroll import unroll_loop
from repro.machine.config import CacheOrganization, MachineConfig
from repro.memory.classify import AccessCounters, StallCounters
from repro.model.bounds import PerformanceBounds, loop_bounds
from repro.model.locality import ExpectedAccessMix, loop_access_mix
from repro.scheduler.latency import MemoryOpStats, assign_latencies
from repro.scheduler.mii import make_latency_function
from repro.scheduler.pipeline import CompilerOptions, default_heuristic_for
from repro.scheduler.unrolling import candidate_factors
from repro.sim.engine import SimulationOptions
from repro.sim.stats import BenchmarkSimulationResult, LoopSimulationResult
from repro.workloads.spec import Benchmark


@dataclass
class PredictedLoopResult(LoopSimulationResult):
    """Model prediction for one loop, shaped like a simulation result."""

    bounds: Optional[PerformanceBounds] = None
    unroll_factor: int = 1
    mixes: dict[Operation, ExpectedAccessMix] = field(default_factory=dict)

    def describe(self) -> dict[str, object]:
        """Flat summary, extended with the model's II decomposition."""
        summary = super().describe()
        summary["unroll_factor"] = self.unroll_factor
        if self.bounds is not None:
            summary["binding_constraint"] = self.bounds.binding_constraint
        return summary


@dataclass
class PredictedResult(BenchmarkSimulationResult):
    """Model prediction for a benchmark, shaped like a simulation result.

    Duck-compatible with :class:`BenchmarkSimulationResult` everywhere
    (:mod:`repro.analysis.metrics`, sweep reports); ``source`` marks store
    records produced by the model rather than the simulator.
    """

    source: str = "model"

    def describe(self) -> dict[str, object]:
        """Flat summary used by reports; keys match the simulator's."""
        summary = super().describe()
        summary["source"] = self.source
        return summary

    def scaled(self, compute_scale: float, stall_scale: float) -> "PredictedResult":
        """A copy with calibrated compute/stall cycles (per-loop scaling)."""
        loops = [
            replace(
                loop,
                compute_cycles=int(round(loop.compute_cycles * compute_scale)),
                stall_cycles=int(round(loop.stall_cycles * stall_scale)),
            )
            for loop in self.loops
        ]
        return replace(self, loops=loops)


def _preferred_cluster(fractions: dict[int, float]) -> int:
    """Most-visited cluster of a stream; lowest index breaks ties.

    The same deterministic tie-break the profiler uses, shared by the
    balance estimate and the cluster-assignment bound so one operation is
    never attributed to different clusters within a single prediction.
    """
    return max(sorted(fractions), key=lambda cluster: fractions[cluster])


def _covered_latency(
    loop: Loop, op: Operation, assigned: int, ii: int
) -> float:
    """Cycles the schedule is expected to cover before a consumer stalls.

    Mirrors the simulator's consumer-cover rule: loads without register
    consumers never stall, and consumers reached only through loop-carried
    flow dependences sit at least ``distance * II`` cycles downstream.
    """
    slack: Optional[float] = None
    for dep in loop.ddg.dependences_from(op):
        if dep.kind is not DependenceKind.REG_FLOW:
            continue
        distance = float(assigned) if dep.distance == 0 else float(dep.distance * ii)
        slack = distance if slack is None else min(slack, distance)
    if slack is None:
        return math.inf
    return max(float(assigned), slack)


def _predicted_balance(loop: Loop, config: MachineConfig) -> float:
    """Expected WB(L): preferred-cluster pull plus an even non-memory spread."""
    clusters = config.num_clusters
    total = len(loop.operations)
    if total == 0 or clusters <= 1:
        return 1.0
    if config.organization is not CacheOrganization.WORD_INTERLEAVED:
        return 1.0 / clusters
    per_cluster = [0.0] * clusters
    memory_ops = len(loop.memory_operations)
    for preferred in _expected_preferred_clusters(loop, config).values():
        per_cluster[preferred] += 1.0
    non_memory = total - memory_ops
    for index in range(clusters):
        per_cluster[index] += non_memory / clusters
    return max(per_cluster) / total


def _expected_preferred_clusters(
    loop: Loop, config: MachineConfig
) -> dict[Operation, Optional[int]]:
    """The cluster a preferred-cluster heuristic would pin each op to.

    Strided operations go to the cluster their stream visits most (pure
    geometry); operations without a usable stride get an even round-robin
    spread, matching the roughly uniform histograms profiling yields for
    them.
    """
    from repro.memory.layout import stride_cluster_fractions

    preferred: dict[Operation, Optional[int]] = {}
    for index, op in enumerate(loop.memory_operations):
        access = op.memory
        if access.stride_known and not access.indirect:
            fractions = stride_cluster_fractions(
                config, access.stride_bytes, access.offset_bytes
            )
            preferred[op] = _preferred_cluster(fractions)
        else:
            preferred[op] = index % config.num_clusters
    return preferred


def _recurrence_ratio(loop: Loop, latency_of) -> float:
    """Latency/distance of the most constraining original recurrence.

    Unrolling by U turns a recurrence of latency L and distance d into one
    of latency ~U*L at the same total distance, so the II of the unrolled
    loop can never beat ``U * L / d``.  Enumerating recurrences directly on
    a heavily unrolled body misses this -- long cycles fall outside the
    enumeration length bound -- so the floor is derived from the original
    loop, where every recurrence is short enough to see.
    """
    return max(
        (
            rec.latency_sum(latency_of) / rec.total_distance
            for rec in loop.ddg.recurrences()
        ),
        default=0.0,
    )


def _predict_variant(
    variant: Loop,
    config: MachineConfig,
    options: CompilerOptions,
    simulation: SimulationOptions,
    factor: int,
    rec_floor: int = 1,
    mixes: Optional[dict[Operation, ExpectedAccessMix]] = None,
    assignment=None,
) -> PredictedLoopResult:
    """Predict one unrolled variant of a loop.

    ``mixes``/``assignment`` let :func:`predict_loop` pass the base loop's
    already-computed access mixes and latency assignment for the factor-1
    variant (both are pure functions of the same inputs, so reuse cannot
    change the prediction) instead of recomputing them per call.
    """
    simulated = min(variant.trip_count, simulation.iteration_cap)
    if mixes is None:
        mixes = loop_access_mix(
            variant, config, aligned=options.variable_alignment, iterations=simulated
        )
    if assignment is None:
        stats = {
            op: MemoryOpStats(
                hit_rate=min(1.0, mix.hit), local_ratio=min(1.0, mix.local)
            )
            for op, mix in mixes.items()
        }
        assignment = assign_latencies(variant, config, stats=stats)
    latency_of = make_latency_function(
        config, memory_latencies=assignment.latencies
    )
    preferred = (
        _expected_preferred_clusters(variant, config)
        if options.heuristic.uses_preferred_cluster
        and config.organization is CacheOrganization.WORD_INTERLEAVED
        else None
    )
    bounds = loop_bounds(
        variant,
        config,
        latency_of=latency_of,
        mixes=mixes,
        use_chains=options.use_chains and options.heuristic.uses_chains,
        preferred_clusters=preferred,
    )
    if rec_floor > bounds.rec_mii:
        bounds = replace(bounds, rec_mii=rec_floor)
    ii = bounds.ii
    stage_count = max(1, -(-bounds.critical_path // ii))
    iterations = variant.trip_count
    compute_cycles = (iterations + stage_count - 1) * ii

    accesses = AccessCounters()
    stalls = StallCounters()
    stall_per_iteration = 0.0
    for op, mix in mixes.items():
        accesses.local_hits += int(round(mix.local_hit * iterations))
        accesses.remote_hits += int(round(mix.remote_hit * iterations))
        accesses.local_misses += int(round(mix.local_miss * iterations))
        accesses.remote_misses += int(round(mix.remote_miss * iterations))
        if op.is_store:
            continue
        cover = _covered_latency(variant, op, assignment.latency_of(op), ii)
        if math.isinf(cover):
            continue
        stall_per_iteration += mix.expected_stall(config, cover)
        for access_type, cycles in mix.stall_by_type(config, cover).items():
            stalls.record(access_type, int(round(cycles * iterations)))

    return PredictedLoopResult(
        loop_name=(variant.original or variant).name,
        heuristic=options.heuristic.value,
        ii=ii,
        stage_count=stage_count,
        iterations=iterations,
        simulated_iterations=simulated,
        compute_cycles=compute_cycles,
        stall_cycles=int(round(stall_per_iteration * iterations)),
        accesses=accesses,
        stalls=stalls,
        operation_records={},
        workload_balance=_predicted_balance(variant, config),
        num_copies=0,
        ops_per_iteration=len(variant.operations),
        weight=variant.weight,
        bounds=bounds,
        unroll_factor=factor,
        mixes=mixes,
    )


def _cached_unroll_factors(
    loop: Loop,
    config: MachineConfig,
    options: CompilerOptions,
    artifacts,
) -> Optional[list[int]]:
    """The pipeline's real candidate factors, if already compiled.

    When the staged pipeline has run this loop's unroll stage (for this
    machine/options slice), its artifact carries the exact candidate set --
    including the profile-driven hit-rate filter on the OUF that a purely
    analytical enumeration cannot reproduce.  Lookups use ``peek`` so a
    read-only prediction never counts as a stage-cache hit or miss, and
    nothing is ever computed here: without an artifact the model falls
    back to the analytical candidate set.
    """
    if artifacts is None:
        return None
    from repro.scheduler.pipeline import StageContext, UnrollStage

    ctx = StageContext(loop, config, options)
    payload = artifacts.peek(UnrollStage.name, UnrollStage.key(ctx))
    if payload is None:
        return None
    return list(payload["factors"])


def predict_loop(
    loop: Loop,
    config: MachineConfig,
    options: Optional[CompilerOptions] = None,
    simulation: Optional[SimulationOptions] = None,
    artifacts=None,
) -> PredictedLoopResult:
    """Predict the execution of one loop without compiling or simulating.

    Evaluates the same unrolling candidates the pipeline would and keeps
    the variant with the smallest predicted ``(iterations + SC - 1) * II``
    -- the pipeline's own selection criterion.  With ``artifacts`` (a
    stage-artifact cache, see :mod:`repro.sweep.artifacts`) the candidate
    set is read from the pipeline's cached unroll stage instead of being
    re-derived analytically.
    """
    if options is None:
        options = CompilerOptions(heuristic=default_heuristic_for(config))
    simulation = simulation or SimulationOptions()

    # The recurrence floor scales with the unroll factor; derive it from the
    # original loop under the latencies its own assignment would pick.
    base_mixes = loop_access_mix(
        loop,
        config,
        aligned=options.variable_alignment,
        iterations=min(loop.trip_count, simulation.iteration_cap),
    )
    base_stats = {
        op: MemoryOpStats(hit_rate=min(1.0, mix.hit), local_ratio=min(1.0, mix.local))
        for op, mix in base_mixes.items()
    }
    base_assignment = assign_latencies(loop, config, stats=base_stats)
    ratio = _recurrence_ratio(
        loop, make_latency_function(config, memory_latencies=base_assignment.latencies)
    )

    factors = _cached_unroll_factors(loop, config, options, artifacts)
    if factors is None:
        factors = candidate_factors(loop, config, options.unroll_policy)

    best: Optional[PredictedLoopResult] = None
    for factor in factors:
        variant = unroll_loop(loop, factor) if factor > 1 else loop
        candidate = _predict_variant(
            variant,
            config,
            options,
            simulation,
            factor,
            rec_floor=math.ceil(factor * ratio),
            # The factor-1 variant *is* the loop whose mixes and assignment
            # the recurrence floor above already computed; reuse them.
            mixes=base_mixes if factor == 1 else None,
            assignment=base_assignment if factor == 1 else None,
        )
        if best is None or candidate.compute_cycles < best.compute_cycles:
            best = candidate
    assert best is not None  # candidate_factors is never empty
    return best


def predict_benchmark(
    benchmark: Benchmark,
    config: MachineConfig,
    options: Optional[CompilerOptions] = None,
    simulation: Optional[SimulationOptions] = None,
    architecture: Optional[str] = None,
    artifacts=None,
) -> PredictedResult:
    """Predict a whole benchmark: one prediction per loop, aggregated."""
    if options is None:
        options = CompilerOptions(heuristic=default_heuristic_for(config))
    loops = [
        predict_loop(loop, config, options, simulation, artifacts=artifacts)
        for loop in benchmark.loops
    ]
    return PredictedResult(
        benchmark=benchmark.name,
        architecture=architecture or config.organization.value,
        heuristic=options.heuristic.value,
        loops=loops,
    )


def predict_job(job, artifacts=None) -> PredictedResult:
    """Predict one sweep job (a :class:`~repro.sweep.spec.SweepJob`).

    A loop-scoped job predicts just its loop: loops are modelled
    independently (exactly as :func:`predict_benchmark` treats them), so
    the single-loop prediction equals the matching entry of the
    benchmark-level prediction.  ``artifacts`` forwards a stage-artifact
    cache so predictions reuse the pipeline's cached unroll candidates.
    """
    from repro.sweep.workloads import resolve_loop, resolve_workload

    benchmark = resolve_workload(job.benchmark)
    if getattr(job, "loop", None) is not None:
        benchmark = replace(
            benchmark, loops=[resolve_loop(job.benchmark, job.loop)]
        )
    return predict_benchmark(
        benchmark,
        job.config,
        job.options,
        job.simulation,
        architecture=job.architecture,
        artifacts=artifacts,
    )

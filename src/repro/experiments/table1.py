"""Table 1: benchmarks and their dominant data sizes.

The paper's Table 1 lists, for every Mediabench program, the profile and
execution data sets and the dominant data size with its share of dynamic
memory accesses.  The synthetic suite cannot reproduce the input files, but
it can (and does) reproduce the dominant-size characterisation; this module
prints the measured values next to the paper's and the experiment tests check
that they agree.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import ExperimentOptions, ExperimentResult
from repro.workloads.mediabench import mediabench_suite
from repro.workloads.spec import Benchmark


def run_table1(
    options: Optional[ExperimentOptions] = None,
) -> tuple[list[dict[str, object]], ExperimentResult]:
    """Regenerate the benchmark characterisation table."""
    names = options.benchmarks if options is not None else None
    suite = mediabench_suite() if names is None else mediabench_suite(tuple(names))
    rows = [benchmark.describe() for benchmark in suite]
    result = ExperimentResult(
        title="Table 1 - benchmark characterisation (synthetic suite vs paper)",
        headers=[
            "benchmark",
            "loops",
            "mem ops",
            "dominant size (B)",
            "measured fraction",
            "paper size (B)",
            "paper fraction",
            "indirect fraction",
        ],
    )
    for row in rows:
        result.add_row(
            [
                row["benchmark"],
                row["loops"],
                row["memory_operations"],
                row["dominant_size_bytes"],
                row["dominant_size_fraction"],
                row["paper_dominant_size_bytes"],
                row["paper_dominant_size_fraction"],
                row["indirect_fraction"],
            ]
        )
    result.notes.append(
        "profile and execution inputs are modelled as different data-set "
        "seeds; see DESIGN.md for the substitution rationale"
    )
    return rows, result


def dominant_size_matches(benchmark: Benchmark) -> bool:
    """True if the measured dominant size equals the paper's for a benchmark."""
    measured_size, _ = benchmark.measured_dominant_size()
    return measured_size == benchmark.characteristics.dominant_element_bytes

"""Sweep architectural parameters of the word-interleaved processor.

The paper fixes the configuration of Table 2 (4 clusters, 4-byte
interleaving, 16-entry Attraction Buffers) and mentions that a different
interleaving factor would suit other application domains.  This example
sweeps the cluster count, the interleaving factor and the Attraction Buffer
size on a small mix of kernels through the parallel sweep engine
(:mod:`repro.sweep`): the 8-point grid fans out across worker processes,
every point is persisted as a JSON record in the result store, and
re-running the example completes instantly from cache.

Run with::

    python examples/design_space_sweep.py [--workers N] [--results-dir DIR]
                                          [--granularity benchmark|loop]

The same grid is available from the command line as
``python -m repro.sweep run``.
"""

import argparse

from repro.sweep import ResultStore, default_spec, render_report, run_sweep
from repro.sweep.executor import default_workers


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--workers",
        type=int,
        default=default_workers(cap=4),
        help="worker processes (default: cpu count, capped at 4)",
    )
    parser.add_argument(
        "--results-dir",
        default="sweep-results",
        help="persistent result store directory (default: ./sweep-results)",
    )
    parser.add_argument(
        "--granularity",
        choices=("benchmark", "loop"),
        default="benchmark",
        help="schedule whole benchmarks or individual loops across the pool",
    )
    args = parser.parse_args()

    spec = default_spec()
    store = ResultStore(args.results_dir)
    summary = run_sweep(
        spec,
        store=store,
        workers=args.workers,
        granularity=args.granularity,
    )
    info = summary.describe()
    print(
        f"{info['total_jobs']} points: {info['executed']} executed on "
        f"{info['workers']} worker(s), {info['cache_hits']} served from "
        f"{store.root} in {info['elapsed_seconds']}s\n"
    )
    keys = {outcome.key for outcome in summary.outcomes}
    records = [record for record in store.records() if record.get("key") in keys]
    print(
        render_report(
            records,
            sort_by="total_cycles",
            title="Design-space sweep (IPBC, selective unrolling)",
        )
    )


if __name__ == "__main__":
    main()

"""Tests for the profiler and the address streams."""

import pytest

from repro.ir.builder import LoopBuilder
from repro.machine.config import MachineConfig
from repro.memory.layout import DataLayout
from repro.profiling.address import AddressStream
from repro.profiling.profiler import profile_loop


class TestAddressStream:
    def test_strided_addresses(self, streaming_loop, interleaved_config):
        layout = DataLayout(interleaved_config, aligned=True, dataset="profile")
        stream = AddressStream(streaming_loop, layout, "profile")
        load = streaming_loop.ddg.find("ld")
        base = stream.address(load, 0)
        assert stream.address(load, 1) == base + 4
        assert stream.address(load, 2) == base + 8

    def test_indirect_addresses_are_deterministic(self, indirect_loop, interleaved_config):
        layout = DataLayout(interleaved_config, aligned=True, dataset="profile")
        first = AddressStream(indirect_loop, layout, "profile")
        second = AddressStream(indirect_loop, layout, "profile")
        lookup = indirect_loop.ddg.find("ld_tab")
        addresses_first = [first.address(lookup, i) for i in range(32)]
        addresses_second = [second.address(lookup, i) for i in range(32)]
        assert addresses_first == addresses_second

    def test_indirect_addresses_differ_across_datasets(
        self, indirect_loop, interleaved_config
    ):
        layout_a = DataLayout(interleaved_config, aligned=True, dataset="profile")
        layout_b = DataLayout(interleaved_config, aligned=True, dataset="execution")
        stream_a = AddressStream(indirect_loop, layout_a, "profile")
        stream_b = AddressStream(indirect_loop, layout_b, "execution")
        lookup = indirect_loop.ddg.find("ld_tab")
        a = [stream_a.address(lookup, i) for i in range(64)]
        b = [stream_b.address(lookup, i) for i in range(64)]
        assert a != b

    def test_indirect_addresses_stay_in_table(self, indirect_loop, interleaved_config):
        layout = DataLayout(interleaved_config, aligned=True, dataset="profile")
        stream = AddressStream(indirect_loop, layout, "profile")
        lookup = indirect_loop.ddg.find("ld_tab")
        base = layout.base_address("table")
        size = indirect_loop.arrays["table"].size_bytes
        for iteration in range(100):
            address = stream.address(lookup, iteration)
            assert base <= address < base + size

    def test_non_memory_operation_rejected(self, streaming_loop, interleaved_config):
        layout = DataLayout(interleaved_config)
        stream = AddressStream(streaming_loop, layout, "profile")
        with pytest.raises(ValueError):
            stream.address(streaming_loop.ddg.find("scale"), 0)


class TestProfiler:
    def test_hit_rates_in_range(self, streaming_loop, interleaved_config):
        profile = profile_loop(streaming_loop, interleaved_config)
        for op in streaming_loop.memory_operations:
            assert 0.0 <= profile.hit_rate(op) <= 1.0
            assert profile.operations[op].accesses > 0

    def test_strided_load_spreads_over_clusters_without_unrolling(
        self, streaming_loop, interleaved_config
    ):
        profile = profile_loop(streaming_loop, interleaved_config)
        load = streaming_loop.ddg.find("ld")
        assert profile.distribution(load) == pytest.approx(0.25, abs=0.05)

    def test_unrolled_load_concentrates_on_one_cluster(self, interleaved_config):
        from repro.ir.unroll import unroll_loop
        from tests.conftest import build_streaming_loop

        unrolled = unroll_loop(build_streaming_loop(), 4)
        profile = profile_loop(unrolled, interleaved_config)
        for op in unrolled.memory_operations:
            assert profile.distribution(op) == pytest.approx(1.0)
            assert profile.preferred_cluster(op) is not None

    def test_small_table_has_high_hit_rate(self, interleaved_config):
        builder = LoopBuilder("table", trip_count=1024)
        builder.array("t", 4, 64)
        builder.load("ld", "t", stride=4)
        loop = builder.build()
        profile = profile_loop(loop, interleaved_config)
        assert profile.hit_rate(loop.ddg.find("ld")) > 0.9

    def test_iteration_cap_respected(self, streaming_loop, interleaved_config):
        profile = profile_loop(streaming_loop, interleaved_config, iteration_cap=64)
        assert profile.profiled_iterations == 64

    def test_unified_configuration_profiles_too(self, streaming_loop, unified_config):
        profile = profile_loop(streaming_loop, unified_config)
        load = streaming_loop.ddg.find("ld")
        assert profile.operations[load].accesses == profile.profiled_iterations

    def test_unprofiled_operation_defaults(self, streaming_loop, interleaved_config):
        profile = profile_loop(streaming_loop, interleaved_config)
        other_op = streaming_loop.ddg.find("scale")
        assert profile.hit_rate(other_op) == 0.0
        assert profile.preferred_cluster(other_op) is None

"""Operations of the loop-level intermediate representation.

The scheduler works on *operations* (the paper calls them nodes or
instructions) of a loop body.  Each operation belongs to an operation class
that determines which functional unit executes it, and memory operations
carry a :class:`MemoryAccess` descriptor with everything the scheduling
techniques of the paper need to know about the access: the referenced array,
its stride, the element granularity and whether the address is computed from
a previously loaded value (an *indirect* access of the form ``a[b[i]]``).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field, replace
from typing import Optional


class OperationClass(enum.Enum):
    """Functional-unit class of an operation."""

    INTEGER = "integer"
    FLOAT = "float"
    MEMORY = "memory"
    BRANCH = "branch"
    COPY = "copy"


#: Mnemonics understood by the IR builder, mapped to their operation class.
MNEMONIC_CLASSES: dict[str, OperationClass] = {
    "add": OperationClass.INTEGER,
    "sub": OperationClass.INTEGER,
    "mul": OperationClass.INTEGER,
    "and": OperationClass.INTEGER,
    "or": OperationClass.INTEGER,
    "xor": OperationClass.INTEGER,
    "shl": OperationClass.INTEGER,
    "shr": OperationClass.INTEGER,
    "cmp": OperationClass.INTEGER,
    "mov": OperationClass.INTEGER,
    "fadd": OperationClass.FLOAT,
    "fsub": OperationClass.FLOAT,
    "fmul": OperationClass.FLOAT,
    "fdiv": OperationClass.FLOAT,
    "div": OperationClass.FLOAT,
    "ld": OperationClass.MEMORY,
    "st": OperationClass.MEMORY,
    "br": OperationClass.BRANCH,
    "copy": OperationClass.COPY,
}


@dataclass(frozen=True)
class MemoryAccess:
    """Static description of a memory operation's address stream.

    Attributes:
        array: Name of the referenced data object (array, struct, buffer).
        stride_bytes: Per-original-iteration stride of the address, in bytes.
            Indirect accesses usually have an unknown stride; pass
            ``stride_known=False`` for them.
        granularity: Size in bytes of the accessed element (1, 2, 4 or 8).
        offset_bytes: Constant byte offset of the first access within the
            array (unrolling adds multiples of the original stride here).
        is_store: True for stores, False for loads.
        indirect: True for accesses of the form ``a[b[i]]`` whose address is
            computed from a previously loaded value.
        index_array: For indirect accesses, the array the index is loaded
            from; used by the profiler to regenerate the index stream.
        stride_known: Whether the compiler could determine the stride.
        attractable: Compiler hint for the Attraction Buffers (Section 5.2):
            operations marked non-attractable do not allocate buffer entries.
    """

    array: str
    stride_bytes: int = 0
    granularity: int = 4
    offset_bytes: int = 0
    is_store: bool = False
    indirect: bool = False
    index_array: Optional[str] = None
    stride_known: bool = True
    attractable: bool = True

    def __post_init__(self) -> None:
        if self.granularity not in (1, 2, 4, 8, 16):
            raise ValueError("granularity must be 1, 2, 4, 8 or 16 bytes")
        if self.indirect and self.index_array is None:
            raise ValueError("indirect accesses must name their index array")

    def with_offset(self, extra_bytes: int) -> "MemoryAccess":
        """Return a copy shifted by ``extra_bytes`` (used when unrolling)."""
        return replace(self, offset_bytes=self.offset_bytes + extra_bytes)

    def with_stride(self, stride_bytes: int) -> "MemoryAccess":
        """Return a copy with a new stride (used when unrolling)."""
        return replace(self, stride_bytes=stride_bytes)


_op_counter = itertools.count(1)


@dataclass(frozen=True, eq=False)
class Operation:
    """A single operation of a loop body.

    Operations are identified by their ``uid``: equality and hashing ignore
    the descriptive fields so that an operation stays a valid dict/set key
    even when experiment code tweaks its :class:`MemoryAccess` in place
    (for example the attractable-hint ablation).  Two separately created
    operations are never equal, matching the scheduler's view of a loop
    body as a set of distinct nodes.
    """

    name: str
    mnemonic: str
    op_class: OperationClass
    memory: Optional[MemoryAccess] = None
    uid: int = field(default_factory=lambda: next(_op_counter))

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Operation):
            return NotImplemented
        return self.uid == other.uid

    def __hash__(self) -> int:
        return self.uid

    def __post_init__(self) -> None:
        if self.mnemonic not in MNEMONIC_CLASSES:
            raise ValueError(f"unknown mnemonic {self.mnemonic!r}")
        expected = MNEMONIC_CLASSES[self.mnemonic]
        if expected is not self.op_class:
            raise ValueError(
                f"mnemonic {self.mnemonic!r} belongs to class {expected}, "
                f"not {self.op_class}"
            )
        if self.op_class is OperationClass.MEMORY and self.memory is None:
            raise ValueError("memory operations need a MemoryAccess descriptor")
        if self.op_class is not OperationClass.MEMORY and self.memory is not None:
            raise ValueError("only memory operations carry a MemoryAccess")

    # ------------------------------------------------------------------
    # Convenience predicates
    # ------------------------------------------------------------------
    @property
    def is_memory(self) -> bool:
        """True for loads and stores."""
        return self.op_class is OperationClass.MEMORY

    @property
    def is_load(self) -> bool:
        """True for loads."""
        return self.is_memory and not self.memory.is_store

    @property
    def is_store(self) -> bool:
        """True for stores."""
        return self.is_memory and self.memory.is_store

    @property
    def is_copy(self) -> bool:
        """True for inter-cluster register copy operations."""
        return self.op_class is OperationClass.COPY

    def renamed(self, name: str) -> "Operation":
        """Return a copy with a fresh name and a fresh unique id."""
        return Operation(
            name=name,
            mnemonic=self.mnemonic,
            op_class=self.op_class,
            memory=self.memory,
        )

    def with_memory(self, memory: MemoryAccess) -> "Operation":
        """Return a copy with a replaced memory descriptor (fresh uid)."""
        if not self.is_memory:
            raise ValueError("only memory operations carry a MemoryAccess")
        return Operation(
            name=self.name,
            mnemonic=self.mnemonic,
            op_class=self.op_class,
            memory=memory,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        suffix = f" {self.memory.array}" if self.memory else ""
        return f"<Op {self.name}:{self.mnemonic}{suffix}>"


def make_operation(
    name: str, mnemonic: str, memory: Optional[MemoryAccess] = None
) -> Operation:
    """Create an operation, deriving its class from the mnemonic."""
    if mnemonic not in MNEMONIC_CLASSES:
        raise ValueError(
            f"unknown mnemonic {mnemonic!r}; known: {sorted(MNEMONIC_CLASSES)}"
        )
    return Operation(
        name=name,
        mnemonic=mnemonic,
        op_class=MNEMONIC_CLASSES[mnemonic],
        memory=memory,
    )


def load(name: str, access: MemoryAccess) -> Operation:
    """Create a load operation."""
    if access.is_store:
        raise ValueError("load() requires a non-store MemoryAccess")
    return make_operation(name, "ld", access)


def store(name: str, access: MemoryAccess) -> Operation:
    """Create a store operation."""
    if not access.is_store:
        raise ValueError("store() requires a store MemoryAccess")
    return make_operation(name, "st", access)

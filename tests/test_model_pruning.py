"""Tests for model-guided sweep pruning (``--prune-model``).

The acceptance property: a pruned sweep with ``keep_fraction=0.5`` must
simulate at most half of each benchmark's grid *and* still recover the
exhaustive sweep's best configuration (the minimum simulated cycle count),
with every skipped point recorded as a model-only store entry.
"""

from __future__ import annotations

import json

import pytest

from repro.sweep.cli import main as sweep_main
from repro.sweep.executor import (
    PruneOptions,
    is_simulated_record,
    run_sweep,
)
from repro.sweep.spec import SweepSpec
from repro.sweep.store import ResultStore


def _kernel_grid(iteration_cap: int = 128) -> SweepSpec:
    """A 12-point grid over three synthetic kernels (fast to simulate)."""
    return SweepSpec(
        name="prune-test",
        benchmarks=("kernel:streaming", "kernel:reduction", "kernel:strided"),
        axes={"clusters": (2, 4), "attraction_entries": (0, 16)},
        base={"heuristic": "ipbc", "iteration_cap": iteration_cap},
    )


def _best_cycles_per_benchmark(store: ResultStore, simulated_only: bool) -> dict:
    best: dict[str, float] = {}
    for record in store.records():
        if simulated_only and not is_simulated_record(record):
            continue
        name = record["job"]["benchmark"]
        cycles = record["metrics"]["total_cycles"]
        if name not in best or cycles < best[name]:
            best[name] = cycles
    return best


class TestPruneOptions:
    def test_keep_fraction_must_be_a_fraction(self):
        with pytest.raises(ValueError):
            PruneOptions(keep_fraction=0.0)
        with pytest.raises(ValueError):
            PruneOptions(keep_fraction=1.5)

    def test_keep_count_rounds_up_and_keeps_at_least_one(self):
        assert PruneOptions(keep_fraction=0.5).keep_count(4) == 2
        assert PruneOptions(keep_fraction=0.5).keep_count(3) == 2
        assert PruneOptions(keep_fraction=0.1).keep_count(4) == 1
        assert PruneOptions(keep_fraction=1.0).keep_count(4) == 4


class TestPrunedSweep:
    def test_pruned_sweep_recovers_best_configuration(self, tmp_path):
        """The acceptance criterion of the pruning mode."""
        spec = _kernel_grid()

        exhaustive_store = ResultStore(tmp_path / "exhaustive")
        exhaustive = run_sweep(spec, store=exhaustive_store)
        assert exhaustive.executed == spec.num_points

        pruned_store = ResultStore(tmp_path / "pruned")
        pruned = run_sweep(
            spec, store=pruned_store, prune=PruneOptions(keep_fraction=0.5)
        )

        # At most half of the grid was simulated; the rest is model-only.
        assert pruned.executed <= spec.num_points // 2
        assert pruned.executed + pruned.pruned == spec.num_points

        # Per benchmark, exactly the keep fraction was simulated.
        simulated_per_benchmark: dict[str, int] = {}
        for outcome in pruned.outcomes:
            if outcome.result is not None:
                name = outcome.job.benchmark
                simulated_per_benchmark[name] = (
                    simulated_per_benchmark.get(name, 0) + 1
                )
        for name, count in simulated_per_benchmark.items():
            assert count == 2, name  # half of the 4 points per benchmark

        # The pruned sweep finds the same best configuration (same minimum
        # simulated cycle count) as the exhaustive sweep, per benchmark.
        exhaustive_best = _best_cycles_per_benchmark(
            exhaustive_store, simulated_only=True
        )
        pruned_best = _best_cycles_per_benchmark(pruned_store, simulated_only=True)
        assert set(pruned_best) == set(exhaustive_best)
        for name, cycles in exhaustive_best.items():
            assert pruned_best[name] == cycles, name

    def test_pruned_jobs_are_stored_as_model_records(self, tmp_path):
        spec = _kernel_grid()
        store = ResultStore(tmp_path / "store")
        summary = run_sweep(spec, store=store, prune=PruneOptions(keep_fraction=0.5))

        sources = {"model": 0, "simulator": 0}
        for record in store.records():
            sources[record["source"]] += 1
        assert sources["model"] == summary.pruned
        assert sources["simulator"] == summary.executed
        # Model records carry the full job description and metrics, but no
        # pickle payload (there is no simulation result to preserve).
        for record in store.records():
            if record["source"] == "model":
                assert record["metrics"]["total_cycles"] > 0
                assert record["job"]["benchmark"] in spec.benchmarks
                assert store.load_payload(record["key"]) is None

    def test_model_records_are_not_cache_hits_for_real_runs(self, tmp_path):
        spec = _kernel_grid()
        store = ResultStore(tmp_path / "store")
        pruned = run_sweep(spec, store=store, prune=PruneOptions(keep_fraction=0.5))
        assert pruned.pruned > 0

        # An unpruned re-run simulates exactly the previously pruned points
        # and overwrites their model records.
        full = run_sweep(spec, store=store)
        assert full.executed == pruned.pruned
        assert full.cache_hits == pruned.executed
        assert all(
            record["source"] == "simulator" for record in store.records()
        )

    def test_pruned_rerun_completes_from_cache(self, tmp_path):
        spec = _kernel_grid()
        store = ResultStore(tmp_path / "store")
        first = run_sweep(spec, store=store, prune=PruneOptions(keep_fraction=0.5))
        second = run_sweep(spec, store=store, prune=PruneOptions(keep_fraction=0.5))
        # Stored simulator results fill the keep budget, so nothing new is
        # simulated; the pruned points are re-recorded from the model.
        assert second.executed == 0
        assert second.cache_hits == first.executed

    def test_keep_everything_prunes_nothing(self, tmp_path):
        spec = _kernel_grid()
        summary = run_sweep(
            spec,
            store=ResultStore(tmp_path / "store"),
            prune=PruneOptions(keep_fraction=1.0),
        )
        assert summary.pruned == 0
        assert summary.executed == spec.num_points


class TestPruneCli:
    def test_cli_prune_run_and_json_report(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(
            json.dumps(_kernel_grid(iteration_cap=64).to_mapping()),
            encoding="utf-8",
        )
        results_dir = tmp_path / "results"
        exit_code = sweep_main(
            [
                "run",
                "--spec",
                str(spec_path),
                "--results-dir",
                str(results_dir),
                "--workers",
                "1",
                "--prune-model",
                "--prune-keep",
                "0.5",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "model" in out
        assert "6 executed" in out and "6 model-pruned" in out

        exit_code = sweep_main(
            [
                "report",
                "--results-dir",
                str(results_dir),
                "--format",
                "json",
            ]
        )
        assert exit_code == 0
        rows = json.loads(capsys.readouterr().out)
        assert len(rows) == 12
        sources = {row["source"] for row in rows}
        assert sources == {"model", "simulator"}
        for row in rows:
            assert "total_cycles" in row
            assert len(row["key"]) == 64  # full key in machine-readable form

        # --source filters to one origin.
        exit_code = sweep_main(
            [
                "report",
                "--results-dir",
                str(results_dir),
                "--format",
                "json",
                "--source",
                "model",
            ]
        )
        assert exit_code == 0
        rows = json.loads(capsys.readouterr().out)
        assert len(rows) == 6
        assert all(row["source"] == "model" for row in rows)

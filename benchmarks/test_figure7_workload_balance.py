"""Benchmark E-F7: regenerate Figure 7 (workload balance, IPBC)."""

from benchmarks.conftest import save_report
from repro.experiments.figure7 import balance_by_variant, run_figure7


def test_figure7_workload_balance(benchmark, experiment_runner, results_dir):
    rows, result = benchmark.pedantic(
        run_figure7, kwargs={"runner": experiment_runner}, rounds=1, iterations=1
    )
    save_report(results_dir, "figure7", result.render())
    assert len(rows) == 14 * 3
    assert all(0.25 <= row.workload_balance <= 1.0 for row in rows)
    balance = balance_by_variant(rows)
    # Paper: unrolling improves the balance towards 0.25.
    assert balance["ouf"] <= balance["no-unroll"] + 0.02

"""Rendering of stored sweep results as text tables or JSON rows."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Optional, Sequence, Union

from repro.analysis.report import format_table
from repro.obs import events as obs_events
from repro.obs.export import timings_summary, timings_table
from repro.sweep.spec import SweepSpec
from repro.sweep.store import ResultStore

#: Metric columns shown by default, in order.
DEFAULT_METRICS: tuple[str, ...] = (
    "total_cycles",
    "compute_cycles",
    "stall_cycles",
    "stall_ratio",
    "local_hit_ratio",
    "workload_balance",
    "ipc",
)

#: Record granularities a report can select.
GRANULARITIES = ("benchmark", "loop", "all")


def record_granularity(record: dict) -> str:
    """Whether a stored record covers a whole benchmark or one loop."""
    return "loop" if record.get("job", {}).get("loop") else "benchmark"


def _job_summary(record: dict) -> dict[str, object]:
    job = record.get("job", {})
    machine = job.get("machine", {})
    compiler = job.get("compiler", {})
    attraction = machine.get("attraction_buffer", {})
    return {
        "benchmark": job.get("benchmark", "?"),
        "loop": job.get("loop", ""),
        "architecture": record.get("architecture", machine.get("organization", "?")),
        "clusters": machine.get("clusters", "?"),
        "interleaving": machine.get("interleaving_factor", "?"),
        "ab_entries": attraction.get("entries", 0) if attraction.get("enabled") else 0,
        "heuristic": compiler.get("heuristic", "?"),
        "unroll": compiler.get("unroll_policy", "?"),
        "source": record.get("source", "simulator"),
    }


def _report_rows(
    records: Iterable[dict],
    metrics: Sequence[str],
    sort_by: str,
    benchmark: Optional[str],
    key_length: Optional[int] = 12,
    granularity: str = "benchmark",
) -> tuple[list[str], list[dict[str, object]]]:
    """Shared row assembly of the table and JSON renderings.

    ``granularity`` selects benchmark-level records (the default; also
    matches every record written before loop-granularity sweeps existed),
    loop-level records, or both.  An unknown ``sort_by`` column raises
    ValueError listing the valid columns rather than silently falling back
    to the benchmark sort.
    """
    if granularity not in GRANULARITIES:
        raise ValueError(
            f"unknown granularity {granularity!r}; "
            f"valid: {', '.join(GRANULARITIES)}"
        )
    headers = [
        "benchmark",
        "loop",
        "architecture",
        "clusters",
        "interleaving",
        "ab_entries",
        "heuristic",
        "unroll",
        "source",
        *metrics,
        "key",
    ]
    if granularity == "benchmark":
        # Benchmark-level rows have no loop column (and old stores never
        # did), so it is not a valid sort target either.
        headers.remove("loop")
    if sort_by not in headers:
        raise ValueError(
            f"unknown sort column {sort_by!r}; "
            f"valid columns: {', '.join(headers)}"
        )
    rows = []
    for record in records:
        if granularity != "all" and record_granularity(record) != granularity:
            continue
        summary = _job_summary(record)
        if benchmark is not None and summary["benchmark"] != benchmark:
            continue
        values = record.get("metrics", {})
        key = str(record.get("key", ""))
        rows.append(
            {
                **summary,
                **{name: values.get(name, "") for name in metrics},
                "key": key[:key_length] if key_length else key,
            }
        )
    if granularity == "benchmark":
        for row in rows:
            row.pop("loop", None)
    rows.sort(
        key=lambda row: (
            _sortable(row[sort_by]),
            str(row["benchmark"]),
            str(row.get("loop", "")),
        )
    )
    return headers, rows


def render_report(
    records: Iterable[dict],
    metrics: Sequence[str] = DEFAULT_METRICS,
    sort_by: str = "benchmark",
    benchmark: Optional[str] = None,
    title: str = "Sweep results",
    granularity: str = "benchmark",
) -> str:
    """Render records as an aligned table, one row per stored job."""
    headers, rows = _report_rows(
        records, metrics, sort_by, benchmark, granularity=granularity
    )
    if not rows:
        return f"{title}\n(no stored results)"
    return format_table(headers, [[row[name] for name in headers] for row in rows], title=title)


def render_report_json(
    records: Iterable[dict],
    metrics: Sequence[str] = DEFAULT_METRICS,
    sort_by: str = "benchmark",
    benchmark: Optional[str] = None,
    granularity: str = "benchmark",
) -> str:
    """Render records as a JSON array of flat row objects.

    The machine-readable twin of :func:`render_report` -- same rows, same
    sorting, full (untruncated) job keys -- so model-vs-simulator
    comparisons can be scripted against ``repro-sweep report --format
    json``.
    """
    _, rows = _report_rows(
        records, metrics, sort_by, benchmark, key_length=None,
        granularity=granularity,
    )
    return json.dumps(rows, indent=2, sort_keys=True)


def render_timings(
    store_root: Union[Path, str], records: Iterable[dict]
) -> str:
    """Per-stage and per-job duration percentiles of the last run.

    Two tables: span timings from the finalized run trace
    (``<store>/obs/trace.jsonl`` -- pipeline stages, simulator phases,
    worker jobs), and per-benchmark ``elapsed_seconds`` percentiles from
    the stored records.  The record table only counts fresh simulator
    timings (``source_timing == "measured"``): model predictions and
    loop-granularity replays from earlier runs would skew the
    percentiles of what this run actually paid for.
    """
    sections = []
    trace_path = obs_events.obs_dir(store_root) / obs_events.TRACE_FILENAME
    events = list(obs_events.read_events(trace_path))
    if events:
        sections.append(
            timings_summary(events, title=f"span timings - {trace_path}")
        )
    else:
        sections.append(
            f"span timings - no run trace at {trace_path}\n"
            "(run a sweep against this store with REPRO_OBS enabled)"
        )
    groups: dict[str, list[float]] = {}
    for record in records:
        if record.get("source", "simulator") == "model":
            continue
        if record.get("source_timing", "measured") != "measured":
            continue
        name = record.get("job", {}).get("benchmark", "?")
        groups.setdefault(f"job.{name}", []).append(
            float(record.get("elapsed_seconds", 0.0))
        )
    sections.append(
        timings_table(
            {name: groups[name] for name in sorted(groups)},
            title="job elapsed_seconds (fresh simulator records only)",
        )
    )
    return "\n\n".join(sections)


def render_telemetry_status(store_root: Union[Path, str]) -> Optional[str]:
    """Counter/manifest lines of the last finalized run, if any."""
    metrics = obs_events.load_metrics(store_root)
    if metrics is None:
        return None
    lines = ["telemetry (last finalized run):"]
    manifest = obs_events.load_manifest(store_root)
    if manifest is not None:
        created = manifest.get("created", "?")
        described = manifest.get("git_describe") or "?"
        lines.append(f"  run: created {created}, git {described}")
    counters = metrics.get("counters") or {}
    for name in sorted(counters):
        lines.append(f"  {name} = {counters[name]}")
    gauges = metrics.get("gauges") or {}
    for name in sorted(gauges):
        entry = gauges[name]
        value = entry.get("value") if isinstance(entry, dict) else entry
        lines.append(f"  {name} = {value}")
    if len(lines) == 1:
        lines.append("  (no counters recorded)")
    return "\n".join(lines)


def _sortable(value: object) -> tuple:
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return (0, float(value), "")
    return (1, 0.0, str(value))


def render_status(
    store: ResultStore,
    spec: Optional[SweepSpec] = None,
    artifacts=None,
) -> str:
    """Summarize store contents, optionally against a spec's grid.

    Loop-level records (written by ``--granularity loop`` runs) are
    counted separately from the benchmark-level records everything else
    keys on; a store without them reports exactly what it always did.
    ``artifacts`` (an :class:`~repro.sweep.artifacts.ArtifactStore`) adds
    a compilation-stage artifact count line when given.
    """
    keys = store.keys()
    lines = [f"result store: {store.root}"]
    per_benchmark: dict[str, int] = {}
    model_only = 0
    loop_level = 0
    benchmark_level = 0
    simulated_keys: set[str] = set()
    for record in store.records():
        if record_granularity(record) == "loop":
            loop_level += 1
            continue
        benchmark_level += 1
        name = record.get("job", {}).get("benchmark", "?")
        per_benchmark[name] = per_benchmark.get(name, 0) + 1
        if record.get("source", "simulator") == "model":
            model_only += 1
        else:
            simulated_keys.add(str(record.get("key", "")))
    summary = f"stored records: {benchmark_level}"
    if model_only:
        summary += f" ({model_only} model-only)"
    if loop_level:
        summary += f" + {loop_level} loop-level"
    lines.append(summary)
    for name in sorted(per_benchmark):
        lines.append(f"  {name}: {per_benchmark[name]}")
    if artifacts is not None:
        counts = artifacts.stats()
        total = sum(counts.values())
        breakdown = ", ".join(
            f"{stage} {count}" for stage, count in counts.items()
        )
        lines.append(
            f"stage artifacts: {total}" + (f" ({breakdown})" if breakdown else "")
        )
    if spec is not None:
        jobs = spec.expand()
        stored = set(keys)
        done = sum(1 for job in jobs if job.key in simulated_keys)
        pruned = sum(
            1
            for job in jobs
            if job.key in stored and job.key not in simulated_keys
        )
        lines.append(
            f"spec {spec.name!r}: {done}/{len(jobs)} points simulated"
            + (f", {pruned} model-only" if pruned else "")
            + ("" if done < len(jobs) else " (complete)")
        )
    return "\n".join(lines)

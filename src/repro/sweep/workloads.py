"""Workload resolution for sweep jobs.

Sweep jobs name their workload with a string so job descriptions stay
JSON-able; this module turns those names back into
:class:`~repro.workloads.spec.Benchmark` objects.  Three name forms are
understood:

* a Mediabench benchmark name (``"epicdec"``, ``"gsmencode"``, ...);
* ``"kernels-mix"``, the three-kernel mix used by
  ``examples/design_space_sweep.py``;
* ``"kernel:<template>"`` for a single synthetic kernel template
  (``kernel:streaming``, ``kernel:reduction``, ``kernel:strided``,
  ``kernel:indirect``, ``kernel:stencil``).

Resolution is cached per process, so a pool worker builds each workload
once no matter how many jobs it executes.
"""

from __future__ import annotations

from functools import lru_cache

from repro.workloads.generator import (
    indirect_kernel,
    reduction_kernel,
    stencil_kernel,
    streaming_kernel,
    strided_kernel,
)
from repro.workloads.mediabench import BENCHMARK_NAMES, mediabench_suite
from repro.workloads.spec import Benchmark, BenchmarkCharacteristics

_KERNEL_TEMPLATES = {
    "streaming": lambda name: streaming_kernel(name, element_bytes=2, trip_count=2048),
    "reduction": lambda name: reduction_kernel(name, element_bytes=4, trip_count=2048),
    "strided": lambda name: strided_kernel(
        name, element_bytes=2, stride_elements=8, trip_count=1024
    ),
    "indirect": lambda name: indirect_kernel(name, trip_count=1024),
    "stencil": lambda name: stencil_kernel(name, trip_count=1024),
}

_SYNTHETIC_CHARACTERISTICS = BenchmarkCharacteristics(
    dominant_element_bytes=2,
    dominant_fraction=1.0,
    description="synthetic sweep kernel",
)


def workload_names() -> list[str]:
    """Every workload name the sweep engine can resolve."""
    return [
        *BENCHMARK_NAMES,
        "kernels-mix",
        *(f"kernel:{template}" for template in sorted(_KERNEL_TEMPLATES)),
    ]


@lru_cache(maxsize=None)
def resolve_workload(name: str) -> Benchmark:
    """Resolve a workload name into a Benchmark (cached per process)."""
    if name in BENCHMARK_NAMES:
        return mediabench_suite()[name]
    if name == "kernels-mix":
        return Benchmark(
            name="kernels-mix",
            loops=[
                _KERNEL_TEMPLATES["streaming"]("sweep_stream"),
                _KERNEL_TEMPLATES["reduction"]("sweep_reduce"),
                _KERNEL_TEMPLATES["strided"]("sweep_stride"),
            ],
            characteristics=_SYNTHETIC_CHARACTERISTICS,
        )
    if name.startswith("kernel:"):
        template = name.split(":", 1)[1]
        if template in _KERNEL_TEMPLATES:
            return Benchmark(
                name=name,
                loops=[_KERNEL_TEMPLATES[template](f"sweep_{template}")],
                characteristics=_SYNTHETIC_CHARACTERISTICS,
            )
    raise KeyError(
        f"unknown workload {name!r}; known: {', '.join(workload_names())}"
    )


def loop_names(name: str) -> list[str]:
    """The loop names of a workload, in benchmark order.

    This is the expansion order of loop-granularity sweep jobs; aggregating
    per-loop results in this order reassembles the benchmark-level result.
    """
    return [loop.name for loop in resolve_workload(name).loops]


def resolve_loop(benchmark: str, loop: str):
    """Resolve one named loop of a workload.

    Raises KeyError when the benchmark has no loop of that name, listing
    the loops it does have.
    """
    for candidate in resolve_workload(benchmark).loops:
        if candidate.name == loop:
            return candidate
    raise KeyError(
        f"workload {benchmark!r} has no loop {loop!r}; "
        f"loops: {', '.join(loop_names(benchmark))}"
    )

"""Benchmark E-F4: regenerate Figure 4 (memory access classification, IPBC)."""

from benchmarks.conftest import save_report
from repro.experiments.figure4 import alignment_and_unrolling_gains, run_figure4


def test_figure4_memory_access_classification(benchmark, experiment_runner, results_dir):
    rows, result = benchmark.pedantic(
        run_figure4, kwargs={"runner": experiment_runner}, rounds=1, iterations=1
    )
    save_report(results_dir, "figure4", result.render())
    assert len(rows) == 14 * 4
    gains = alignment_and_unrolling_gains(rows)
    # Paper: variable alignment +~20% local hits, OUF unrolling +~27%.
    # The shape (both strictly positive, unrolling the larger or comparable
    # effect) must hold on the synthetic suite.
    assert gains["alignment_gain"] > 0.0
    assert gains["unrolling_gain"] > 0.10

"""Exports: Chrome trace-event JSON and the human ``--timings`` summary.

:func:`chrome_trace` converts a merged run trace (the span events of
``obs/trace.jsonl``) into the Chrome trace-event format -- complete
("X") events with microsecond timestamps -- which both ``chrome://tracing``
and https://ui.perfetto.dev open directly.  Span nesting is conveyed the
way those tools expect it: events sharing a ``(pid, tid)`` track nest by
time containment, and each event's ``args`` carries the explicit
``id``/``parent`` links for programmatic consumers.

:func:`timings_summary` renders per-span-name duration percentiles as an
aligned text table -- the backend of ``repro-sweep report --timings``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Mapping, Sequence, Union


def chrome_trace(events: Iterable[dict]) -> dict[str, object]:
    """Chrome trace-event document for a sequence of span events.

    Non-span events (metrics lines) are skipped.  Timestamps are wall
    clock in microseconds -- one machine's processes share a timeline;
    durations are the spans' monotonic measurements.
    """
    trace_events = []
    for event in events:
        if event.get("kind") != "span":
            continue
        name = str(event.get("name", "?"))
        args = dict(event.get("attrs") or {})
        args["id"] = event.get("id")
        args["parent"] = event.get("parent")
        trace_events.append(
            {
                "name": name,
                "cat": name.split(".", 1)[0],
                "ph": "X",
                "ts": round(float(event.get("ts", 0.0)) * 1e6, 3),
                "dur": round(float(event.get("dur", 0.0)) * 1e6, 3),
                "pid": event.get("pid", 0),
                "tid": event.get("tid", 0),
                "args": args,
            }
        )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def export_chrome_trace(
    events: Iterable[dict], output: Union[Path, str]
) -> int:
    """Write a Chrome trace JSON file; returns the exported event count."""
    document = chrome_trace(events)
    path = Path(output)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(document, indent=1, sort_keys=True) + "\n", encoding="utf-8"
    )
    return len(document["traceEvents"])


def span_durations(events: Iterable[dict]) -> dict[str, list[float]]:
    """Group span durations (seconds) by span name, names sorted."""
    groups: dict[str, list[float]] = {}
    for event in events:
        if event.get("kind") != "span":
            continue
        groups.setdefault(str(event.get("name", "?")), []).append(
            float(event.get("dur", 0.0))
        )
    return {name: groups[name] for name in sorted(groups)}


def percentile(values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of a non-empty sequence."""
    if not values:
        raise ValueError("percentile of an empty sequence")
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, round(fraction * (len(ordered) - 1))))
    return ordered[rank]


def _format_seconds(value: float) -> str:
    return f"{value * 1000:.3f}ms" if value < 1.0 else f"{value:.3f}s"


def timings_table(
    groups: Mapping[str, Sequence[float]], title: str
) -> str:
    """Aligned count/total/percentile table, one row per group name."""
    headers = ["name", "count", "total", "mean", "p50", "p90", "p99", "max"]
    rows: list[list[str]] = []
    for name, values in groups.items():
        if not values:
            continue
        total = sum(values)
        rows.append(
            [
                name,
                str(len(values)),
                _format_seconds(total),
                _format_seconds(total / len(values)),
                _format_seconds(percentile(values, 0.50)),
                _format_seconds(percentile(values, 0.90)),
                _format_seconds(percentile(values, 0.99)),
                _format_seconds(max(values)),
            ]
        )
    if not rows:
        return f"{title}\n(no samples)"
    widths = [
        max(len(headers[i]), max(len(row[i]) for row in rows))
        for i in range(len(headers))
    ]

    def render(cells: Sequence[str]) -> str:
        return "  ".join(
            cell.ljust(widths[i]) if i == 0 else cell.rjust(widths[i])
            for i, cell in enumerate(cells)
        ).rstrip()

    lines = [title, render(headers), render(["-" * width for width in widths])]
    lines.extend(render(row) for row in rows)
    return "\n".join(lines)


def timings_summary(events: Iterable[dict], title: str = "span timings") -> str:
    """Per-span-name percentile table for a merged run trace."""
    return timings_table(span_durations(events), title)

"""The long-lived sweep service: an asyncio front-end over one store.

``repro-sweep serve <store>`` turns the sweep engine from a short-lived
batch process into a server: one process owns the result store, the
artifact store and a :class:`~repro.sweep.scheduler.WorkStealingScheduler`
of persistent workers, and any number of concurrent clients submit sweep
specs over a JSONL socket (:mod:`repro.sweep.protocol`).  What a single
``repro-sweep run`` pays per invocation -- worker startup, cold in-memory
artifact/trace caches -- the service pays once.

**Dedup is the point.**  Jobs are content-addressed
(:attr:`~repro.sweep.spec.SweepJob.key`), so overlapping grids from
different clients collapse three ways at submit time:

* *stored* -- a simulator record already in the store is served back
  immediately, exactly as ``run``'s cache-hit path would;
* *in-flight* -- the same key is queued or running for an earlier
  client: the new request subscribes to that execution and receives the
  record when it lands, with **zero** re-execution;
* *new* -- enqueued once on the scheduler, benchmark-affine.

Records are byte-identical to ``repro-sweep run``'s: the service saves
exactly what :func:`repro.sweep.executor.execute_job` returns through the
same :meth:`~repro.sweep.store.ResultStore.save` path (only the
inherently per-run ``elapsed_seconds``/``worker_pid`` fields vary between
any two executions, service or not).

**Backpressure.**  A submit whose *new* jobs would push the scheduler
backlog past the queue cap is rejected with a ``retry_after`` hint
estimated from the median job duration -- the client retries instead of
the server buffering unboundedly.

**Shutdown.**  SIGTERM/SIGINT (or a ``shutdown`` op) drains: the
listener closes, new submits are rejected, accepted requests run to
completion and their clients get their ``done`` events, then the workers
are stopped and telemetry is finalized.

**Telemetry.**  While serving, the obs run header (``obs/run.json``)
carries live service totals (``completed_units``, dedup counters, queue
depth) so ``repro-sweep watch`` tails a live server; every finished
request appends its own ledger entry (``service`` field set) plus a
``service.request`` span, and shutdown finalizes the whole service
session into ``obs/`` like one big run.  All of it is off under
``REPRO_OBS=off``, and results are byte-identical either way.
"""

from __future__ import annotations

import asyncio
import contextlib
import hashlib
import os
import signal
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from repro import faults, kernels
from repro.obs import events as obs_events
from repro.obs import ledger as obs_ledger
from repro.obs import trace as obs
from repro.sweep import protocol
from repro.sweep.artifacts import ARTIFACTS_DIRNAME
from repro.sweep.executor import (
    default_workers,
    is_simulated_record,
    make_failed_record,
)
from repro.sweep.scheduler import JobCompletion, WorkStealingScheduler
from repro.sweep.spec import SweepJob, SweepSpec
from repro.sweep.store import ResultStore

#: Default bound on the scheduler backlog (queued + running jobs) a
#: submit may grow it to; past it the submit is rejected with a
#: ``retry_after`` hint.
DEFAULT_QUEUE_CAP = 1024

#: Fallback per-job seconds for ``retry_after`` before any job finished.
_DEFAULT_JOB_SECONDS = 1.0

#: Most recent job durations kept for the ``retry_after`` estimate.
_DURATION_SAMPLES = 64

#: Minimum seconds between run-header rewrites driven by job completions
#: (request boundaries always rewrite, so totals are exact when idle).
_HEADER_INTERVAL_SECONDS = 0.2


@dataclass
class _Request:
    """One client submission being served."""

    id: str
    run_id: str
    conn: Optional["_Connection"]  # None = detached (fire-and-forget)
    total: int
    new: int
    stored: int
    inflight: int
    spec_name: str
    spec_hash: str
    benchmarks: list[str]
    architectures: list[str]
    started_wall: float
    started_perf: float
    pending: set[str] = field(default_factory=set)
    done: int = 0
    executed: int = 0
    served_inflight: int = 0
    failed: int = 0
    cancelled: bool = False


@dataclass
class _Inflight:
    """One key being executed, and who is waiting for it."""

    job: SweepJob
    owner: str  # request id that enqueued it
    subscribers: list[_Request] = field(default_factory=list)


class _Connection:
    """Per-connection outbound event queue with one writer task.

    Both the reader coroutine (op replies) and scheduler-completion
    callbacks emit events; funnelling them through one queue keeps the
    stream ordered and the ``StreamWriter`` single-owner.
    """

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.writer = writer
        self.queue: asyncio.Queue = asyncio.Queue()
        self.requests: set[str] = set()

    def send(self, event: dict) -> None:
        self.queue.put_nowait(event)

    async def pump(self) -> None:
        while True:
            event = await self.queue.get()
            if event is None:
                return
            try:
                self.writer.write(protocol.encode_message(event))
                await self.writer.drain()
            except (ConnectionError, OSError):
                return


class SweepService:
    """The server: scheduler, dedup index, per-client request state.

    All state is mutated on the event loop thread; scheduler completions
    arrive via ``call_soon_threadsafe``.  Construct, then ``await
    serve(...)`` (or run it via :class:`ServiceThread`).
    """

    def __init__(
        self,
        store_root: Union[Path, str],
        workers: Optional[int] = None,
        queue_cap: Optional[int] = None,
        save_payloads: bool = True,
        max_retries: int = 2,
        job_timeout: Optional[float] = None,
    ) -> None:
        self.store = ResultStore(Path(store_root))
        # Re-resolved here, at service start -- never baked in at CLI
        # parse time -- and surfaced in `stats` so clients see the real
        # parallelism.
        self.workers = workers if workers and workers > 0 else default_workers()
        self.queue_cap = queue_cap if queue_cap else DEFAULT_QUEUE_CAP
        self.save_payloads = save_payloads
        self.max_retries = max_retries
        self.job_timeout = job_timeout
        self.telemetry = obs.enabled()
        self._requests: dict[str, _Request] = {}
        self._inflight: dict[str, _Inflight] = {}
        self._request_seq = 0
        self._durations: list[float] = []
        self._draining = False
        self._started_wall = time.time()
        self._started_perf = time.perf_counter()
        self._last_header_write = 0.0
        self._units_total = 0
        self._units_done = 0
        self._stage_hits: dict[str, int] = {}
        self._stage_misses: dict[str, int] = {}
        self.counters = {
            "requests": 0,
            "rejected": 0,
            "cancelled_requests": 0,
            "dedup_new": 0,
            "dedup_stored": 0,
            "dedup_inflight": 0,
            "executed": 0,
            "failed": 0,
            "quarantined": 0,
            "cancelled_jobs": 0,
        }
        self.scheduler: Optional[WorkStealingScheduler] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._idle: Optional[asyncio.Event] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def serve(
        self,
        socket_path: Union[Path, str, None] = None,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
        ready=None,
    ) -> None:
        """Run the service until a shutdown signal, then drain and stop.

        Listens on ``socket_path`` (default: the store's
        :func:`~repro.sweep.protocol.default_socket_path`) or, when
        ``port`` is given, on TCP ``host:port``.  ``ready`` (a callable,
        e.g. ``threading.Event().set``) fires once the listener is up.
        """
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        if port is None and socket_path is None:
            socket_path = protocol.default_socket_path(self.store.root)
        shard_dir = (
            obs_events.obs_dir(self.store.root) if self.telemetry else None
        )
        root_span = obs.measured_span(
            "sweep.service", workers=self.workers, store=str(self.store.root)
        )
        root_span.__enter__()
        self.scheduler = WorkStealingScheduler(
            self.workers,
            artifacts_root=self.store.root / ARTIFACTS_DIRNAME,
            shard_dir=shard_dir,
            max_retries=self.max_retries,
            job_timeout=self.job_timeout,
        )
        self._run_id = root_span.id or obs_ledger.new_run_id()
        self._write_header(force=True)
        if port is None:
            _clear_stale_socket(Path(socket_path))
            server = await asyncio.start_unix_server(
                self._handle_connection, path=str(socket_path)
            )
        else:
            server = await asyncio.start_server(
                self._handle_connection, host, port
            )
        self._install_signal_handlers()
        try:
            if ready is not None:
                ready()
            async with server:
                await self._stop.wait()
                # Drain: stop accepting, finish what was accepted.
                server.close()
                await server.wait_closed()
                await self._wait_idle()
        finally:
            self._remove_signal_handlers()
            self.scheduler.close()
            # Let completions the close() delivered (orphaned cancelled
            # jobs finishing their saves) land on the loop before
            # finalizing.
            await asyncio.sleep(0)
            root_span.__exit__(None, None, None)
            if self.telemetry:
                obs_events.finalize_run(
                    self.store.root,
                    run_id=self._run_id,
                    manifest_extra=self._session_manifest(),
                )
            if port is None:
                Path(socket_path).unlink(missing_ok=True)

    def begin_shutdown(self) -> None:
        """Start the graceful drain (signal handlers, ``shutdown`` op)."""
        self._draining = True
        if self._stop is not None and not self._stop.is_set():
            self._stop.set()

    def _install_signal_handlers(self) -> None:
        self._handled_signals = []
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                self._loop.add_signal_handler(signum, self.begin_shutdown)
            except (NotImplementedError, RuntimeError, ValueError):
                # Not the main thread (ServiceThread) or an exotic loop;
                # shutdown then comes via the protocol or stop().
                continue
            self._handled_signals.append(signum)

    def _remove_signal_handlers(self) -> None:
        for signum in getattr(self, "_handled_signals", []):
            with contextlib.suppress(Exception):
                self._loop.remove_signal_handler(signum)

    async def _wait_idle(self) -> None:
        """Block until every accepted request has finished."""
        while self._requests:
            self._idle = asyncio.Event()
            await self._idle.wait()
        self._idle = None

    def _notify_if_idle(self) -> None:
        if self._idle is not None and not self._requests:
            self._idle.set()

    # ------------------------------------------------------------------
    # Connections and message dispatch
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Connection(writer)
        pump = asyncio.create_task(conn.pump())
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    message = protocol.decode_message(line)
                except protocol.ProtocolError as error:
                    conn.send({"event": "error", "error": str(error)})
                    continue
                self._dispatch(conn, message)
        except (ConnectionError, OSError):
            pass
        finally:
            # A waiting client that vanished mid-grid is a cancel -- the
            # socket-server twin of Ctrl-C on a plain run.  Detached
            # requests were never attached to the connection.
            for request_id in list(conn.requests):
                request = self._requests.get(request_id)
                if request is not None:
                    request.conn = None
                    self._cancel_request(request)
            conn.send(None)
            try:
                await pump
            except asyncio.CancelledError:
                # Loop teardown cancelled us mid-flush; nothing to save.
                pass
            with contextlib.suppress(Exception):
                writer.close()

    def _dispatch(self, conn: _Connection, message: dict) -> None:
        op = message.get("op")
        if op == "submit":
            try:
                self._op_submit(conn, message)
            except faults.InjectedFault as error:
                # The submit-time fault site: the one request fails with a
                # structured error, the session survives.
                conn.send({"event": "error", "error": str(error)})
        elif op == "cancel":
            self._op_cancel(conn, message)
        elif op == "stats":
            conn.send(self.stats_event())
        elif op == "ping":
            conn.send({"event": "pong"})
        elif op == "shutdown":
            conn.send({"event": "ok", "op": "shutdown"})
            self.begin_shutdown()
        else:
            conn.send({"event": "error", "error": f"unknown op {op!r}"})

    # ------------------------------------------------------------------
    # Submit: classify, dedup, enqueue
    # ------------------------------------------------------------------
    def _op_submit(self, conn: _Connection, message: dict) -> None:
        faults.fire("service.submit")
        if self._draining:
            conn.send(
                {"event": "rejected", "error": "service is shutting down"}
            )
            return
        granularity = message.get("granularity", "benchmark")
        if granularity != "benchmark":
            conn.send(
                {
                    "event": "rejected",
                    "error": "the service schedules benchmark-granularity "
                    f"jobs only, got {granularity!r} (use 'repro-sweep run' "
                    "for loop granularity)",
                }
            )
            return
        try:
            spec = SweepSpec.from_mapping(dict(message.get("spec") or {}))
            jobs = _dedupe(spec.expand())
        except (ValueError, TypeError) as error:
            conn.send({"event": "rejected", "error": f"invalid spec: {error}"})
            return

        with obs.span("service.submit", spec=spec.name, points=len(jobs)):
            stored: list[tuple[SweepJob, dict]] = []
            inflight: list[SweepJob] = []
            new: list[SweepJob] = []
            for job in jobs:
                if job.key in self._inflight:
                    inflight.append(job)
                    continue
                record = self.store.load_record(job.key)
                if is_simulated_record(record):
                    stored.append((job, record))
                else:
                    new.append(job)

        backlog = self.scheduler.pending()
        depth = backlog["queued"] + backlog["running"]
        if new and depth + len(new) > self.queue_cap:
            self.counters["rejected"] += 1
            conn.send(
                {
                    "event": "rejected",
                    "error": f"queue cap {self.queue_cap} exceeded "
                    f"({depth} pending, {len(new)} new)",
                    "retry_after": self._retry_after(depth + len(new)),
                }
            )
            return

        self._request_seq += 1
        wait = bool(message.get("wait", True))
        request = _Request(
            id=f"req-{self._request_seq}",
            run_id=obs_ledger.new_run_id(),
            conn=conn if wait else None,
            total=len(jobs),
            new=len(new),
            stored=len(stored),
            inflight=len(inflight),
            spec_name=spec.name,
            spec_hash=_spec_hash(jobs),
            benchmarks=sorted({job.benchmark for job in jobs}),
            architectures=sorted({job.architecture for job in jobs}),
            started_wall=time.time(),
            started_perf=time.perf_counter(),
            pending={job.key for job in inflight} | {job.key for job in new},
        )
        self._requests[request.id] = request
        if wait:
            conn.requests.add(request.id)
        self.counters["requests"] += 1
        self.counters["dedup_new"] += len(new)
        self.counters["dedup_stored"] += len(stored)
        self.counters["dedup_inflight"] += len(inflight)
        conn.send(
            {
                "event": "accepted",
                "protocol": protocol.PROTOCOL_VERSION,
                "request": request.id,
                "total": request.total,
                "new": request.new,
                "stored": request.stored,
                "inflight": request.inflight,
            }
        )
        for job in inflight:
            self._inflight[job.key].subscribers.append(request)
        for job in new:
            self._inflight[job.key] = _Inflight(
                job=job, owner=request.id, subscribers=[request]
            )
            self._units_total += 1
            self.scheduler.submit(job, self._completion_threadsafe)
        # Stored records stream after `accepted`; a fully stored grid
        # completes the request synchronously.
        for job, record in stored:
            self._send_progress(request, job.key, record, "stored")
            request.done += 1
        if request.done >= request.total:
            self._finish_request(request)
        self._write_header(force=True)

    # ------------------------------------------------------------------
    # Completion flow (scheduler pump thread -> event loop)
    # ------------------------------------------------------------------
    def _completion_threadsafe(self, completion: JobCompletion) -> None:
        try:
            self._loop.call_soon_threadsafe(self._job_done, completion)
        except RuntimeError:
            # Loop already gone (late completion during teardown); the
            # record was computed but cannot be routed.  The store stays
            # consistent -- nothing was written.
            pass

    def _job_done(self, completion: JobCompletion) -> None:
        entry = self._inflight.pop(completion.key, None)
        self._units_done += 1
        if completion.error is not None:
            # A job the scheduler gave up on (past its retry budget) fails
            # only the request(s) subscribed to this key -- the session,
            # its workers and every other request keep serving.  The
            # quarantine record goes through the normal store path, so a
            # later submit (or `run`) retries the key.
            record = None
            if completion.error != "scheduler closed":
                self.counters["failed"] += 1
                if entry is not None:
                    record = make_failed_record(
                        entry.job,
                        completion.error,
                        completion.attempts,
                        completion.traceback,
                    )
                    self.store.save(completion.key, record)
                    self.store.discard_payload(completion.key)
                    self.counters["quarantined"] += 1
            subscribers = entry.subscribers if entry is not None else []
            for request in subscribers:
                if completion.key not in request.pending:
                    continue
                request.pending.discard(completion.key)
                request.done += 1
                request.failed += 1
                if request.conn is not None:
                    request.conn.send(
                        {
                            "event": "job_failed",
                            "request": request.id,
                            "key": completion.key,
                            "error": completion.error,
                            "attempts": completion.attempts,
                            "traceback": (record or {}).get("traceback"),
                        }
                    )
                if request.done >= request.total:
                    self._finish_request(request)
        else:
            # Same save path, same payload policy as `repro-sweep run` --
            # this is what keeps served records byte-identical.
            self.store.save(
                completion.key,
                completion.record,
                payload=completion.result if self.save_payloads else None,
            )
            self.counters["executed"] += 1
            self._record_stage_stats(completion.stats)
            elapsed = float(
                (completion.record or {}).get("elapsed_seconds", 0.0)
            )
            if elapsed > 0.0:
                self._durations.append(elapsed)
                del self._durations[:-_DURATION_SAMPLES]
            subscribers = entry.subscribers if entry is not None else []
            for request in subscribers:
                if completion.key not in request.pending:
                    continue
                request.pending.discard(completion.key)
                request.done += 1
                if entry.owner == request.id:
                    request.executed += 1
                    origin = "executed"
                else:
                    request.served_inflight += 1
                    origin = "inflight"
                self._send_progress(
                    request, completion.key, completion.record, origin
                )
                if request.done >= request.total:
                    self._finish_request(request)
        self._write_header()

    def _send_progress(
        self, request: _Request, key: str, record: Optional[dict], origin: str
    ) -> None:
        if request.conn is None:
            return
        request.conn.send(
            {
                "event": "progress",
                "request": request.id,
                "done": request.done + 1,
                "total": request.total,
                "key": key,
                "origin": origin,
                "record": record,
            }
        )

    def _finish_request(self, request: _Request) -> None:
        elapsed = time.perf_counter() - request.started_perf
        self._requests.pop(request.id, None)
        if request.conn is not None:
            request.conn.requests.discard(request.id)
            request.conn.send(
                {
                    "event": "done",
                    "request": request.id,
                    "total": request.total,
                    "executed": request.executed,
                    "stored": request.stored,
                    "inflight": request.served_inflight,
                    "failed": request.failed,
                    "cancelled": request.cancelled,
                    "elapsed_seconds": round(elapsed, 4),
                }
            )
        if self.telemetry:
            obs.record_span(
                "service.request",
                started=request.started_wall,
                elapsed=elapsed,
                parent=self._run_id,
                request=request.id,
                spec=request.spec_name,
                total=request.total,
                new=request.new,
                stored=request.stored,
                inflight=request.inflight,
                cancelled=request.cancelled,
            )
            self._append_request_ledger_entry(request, elapsed)
        self._write_header(force=True)
        self._notify_if_idle()

    # ------------------------------------------------------------------
    # Cancel
    # ------------------------------------------------------------------
    def _op_cancel(self, conn: _Connection, message: dict) -> None:
        request_id = message.get("request")
        request = self._requests.get(request_id)
        if request is None:
            conn.send(
                {
                    "event": "error",
                    "error": f"no live request {request_id!r}",
                }
            )
            return
        notify_separately = request.conn is not conn
        self._cancel_request(request)
        if notify_separately:
            conn.send(
                {
                    "event": "done",
                    "request": request_id,
                    "total": request.total,
                    "executed": request.executed,
                    "stored": request.stored,
                    "inflight": request.served_inflight,
                    "failed": request.failed,
                    "cancelled": True,
                }
            )

    def _cancel_request(self, request: _Request) -> None:
        """Unsubscribe a request; drop its not-yet-started exclusive jobs.

        Jobs already running (or shared with another live request) are
        left to finish -- their records are saved, so the store never
        holds a partial grid state vacuum would need to repair.
        """
        request.cancelled = True
        for key in list(request.pending):
            entry = self._inflight.get(key)
            if entry is None:
                continue
            if request in entry.subscribers:
                entry.subscribers.remove(request)
            if not entry.subscribers and self.scheduler.cancel(key):
                del self._inflight[key]
                self._units_total -= 1
                self.counters["cancelled_jobs"] += 1
        request.pending.clear()
        self.counters["cancelled_requests"] += 1
        self._finish_request(request)

    # ------------------------------------------------------------------
    # Stats, header, telemetry
    # ------------------------------------------------------------------
    def stats_event(self) -> dict:
        backlog = (
            self.scheduler.pending()
            if self.scheduler is not None
            else {"queued": 0, "running": 0}
        )
        return {
            "event": "stats",
            "protocol": protocol.PROTOCOL_VERSION,
            "pid": os.getpid(),
            "store": str(self.store.root),
            "workers": self.workers,
            "queue_cap": self.queue_cap,
            "queued": backlog["queued"],
            "running": backlog["running"],
            "draining": self._draining,
            "uptime_seconds": round(
                time.perf_counter() - self._started_perf, 3
            ),
            "requests": {
                "total": self.counters["requests"],
                "active": len(self._requests),
                "rejected": self.counters["rejected"],
                "cancelled": self.counters["cancelled_requests"],
            },
            "dedup": {
                "new": self.counters["dedup_new"],
                "stored": self.counters["dedup_stored"],
                "inflight": self.counters["dedup_inflight"],
            },
            "jobs": {
                "executed": self.counters["executed"],
                "failed": self.counters["failed"],
                "quarantined": self.counters["quarantined"],
                "cancelled": self.counters["cancelled_jobs"],
            },
            "supervision": self._supervision_counters(),
        }

    def _supervision_counters(self) -> dict:
        if self.scheduler is None:
            return {"retried": 0, "respawned": 0, "timeouts": 0}
        lifetime = self.scheduler.counters()
        return {
            "retried": lifetime["retried"],
            "respawned": lifetime["respawned"],
            "timeouts": lifetime["timeouts"],
        }

    def _retry_after(self, backlog: int) -> float:
        """Seconds until the backlog plausibly fits under the cap."""
        if self._durations:
            ordered = sorted(self._durations)
            per_job = ordered[len(ordered) // 2]
        else:
            per_job = _DEFAULT_JOB_SECONDS
        overflow = max(1, backlog - self.queue_cap)
        return round(max(per_job, overflow * per_job / self.workers), 3)

    def _record_stage_stats(self, stats: Optional[dict]) -> None:
        if not stats:
            return
        for counter, totals in (
            (stats.get("hits"), self._stage_hits),
            (stats.get("misses"), self._stage_misses),
        ):
            for stage, count in (counter or {}).items():
                totals[stage] = totals.get(stage, 0) + count

    def _write_header(self, force: bool = False) -> None:
        """Keep ``obs/run.json`` current so ``watch`` tails the live server.

        ``completed_units`` is authoritative here -- the shard-span count
        ``watch`` uses for plain runs never resets over a service's
        lifetime, so the snapshot prefers these header fields.
        """
        if not self.telemetry:
            return
        now = time.monotonic()
        if not force and now - self._last_header_write < _HEADER_INTERVAL_SECONDS:
            return
        self._last_header_write = now
        backlog = self.scheduler.pending() if self.scheduler else {}
        obs_events.write_run_header(
            self.store.root,
            {
                "run_id": self._run_id,
                "pid": os.getpid(),
                "service": True,
                "workers": self.workers,
                "granularity": "benchmark",
                "total_jobs": self.counters["requests"],
                "total_units": self._units_total,
                "completed_units": self._units_done,
                "requests_total": self.counters["requests"],
                "requests_active": len(self._requests),
                "served_stored": self.counters["dedup_stored"],
                "served_inflight": self.counters["dedup_inflight"],
                "failed": self.counters["failed"],
                "queued": backlog.get("queued", 0),
            },
            started=self._started_wall,
        )

    def _append_request_ledger_entry(
        self, request: _Request, elapsed: float
    ) -> None:
        """One ledger line per served request, ``run``-shaped plus dedup.

        ``executed``/``cache_hits`` mean what they mean for a plain run
        (jobs this request actually simulated / jobs served without
        executing), so ``repro-sweep runs`` and the regression gate's
        comparability rules (spec hash + host + executed count) apply to
        served requests unchanged.
        """
        manifest = {
            "created": time.strftime(
                "%Y-%m-%dT%H:%M:%S%z", time.localtime(request.started_wall)
            ),
            "git_describe": None,
            "spec_hash": request.spec_hash,
            "benchmarks": request.benchmarks,
            "machine_grid": request.architectures,
            "granularity": "benchmark",
            "sim_kernel": kernels.active_backend(),
            "workers": self.workers,
            "run": {
                "total_jobs": request.total,
                "executed": request.executed,
                "cache_hits": request.stored + request.served_inflight,
                "pruned": 0,
                "elapsed_seconds": round(elapsed, 3),
            },
        }
        entry = obs_ledger.build_entry(manifest, [], None, run_id=request.run_id)
        entry["service"] = {
            "request": request.id,
            "session": self._run_id,
            "spec": request.spec_name,
            "new": request.new,
            "stored": request.stored,
            "inflight": request.inflight,
            "failed": request.failed,
            "cancelled": request.cancelled,
        }
        obs_ledger.append_entry(obs_events.obs_dir(self.store.root), entry)

    def _session_manifest(self) -> dict:
        counters = self.counters
        return {
            "spec_hash": None,
            "benchmarks": None,
            "machine_grid": None,
            "granularity": "benchmark",
            "sim_kernel": kernels.active_backend(),
            "workers": self.workers,
            "service": {
                "requests": counters["requests"],
                "rejected": counters["rejected"],
                "cancelled_requests": counters["cancelled_requests"],
                "dedup_new": counters["dedup_new"],
                "dedup_stored": counters["dedup_stored"],
                "dedup_inflight": counters["dedup_inflight"],
                "failed": counters["failed"],
                "quarantined": counters["quarantined"],
                **self._supervision_counters(),
            },
            "run": {
                "total_jobs": counters["requests"],
                "executed": counters["executed"],
                "cache_hits": counters["dedup_stored"]
                + counters["dedup_inflight"],
                "pruned": 0,
                "elapsed_seconds": round(
                    time.perf_counter() - self._started_perf, 3
                ),
            },
            "stage_hits": dict(self._stage_hits),
            "stage_misses": dict(self._stage_misses),
        }


class ServiceThread:
    """A sweep service on a background thread (tests, perf harness).

    Owns the event loop thread; :meth:`start` blocks until the listener
    is up, :meth:`stop` drains and joins.  Use as a context manager.
    """

    def __init__(self, service: SweepService, **serve_kwargs) -> None:
        self.service = service
        self._serve_kwargs = serve_kwargs
        self._thread = None
        self._error: Optional[BaseException] = None

    def __enter__(self) -> "ServiceThread":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    def start(self, timeout: float = 30.0) -> None:
        import threading

        ready = threading.Event()

        def runner() -> None:
            try:
                asyncio.run(self.service.serve(ready=ready.set, **self._serve_kwargs))
            except BaseException as error:  # noqa: BLE001 - surfaced in stop()
                self._error = error
                ready.set()

        self._thread = threading.Thread(
            target=runner, daemon=True, name="sweep-service"
        )
        self._thread.start()
        if not ready.wait(timeout):
            raise TimeoutError("sweep service did not start listening")
        if self._error is not None:
            raise RuntimeError("sweep service failed to start") from self._error

    def stop(self, timeout: float = 60.0) -> None:
        if self._thread is None:
            return
        loop = self.service._loop
        if loop is not None and loop.is_running():
            with contextlib.suppress(RuntimeError):
                loop.call_soon_threadsafe(self.service.begin_shutdown)
        self._thread.join(timeout)
        self._thread = None
        if self._error is not None:
            raise RuntimeError("sweep service crashed") from self._error


def _dedupe(jobs) -> list[SweepJob]:
    seen: set[str] = set()
    unique: list[SweepJob] = []
    for job in jobs:
        if job.key not in seen:
            seen.add(job.key)
            unique.append(job)
    return unique


def _spec_hash(jobs) -> str:
    """Same formula as ``run_jobs`` -- served and plain runs compare."""
    return hashlib.sha256(
        "\n".join(sorted(job.key for job in jobs)).encode("utf-8")
    ).hexdigest()


def _clear_stale_socket(path: Path) -> None:
    """Remove a socket file no server answers on (crash leftover)."""
    if not path.exists():
        return
    import socket as socket_module

    probe = socket_module.socket(socket_module.AF_UNIX)
    probe.settimeout(1.0)
    try:
        probe.connect(str(path))
    except OSError:
        path.unlink(missing_ok=True)
    else:
        probe.close()
        raise RuntimeError(
            f"a sweep service is already listening on {path}"
        )
    finally:
        with contextlib.suppress(OSError):
            probe.close()

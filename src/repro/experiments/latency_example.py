"""The worked latency-assignment example of Section 4.3.3.

The paper walks through its benefit function on a two-recurrence DDG for a
2-cluster machine with 15/10/5/1-cycle latencies: two loads (hit rates 0.6
and 0.9, half of their accesses local) inside the most constraining
recurrence REC1 and one load (hit rate 0.9) inside REC2.  The text gives the
benefit values of every candidate change (STEP 1 and STEP 2 of the table) and
the final assignment: the loop MII is 8, n2 ends at the local-hit latency and
n1 at a latency of 4 cycles after slack absorption, and n6 ends at the
local-hit latency.

This module rebuilds that example and reruns the latency assigner on it so
the benchmark harness (and the tests) can compare against the paper's table.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import ExperimentResult
from repro.ir.builder import LoopBuilder
from repro.ir.loop import Loop
from repro.ir.operation import Operation
from repro.machine.config import (
    FunctionalUnitSet,
    MachineConfig,
    MemoryLatencies,
)
from repro.scheduler.latency import (
    LatencyAssigner,
    LatencyAssignment,
    MemoryOpStats,
)


def example_machine() -> MachineConfig:
    """The 2-cluster machine of the example (latencies 15/10/5/1)."""
    return MachineConfig(
        num_clusters=2,
        interleaving_factor=4,
        cache=MachineConfig.default().cache,
        latencies=MemoryLatencies(
            local_hit=1, remote_hit=5, local_miss=10, remote_miss=15
        ),
        functional_units=FunctionalUnitSet(integer=2, float_=2, memory=2),
    )


def example_loop() -> Loop:
    """A loop whose two recurrences match the example's II arithmetic.

    REC1 carries the latencies of loads n1 and n2 plus three cycles of
    arithmetic around a distance-1 back edge (II = 33 with both loads at the
    remote-miss latency, 5 with both at the local-hit latency); REC2 carries
    load n6, a 6-cycle divide and a single-cycle add (II = 22 initially, 8 at
    the local-hit latency), so the loop MII is 8, as in the paper.
    """
    builder = LoopBuilder("section_4_3_3_example", trip_count=1000)
    builder.array("a", element_bytes=4, num_elements=4096)
    builder.array("b", element_bytes=4, num_elements=4096)
    n1 = builder.load("n1", "a", stride=4)
    n2 = builder.load("n2", "a", stride=4, offset=8, inputs=[n1])
    n3 = builder.compute("n3", "add", inputs=[n2])
    n4 = builder.store("n4", "a", stride=4, offset=16, inputs=[n3])
    n5 = builder.compute("n5", "mul", inputs=[n3])
    builder.flow(n5, n1, distance=1)

    n6 = builder.load("n6", "b", stride=4)
    n7 = builder.compute("n7", "div", inputs=[n6])
    n8 = builder.compute("n8", "add", inputs=[n7])
    builder.flow(n8, n6, distance=1)
    return builder.build(disambiguation=None)


def example_stats(loop: Loop) -> dict[Operation, MemoryOpStats]:
    """The profile numbers quoted in Figure 3 of the paper."""
    ddg = loop.ddg
    return {
        ddg.find("n1"): MemoryOpStats(hit_rate=0.6, local_ratio=0.5),
        ddg.find("n2"): MemoryOpStats(hit_rate=0.9, local_ratio=0.5),
        ddg.find("n4"): MemoryOpStats(hit_rate=1.0, local_ratio=0.5),
        ddg.find("n6"): MemoryOpStats(hit_rate=0.9, local_ratio=0.5),
    }


@dataclass
class LatencyExampleOutcome:
    """Everything the example produces."""

    loop: Loop
    assignment: LatencyAssignment

    def final_latency(self, name: str) -> int:
        """Final latency of the named operation."""
        return self.assignment.latency_of(self.loop.ddg.find(name))


def run_latency_example() -> tuple[LatencyExampleOutcome, ExperimentResult]:
    """Rerun the Section 4.3.3 example through the latency assigner."""
    config = example_machine()
    loop = example_loop()
    stats = example_stats(loop)
    assignment = LatencyAssigner(loop, config, stats).assign()
    outcome = LatencyExampleOutcome(loop=loop, assignment=assignment)

    result = ExperimentResult(
        title="Section 4.3.3 - latency assignment worked example",
        headers=["operation", "from", "to", "II decrease", "stall increase", "benefit", "applied"],
    )
    for step in assignment.steps:
        benefit = "inf" if step.benefit == float("inf") else round(step.benefit, 2)
        result.add_row(
            [
                step.operation.name,
                step.from_latency,
                step.to_latency,
                step.ii_decrease,
                round(step.stall_increase, 2),
                benefit,
                "yes" if step.applied else "",
            ]
        )
    result.add_row(["target MII", assignment.target_mii, "", "", "", "", ""])
    for name in ("n1", "n2", "n6"):
        result.add_row(
            [f"final latency {name}", outcome.final_latency(name), "", "", "", "", ""]
        )
    result.notes.append(
        "paper outcome: MII 8, n2 ends at the local-hit latency, n1 at 4 "
        "cycles, n6 at the local-hit latency"
    )
    return outcome, result

"""Deterministic fault injection for the sweep execution stack.

Real-world failure -- a worker OOM-killed mid-job, a hung simulation, a
torn record from a crash between write and rename, a corrupt artifact
after a disk hiccup -- is rare, racy and unreproducible.  This module is
the *only* mechanism tests and CI use to simulate those failures: every
failure mode the fault-tolerance layer claims to survive is injected
here, deterministically, from one environment variable, so a chaos run
is exactly reproducible.

::

    REPRO_FAULT=<site>:<kind>[:<nth>][,<site>:<kind>[:<nth>]...]

``site`` is a named injection point threaded through the executor,
scheduler, service, :class:`~repro.sweep.artifacts.ArtifactStore` and
:class:`~repro.sweep.store.ResultStore` (see ``docs/robustness.md`` for
the full table).  ``kind`` is one of:

``crash``
    ``os._exit`` the process immediately (exit code
    :data:`CRASH_EXIT_CODE`) -- a SIGKILL-equivalent worker death: no
    exception handlers, no atexit, no flushing.
``hang``
    Sleep for ``REPRO_FAULT_HANG`` seconds (default 3600) -- a stuck
    job, for exercising ``--job-timeout``.
``raise``
    Raise :class:`InjectedFault` -- a poison job that fails cleanly.
``torn-write``
    Truncate the bytes of the guarded write to half -- the on-disk
    result of dying mid-write.  Only meaningful at ``mangle`` sites.
``corrupt``
    Flip bits in the middle of the guarded write -- silent corruption.
    Only meaningful at ``mangle`` sites.

``nth`` selects which invocation of the site fires (1-based).  Omitted,
the fault fires on *every* invocation.  Invocation counters are
per-process by default; when ``REPRO_FAULT_STATE`` names a directory,
counting is global across every process sharing it (claim files created
with ``O_EXCL``), so "crash exactly one worker, then succeed" is
expressible even though the crashed worker's replacement starts fresh.

Zero overhead when unset: :func:`fire` and :func:`mangle` return after a
single ``is None`` check on a module global parsed once at import.
"""

from __future__ import annotations

import os
import time
from typing import Optional

#: The environment variable holding the fault plan.
ENV_VAR = "REPRO_FAULT"

#: Optional directory for cross-process invocation counting.
STATE_ENV_VAR = "REPRO_FAULT_STATE"

#: Seconds a ``hang`` fault sleeps (override via ``REPRO_FAULT_HANG``).
HANG_ENV_VAR = "REPRO_FAULT_HANG"
DEFAULT_HANG_SECONDS = 3600.0

#: Exit code of a ``crash`` fault -- distinctive, so a supervisor test
#: can tell an injected crash from a real one.
CRASH_EXIT_CODE = 86

#: Kinds that abort control flow at a :func:`fire` site.
FIRE_KINDS = ("crash", "hang", "raise")

#: Kinds that damage bytes at a :func:`mangle` site.
MANGLE_KINDS = ("torn-write", "corrupt")

KINDS = FIRE_KINDS + MANGLE_KINDS


class InjectedFault(RuntimeError):
    """The exception a ``raise`` fault throws at its site."""


class FaultRule:
    """One ``site:kind[:nth]`` entry of the fault plan."""

    __slots__ = ("site", "kind", "nth")

    def __init__(self, site: str, kind: str, nth: Optional[int]) -> None:
        self.site = site
        self.kind = kind
        self.nth = nth

    def matches(self, count: int) -> bool:
        """Whether this rule fires on the ``count``-th site invocation."""
        return self.nth is None or self.nth == count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        nth = "" if self.nth is None else f":{self.nth}"
        return f"FaultRule({self.site}:{self.kind}{nth})"


def parse_plan(text: str) -> dict[str, list[FaultRule]]:
    """Parse a ``REPRO_FAULT`` value into rules per site.

    Invalid entries raise ValueError naming the offending entry and the
    valid kinds -- a mistyped chaos plan must fail the run loudly, not
    silently inject nothing.
    """
    plan: dict[str, list[FaultRule]] = {}
    for entry in text.split(","):
        entry = entry.strip()
        if not entry:
            continue
        parts = entry.split(":")
        # Sites may themselves contain dots but never colons; a trailing
        # integer part is the nth selector.
        if len(parts) == 2:
            site, kind = parts
            nth: Optional[int] = None
        elif len(parts) == 3:
            site, kind = parts[0], parts[1]
            try:
                nth = int(parts[2])
            except ValueError:
                raise ValueError(
                    f"invalid fault entry {entry!r}: nth must be an integer"
                ) from None
            if nth < 1:
                raise ValueError(
                    f"invalid fault entry {entry!r}: nth must be >= 1"
                )
        else:
            raise ValueError(
                f"invalid fault entry {entry!r}: expected <site>:<kind>[:<nth>]"
            )
        site = site.strip()
        kind = kind.strip()
        if not site:
            raise ValueError(f"invalid fault entry {entry!r}: empty site")
        if kind not in KINDS:
            raise ValueError(
                f"invalid fault entry {entry!r}: unknown kind {kind!r} "
                f"(valid: {', '.join(KINDS)})"
            )
        plan.setdefault(site, []).append(FaultRule(site, kind, nth))
    return plan


#: The active plan (None = injection off, the production state).
_PLAN: Optional[dict[str, list[FaultRule]]] = None

#: Per-process invocation counts per site.
_COUNTS: dict[str, int] = {}

#: Next global index to probe per site (cross-process counting only).
_NEXT_GLOBAL: dict[str, int] = {}

_STATE_DIR: Optional[str] = None


def refresh_from_env() -> bool:
    """(Re)read ``REPRO_FAULT``; returns whether injection is now active.

    Called at import; tests that monkeypatch the environment call it
    again.  Forked workers inherit the parsed plan; spawned workers
    re-import this module and re-parse the inherited environment.
    """
    global _PLAN, _STATE_DIR
    _COUNTS.clear()
    _NEXT_GLOBAL.clear()
    text = os.environ.get(ENV_VAR, "")
    _STATE_DIR = os.environ.get(STATE_ENV_VAR) or None
    _PLAN = parse_plan(text) if text.strip() else None
    if _PLAN is not None and not _PLAN:
        _PLAN = None
    return _PLAN is not None


def active() -> bool:
    """Whether any fault plan is loaded."""
    return _PLAN is not None


def _claim_global(site: str) -> int:
    """Allocate this invocation's global 1-based index for ``site``.

    Each invocation claims the lowest unclaimed ``<site>.<n>`` file in
    the state directory with ``O_CREAT | O_EXCL`` -- atomic on every
    POSIX filesystem -- so concurrent workers get distinct indices and a
    respawned worker continues the sequence instead of restarting it.
    """
    safe = site.replace(os.sep, "_")
    index = _NEXT_GLOBAL.get(site, 1)
    while True:
        path = os.path.join(_STATE_DIR, f"{safe}.{index}")
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            index += 1
            continue
        except OSError:
            # Unwritable state dir: degrade to per-process counting
            # rather than poisoning the injected run itself.
            break
        os.close(fd)
        _NEXT_GLOBAL[site] = index + 1
        return index
    count = _COUNTS.get(site, 0) + 1
    _COUNTS[site] = count
    return count


def _count(site: str) -> int:
    if _STATE_DIR is not None:
        return _claim_global(site)
    count = _COUNTS.get(site, 0) + 1
    _COUNTS[site] = count
    return count


def fire(site: str) -> None:
    """Trigger any control-flow fault planned for ``site``.

    No-op (one global check) when injection is off.  ``crash`` exits the
    process, ``hang`` sleeps, ``raise`` throws :class:`InjectedFault`;
    ``torn-write``/``corrupt`` rules at a fire site are ignored (they
    guard byte streams, not control flow).
    """
    if _PLAN is None:
        return
    rules = _PLAN.get(site)
    if not rules:
        return
    count = _count(site)
    for rule in rules:
        if rule.kind not in FIRE_KINDS or not rule.matches(count):
            continue
        if rule.kind == "crash":
            os._exit(CRASH_EXIT_CODE)
        if rule.kind == "hang":
            time.sleep(_hang_seconds())
            return
        raise InjectedFault(
            f"injected fault at {site} (invocation {count})"
        )


def mangle(site: str, data: bytes) -> bytes:
    """Damage ``data`` according to any byte-fault planned for ``site``.

    Returns ``data`` unchanged (one global check) when injection is off
    or no mangle rule matches this invocation.  ``torn-write`` truncates
    to half; ``corrupt`` XOR-flips a run of bytes in the middle, keeping
    the length (a checksum must catch it, not a size check).
    """
    if _PLAN is None:
        return data
    rules = _PLAN.get(site)
    if not rules:
        return data
    count = _count(site)
    for rule in rules:
        if rule.kind not in MANGLE_KINDS or not rule.matches(count):
            continue
        if rule.kind == "torn-write":
            return data[: len(data) // 2]
        middle = len(data) // 2
        run = max(1, min(8, len(data) - middle))
        damaged = bytearray(data)
        for offset in range(run):
            damaged[middle + offset] ^= 0xFF
        return bytes(damaged)
    return data


def _hang_seconds() -> float:
    try:
        value = float(os.environ.get(HANG_ENV_VAR, ""))
    except ValueError:
        return DEFAULT_HANG_SECONDS
    return value if value > 0 else DEFAULT_HANG_SECONDS


refresh_from_env()

"""The trace-compiled hot path: LoopTrace vs AddressStream equivalence,
content-addressed trace keys, artifact persistence, the simulator's periodic
event-order template, and the counter-scaling satellites."""

import pytest

from repro.ir.builder import LoopBuilder
from repro.ir.loop import StorageClass
from repro.ir.unroll import unroll_loop
from repro.machine.config import MachineConfig
from repro.memory.classify import AccessCounters, StallCounters
from repro.memory.layout import DataLayout
from repro.profiling.address import AddressStream
from repro.profiling.profiler import profile_loop
from repro.profiling.trace import (
    TRACE_STAGE,
    LoopTrace,
    build_trace,
    loop_trace,
    reset_trace_state,
    trace_key,
    trace_stats,
)
from repro.scheduler.pipeline import CompilerOptions, compile_loop
from repro.sim.engine import (
    SimulationOptions,
    event_template,
    simulate_compiled_loops,
)
from repro.sweep.artifacts import ArtifactCache, ArtifactStore
from repro.workloads.mediabench import BENCHMARK_NAMES, mediabench_suite


def reference_addresses(loop, config, dataset, aligned, iterations):
    """Element-wise oracle: the original AddressStream, op by op."""
    layout = DataLayout(config, aligned=aligned, dataset=dataset)
    stream = AddressStream(loop, layout, dataset)
    return [
        [stream.address(op, i) for i in range(iterations)]
        for op in loop.memory_operations
    ], stream


def wrapping_loop():
    """Edge cases in one loop: tiny wrapping array, zero and negative
    strides, an indirect access whose range comes from the index array."""
    builder = LoopBuilder("wrap", trip_count=300)
    builder.array("tiny", element_bytes=4, num_elements=8, storage=StorageClass.STACK)
    builder.array("idx", element_bytes=2, num_elements=64, index_range=48)
    builder.array("table", element_bytes=8, num_elements=256, storage=StorageClass.HEAP)
    a = builder.load("wrap_fwd", "tiny", stride=4)
    b = builder.load("wrap_back", "tiny", stride=-12, offset=20)
    c = builder.load("wrap_const", "tiny", stride=0, offset=4)
    i = builder.load("wrap_ldi", "idx", stride=2)
    t = builder.load(
        "wrap_ldt", "table", indirect=True, index_array="idx", inputs=[i]
    )
    out = builder.compute("wrap_sum", "add", inputs=[a, b, c, t])
    builder.store("wrap_st", "tiny", stride=4, inputs=[out])
    return builder.build()


class TestTraceEquivalence:
    """LoopTrace must match AddressStream address for address."""

    @pytest.mark.parametrize("benchmark_name", BENCHMARK_NAMES)
    def test_every_workload_loop_both_datasets(self, benchmark_name):
        suite = mediabench_suite()
        config = MachineConfig.word_interleaved()
        for loop in suite[benchmark_name].loops:
            for dataset in ("profile", "execution"):
                for aligned in (True, False):
                    n = min(loop.trip_count, 48)
                    expected, stream = reference_addresses(
                        loop, config, dataset, aligned, n
                    )
                    trace = build_trace(loop, config, dataset, aligned, n)
                    assert [list(a) for a in trace.addresses] == expected
                    homes = trace.home_clusters()
                    for j, op in enumerate(loop.memory_operations):
                        assert list(homes[j]) == [
                            stream.home_cluster(op, i) for i in range(n)
                        ]

    def test_unrolled_variants_and_other_organizations(self):
        suite = mediabench_suite()
        loops = suite["jpegdec"].loops + suite["gsmdec"].loops
        for config in (MachineConfig.unified(latency=2), MachineConfig.multivliw()):
            for loop in loops:
                variant = unroll_loop(loop, 4)
                n = min(variant.trip_count, 32)
                expected, _ = reference_addresses(
                    variant, config, "execution", True, n
                )
                trace = build_trace(variant, config, "execution", True, n)
                assert [list(a) for a in trace.addresses] == expected

    def test_wrapping_strides_and_index_range_fallback(self):
        loop = wrapping_loop()
        config = MachineConfig.word_interleaved()
        for dataset in ("profile", "execution"):
            for aligned in (True, False):
                expected, _ = reference_addresses(loop, config, dataset, aligned, 300)
                trace = build_trace(loop, config, dataset, aligned, 300)
                assert [list(a) for a in trace.addresses] == expected

    def test_granularities_match_operations(self):
        loop = wrapping_loop()
        trace = build_trace(
            loop, MachineConfig.word_interleaved(), "profile", True, 4
        )
        assert trace.granularities == tuple(
            op.memory.granularity for op in loop.memory_operations
        )


class TestTraceKey:
    def setup_method(self):
        self.loop = mediabench_suite()["gsmdec"].loops[0]
        self.config = MachineConfig.word_interleaved()

    def key(self, **overrides):
        args = {
            "loop": self.loop,
            "config": self.config,
            "dataset": "profile",
            "aligned": True,
            "iterations": 128,
        }
        args.update(overrides)
        return trace_key(**args)

    def test_scheduling_knobs_do_not_change_the_key(self):
        """Cache geometry, latencies and ABs are outside the trace slice."""
        from dataclasses import replace

        from repro.machine.config import CacheGeometry

        base = self.key()
        assert base == self.key(
            config=MachineConfig.word_interleaved(attraction_buffers=True)
        )
        bigger_cache = replace(
            self.config, cache=CacheGeometry(size_bytes=32 * 1024)
        )
        assert base == self.key(config=bigger_cache)

    def test_layout_slice_changes_the_key(self):
        base = self.key()
        assert base != self.key(config=self.config.with_clusters(2))
        assert base != self.key(config=self.config.with_interleaving(8))
        assert base != self.key(dataset="execution")
        assert base != self.key(aligned=False)
        assert base != self.key(iterations=64)

    def test_address_irrelevant_loop_fields_share_the_key(self):
        """attractable hints and trip counts cannot change an address."""
        base = self.key()
        tweaked = self.loop.with_trip_count(self.loop.trip_count * 2)
        assert base == self.key(loop=tweaked)

    def test_address_relevant_loop_fields_change_the_key(self):
        base = self.key()
        variant = unroll_loop(self.loop, 2)  # strides and offsets change
        assert base != self.key(loop=variant)


class TestTraceCaching:
    def test_memo_serves_repeated_builds(self):
        reset_trace_state()
        loop = mediabench_suite()["g721dec"].loops[0]
        config = MachineConfig.word_interleaved()
        first = loop_trace(loop, config, "profile", True, 64)
        second = loop_trace(loop, config, "profile", True, 64)
        assert second is first
        stats = trace_stats()
        assert stats["built"] == 1
        assert stats["memo_hits"] == 1
        reset_trace_state()

    def test_payload_round_trip(self):
        loop = wrapping_loop()
        config = MachineConfig.word_interleaved()
        trace = build_trace(loop, config, "execution", False, 96)
        clone = LoopTrace.from_payload(
            trace.to_payload(), config, "execution", False
        )
        assert [list(a) for a in clone.addresses] == [
            list(a) for a in trace.addresses
        ]
        assert clone.granularities == trace.granularities
        assert [list(h) for h in clone.home_clusters()] == [
            list(h) for h in trace.home_clusters()
        ]

    def test_artifact_store_round_trip_and_counters(self, tmp_path):
        loop = mediabench_suite()["rasta"].loops[0]
        config = MachineConfig.word_interleaved()
        cache = ArtifactCache(ArtifactStore(tmp_path))
        built = loop_trace(loop, config, "execution", True, 128, cache=cache)
        assert cache.misses == {TRACE_STAGE: 1}
        # A fresh cache over the same store must serve the trace from disk.
        rehydrated = loop_trace(
            loop,
            config,
            "execution",
            True,
            128,
            cache=ArtifactCache(ArtifactStore(tmp_path)),
        )
        assert [list(a) for a in rehydrated.addresses] == [
            list(a) for a in built.addresses
        ]
        hits_cache = ArtifactCache(ArtifactStore(tmp_path))
        loop_trace(loop, config, "execution", True, 128, cache=hits_cache)
        assert hits_cache.hits == {TRACE_STAGE: 1}

    def test_profile_loop_with_cache_is_identical(self, tmp_path):
        loop = mediabench_suite()["jpegenc"].loops[0]
        config = MachineConfig.word_interleaved()
        cache = ArtifactCache(ArtifactStore(tmp_path))
        without = profile_loop(loop, config)
        cold = profile_loop(loop, config, cache=cache)
        warm = profile_loop(loop, config, cache=cache)
        for op in loop.memory_operations:
            assert cold.operations[op].hits == without.operations[op].hits
            assert warm.operations[op].cluster_counts == without.operations[
                op
            ].cluster_counts
        assert cache.hits.get(TRACE_STAGE) == 1

    def test_simulation_reuses_execution_traces_across_scheduling_points(
        self, tmp_path
    ):
        """The cross-grid reuse the tentpole is about: two compiles that
        differ only in a simulation-time knob (Attraction Buffers) replay
        the same execution trace -- the second simulate has zero misses."""
        benchmark = mediabench_suite()["g721enc"]
        plain = MachineConfig.word_interleaved()
        with_ab = MachineConfig.word_interleaved(attraction_buffers=True)
        options = CompilerOptions()
        sim = SimulationOptions(iteration_cap=128)

        cache = ArtifactCache(ArtifactStore(tmp_path))
        compiled = [
            compile_loop(loop, plain, options, cache=cache)
            for loop in benchmark.loops
        ]
        baseline = simulate_compiled_loops(
            compiled, benchmark.name, plain, sim, trace_cache=cache
        )
        cache.take_stats()

        compiled_ab = [
            compile_loop(loop, with_ab, options, cache=cache)
            for loop in benchmark.loops
        ]
        simulate_compiled_loops(
            compiled_ab, benchmark.name, with_ab, sim, trace_cache=cache
        )
        stats = cache.take_stats()
        assert stats["misses"].get(TRACE_STAGE) is None
        assert stats["hits"][TRACE_STAGE] == len(benchmark.loops)

        # And the trace-served simulation matches a cache-less one exactly.
        uncached = simulate_compiled_loops(compiled, benchmark.name, plain, sim)
        assert uncached.describe() == baseline.describe()


class TestEventTemplate:
    """The periodic template must reproduce the sorted event list exactly."""

    @staticmethod
    def emit(start_cycles, ii, simulated):
        template, max_k = event_template(start_cycles, ii)
        events = []
        for m in range(simulated + max_k if simulated and template else 0):
            for phase, wrap, index in template:
                iteration = m - wrap
                if 0 <= iteration < simulated:
                    events.append((m * ii + phase, index, iteration))
        return events

    @staticmethod
    def reference(start_cycles, ii, simulated):
        return sorted(
            (iteration * ii + start, index, iteration)
            for iteration in range(simulated)
            for index, start in enumerate(start_cycles)
        )

    @pytest.mark.parametrize(
        "start_cycles,ii",
        [
            ([0], 1),
            ([0, 0, 3, 5], 2),  # ties within a cycle
            ([4, 1, 9, 9, 2], 3),  # start cycles beyond one II
            ([7, 13, 2], 5),
            ([11, 3, 8, 0, 6, 6], 4),
            ([5, 17], 1),  # ii=1: every op in every cycle
        ],
    )
    @pytest.mark.parametrize("simulated", [0, 1, 2, 7, 32])
    def test_matches_sorted_event_list(self, start_cycles, ii, simulated):
        assert self.emit(start_cycles, ii, simulated) == self.reference(
            start_cycles, ii, simulated
        )

    def test_ties_resolve_by_operation_index(self):
        # Ops 0 and 2 share phase 1; at equal cycles op 0 must come first
        # even though op 2 has the smaller wrap count.
        events = self.emit([5, 0, 1], 2, 8)
        same_cycle = [e for e in events if e[0] == 5]
        assert [index for _, index, _ in same_cycle] == [0, 2]


class TestCounterScaling:
    def test_access_counters_scale(self):
        counters = AccessCounters(
            local_hits=10,
            remote_hits=5,
            local_misses=3,
            remote_misses=2,
            combined=1,
            attraction_buffer_hits=4,
        )
        counters.scale(2.5)
        assert counters.local_hits == 25
        assert counters.remote_hits == 12  # banker's rounding of 12.5
        assert counters.local_misses == 8
        assert counters.remote_misses == 5
        assert counters.combined == 2
        assert counters.attraction_buffer_hits == 10

    def test_stall_counters_scale(self):
        stalls = StallCounters(remote_hit=7, local_miss=4, remote_miss=2, combined=1)
        stalls.scale(0.5)
        assert stalls.remote_hit == 4  # banker's rounding of 3.5
        assert stalls.local_miss == 2
        assert stalls.remote_miss == 1
        assert stalls.combined == 0

    def test_scale_identity(self):
        counters = AccessCounters(local_hits=11, remote_hits=7)
        counters.scale(1.0)
        assert counters.local_hits == 11 and counters.remote_hits == 7


class TestClusterOfAccessor:
    def test_matches_machine_interleaving(self):
        config = MachineConfig.word_interleaved()
        layout = DataLayout(config)
        for address in range(0, 256, 4):
            assert layout.cluster_of(address) == config.cluster_of_address(address)

    def test_address_stream_home_cluster_uses_it(self):
        loop = wrapping_loop()
        config = MachineConfig.word_interleaved()
        layout = DataLayout(config, aligned=True, dataset="profile")
        stream = AddressStream(loop, layout, "profile")
        op = loop.memory_operations[0]
        assert stream.home_cluster(op, 3) == layout.cluster_of(
            stream.address(op, 3)
        )

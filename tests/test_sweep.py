"""Tests of the design-space sweep subsystem (repro.sweep)."""

from __future__ import annotations

import json

import pytest

from repro.experiments.common import ExperimentOptions, ExperimentRunner, interleaved_setup
from repro.machine.config import MachineConfig
from repro.scheduler.core import SchedulingHeuristic
from repro.scheduler.pipeline import CompilerOptions, compile_loop
from repro.sim.engine import SimulationOptions, simulate_compiled_loops
from repro.sweep.executor import execute_job, run_jobs
from repro.sweep.spec import SweepJob, SweepPoint, SweepSpec, default_spec, make_job
from repro.sweep.store import ResultStore
from repro.sweep.workloads import resolve_workload, workload_names

from tests.conftest import build_streaming_loop

FAST = {"iteration_cap": 64}


def small_spec(benchmarks=("kernel:streaming",), **base) -> SweepSpec:
    merged = dict(FAST)
    merged.update(base)
    return SweepSpec(
        name="test",
        benchmarks=benchmarks,
        axes={"clusters": (2, 4)},
        base=merged,
    )


# ----------------------------------------------------------------------
# Grid expansion
# ----------------------------------------------------------------------
class TestGridExpansion:
    def test_default_spec_is_eight_points(self):
        spec = default_spec()
        assert spec.num_points == 8
        jobs = spec.expand()
        assert len(jobs) == 8
        assert len({job.key for job in jobs}) == 8

    def test_axes_and_base_are_applied(self):
        spec = SweepSpec(
            name="grid",
            benchmarks=("kernel:streaming", "kernel:reduction"),
            axes={"clusters": (2, 4), "attraction_entries": (0, 16)},
            base={"heuristic": "ipbc", "iteration_cap": 32},
        )
        jobs = spec.expand()
        assert len(jobs) == 8
        assert {job.benchmark for job in jobs} == {
            "kernel:streaming",
            "kernel:reduction",
        }
        assert {job.config.num_clusters for job in jobs} == {2, 4}
        assert {job.config.attraction_buffer.enabled for job in jobs} == {True, False}
        assert all(job.simulation.iteration_cap == 32 for job in jobs)

    def test_unknown_axis_rejected(self):
        with pytest.raises(ValueError, match="unknown sweep parameters"):
            SweepSpec(name="bad", benchmarks=("epicdec",), axes={"bogus": (1,)})

    def test_incompatible_heuristic_rejected(self):
        spec = SweepSpec(
            name="bad",
            benchmarks=("kernel:streaming",),
            axes={"organization": ("unified",)},
            base={"heuristic": "ipbc"},
        )
        with pytest.raises(ValueError, match="does not match"):
            spec.expand()

    def test_auto_heuristic_pairs_with_organization(self):
        spec = SweepSpec(
            name="auto",
            benchmarks=("kernel:streaming",),
            axes={"organization": ("word-interleaved", "unified", "coherent")},
        )
        by_org = {
            job.config.organization.value: job.options.heuristic for job in spec.expand()
        }
        assert by_org["word-interleaved"] is SchedulingHeuristic.IPBC
        assert by_org["unified"] is SchedulingHeuristic.BASE
        assert by_org["coherent"] is SchedulingHeuristic.MULTIVLIW

    def test_spec_round_trips_through_json(self):
        spec = default_spec()
        clone = SweepSpec.from_mapping(json.loads(json.dumps(spec.to_mapping())))
        assert [job.key for job in clone.expand()] == [
            job.key for job in spec.expand()
        ]

    def test_workload_names_resolve(self):
        for name in ("kernels-mix", "kernel:streaming", "epicdec"):
            assert name in workload_names()
            assert len(resolve_workload(name).loops) >= 1


# ----------------------------------------------------------------------
# Job hashing
# ----------------------------------------------------------------------
class TestJobHashing:
    def test_same_point_same_key(self):
        a = SweepPoint(benchmark="epicdec", clusters=4, **FAST).job()
        b = SweepPoint(benchmark="epicdec", clusters=4, **FAST).job()
        assert a.key == b.key

    def test_display_name_does_not_change_key(self):
        point = SweepPoint(benchmark="epicdec", **FAST)
        renamed = SweepJob(
            benchmark=point.benchmark,
            architecture="some-other-label",
            config=point.machine_config(),
            options=point.compiler_options(),
            simulation=point.simulation_options(),
        )
        assert renamed.key == point.job().key

    def test_any_parameter_changes_key(self):
        base = SweepPoint(benchmark="epicdec", **FAST)
        variants = [
            SweepPoint(benchmark="gsmdec", **FAST),
            SweepPoint(benchmark="epicdec", clusters=2, **FAST),
            SweepPoint(benchmark="epicdec", attraction_entries=16, **FAST),
            SweepPoint(benchmark="epicdec", unroll_policy="none", **FAST),
            SweepPoint(benchmark="epicdec", iteration_cap=65),
        ]
        keys = {base.job().key} | {variant.job().key for variant in variants}
        assert len(keys) == len(variants) + 1

    def test_point_and_object_construction_agree(self):
        point = SweepPoint(benchmark="epicdec", heuristic="ipbc", **FAST)
        job = make_job(
            "epicdec",
            MachineConfig.word_interleaved(),
            CompilerOptions(heuristic=SchedulingHeuristic.IPBC),
            SimulationOptions(iteration_cap=64),
        )
        assert job.key == point.job().key


# ----------------------------------------------------------------------
# Result store
# ----------------------------------------------------------------------
class TestResultStore:
    def test_round_trip(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        record = {"key": "abc", "metrics": {"total_cycles": 42}}
        store.save("abc", record, payload={"anything": [1, 2, 3]})

        reopened = ResultStore(tmp_path / "store")
        assert "abc" in reopened
        assert reopened.load_record("abc")["metrics"]["total_cycles"] == 42
        assert reopened.load_payload("abc") == {"anything": [1, 2, 3]}
        assert reopened.keys() == ["abc"]

        reopened.discard("abc")
        assert "abc" not in reopened
        assert reopened.load_payload("abc") is None

    def test_missing_and_corrupt_records_are_none(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.load_record("nope") is None
        path = store.record_path("broken")
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("{not json", encoding="utf-8")
        assert store.load_record("broken") is None

    def test_cache_hit_skips_execution(self, tmp_path):
        store = ResultStore(tmp_path)
        jobs = small_spec().expand()

        first = run_jobs(jobs, store=store, workers=1)
        assert first.executed == len(jobs)
        assert first.cache_hits == 0

        second = run_jobs(jobs, store=store, workers=1)
        assert second.executed == 0
        assert second.cache_hits == len(jobs)
        assert all(outcome.cached for outcome in second.outcomes)

        forced = run_jobs(jobs, store=store, workers=1, force=True)
        assert forced.executed == len(jobs)

    def test_records_are_queryable_json(self, tmp_path):
        store = ResultStore(tmp_path)
        jobs = small_spec().expand()
        run_jobs(jobs, store=store, workers=1)
        for record in store.records():
            assert record["job"]["benchmark"] == "kernel:streaming"
            assert record["metrics"]["total_cycles"] > 0
            assert record["job"]["machine"]["clusters"] in (2, 4)


# ----------------------------------------------------------------------
# Parallel execution
# ----------------------------------------------------------------------
class TestParallelExecution:
    def test_parallel_matches_serial(self, tmp_path):
        spec = small_spec(benchmarks=("kernel:streaming", "kernel:reduction"))
        jobs = spec.expand()
        assert len(jobs) == 4

        serial_store = ResultStore(tmp_path / "serial")
        parallel_store = ResultStore(tmp_path / "parallel")
        serial = run_jobs(jobs, store=serial_store, workers=1)
        parallel = run_jobs(spec.expand(), store=parallel_store, workers=2)
        assert parallel.executed == len(jobs)

        assert serial_store.keys() == parallel_store.keys()
        for key in serial_store.keys():
            serial_metrics = serial_store.load_record(key)["metrics"]
            parallel_metrics = parallel_store.load_record(key)["metrics"]
            assert serial_metrics == parallel_metrics

    def test_duplicate_jobs_executed_once(self, tmp_path):
        jobs = small_spec().expand()
        summary = run_jobs(jobs + jobs, store=ResultStore(tmp_path), workers=1)
        assert summary.total == len(jobs)
        assert summary.executed == len(jobs)


# ----------------------------------------------------------------------
# Experiment harness integration
# ----------------------------------------------------------------------
class TestExperimentRunnerIntegration:
    OPTIONS = ExperimentOptions(
        benchmarks=("gsmdec",), simulation_iteration_cap=32
    )

    def test_store_backed_runner_reuses_results(self, tmp_path):
        setup = interleaved_setup(SchedulingHeuristic.IPBC)
        first_runner = ExperimentRunner(self.OPTIONS, store=tmp_path / "store")
        benchmark = first_runner.benchmark("gsmdec")
        first = first_runner.run_benchmark(benchmark, setup)

        second_runner = ExperimentRunner(self.OPTIONS, store=tmp_path / "store")
        second = second_runner.run_benchmark(benchmark, setup)
        # Served from the store: nothing was compiled in the new runner.
        assert second_runner._compile_cache == {}
        assert second.total_cycles == first.total_cycles
        assert second.local_hit_ratio() == first.local_hit_ratio()

    def test_relabeled_result_does_not_alias_earlier_reference(self, tmp_path):
        runner = ExperimentRunner(self.OPTIONS, store=tmp_path / "store")
        benchmark = runner.benchmark("gsmdec")
        first = runner.run_benchmark(
            benchmark, interleaved_setup(SchedulingHeuristic.IPBC, name="baseline")
        )
        second = runner.run_benchmark(
            benchmark, interleaved_setup(SchedulingHeuristic.IPBC, name="fig/ipbc")
        )
        # Same stored configuration under a new display name: the earlier
        # reference must keep its label, and the data must be shared.
        assert first.architecture == "baseline"
        assert second.architecture == "fig/ipbc"
        assert second.total_cycles == first.total_cycles

    def test_prewarm_fills_memo(self, tmp_path):
        runner = ExperimentRunner(self.OPTIONS, store=tmp_path / "store")
        setup = interleaved_setup(SchedulingHeuristic.IPBC)
        summary = runner.prewarm([("gsmdec", setup)], workers=1)
        assert summary.executed == 1
        job = runner.job_for("gsmdec", setup)
        assert job.key in runner._result_memo
        # run_benchmark is now a pure cache hit.
        result = runner.run_benchmark(runner.benchmark("gsmdec"), setup)
        assert result is runner._result_memo[job.key]


# ----------------------------------------------------------------------
# Regression: engine.py KeyError on mutated attractable hints
# ----------------------------------------------------------------------
class TestAttractableMutationRegression:
    """Pins the fix for the seed KeyError at sim/engine.py:164.

    Operation hashing used to include the MemoryAccess descriptor, so the
    attractable-hint ablation's in-place ``attractable`` flip changed the
    hash of operations already used as schedule-entry keys and every later
    lookup raised KeyError.  Identity (uid) hashing keeps lookups stable.
    """

    def test_schedule_lookup_survives_attractable_mutation(self):
        config = MachineConfig.word_interleaved(attraction_buffers=True, entries=8)
        options = CompilerOptions(heuristic=SchedulingHeuristic.IPBC)
        compiled = compile_loop(build_streaming_loop(), config, options)

        ops = compiled.loop.memory_operations
        assert all(op in compiled.schedule.entries for op in ops)
        for op in ops:
            object.__setattr__(op.memory, "attractable", False)
        try:
            # Lookups by the mutated operations must still succeed...
            assert all(op in compiled.schedule.entries for op in ops)
            # ...and the simulator must accept the mutated loop.
            result = simulate_compiled_loops(
                [compiled], "regression", config, SimulationOptions(iteration_cap=32)
            )
            assert result.total_cycles > 0
        finally:
            for op in ops:
                object.__setattr__(op.memory, "attractable", True)

    def test_execute_job_after_hint_style_mutation(self):
        job = SweepPoint(benchmark="kernel:streaming", iteration_cap=32).job()
        record, result = execute_job(job)
        assert record["metrics"]["total_cycles"] == result.describe()["total_cycles"]

    def test_hint_ablation_restores_shared_memory_hints(self):
        from repro.experiments.ablations import run_attractable_hint_ablation

        options = ExperimentOptions(
            benchmarks=("jpegdec",), simulation_iteration_cap=32
        )
        runner = ExperimentRunner(options)
        run_attractable_hint_ablation(runner=runner, benchmark_name="jpegdec")
        # Unrolled clones share MemoryAccess objects with the source suite;
        # the restore must bring every hint back to its original value.
        for loop in runner.benchmark("jpegdec").loops:
            for op in loop.memory_operations:
                assert op.memory.attractable is True

    def test_compile_cache_distinguishes_profile_options(self):
        options = ExperimentOptions(
            benchmarks=("gsmdec",), simulation_iteration_cap=32
        )
        runner = ExperimentRunner(options)
        benchmark = runner.benchmark("gsmdec")
        setup = interleaved_setup(SchedulingHeuristic.IPBC)
        tweaked = setup.with_options(profile_iteration_cap=8)
        first = runner.compile_benchmark(benchmark, setup)
        second = runner.compile_benchmark(benchmark, tweaked)
        assert first is not second


# ----------------------------------------------------------------------
# Run telemetry (repro.obs integration)
# ----------------------------------------------------------------------
class TestRunTelemetry:
    @pytest.fixture(autouse=True)
    def clean_obs_state(self):
        from repro.obs import events as obs_events
        from repro.obs import metrics as obs_metrics
        from repro.obs import trace as obs_trace

        previous = obs_trace.set_enabled(True)
        obs_trace.reset()
        obs_metrics.registry().clear()
        obs_events.configure_shard(None)
        yield
        obs_trace.set_enabled(previous)
        obs_trace.reset()
        obs_metrics.registry().clear()
        obs_events.configure_shard(None)

    def _trace_events(self, telemetry_dir):
        from repro.obs import events as obs_events

        return list(
            obs_events.read_events(telemetry_dir / obs_events.TRACE_FILENAME)
        )

    def test_pool_run_merges_worker_spans_under_run_root(self, tmp_path):
        spec = small_spec(benchmarks=("kernel:streaming", "kernel:reduction"))
        jobs = spec.expand()
        summary = run_jobs(jobs, store=ResultStore(tmp_path), workers=2)

        assert summary.telemetry_dir == tmp_path / "obs"
        events = self._trace_events(summary.telemetry_dir)
        spans = [e for e in events if e.get("kind") == "span"]
        names = {e["name"] for e in spans}
        assert {"sweep.run", "sweep.job"} <= names
        assert {
            "stage.unroll",
            "stage.profile",
            "stage.latency",
            "stage.schedule",
            "stage.trace",
        } <= names

        (root,) = [e for e in spans if e["name"] == "sweep.run"]
        assert root["parent"] is None
        job_spans = [e for e in spans if e["name"] == "sweep.job"]
        assert len(job_spans) == len(jobs)
        # Worker job spans were re-parented under the run root at merge
        # time; at least some ran in a pool worker, not the parent.
        assert all(e["parent"] == root["id"] for e in job_spans)
        assert any(e["pid"] != root["pid"] for e in job_spans)
        # Shards were consumed into the merged trace.
        assert not list(summary.telemetry_dir.glob("worker-*.jsonl"))

        from repro.obs import events as obs_events

        metrics = obs_events.load_metrics(tmp_path)
        assert metrics["counters"]["artifacts.puts"] > 0
        manifest = obs_events.load_manifest(tmp_path)
        assert manifest["benchmarks"] == [
            "kernel:reduction", "kernel:streaming"
        ]
        assert manifest["run"]["executed"] == len(jobs)
        assert len(manifest["spec_hash"]) == 64

    def test_disabled_mode_writes_no_telemetry_but_same_records(self, tmp_path):
        from repro.obs import trace as obs_trace

        spec = small_spec()
        obs_trace.set_enabled(False)
        off = run_jobs(spec.expand(), store=ResultStore(tmp_path / "off"), workers=1)
        obs_trace.set_enabled(True)
        on = run_jobs(spec.expand(), store=ResultStore(tmp_path / "on"), workers=1)

        assert off.telemetry_dir is None
        assert not (tmp_path / "off" / "obs").exists()
        assert on.telemetry_dir is not None
        # Same record fields either way (timings are wall-clock noisy, but
        # the schema -- including elapsed_seconds -- must match).
        off_store, on_store = ResultStore(tmp_path / "off"), ResultStore(tmp_path / "on")
        assert off_store.keys() == on_store.keys()
        for key in off_store.keys():
            off_record = off_store.load_record(key)
            on_record = on_store.load_record(key)
            assert sorted(off_record) == sorted(on_record)
            assert off_record["metrics"] == on_record["metrics"]
            assert off_record["source_timing"] == "measured"
            assert off_record["elapsed_seconds"] > 0.0

    def test_source_timing_marks_replayed_aggregates(self, tmp_path):
        spec = small_spec(benchmarks=("gsmdec",))
        store = ResultStore(tmp_path)
        run_jobs(spec.expand(), store=store, workers=1, granularity="loop")
        benchmark_keys = [job.key for job in spec.expand()]
        for key in benchmark_keys:
            assert store.load_record(key)["source_timing"] == "measured"
            # Drop the benchmark-level record so the next run reassembles
            # it from the stored loop-level parts.
            store.discard(key)

        second = run_jobs(
            spec.expand(), store=store, workers=1, granularity="loop"
        )
        assert second.loop_cache_hits > 0
        for key in benchmark_keys:
            assert store.load_record(key)["source_timing"] == "replayed"

"""The compilation pipeline: unroll, profile, assign latencies, schedule.

This module glues the individual phases of Section 4.3.1 into the flow the
experiments use:

1. compute the candidate unrolling factors of the loop (no unrolling,
   unroll-by-N, OUF, or the selective combination of the three);
2. for each candidate, unroll the loop, profile it on the *profile* data
   set, run the latency assignment, order the nodes and schedule them with
   the requested cluster heuristic;
3. keep the variant with the smallest estimated execution time.

The result bundles everything later stages need: the scheduled variant, its
profile, the latency assignment and the schedule itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.ir.loop import Loop
from repro.ir.unroll import unroll_loop
from repro.machine.config import CacheOrganization, MachineConfig
from repro.profiling.profiler import LoopProfile, profile_loop
from repro.scheduler.core import SchedulingHeuristic, schedule_loop
from repro.scheduler.latency import LatencyAssignment, assign_latencies
from repro.scheduler.schedule import ClusteredSchedule
from repro.scheduler.unrolling import (
    UnrollingEstimate,
    UnrollPolicy,
    candidate_factors,
    estimate_execution_time,
)


@dataclass(frozen=True)
class CompilerOptions:
    """Knobs of the compilation pipeline exercised by the experiments."""

    heuristic: SchedulingHeuristic = SchedulingHeuristic.IPBC
    unroll_policy: UnrollPolicy = UnrollPolicy.SELECTIVE
    variable_alignment: bool = True
    use_chains: bool = True
    profile_dataset: str = "profile"
    profile_iteration_cap: int = 512

    def with_heuristic(self, heuristic: SchedulingHeuristic) -> "CompilerOptions":
        """Copy of the options with a different scheduling heuristic."""
        return replace(self, heuristic=heuristic)

    def describe(self) -> dict[str, object]:
        """Flat summary for reports."""
        return {
            "heuristic": self.heuristic.value,
            "unroll_policy": self.unroll_policy.value,
            "variable_alignment": self.variable_alignment,
            "use_chains": self.use_chains,
            "profile_dataset": self.profile_dataset,
            "profile_iteration_cap": self.profile_iteration_cap,
        }


def default_heuristic_for(config: MachineConfig) -> SchedulingHeuristic:
    """The scheduling heuristic the paper pairs with each organization."""
    if config.organization is CacheOrganization.UNIFIED:
        return SchedulingHeuristic.BASE
    if config.organization is CacheOrganization.COHERENT:
        return SchedulingHeuristic.MULTIVLIW
    return SchedulingHeuristic.IPBC


def _heuristic_matches(config: MachineConfig, heuristic: SchedulingHeuristic) -> bool:
    if config.organization is CacheOrganization.UNIFIED:
        return heuristic is SchedulingHeuristic.BASE
    if config.organization is CacheOrganization.COHERENT:
        return heuristic is SchedulingHeuristic.MULTIVLIW
    return heuristic in (SchedulingHeuristic.IBC, SchedulingHeuristic.IPBC)


@dataclass
class CompiledLoop:
    """A loop after the complete compilation pipeline."""

    original: Loop
    loop: Loop
    schedule: ClusteredSchedule
    profile: LoopProfile
    latency_assignment: LatencyAssignment
    unroll_factor: int
    estimate: UnrollingEstimate
    options: CompilerOptions
    rejected: list[UnrollingEstimate] = field(default_factory=list)

    @property
    def ii(self) -> int:
        """Initiation interval of the chosen schedule."""
        return self.schedule.ii

    def describe(self) -> dict[str, object]:
        """Summary for reports and examples."""
        summary = self.schedule.describe()
        summary.update(
            {
                "unroll_factor": self.unroll_factor,
                "estimated_cycles": self.estimate.estimated_cycles,
                "heuristic": self.options.heuristic.value,
            }
        )
        return summary


def compile_loop(
    loop: Loop,
    config: MachineConfig,
    options: Optional[CompilerOptions] = None,
) -> CompiledLoop:
    """Run the full compilation pipeline on one loop."""
    if options is None:
        options = CompilerOptions(heuristic=default_heuristic_for(config))
    if not _heuristic_matches(config, options.heuristic):
        raise ValueError(
            f"heuristic {options.heuristic.value} does not match the "
            f"{config.organization.value} cache organization"
        )

    base_profile = profile_loop(
        loop,
        config,
        dataset=options.profile_dataset,
        aligned=options.variable_alignment,
        iteration_cap=options.profile_iteration_cap,
    )
    factors = candidate_factors(loop, config, options.unroll_policy, base_profile)

    best: Optional[CompiledLoop] = None
    rejected: list[UnrollingEstimate] = []
    for factor in factors:
        variant = unroll_loop(loop, factor)
        profile = (
            base_profile
            if factor == 1
            else profile_loop(
                variant,
                config,
                dataset=options.profile_dataset,
                aligned=options.variable_alignment,
                iteration_cap=options.profile_iteration_cap,
            )
        )
        assignment = assign_latencies(variant, config, profile=profile)
        schedule = schedule_loop(
            variant,
            config,
            assignment,
            options.heuristic,
            profile=profile,
            use_chains=options.use_chains,
        )
        estimate = estimate_execution_time(
            factor, schedule.ii, schedule.stage_count, loop.trip_count
        )
        candidate = CompiledLoop(
            original=loop,
            loop=variant,
            schedule=schedule,
            profile=profile,
            latency_assignment=assignment,
            unroll_factor=factor,
            estimate=estimate,
            options=options,
        )
        if best is None or estimate.estimated_cycles < best.estimate.estimated_cycles:
            if best is not None:
                rejected.append(best.estimate)
            best = candidate
        else:
            rejected.append(estimate)
    assert best is not None  # factors is never empty
    best.rejected = rejected
    return best


def compile_loops(
    loops: list[Loop],
    config: MachineConfig,
    options: Optional[CompilerOptions] = None,
) -> list[CompiledLoop]:
    """Compile a list of loops with the same options."""
    return [compile_loop(loop, config, options) for loop in loops]

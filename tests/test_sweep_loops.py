"""Tests of per-loop sweep granularity, the sharded store and the
executor bugfix batch (PR 3)."""

from __future__ import annotations

import json
import os

import pytest

from repro.experiments.common import ExperimentOptions, ExperimentRunner, interleaved_setup
from repro.scheduler.core import SchedulingHeuristic
from repro.sim.stats import merge_benchmark_results
from repro.sweep import artifacts as artifacts_module
from repro.sweep import cli as sweep_cli
from repro.sweep import executor
from repro.sweep.artifacts import ArtifactCache
from repro.sweep.executor import (
    PruneOptions,
    default_workers,
    execute_job,
    run_jobs,
)
from repro.sweep.report import render_report, render_status
from repro.sweep.spec import (
    SweepPoint,
    SweepSpec,
    expand_loop_jobs,
    job_from_description,
)
from repro.sweep.store import ResultStore, shard_of
from repro.sweep.workloads import loop_names, resolve_loop

FAST = {"iteration_cap": 32}


def mix_spec(**base) -> SweepSpec:
    merged = dict(FAST)
    merged.update(base)
    return SweepSpec(
        name="loops",
        benchmarks=("kernels-mix",),
        axes={"clusters": (2, 4)},
        base=merged,
    )


# ----------------------------------------------------------------------
# Loop-scoped jobs
# ----------------------------------------------------------------------
class TestLoopJobs:
    def test_expand_loop_jobs_follows_benchmark_order(self):
        job = SweepPoint(benchmark="kernels-mix", **FAST).job()
        scoped = expand_loop_jobs(job)
        assert [part.loop for part in scoped] == loop_names("kernels-mix")
        assert len(scoped) == 3
        # A loop-scoped job expands to itself.
        assert expand_loop_jobs(scoped[0]) == [scoped[0]]

    def test_loop_scope_changes_key_benchmark_scope_does_not(self):
        job = SweepPoint(benchmark="kernels-mix", **FAST).job()
        scoped = job.scoped_to("sweep_stream")
        assert scoped.key != job.key
        # Benchmark-level jobs keep the key they had before the loop field
        # existed: the description does not mention the loop at all.
        assert "loop" not in job.describe()
        assert scoped.describe()["loop"] == "sweep_stream"

    def test_loop_job_round_trips_through_description(self):
        job = SweepPoint(benchmark="kernels-mix", **FAST).job().scoped_to(
            "sweep_reduce"
        )
        clone = job_from_description(
            json.loads(json.dumps(job.describe()))
        )
        assert clone.key == job.key
        assert clone.loop == "sweep_reduce"

    def test_spec_expands_at_loop_granularity(self):
        spec = mix_spec()
        benchmark_jobs = spec.expand()
        loop_jobs = spec.expand("loop")
        assert len(loop_jobs) == 3 * len(benchmark_jobs)
        assert len({job.key for job in loop_jobs}) == len(loop_jobs)
        with pytest.raises(ValueError, match="granularity"):
            spec.expand("bogus")

    def test_unknown_loop_rejected(self):
        with pytest.raises(KeyError, match="has no loop"):
            resolve_loop("kernels-mix", "no_such_loop")
        job = SweepPoint(benchmark="kernels-mix", **FAST).job().scoped_to("nope")
        with pytest.raises(KeyError, match="has no loop"):
            execute_job(job)

    def test_execute_loop_job_matches_benchmark_slice(self):
        job = SweepPoint(benchmark="kernels-mix", **FAST).job()
        _, whole = execute_job(job)
        _, part = execute_job(job.scoped_to("sweep_reduce"))
        assert len(part.loops) == 1
        matching = next(
            loop for loop in whole.loops if loop.loop_name == "sweep_reduce"
        )
        assert part.loops[0].describe() == matching.describe()


# ----------------------------------------------------------------------
# Per-loop vs monolithic equivalence
# ----------------------------------------------------------------------
class TestLoopGranularityEquivalence:
    def test_loop_granularity_matches_monolithic(self, tmp_path):
        spec = mix_spec()
        jobs = spec.expand()
        mono = ResultStore(tmp_path / "mono")
        serial = ResultStore(tmp_path / "serial")
        parallel = ResultStore(tmp_path / "parallel")

        run_jobs(spec.expand(), store=mono, workers=1)
        s_serial = run_jobs(
            spec.expand(), store=serial, workers=1, granularity="loop"
        )
        s_parallel = run_jobs(
            spec.expand(), store=parallel, workers=3, granularity="loop"
        )

        assert s_serial.loop_jobs == s_parallel.loop_jobs == 3 * len(jobs)
        for job in jobs:
            reference = mono.load_record(job.key)["metrics"]
            assert serial.load_record(job.key)["metrics"] == reference
            assert parallel.load_record(job.key)["metrics"] == reference

    def test_loop_granularity_payload_aggregates_exactly(self, tmp_path):
        spec = mix_spec()
        job = spec.expand()[0]
        mono = ResultStore(tmp_path / "mono")
        loop = ResultStore(tmp_path / "loop")
        run_jobs([job], store=mono, workers=1)
        run_jobs([job], store=loop, workers=1, granularity="loop")
        whole = mono.load_payload(job.key)
        merged = loop.load_payload(job.key)
        assert [l.loop_name for l in merged.loops] == [
            l.loop_name for l in whole.loops
        ]
        assert merged.describe() == whole.describe()

    def test_loop_granularity_with_model_pruning(self, tmp_path):
        spec = SweepSpec(
            name="pruned",
            benchmarks=("kernels-mix",),
            axes={"clusters": (2, 4), "attraction_entries": (0, 16)},
            base=dict(FAST),
        )
        jobs = spec.expand()
        prune = PruneOptions(keep_fraction=0.5)
        bench = ResultStore(tmp_path / "bench")
        loop = ResultStore(tmp_path / "loop")
        s_bench = run_jobs(spec.expand(), store=bench, workers=1, prune=prune)
        s_loop = run_jobs(
            spec.expand(), store=loop, workers=2, granularity="loop",
            prune=prune,
        )
        assert s_bench.pruned == s_loop.pruned == 2
        for job in jobs:
            a = bench.load_record(job.key)
            b = loop.load_record(job.key)
            assert a["source"] == b["source"]
            assert a["metrics"] == b["metrics"]

    def test_loop_granularity_resumes_from_stored_loops(self, tmp_path):
        spec = mix_spec()
        job = spec.expand()[0]
        store = ResultStore(tmp_path)
        # Pre-store one loop result, as an interrupted run would have.
        loop_job = expand_loop_jobs(job)[0]
        record, result = execute_job(loop_job)
        store.save(loop_job.key, record, payload=result)

        summary = run_jobs([job], store=store, workers=1, granularity="loop")
        assert summary.loop_jobs == 3
        assert summary.loop_cache_hits == 1
        assert summary.executed == 1  # the benchmark job itself ran
        assert store.load_record(job.key) is not None

    def test_summary_shows_more_concurrency_than_benchmarks(self, tmp_path):
        # One 3-loop benchmark, two workers: a benchmark-granularity run
        # can use one worker at most, the loop-granularity run uses both.
        spec = SweepSpec(
            name="balance", benchmarks=("kernels-mix",), base=dict(FAST)
        )
        summary = run_jobs(
            spec.expand(), store=ResultStore(tmp_path), workers=2,
            granularity="loop",
        )
        benchmarks = len(spec.benchmarks)
        assert summary.peak_parallelism > benchmarks
        assert summary.describe()["peak_parallelism"] == 2
        assert summary.describe()["loop_jobs"] == 3


# ----------------------------------------------------------------------
# Loop-aware model prediction
# ----------------------------------------------------------------------
class TestLoopScopedPrediction:
    def test_predict_job_loop_scope_matches_benchmark_slice(self):
        from repro.model.predict import predict_job

        job = SweepPoint(benchmark="kernels-mix", **FAST).job()
        whole = predict_job(job)
        part = predict_job(job.scoped_to("sweep_stride"))
        assert len(part.loops) == 1
        matching = next(
            loop for loop in whole.loops if loop.loop_name == "sweep_stride"
        )
        assert part.loops[0].describe() == matching.describe()


# ----------------------------------------------------------------------
# Aggregation primitive
# ----------------------------------------------------------------------
class TestMergeBenchmarkResults:
    def test_merge_rejects_empty_and_mixed_benchmarks(self):
        job = SweepPoint(benchmark="kernels-mix", **FAST).job()
        _, part = execute_job(expand_loop_jobs(job)[0])
        _, other = execute_job(
            SweepPoint(benchmark="kernel:streaming", **FAST).job()
        )
        with pytest.raises(ValueError, match="zero partial"):
            merge_benchmark_results([])
        with pytest.raises(ValueError, match="several benchmarks"):
            merge_benchmark_results([part, other])

    def test_merge_concatenates_loops(self):
        job = SweepPoint(benchmark="kernels-mix", **FAST).job()
        parts = [execute_job(p)[1] for p in expand_loop_jobs(job)]
        merged = merge_benchmark_results(parts, architecture=job.architecture)
        assert [l.loop_name for l in merged.loops] == loop_names("kernels-mix")
        assert merged.architecture == job.architecture
        assert merged.heuristic == parts[0].heuristic


# ----------------------------------------------------------------------
# Satellite: default_workers clamps to the CPU count
# ----------------------------------------------------------------------
class TestDefaultWorkers:
    def test_single_core_machine_gets_one_worker(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        assert default_workers() == 1

    def test_unknown_cpu_count_gets_one_worker(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: None)
        assert default_workers() == 1

    def test_many_cores_stay_capped(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 64)
        assert default_workers() == 8
        assert default_workers(cap=4) == 4


# ----------------------------------------------------------------------
# Satellite: bounded per-worker stage-artifact cache
# ----------------------------------------------------------------------
class TestArtifactCacheBound:
    def test_cache_never_exceeds_capacity(self, monkeypatch):
        monkeypatch.setattr(executor, "_ARTIFACTS", ArtifactCache(capacity=2))
        spec = SweepSpec(
            name="grid",
            benchmarks=("kernel:streaming",),
            axes={"clusters": (2, 4), "interleaving": (4, 8)},
            base=dict(FAST),
        )
        for job in spec.expand():
            execute_job(job)
            assert len(executor.artifact_cache()) <= 2

    def test_eviction_keeps_results_identical(self, monkeypatch, tmp_path):
        spec = SweepSpec(
            name="grid",
            benchmarks=("kernel:streaming", "kernel:reduction"),
            axes={"clusters": (2, 4)},
            base=dict(FAST),
        )
        # The run binds a fresh store-backed cache, so constrain the LRU
        # front through the default capacity it is constructed with.
        monkeypatch.setattr(artifacts_module, "DEFAULT_CACHE_CAPACITY", 1)
        evicting = ResultStore(tmp_path / "evicting")
        run_jobs(spec.expand(), store=evicting, workers=1)

        monkeypatch.setattr(artifacts_module, "DEFAULT_CACHE_CAPACITY", 256)
        roomy = ResultStore(tmp_path / "roomy")
        run_jobs(spec.expand(), store=roomy, workers=1)
        for key in evicting.keys():
            assert (
                evicting.load_record(key)["metrics"]
                == roomy.load_record(key)["metrics"]
            )

    def test_lru_evicts_least_recently_used(self):
        cache = ArtifactCache(capacity=2)
        cache.put("schedule", "a", [1])
        cache.put("schedule", "b", [2])
        assert cache.get("schedule", "a") == [1]  # refresh "a"
        cache.put("schedule", "c", [3])  # evicts "b"
        assert list(cache._memory) == ["a", "c"]
        assert cache.peek("schedule", "b") is None


# ----------------------------------------------------------------------
# Satellite: unknown report sort column fails loudly
# ----------------------------------------------------------------------
class TestReportSortValidation:
    def test_unknown_sort_column_raises_with_valid_columns(self):
        with pytest.raises(ValueError, match="total_cycles"):
            render_report([], sort_by="bogus")

    def test_cli_exits_non_zero_listing_columns(self, tmp_path, capsys):
        code = sweep_cli.main(
            ["report", "--results-dir", str(tmp_path), "--sort", "bogus"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "bogus" in err
        assert "total_cycles" in err

    def test_known_columns_still_sort(self, tmp_path):
        store = ResultStore(tmp_path)
        run_jobs(mix_spec().expand(), store=store, workers=1)
        for column in ("benchmark", "total_cycles", "ipc", "key"):
            assert "kernels-mix" in render_report(
                store.records(), sort_by=column
            )

    def test_sort_by_loop_requires_loop_granularity(self, tmp_path, capsys):
        # Benchmark-level rows have no loop column, so sorting by it is the
        # clean unknown-column error (not a KeyError crash)...
        with pytest.raises(ValueError, match="unknown sort column 'loop'"):
            render_report([], sort_by="loop")
        code = sweep_cli.main(
            ["report", "--results-dir", str(tmp_path), "--sort", "loop"]
        )
        assert code == 2
        assert "unknown sort column" in capsys.readouterr().err
        # ...while loop- and all-granularity reports sort by it fine.
        store = ResultStore(tmp_path)
        run_jobs(
            mix_spec().expand(), store=store, workers=1, granularity="loop"
        )
        for granularity in ("loop", "all"):
            assert "sweep_reduce" in render_report(
                store.records(), sort_by="loop", granularity=granularity
            )


# ----------------------------------------------------------------------
# Sharded store: layout, migration, vacuum
# ----------------------------------------------------------------------
class TestShardedStore:
    def test_records_land_in_shard_directories(self, tmp_path):
        store = ResultStore(tmp_path)
        key = "abcdef0123456789"
        store.save(key, {"metrics": {}}, payload={"x": 1})
        assert store.record_path(key).parent.name == shard_of(key) == "ab"
        assert store.record_path(key).is_file()
        assert store.payload_path(key).parent.name == "ab"
        assert store.keys() == [key]
        assert len(store) == 1

    def test_flat_store_migrates_transparently(self, tmp_path):
        store = ResultStore(tmp_path)
        run_jobs(mix_spec().expand(), store=store, workers=1)
        status_before = render_status(store)
        report_before = render_report(store.records())

        # Rebuild the pre-shard flat layout an older version wrote.
        for directory in (tmp_path / "records", tmp_path / "payloads"):
            for shard in [p for p in directory.iterdir() if p.is_dir()]:
                for path in shard.iterdir():
                    os.replace(path, directory / path.name)
                shard.rmdir()
        assert any((tmp_path / "records").glob("*.json"))

        reopened = ResultStore(tmp_path)
        assert not any((tmp_path / "records").glob("*.json"))
        assert any((tmp_path / "records").glob("*/*.json"))
        assert render_status(reopened) == status_before
        assert render_report(reopened.records()) == report_before
        # Payloads migrated with their records.
        assert all(
            reopened.load_payload(key) is not None for key in reopened.keys()
        )

    def test_vacuum_drops_orphaned_payloads_only(self, tmp_path):
        store = ResultStore(tmp_path)
        store.save("feedcafe", {"metrics": {}}, payload={"keep": True})
        orphan_key = "0123456789abcdef"
        orphan = store.payload_path(orphan_key)
        orphan.parent.mkdir(parents=True, exist_ok=True)
        orphan.write_bytes(b"orphaned payload")

        assert store.vacuum(grace_seconds=0.0) == [orphan_key]
        assert not orphan.exists()
        assert store.load_payload("feedcafe") == {"keep": True}
        # Records without payloads (e.g. model-only) are never touched.
        store.save("cafe2222", {"metrics": {}, "source": "model"})
        assert store.vacuum(grace_seconds=0.0) == []
        assert store.load_record("cafe2222") is not None

    def test_vacuum_grace_spares_in_flight_saves(self, tmp_path):
        # A payload younger than the grace window may belong to a save
        # whose record has not landed yet; it must survive the vacuum.
        store = ResultStore(tmp_path)
        orphan = store.payload_path("0123456789abcdef")
        orphan.parent.mkdir(parents=True, exist_ok=True)
        orphan.write_bytes(b"in-flight payload")
        assert store.vacuum(grace_seconds=3600.0) == []
        assert orphan.exists()

    def test_vacuum_sweeps_stale_temp_files(self, tmp_path):
        store = ResultStore(tmp_path)
        store.save("feedcafe", {"metrics": {}})
        stale = store.record_path("feedcafe").parent / ".feedcafe.json.tmp123"
        stale.write_bytes(b"torn write")
        store.vacuum(grace_seconds=0.0)
        assert not stale.exists()
        assert store.load_record("feedcafe") is not None

    def test_save_writes_record_last(self, tmp_path, monkeypatch):
        """A crash mid-save leaves an orphaned payload, never a record
        whose payload is missing."""
        store = ResultStore(tmp_path)
        original = ResultStore._atomic_write
        calls = []

        def crashing(path, data):
            calls.append(path.suffix)
            if path.suffix == ".json":
                raise RuntimeError("crash between payload and record")
            original(path, data)

        monkeypatch.setattr(ResultStore, "_atomic_write", staticmethod(crashing))
        with pytest.raises(RuntimeError):
            store.save("deadbeef", {"metrics": {}}, payload={"x": 1})
        monkeypatch.setattr(ResultStore, "_atomic_write", staticmethod(original))
        assert calls == [".pkl", ".json"]  # payload first, record last
        assert store.load_record("deadbeef") is None
        assert store.payload_path("deadbeef").is_file()
        assert store.vacuum(grace_seconds=0.0) == ["deadbeef"]


# ----------------------------------------------------------------------
# Status / report expose the granularity split
# ----------------------------------------------------------------------
class TestGranularityReporting:
    @pytest.fixture()
    def populated(self, tmp_path):
        store = ResultStore(tmp_path)
        run_jobs(
            mix_spec().expand(), store=store, workers=1, granularity="loop"
        )
        return store

    def test_status_counts_loop_records_separately(self, populated):
        status = render_status(populated)
        assert "stored records: 2 + 6 loop-level" in status

    def test_status_spec_coverage_uses_benchmark_records(self, populated):
        status = render_status(populated, mix_spec())
        assert "2/2 points simulated (complete)" in status

    def test_report_granularity_filters(self, populated):
        records = list(populated.records())
        benchmark_rows = render_report(records, granularity="benchmark")
        loop_rows = render_report(records, granularity="loop")
        assert "sweep_reduce" not in benchmark_rows
        assert "sweep_reduce" in loop_rows
        both = render_report(records, granularity="all")
        assert "sweep_reduce" in both
        with pytest.raises(ValueError, match="granularity"):
            render_report(records, granularity="bogus")

    def test_cli_run_loop_granularity_end_to_end(self, tmp_path, capsys):
        spec_file = tmp_path / "spec.json"
        spec_file.write_text(
            json.dumps(mix_spec().to_mapping()), encoding="utf-8"
        )
        code = sweep_cli.main(
            [
                "run",
                "--spec", str(spec_file),
                "--results-dir", str(tmp_path / "store"),
                "--workers", "2",
                "--granularity", "loop",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "loop granularity" in out
        assert "6 loop jobs" in out


# ----------------------------------------------------------------------
# Experiment harness at loop granularity
# ----------------------------------------------------------------------
class TestExperimentRunnerLoopGranularity:
    def test_prewarm_loop_granularity_fills_memo(self, tmp_path):
        options = ExperimentOptions(
            benchmarks=("gsmdec",), simulation_iteration_cap=32
        )
        setup = interleaved_setup(SchedulingHeuristic.IPBC)

        reference = ExperimentRunner(options)
        expected = reference.run_benchmark(
            reference.benchmark("gsmdec"), setup
        )

        runner = ExperimentRunner(options, store=tmp_path / "store")
        summary = runner.prewarm(
            [("gsmdec", setup)], workers=2, granularity="loop"
        )
        assert summary.executed == 1
        assert summary.loop_jobs == len(reference.benchmark("gsmdec").loops)
        result = runner.run_benchmark(runner.benchmark("gsmdec"), setup)
        assert result.describe() == expected.describe()

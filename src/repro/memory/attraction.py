"""Attraction Buffers (Section 3 and Section 5.2).

An Attraction Buffer is a small set-associative buffer attached to each
cluster that holds *remote subblocks*: when a cluster performs a remote
access, the whole subblock (all the words of the block mapped to the remote
cluster) is attracted into the requesting cluster's buffer, so the next
access to any word of that subblock can be satisfied locally.

Coherence is kept by the scheduler (memory dependent chains stay within a
cluster) and by flushing the buffers whenever a loop finishes, which the
simulator does through :meth:`AttractionBufferArray.flush`.

The paper also evaluates a compiler *hint* mechanism: when a loop schedules
more remote-accessing instructions on a cluster than the buffer can hold,
only the K most profitable instructions are marked "attractable" so the
buffer is not thrashed.  The hint is honoured here by simply not allocating
entries for non-attractable accesses (they may still hit on entries brought
in by attractable ones).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.config import AttractionBufferConfig
from repro.memory.cachesets import SetAssociativeStore


@dataclass
class AttractionBufferStats:
    """Per-buffer counters."""

    lookups: int = 0
    hits: int = 0
    allocations: int = 0
    evictions: int = 0
    flushes: int = 0

    def hit_rate(self) -> float:
        """Fraction of lookups that hit."""
        return self.hits / self.lookups if self.lookups else 0.0


class AttractionBuffer:
    """The Attraction Buffer of one cluster."""

    def __init__(self, config: AttractionBufferConfig) -> None:
        self._config = config
        self._store = SetAssociativeStore(config.num_sets, config.associativity)
        self.stats = AttractionBufferStats()

    @property
    def config(self) -> AttractionBufferConfig:
        """The buffer configuration."""
        return self._config

    def lookup(self, subblock_key: int) -> bool:
        """Probe the buffer for a remote subblock."""
        self.stats.lookups += 1
        if self._store.lookup(subblock_key):
            self.stats.hits += 1
            return True
        return False

    def attract(self, subblock_key: int) -> None:
        """Bring a remote subblock into the buffer."""
        evicted = self._store.insert(subblock_key)
        self.stats.allocations += 1
        if evicted is not None:
            self.stats.evictions += 1

    def invalidate(self, subblock_key: int) -> bool:
        """Drop a subblock (used when a store makes the copy stale)."""
        return self._store.invalidate(subblock_key)

    def flush(self) -> None:
        """Empty the buffer (executed between loops)."""
        self._store.clear()
        self.stats.flushes += 1

    def occupancy(self) -> int:
        """Number of subblocks currently held."""
        return len(self._store)


class AttractionBufferArray:
    """One Attraction Buffer per cluster."""

    def __init__(self, num_clusters: int, config: AttractionBufferConfig) -> None:
        if num_clusters <= 0:
            raise ValueError("need at least one cluster")
        self._config = config
        self._buffers = [AttractionBuffer(config) for _ in range(num_clusters)]

    @property
    def enabled(self) -> bool:
        """Whether the buffers are active."""
        return self._config.enabled

    def __getitem__(self, cluster: int) -> AttractionBuffer:
        return self._buffers[cluster]

    def __len__(self) -> int:
        return len(self._buffers)

    def lookup(self, cluster: int, subblock_key: int) -> bool:
        """Probe cluster ``cluster``'s buffer; always misses when disabled."""
        if not self.enabled:
            return False
        return self._buffers[cluster].lookup(subblock_key)

    def attract(self, cluster: int, subblock_key: int, attractable: bool = True) -> None:
        """Allocate a subblock in ``cluster``'s buffer if hints allow it."""
        if not self.enabled or not attractable:
            return
        self._buffers[cluster].attract(subblock_key)

    def invalidate_all(self, subblock_key: int, except_cluster: int | None = None) -> int:
        """Invalidate a subblock in every buffer; returns how many copies died."""
        if not self.enabled:
            return 0
        dropped = 0
        for index, buffer in enumerate(self._buffers):
            if index == except_cluster:
                continue
            if buffer.invalidate(subblock_key):
                dropped += 1
        return dropped

    def flush(self) -> None:
        """Flush every buffer (loop boundary)."""
        if not self.enabled:
            return
        for buffer in self._buffers:
            buffer.flush()

    def total_hits(self) -> int:
        """Aggregate hit count across clusters."""
        return sum(buffer.stats.hits for buffer in self._buffers)

    def total_lookups(self) -> int:
        """Aggregate lookup count across clusters."""
        return sum(buffer.stats.lookups for buffer in self._buffers)

"""Generic set-associative storage with LRU replacement.

All first-level structures of the paper -- per-cluster cache modules, the
unified cache, the multiVLIW coherent caches and the Attraction Buffers --
are set-associative with LRU replacement.  This module provides the single
implementation they all share.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator, Optional


class SetAssociativeStore:
    """A set-associative array of tags with true-LRU replacement.

    Entries are identified by an integer *key* (typically a block address);
    the store derives the set index from the key itself, so callers never
    deal with set arithmetic.
    """

    def __init__(self, num_sets: int, associativity: int) -> None:
        if num_sets <= 0 or associativity <= 0:
            raise ValueError("num_sets and associativity must be positive")
        self._num_sets = num_sets
        self._associativity = associativity
        self._sets: list[OrderedDict[int, None]] = [
            OrderedDict() for _ in range(num_sets)
        ]
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    @property
    def num_sets(self) -> int:
        """Number of sets."""
        return self._num_sets

    @property
    def associativity(self) -> int:
        """Ways per set."""
        return self._associativity

    @property
    def capacity(self) -> int:
        """Total number of entries the store can hold."""
        return self._num_sets * self._associativity

    def _set_of(self, key: int) -> OrderedDict[int, None]:
        return self._sets[key % self._num_sets]

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @property
    def hits(self) -> int:
        """Number of successful lookups."""
        return self._hits

    @property
    def misses(self) -> int:
        """Number of failed lookups."""
        return self._misses

    @property
    def evictions(self) -> int:
        """Number of entries displaced by insertions."""
        return self._evictions

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def lookup(self, key: int) -> bool:
        """Probe for ``key``; updates LRU order and hit/miss statistics."""
        # _set_of inlined: lookup runs once per simulated/profiled access.
        entry_set = self._sets[key % self._num_sets]
        if key in entry_set:
            entry_set.move_to_end(key)
            self._hits += 1
            return True
        self._misses += 1
        return False

    def contains(self, key: int) -> bool:
        """Probe for ``key`` without touching LRU state or statistics."""
        return key in self._set_of(key)

    def insert(self, key: int) -> Optional[int]:
        """Insert ``key``; returns the evicted key, if any."""
        entry_set = self._sets[key % self._num_sets]
        if key in entry_set:
            entry_set.move_to_end(key)
            return None
        evicted: Optional[int] = None
        if len(entry_set) >= self._associativity:
            evicted, _ = entry_set.popitem(last=False)
            self._evictions += 1
        entry_set[key] = None
        return evicted

    def invalidate(self, key: int) -> bool:
        """Remove ``key`` if present; returns True if it was there."""
        entry_set = self._set_of(key)
        if key in entry_set:
            del entry_set[key]
            return True
        return False

    def clear(self) -> None:
        """Remove every entry (statistics are preserved)."""
        for entry_set in self._sets:
            entry_set.clear()

    def reset(self) -> None:
        """Remove every entry and reset statistics."""
        self.clear()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def __len__(self) -> int:
        return sum(len(entry_set) for entry_set in self._sets)

    def __iter__(self) -> Iterator[int]:
        for entry_set in self._sets:
            yield from entry_set.keys()

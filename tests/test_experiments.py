"""Tests for the experiment harness (fast subsets of the paper's figures)."""

import pytest

from repro.experiments.common import (
    ExperimentOptions,
    ExperimentResult,
    ExperimentRunner,
    interleaved_setup,
    multivliw_setup,
    unified_setup,
)
from repro.experiments.figure4 import alignment_and_unrolling_gains, run_figure4
from repro.experiments.figure6 import run_figure6
from repro.experiments.figure7 import balance_by_variant, run_figure7
from repro.experiments.figure8 import amean_normalized_totals, run_figure8
from repro.experiments.latency_example import run_latency_example
from repro.experiments.table1 import dominant_size_matches, run_table1
from repro.scheduler.core import SchedulingHeuristic
from repro.workloads.mediabench import mediabench_suite

#: A small but representative subset keeps the experiment tests fast.
FAST_OPTIONS = ExperimentOptions(
    benchmarks=("gsmdec", "rasta"), simulation_iteration_cap=96
)


@pytest.fixture(scope="module")
def runner() -> ExperimentRunner:
    return ExperimentRunner(FAST_OPTIONS)


class TestSetups:
    def test_interleaved_setup_names(self):
        setup = interleaved_setup(SchedulingHeuristic.IPBC, attraction_buffers=True)
        assert setup.name == "ipbc+AB"
        assert setup.config.attraction_buffer.enabled

    def test_unified_and_multivliw_setups(self):
        assert unified_setup(5).config.unified_cache_latency == 5
        assert multivliw_setup().options.heuristic is SchedulingHeuristic.MULTIVLIW

    def test_runner_caches_compilations(self, runner):
        benchmark = runner.benchmark("gsmdec")
        setup = interleaved_setup(SchedulingHeuristic.IPBC)
        first = runner.compile_benchmark(benchmark, setup)
        second = runner.compile_benchmark(benchmark, setup)
        assert first is second

    def test_experiment_result_render(self):
        result = ExperimentResult(title="t", headers=["a", "b"])
        result.add_row(["x", 1.0])
        result.notes.append("hello")
        text = result.render()
        assert "t" in text and "hello" in text


class TestTable1:
    def test_all_rows_present(self):
        rows, result = run_table1()
        assert len(rows) == 14
        assert "epicdec" in result.render()

    def test_dominant_sizes_match(self):
        for benchmark in mediabench_suite():
            assert dominant_size_matches(benchmark)


class TestLatencyExample:
    def test_matches_paper(self):
        outcome, _ = run_latency_example()
        assert outcome.assignment.target_mii == 8
        assert outcome.final_latency("n1") == 4
        assert outcome.final_latency("n2") == 1
        assert outcome.final_latency("n6") == 1


class TestFigure4Subset:
    def test_rows_and_gains(self, runner):
        rows, result = run_figure4(runner=runner)
        assert len(rows) == len(FAST_OPTIONS.benchmarks) * 4
        gains = alignment_and_unrolling_gains(rows)
        # OUF unrolling must increase the local hit ratio on this subset.
        assert gains["unrolling_gain"] > 0.0
        assert "AMEAN" in result.render()

    def test_fractions_sum_to_one(self, runner):
        rows, _ = run_figure4(runner=runner)
        for row in rows:
            assert sum(row.fractions.values()) == pytest.approx(1.0, abs=1e-6)


class TestFigure6Subset:
    def test_attraction_buffers_do_not_increase_stall(self, runner):
        rows, _ = run_figure6(runner=runner)
        by_benchmark = {}
        for row in rows:
            by_benchmark.setdefault(row.benchmark, {})[row.configuration] = row.stall_cycles
        for values in by_benchmark.values():
            assert values["ipbc+ab"] <= values["ipbc"] * 1.05
            assert values["ibc+ab"] <= values["ibc"] * 1.05


class TestFigure7Subset:
    def test_balance_bounds_and_unrolling_effect(self, runner):
        rows, _ = run_figure7(runner=runner)
        for row in rows:
            assert 0.25 <= row.workload_balance <= 1.0
        balance = balance_by_variant(rows)
        assert balance["ouf"] <= balance["no-unroll"] + 0.05


class TestFigure8Subset:
    def test_normalization_and_ordering(self, runner):
        rows, result = run_figure8(runner=runner)
        means = amean_normalized_totals(rows)
        assert means["unified-L1"] == pytest.approx(1.0)
        # The realistic unified cache is slower than the interleaved cache
        # with IPBC on this subset (the paper's headline comparison).
        assert means["unified-L5"] > means["ipbc+ab"] * 0.9
        assert "AMEAN" in result.render()

    def test_compute_plus_stall_equals_total(self, runner):
        rows, _ = run_figure8(runner=runner)
        for row in rows:
            assert row.normalized_total == pytest.approx(
                row.normalized_compute + row.normalized_stall
            )

"""Edge-case coverage for the shared-bus and next-level memory models.

These are the two memory modules the rest of the suite only exercises
indirectly (through whole-benchmark simulations); the tests here pin down
their contention behaviour directly: saturation, queueing fairness, reset
semantics and the configuration validation guards.
"""

from __future__ import annotations

import pytest

from repro.machine.config import BusConfig, NextLevelConfig
from repro.memory.bus import BusSet
from repro.memory.nextlevel import NextMemoryLevel


# ----------------------------------------------------------------------
# BusSet
# ----------------------------------------------------------------------
class TestBusSet:
    def test_uncontended_requests_start_immediately(self):
        buses = BusSet(BusConfig(count=4, frequency_divisor=2))
        for _ in range(4):
            grant = buses.request(cycle=10)
            assert grant.start_cycle == 10
            assert grant.wait_cycles == 0
            assert grant.transfer_cycles == 2
            assert grant.completion_cycle == 12

    def test_contention_saturation_waits_grow_linearly(self):
        # 2 buses at half frequency: request pairs queue 2 cycles apart.
        buses = BusSet(BusConfig(count=2, frequency_divisor=2))
        waits = [buses.request(cycle=0).wait_cycles for _ in range(8)]
        assert waits == [0, 0, 2, 2, 4, 4, 6, 6]
        assert buses.transfers == 8
        assert buses.total_wait_cycles == sum(waits)

    def test_saturated_utilization_caps_at_one(self):
        buses = BusSet(BusConfig(count=1, frequency_divisor=2))
        for _ in range(10):
            buses.request(cycle=0)
        # 10 transfers x 2 cycles on 1 bus over 20 cycles: exactly full.
        assert buses.utilization(elapsed_cycles=20) == 1.0
        # Over a shorter window the estimate is clamped rather than > 1.
        assert buses.utilization(elapsed_cycles=5) == 1.0

    def test_utilization_of_empty_window_is_zero(self):
        buses = BusSet(BusConfig())
        assert buses.utilization(elapsed_cycles=0) == 0.0
        assert buses.utilization(elapsed_cycles=-5) == 0.0

    def test_late_request_reuses_freed_bus(self):
        buses = BusSet(BusConfig(count=1, frequency_divisor=2))
        first = buses.request(cycle=0)
        assert first.completion_cycle == 2
        # A request issued after the bus freed up never waits.
        second = buses.request(cycle=5)
        assert second.wait_cycles == 0
        assert second.start_cycle == 5

    def test_reset_clears_occupancy_and_statistics(self):
        buses = BusSet(BusConfig(count=1, frequency_divisor=2))
        buses.request(cycle=0)
        buses.request(cycle=0)
        assert buses.total_wait_cycles > 0
        buses.reset()
        assert buses.transfers == 0
        assert buses.total_wait_cycles == 0
        assert buses.request(cycle=0).wait_cycles == 0

    def test_invalid_configurations_are_rejected(self):
        with pytest.raises(ValueError):
            BusConfig(count=0)
        with pytest.raises(ValueError):
            BusConfig(frequency_divisor=0)


# ----------------------------------------------------------------------
# NextMemoryLevel
# ----------------------------------------------------------------------
class TestNextMemoryLevel:
    def test_uncontended_access_pays_configured_latency(self):
        level = NextMemoryLevel(NextLevelConfig(latency=10, ports=4))
        assert level.access(cycle=0) == 10
        assert level.total_wait_cycles == 0

    def test_port_contention_saturation(self):
        # One port: each same-cycle request queues one cycle behind the
        # previous one (ports are occupied for a single cycle).
        level = NextMemoryLevel(NextLevelConfig(latency=10, ports=1))
        latencies = [level.access(cycle=0) for _ in range(5)]
        assert latencies == [10, 11, 12, 13, 14]
        assert level.accesses == 5
        assert level.total_wait_cycles == 0 + 1 + 2 + 3 + 4

    def test_requests_beyond_port_count_queue_fairly(self):
        level = NextMemoryLevel(NextLevelConfig(latency=10, ports=4))
        latencies = [level.access(cycle=0) for _ in range(8)]
        assert latencies == [10, 10, 10, 10, 11, 11, 11, 11]

    def test_zero_latency_next_level_is_rejected(self):
        with pytest.raises(ValueError):
            NextLevelConfig(latency=0)
        with pytest.raises(ValueError):
            NextLevelConfig(latency=10, ports=0)
        with pytest.raises(ValueError):
            NextLevelConfig(latency=-1)

    def test_minimum_latency_level_still_orders_requests(self):
        # latency=1 is the smallest legal next level; contention still
        # serializes same-cycle requests.
        level = NextMemoryLevel(NextLevelConfig(latency=1, ports=1))
        assert [level.access(cycle=0) for _ in range(3)] == [1, 2, 3]

    def test_reset_clears_ports_and_statistics(self):
        level = NextMemoryLevel(NextLevelConfig(latency=10, ports=1))
        level.access(cycle=0)
        level.access(cycle=0)
        assert level.total_wait_cycles == 1
        level.reset()
        assert level.accesses == 0
        assert level.total_wait_cycles == 0
        assert level.access(cycle=0) == 10

    def test_idle_gap_absorbs_backlog(self):
        level = NextMemoryLevel(NextLevelConfig(latency=10, ports=1))
        level.access(cycle=0)
        # By cycle 3 the port has long been free again.
        assert level.access(cycle=3) == 10

"""Differential tests of the replay kernel backends.

The vectorised backend (:mod:`repro.kernels.vector`) must be
indistinguishable from the scalar oracle through every observable
payload: simulation results, profiles and cache statistics.  These tests
extend the ``tests/test_trace.py`` oracle pattern to the backend switch:
randomized loops crossed with machine geometries and datasets are
replayed on both backends and the full result payloads compared.
"""

from __future__ import annotations

import random
from dataclasses import asdict

import pytest

from repro import kernels
from repro.ir.builder import LoopBuilder
from repro.ir.loop import StorageClass
from repro.machine.config import MachineConfig
from repro.memory.cachesets import SetAssociativeStore
from repro.profiling.profiler import profile_loop
from repro.profiling.trace import reset_trace_state
from repro.scheduler.core import SchedulingHeuristic
from repro.scheduler.pipeline import CompilerOptions, compile_loop
from repro.sim.engine import SimulationOptions, simulate_compiled_loops

requires_numpy = pytest.mark.skipif(
    not kernels.numpy_available(), reason="vector backend requires numpy"
)

#: Machine geometries the differential suite crosses: the paper's
#: word-interleaved cache (with and without Attraction Buffers -- the
#: latter exercises the kernel's sequenced remote path), the unified
#: cache and the coherent multiVLIW (where the vector kernel must decline
#: and fall back to the scalar loop without changing a single payload).
GEOMETRIES = (
    ("word-interleaved", MachineConfig.word_interleaved, {}),
    (
        "word-interleaved-ab",
        lambda: MachineConfig.word_interleaved(attraction_buffers=True),
        {},
    ),
    ("unified", MachineConfig.unified, {"heuristic": SchedulingHeuristic.BASE}),
    (
        "multivliw",
        MachineConfig.multivliw,
        {"heuristic": SchedulingHeuristic.MULTIVLIW},
    ),
)


def random_loop(seed: int):
    """A randomized but schedulable loop: strided loads (some negative or
    constant), an optional indirect gather, a reduction and a store."""
    rng = random.Random(seed)
    builder = LoopBuilder(f"fuzz{seed}", trip_count=rng.randrange(24, 200))
    arrays = []
    for index in range(rng.randrange(1, 4)):
        name = f"arr{index}"
        builder.array(
            name,
            element_bytes=rng.choice((2, 4, 8)),
            num_elements=rng.randrange(16, 512),
            storage=rng.choice(tuple(StorageClass)),
        )
        arrays.append(name)
    values = []
    for index in range(rng.randrange(2, 6)):
        values.append(
            builder.load(
                f"ld{index}",
                rng.choice(arrays),
                stride=rng.choice((-8, -4, 0, 2, 4, 8, 12, 16)),
                offset=rng.randrange(0, 32),
            )
        )
    if rng.random() < 0.5:
        builder.array("idx", element_bytes=2, num_elements=64, index_range=48)
        builder.array("table", element_bytes=8, num_elements=256)
        feeder = builder.load("ldi", "idx", stride=2)
        values.append(
            builder.load(
                "ldt", "table", indirect=True, index_array="idx",
                inputs=[feeder],
            )
        )
    total = builder.compute("sum", rng.choice(("add", "fadd")), inputs=values)
    builder.store(
        "st", rng.choice(arrays), stride=rng.choice((2, 4, 8)), inputs=[total]
    )
    return builder.build()


def sim_payload(result):
    """Every observable field of a benchmark simulation result."""
    payload = []
    for loop_result in result.loops:
        records = []
        for op in sorted(loop_result.operation_records, key=lambda o: o.uid):
            record = loop_result.operation_records[op]
            records.append(
                (
                    record.cluster,
                    record.assigned_latency,
                    [(k.value, v) for k, v in record.access_counts.items()],
                    [(k.value, v) for k, v in record.stall_by_type.items()],
                    list(record.clusters_touched.items()),
                    record.total_stall,
                )
            )
        payload.append(
            (
                loop_result.loop_name,
                loop_result.ii,
                loop_result.stage_count,
                loop_result.compute_cycles,
                loop_result.stall_cycles,
                asdict(loop_result.accesses),
                asdict(loop_result.stalls),
                records,
            )
        )
    return payload


def run_backend(backend, monkeypatch, loops, config, options):
    """Compile, simulate and profile every loop under one backend."""
    monkeypatch.setenv("REPRO_SIM_KERNEL", backend)
    reset_trace_state()
    compiled = [compile_loop(loop, config, options) for loop in loops]
    result = simulate_compiled_loops(compiled, "fuzz", config, SimulationOptions())
    profiles = {
        (loop.name, dataset): profile_loop(
            loop, config, dataset=dataset
        ).to_payload()
        for loop in loops
        for dataset in ("profile", "execution")
    }
    return sim_payload(result), profiles


@requires_numpy
class TestDifferentialFuzz:
    """Randomized loops x geometries x datasets, scalar vs vector."""

    @pytest.mark.parametrize(
        "geometry", GEOMETRIES, ids=[name for name, _, _ in GEOMETRIES]
    )
    def test_payloads_identical_across_backends(self, geometry, monkeypatch):
        _, make_config, option_overrides = geometry
        config = make_config()
        options = CompilerOptions(**option_overrides)
        loops = [random_loop(seed) for seed in range(6)]
        scalar_sim, scalar_profiles = run_backend(
            "scalar", monkeypatch, loops, config, options
        )
        vector_sim, vector_profiles = run_backend(
            "vector", monkeypatch, loops, config, options
        )
        assert scalar_sim == vector_sim
        assert scalar_profiles == vector_profiles


class TestBackendSelection:
    def test_explicit_choices(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_KERNEL", "scalar")
        assert kernels.active_backend() == "scalar"
        monkeypatch.setenv("REPRO_SIM_KERNEL", "bogus")
        with pytest.raises(ValueError):
            kernels.active_backend()

    @requires_numpy
    def test_auto_prefers_vector_when_numpy_importable(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_KERNEL", raising=False)
        assert kernels.active_backend() == "vector"

    def test_no_numpy_auto_selects_scalar_and_vector_errors(self, monkeypatch):
        monkeypatch.setattr(kernels, "_numpy_available", False)
        monkeypatch.delenv("REPRO_SIM_KERNEL", raising=False)
        assert kernels.active_backend() == "scalar"
        assert kernels.sim_replay(None, None, None) is None
        assert kernels.profile_replay(None, None, 1, 1, False) is None
        monkeypatch.setenv("REPRO_SIM_KERNEL", "vector")
        with pytest.raises(RuntimeError, match="perf"):
            kernels.active_backend()


@requires_numpy
class TestReplayLRU:
    """The lockstep kernel against the scalar store, state included."""

    @pytest.mark.parametrize("associativity", (1, 2, 4))
    def test_matches_scalar_store(self, associativity):
        import numpy as np

        from repro.kernels.vector import replay_lru

        rng = random.Random(associativity)
        num_sets = 8
        keys = [rng.randrange(0, 48) for _ in range(400)]
        store = SetAssociativeStore(num_sets, associativity)
        expected = store.replay(keys)

        key_array = np.array(keys, dtype=np.int64)
        outcome = replay_lru(key_array % num_sets, key_array, associativity)
        assert outcome is not None
        hits, final_ways, evictions = outcome
        assert list(hits) == expected
        exported = store.export_ways()
        for set_id in range(num_sets):
            assert exported[set_id] == final_ways.get(set_id, [])
        assert sum(evictions.values()) == store.evictions

    def test_initial_ways_seeding(self):
        import numpy as np

        from repro.kernels.vector import replay_lru

        rng = random.Random(99)
        num_sets, associativity = 4, 2
        store = SetAssociativeStore(num_sets, associativity)
        store.replay([rng.randrange(0, 24) for _ in range(60)])
        seed_ways = {
            set_id: ways
            for set_id, ways in enumerate(store.export_ways())
            if ways
        }
        keys = [rng.randrange(0, 24) for _ in range(120)]
        expected = store.replay(keys)

        key_array = np.array(keys, dtype=np.int64)
        outcome = replay_lru(
            key_array % num_sets, key_array, associativity,
            initial_ways=seed_ways,
        )
        hits, final_ways, _ = outcome
        assert list(hits) == expected
        exported = store.export_ways()
        for set_id in range(num_sets):
            assert exported[set_id] == final_ways.get(set_id, [])

    def test_declines_hot_set_deeper_than_cutoff(self):
        import numpy as np

        from repro.kernels import vector

        keys = np.arange(vector._MAX_DEPTH + 1, dtype=np.int64)
        set_ids = np.zeros_like(keys)
        assert vector.replay_lru(set_ids, keys, 2) is None

    def test_cutoffs_default_and_env_overrides(self, monkeypatch):
        from repro.kernels import vector

        monkeypatch.delenv(vector.MAX_DEPTH_ENV, raising=False)
        monkeypatch.delenv(vector.WORK_RATIO_ENV, raising=False)
        assert vector.lockstep_cutoffs() == (
            vector._MAX_DEPTH,
            vector._MAX_WORK_RATIO,
        )
        monkeypatch.setenv(vector.MAX_DEPTH_ENV, "64")
        monkeypatch.setenv(vector.WORK_RATIO_ENV, "7")
        assert vector.lockstep_cutoffs() == (64, 7)
        # Invalid and non-positive values fall back to the defaults.
        monkeypatch.setenv(vector.MAX_DEPTH_ENV, "not-a-number")
        monkeypatch.setenv(vector.WORK_RATIO_ENV, "0")
        assert vector.lockstep_cutoffs() == (
            vector._MAX_DEPTH,
            vector._MAX_WORK_RATIO,
        )

    def test_env_cutoff_changes_the_decline_decision(self, monkeypatch):
        import numpy as np

        from repro.kernels import vector

        # A hot set 65 deep: accepted at the default depth cutoff...
        keys = np.arange(65, dtype=np.int64)
        set_ids = np.zeros_like(keys)
        monkeypatch.setenv(vector.WORK_RATIO_ENV, "1000000")
        assert vector.replay_lru(set_ids, keys, 2) is not None
        # ...declined once the env knob lowers it below the depth.
        monkeypatch.setenv(vector.MAX_DEPTH_ENV, "64")
        assert vector.replay_lru(set_ids, keys, 2) is None


class TestStoreStatistics:
    """Per-access and bulk replay must report identical statistics."""

    def test_per_access_and_bulk_replay_match(self):
        rng = random.Random(7)
        keys = [rng.randrange(0, 64) for _ in range(500)]
        per_access = SetAssociativeStore(8, 2)
        bulk = SetAssociativeStore(8, 2)
        flags = []
        for key in keys:
            hit = per_access.lookup(key)
            if not hit:
                per_access.insert(key)
            flags.append(hit)
        assert bulk.replay(keys) == flags
        assert (bulk.hits, bulk.misses, bulk.evictions) == (
            per_access.hits,
            per_access.misses,
            per_access.evictions,
        )
        assert bulk.export_ways() == per_access.export_ways()

    def test_export_update_round_trip(self):
        store = SetAssociativeStore(4, 2)
        assert not store.occupied
        store.replay([0, 4, 8, 1, 5])
        assert store.occupied
        exported = store.export_ways()

        other = SetAssociativeStore(4, 2)
        other.load_ways(exported)
        assert other.export_ways() == exported
        assert (other.hits, other.misses, other.evictions) == (0, 0, 0)

        other.update_ways({0: [12], 2: []})
        assert other.export_ways()[0] == [12]
        assert other.export_ways()[1] == exported[1]
        assert other.export_ways()[2] == []
        with pytest.raises(ValueError):
            other.update_ways({4: [1]})
        with pytest.raises(ValueError):
            other.update_ways({0: [1, 2, 3]})
        with pytest.raises(ValueError):
            other.load_ways([[1]])

"""The next memory level below the L1 data cache.

In the paper's evaluation the next level always hits and takes 10 cycles in
total, with 4 ports.  The model below reproduces that: it serves every
request, charges the configured latency, and adds queueing delay when more
requests than ports are outstanding in the same cycle window.
"""

from __future__ import annotations

import heapq

from repro.machine.config import NextLevelConfig


class NextMemoryLevel:
    """Always-hit backing store with a fixed latency and limited ports."""

    def __init__(self, config: NextLevelConfig) -> None:
        self._config = config
        self._port_free_at: list[int] = [0] * config.ports
        heapq.heapify(self._port_free_at)
        self._accesses = 0
        self._total_wait = 0

    @property
    def config(self) -> NextLevelConfig:
        """The next-level configuration."""
        return self._config

    @property
    def accesses(self) -> int:
        """Number of requests served."""
        return self._accesses

    @property
    def total_wait_cycles(self) -> int:
        """Cumulative port-contention wait."""
        return self._total_wait

    def access(self, cycle: int) -> int:
        """Serve a request issued at ``cycle``; returns its total latency.

        The returned latency includes any wait for a free port plus the
        configured access latency.
        """
        earliest_free = heapq.heappop(self._port_free_at)
        start = max(cycle, earliest_free)
        heapq.heappush(self._port_free_at, start + 1)
        wait = start - cycle
        self._accesses += 1
        self._total_wait += wait
        return wait + self._config.latency

    def note_bulk(
        self,
        accesses: int,
        wait_cycles: int,
        served_at=None,
        occupancy: int = 1,
    ) -> None:
        """Credit a batch of accesses accounted outside :meth:`access`.

        The vectorised kernels (:mod:`repro.kernels.vector`) serve whole
        access sequences in bulk and report the totals here.  When
        ``served_at`` (nondecreasing service-start cycles of a verified
        zero-wait batch) is given, the port heap is rebuilt to the state
        the per-access path would have left: the last ``ports`` services'
        end cycles, padded with the previous heap entries.
        """
        self._accesses += accesses
        self._total_wait += wait_cycles
        if served_at is not None:
            ports = self._config.ports
            ends = [int(cycle) + occupancy for cycle in served_at[-ports:]]
            if len(ends) < ports:
                ends.extend(self._port_free_at[: ports - len(ends)])
            self._port_free_at = ends
            heapq.heapify(self._port_free_at)

    def reset(self) -> None:
        """Clear occupancy and statistics."""
        self._port_free_at = [0] * self._config.ports
        heapq.heapify(self._port_free_at)
        self._accesses = 0
        self._total_wait = 0
